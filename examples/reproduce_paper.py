"""Regenerate every table and figure of the paper in one run.

Run:  python examples/reproduce_paper.py [--exp table4] [--fast]

Without arguments this produces the full evaluation (a few minutes);
``--fast`` restricts the scene sets to two scenes per dataset;
``--exp`` selects a single experiment by id.
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    figure7_motivating,
    figure15_breakdowns,
    figure16_speedup_energy,
    figure17_hybrid,
    gating_ablation,
    reconfiguration_overhead,
    related_work_comparisons,
    table1_overview,
    table2_microops,
    table3_module_status,
    table4_realtime,
    table5_scaling,
    table6_support,
)

FAST_UNBOUNDED = ("room", "garden")
FAST_SYNTHETIC = ("lego", "chair")
FAST_INDOOR = ("room", "kitchen")


def experiments(fast: bool):
    ub = FAST_UNBOUNDED if fast else None
    syn = FAST_SYNTHETIC if fast else None
    indoor = FAST_INDOOR if fast else None
    return {
        "table1": lambda: table1_overview(scenes=ub),
        "table2": table2_microops,
        "table3": table3_module_status,
        "table4": lambda: table4_realtime(scenes=syn),
        "table5": table5_scaling,
        "table6": table6_support,
        "fig7": lambda: figure7_motivating(scenes=ub),
        "fig15": figure15_breakdowns,
        "fig16": lambda: figure16_speedup_energy(scenes=ub),
        "fig17": lambda: figure17_hybrid(scenes=indoor),
        "ablation_reconfig": reconfiguration_overhead,
        "ablation_gating": gating_ablation,
        "related_work": related_work_comparisons,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--exp", default=None, help="single experiment id")
    parser.add_argument("--fast", action="store_true", help="reduced scene sets")
    args = parser.parse_args()

    table = experiments(args.fast)
    ids = [args.exp] if args.exp else list(table)
    for exp_id in ids:
        if exp_id not in table:
            raise SystemExit(f"unknown experiment {exp_id!r}; choose from {list(table)}")
        print(f"\n{'=' * 72}\n{exp_id}\n{'=' * 72}")
        print(table[exp_id]()["text"])


if __name__ == "__main__":
    main()
