"""Compile/render overlap walkthrough: the event engine's compilation
model on one cold-cache bursty trace.

Run:  python examples/compile_overlap.py [n_requests]

Four runs of the same deterministic bursty miss storm (twelve scenes,
three pipelines — every burst opens trace keys the cache has never
seen), using the synthetic per-pipeline programs so the script stays
instant:

1. **sync-compile** — compile-on-miss is synchronously visible: the
   dispatching chip stalls for the simulated compile latency
   (program-size-derived, deterministic) before rendering the frame;
2. **1 worker** — compilation becomes a first-class resource: misses
   enqueue compile jobs on a single worker that overlaps chip
   execution, but a burst of cold keys serializes behind it;
3. **4 workers** — the same storm fans out across the pool, and queue
   waits collapse;
4. **4 workers + prefetch** — a recency predictor crosses recently seen
   scenes x pipelines and warms the cache during idle compile capacity,
   so some misses never happen at all.

The punchline printed at the end: overlapping compilation with chip
execution cuts the storm's mean queue wait by an order of magnitude
versus stalling the chip, and prefetch accuracy shows how often the
predictor warmed the right trace.
"""

from __future__ import annotations

import sys

from repro.compile.workloads import gemm_workload
from repro.core.config import CompileLatencyModel
from repro.core.microops import MicroOp, MicroOpProgram
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    TracePrefetcher,
    format_service_report,
    generate_traffic,
    simulate_service,
)

#: Synthetic per-pipeline frame costs (an ~8x spread, as in the tests).
PIPELINE_MACS = {"hashgrid": 2e7, "gaussian": 1.6e8, "mesh": 4e7}
SCENES = tuple(f"scene{i}" for i in range(12))


def stub_program(pipeline: str) -> MicroOpProgram:
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=PIPELINE_MACS.get(pipeline, 5e7), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def main(n_requests: int = 240) -> None:
    trace = generate_traffic(
        pattern="bursty", n_requests=n_requests, rate_rps=4000.0, seed=7,
        scenes=SCENES, resolution=(64, 64), slo_s=0.02,
    )
    distinct = len({r.trace_key for r in trace})
    model = CompileLatencyModel()
    print(f"trace: {n_requests} bursty requests over {distinct} cold trace "
          f"keys, two-chip fleet, ~{model.base_s * 1e3:.0f}+ ms per compile\n")

    runs = {
        "sync-compile": dict(compile_workers=0, compile_latency=model),
        "1 worker": dict(compile_workers=1, compile_latency=model),
        "4 workers": dict(compile_workers=4, compile_latency=model),
        "4 workers+prefetch": dict(
            compile_workers=4, compile_latency=model,
            # Cover the whole scene x pipeline key space when predicting.
            prefetch=TracePrefetcher(history=48, max_candidates=36),
        ),
    }
    reports = {}
    for name, kwargs in runs.items():
        reports[name] = simulate_service(
            trace,
            ServeCluster(2),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(),
            **kwargs,
        )
        print(f"=== {name} ===")
        print(format_service_report(reports[name]))
        print()

    sync = reports["sync-compile"]
    pooled = reports["4 workers"]
    warmed = reports["4 workers+prefetch"]
    print(
        f"async vs sync compile: mean queue wait "
        f"{pooled.mean_queue_s * 1e3:.2f} ms vs "
        f"{sync.mean_queue_s * 1e3:.2f} ms, p99 "
        f"{pooled.latency_p(99) * 1e3:.1f} ms vs "
        f"{sync.latency_p(99) * 1e3:.1f} ms"
    )
    prefetch = warmed.prefetch_stats
    print(
        f"prefetch: {prefetch['hits']} of {prefetch['issued']} warmed traces "
        f"used ({prefetch['accuracy'] * 100:.0f}% accuracy), cache hit rate "
        f"{warmed.cache_hit_rate * 100:.1f}% vs "
        f"{pooled.cache_hit_rate * 100:.1f}%"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 240)
