"""Predictive serving walkthrough: forecast-led autoscaling and a
persistent trace library on one diurnal trace.

Run:  python examples/predictive_serving.py [n_requests]

Part 1 — lead the wave. The same deterministic diurnal trace (a day
compressed to a few seconds) is served twice from a two-chip floor:

1. **reactive** — the sliding-window controller grows only after queue
   depth or SLO attainment shows damage; every chip it adds then spends
   its warm-up booting while the upswing burns SLOs;
2. **predictive** — identical constants, plus a forecast: the
   controller fits an EWMA trend to the offered arrival rate, projects
   demand one warm-up ahead, and provisions toward the projection
   before the queue feels it (and retires toward it on the downslope —
   never while the trend still rises).

Part 2 — never compile twice. The service is then "restarted": a fresh
cluster and a fresh (empty) trace cache, but the trace library the
first run flushed on shutdown warm-starts the cache, so the restart
serves the same morning with zero cold compile misses.
"""

from __future__ import annotations

import sys

from repro.analysis.serving import (
    PREDICTIVE_MAX_CHIPS,
    PREDICTIVE_MIN_CHIPS,
    PREDICTIVE_WORKLOAD,
    make_wave_autoscaler,
)
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    TraceLibrary,
    format_service_report,
    generate_traffic,
    simulate_service,
)


def main(n_requests: int = PREDICTIVE_WORKLOAD["n_requests"]) -> None:
    workload = dict(PREDICTIVE_WORKLOAD, n_requests=n_requests)
    trace = generate_traffic(**workload)
    span = trace[-1].arrival_s - trace[0].arrival_s
    print(f"trace: {n_requests} diurnal requests over {span:.2f} s "
          f"(~{span / 4.0:.1f} waves), SLO {workload['slo_s'] * 1e3:.0f} ms\n")

    for mode in ("reactive", "predictive"):
        report = simulate_service(
            trace,
            ServeCluster(PREDICTIVE_MIN_CHIPS, policy="pipeline-affinity"),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
            autoscaler=make_wave_autoscaler(mode),
        )
        print(f"=== {mode} autoscaler "
              f"(floor {PREDICTIVE_MIN_CHIPS}, ceiling {PREDICTIVE_MAX_CHIPS}) ===")
        print(format_service_report(report))
        print()
        if mode == "reactive":
            reactive = report
        else:
            predictive = report

    print(
        f"predictive vs reactive: SLO "
        f"{predictive.slo_attainment * 100:.1f}% vs "
        f"{reactive.slo_attainment * 100:.1f}%, p95 "
        f"{predictive.latency_p(95) * 1e3:.1f} vs "
        f"{reactive.latency_p(95) * 1e3:.1f} ms at "
        f"{predictive.total_chip_seconds:.2f} vs "
        f"{reactive.total_chip_seconds:.2f} chip-seconds — the forecast "
        f"buys the warm-up back\n"
    )

    # -- Part 2: restart from the trace library -------------------------
    # A static fleet isolates the compile effect: the only thing that
    # differs between the two runs below is what the library remembers.
    library = TraceLibrary()
    cold = simulate_service(
        trace,
        ServeCluster(PREDICTIVE_MAX_CHIPS, policy="pipeline-affinity"),
        cache=TraceCache(),
        batcher=PipelineBatcher(),
        compile_workers=2,
        trace_library=library,
    )
    warm = simulate_service(
        trace,
        ServeCluster(PREDICTIVE_MAX_CHIPS, policy="pipeline-affinity"),
        cache=TraceCache(),
        batcher=PipelineBatcher(),
        compile_workers=2,
        trace_library=library,
    )
    print("=== restart from the trace library ===")
    for name, report in (("cold start", cold), ("warm restart", warm)):
        stats = report.cache_stats
        print(f"{name:13s} compile misses {stats['misses']:3d}   "
              f"warm-started {stats['warmed']:3d}   "
              f"compile {stats['compile_s'] * 1e3:6.1f} ms   "
              f"mean queue {report.mean_queue_s * 1e3:5.2f} ms")
    print(f"\nlibrary: {len(library)} traces, "
          f"{library.total_hits} lifetime hits")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else
         PREDICTIVE_WORKLOAD["n_requests"])
