"""Chaos serving walkthrough: a chip-loss storm, hedging to the
rescue, and the crash-triggered flight-recorder post-mortem.

Run:  python examples/chaos_hedging.py [n_requests]

The scenario is the `repro report ext_chaos` storm: a three-chip fleet
on bursty traffic loses chip 0 for good a quarter of the way in, while
chip 1 straggles at 8x for most of the rest, and every crash-stranded
frame pays 2 ms of checkpoint-rollback on retry. The same trace and
the same `FaultPlan` run three times:

1. **clean** — no faults, the reference schedule;
2. **naive** — the storm against a static fleet with no hedging: the
   dead chip's capacity is simply gone and every frame routed to the
   straggler pays its dilation in full;
3. **chaos-hardened** — the same storm with request hedging (queue-age
   quantile threshold, first-completion-wins, exactly-once reports)
   and a fault-aware autoscaler that treats down chips as lost
   capacity and grows replacements.

The script prints the three scoreboards, checks the conservation
ledger (offered == completed + shed + failed on every arm), and plays
the operator on the hardened run: the chip-crash trigger froze the
moments before the outage into a flight dump, which is written out as
`chaos.flight.json`.
"""

from __future__ import annotations

import sys

from repro.obs import FlightRecorder, MetricsRegistry, Observer, Tracer
from repro.serve import (
    Autoscaler,
    ChipCrash,
    FaultPlan,
    HedgePolicy,
    PipelineBatcher,
    ServeCluster,
    StragglerWindow,
    TraceCache,
    format_service_report,
    generate_traffic,
    simulate_service,
)


def run_arm(trace, faults=None, hedge=None, autoscaler=None, observer=None):
    return simulate_service(
        trace,
        ServeCluster(3),
        cache=TraceCache(capacity=64),
        batcher=PipelineBatcher(max_batch=8),
        autoscaler=autoscaler,
        faults=faults,
        hedge=hedge,
        observer=observer,
    )


def main(n_requests: int = 240) -> None:
    trace = generate_traffic(
        "bursty", n_requests=n_requests, rate_rps=200.0, seed=11,
        scenes=("lego", "room"), pipelines=("hashgrid", "gaussian", "mesh"),
        resolution=(320, 180), slo_s=0.05,
    )
    horizon_s = max(r.arrival_s for r in trace)
    plan = FaultPlan(
        crashes=[ChipCrash(0, horizon_s * 0.25, None)],   # permanent loss
        stragglers=[StragglerWindow(1, horizon_s * 0.3,
                                    horizon_s * 0.9, 8.0)],
        rollback_s=0.002,
    )
    hedge = HedgePolicy(quantile=0.5, multiplier=1.0, min_samples=16)
    scaler = Autoscaler(min_chips=3, max_chips=8, target_queue_per_chip=2.0,
                        window_s=0.01, warmup_s=0.002, cooldown_s=0.005)
    observer = Observer(tracer=Tracer(capacity=65536, sample=1.0),
                        metrics=MetricsRegistry(), flight=FlightRecorder())

    print(f"the storm: {plan.describe()}")
    clean = run_arm(trace)
    naive = run_arm(trace, faults=plan)
    hardened = run_arm(trace, faults=plan, hedge=hedge, autoscaler=scaler,
                       observer=observer)

    for name, report in (("clean", clean), ("naive chaos", naive),
                         ("chaos-hardened", hardened)):
        print(f"\n=== {name} ===")
        print(format_service_report(report))
        ledger = (report.n_offered
                  == report.n_requests + report.n_shed + report.n_failed)
        print(f"conservation: offered {report.n_offered} == "
              f"completed {report.n_requests} + shed {report.n_shed} + "
              f"failed {report.n_failed}  ->  "
              f"{'closed' if ledger else 'BROKEN'}")

    recovered = (hardened.slo_attainment - naive.slo_attainment) * 100
    wins = hardened.hedge_stats["n_wins"]
    print(f"\nhedging + fault-aware autoscaling won back "
          f"{recovered:.1f} SLO points over the naive engine "
          f"({naive.slo_attainment:.1%} -> {hardened.slo_attainment:.1%}), "
          f"{wins} races won by the hedge clone")

    print("\n=== the post-mortem: what the flight recorder caught ===")
    for dump in observer.flight.dumps:
        print(f"dump at t={dump['t_s'] * 1e3:8.2f} ms — {dump['reason']}")
        for event in dump["events"][-5:]:
            args = event.get("args") or {}
            detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            print(f"    {event['ts_s'] * 1e3:8.3f} ms  "
                  f"{event['name']:<14s} [{detail}]")
    path = observer.flight.save("chaos.flight.json")
    print(f"\nwrote {path} — the frozen history of the moments before "
          f"the crash")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 240)
