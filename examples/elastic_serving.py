"""Elastic serving walkthrough: autoscaling, admission control, and a
heterogeneous fleet on one bursty trace.

Run:  python examples/elastic_serving.py [n_requests]

Three runs of the same deterministic bursty trace:

1. **static** — six baseline chips provisioned for the whole run (the
   PR-1 fixed-fleet model);
2. **autoscaled** — a three-chip floor under cost-aware placement; the
   autoscaler watches queue depth and SLO attainment over a 100 ms
   window and grows the fleet with a mix of 2x-PE/2x-SRAM and baseline
   chips (5 ms warm-up each), then retires the priciest idle chips as
   bursts drain;
3. **autoscaled + slo-shed** — same fleet, but arrivals whose projected
   queue wait already blows their 50 ms SLO are shed at the door.

The punchline printed at the end: the elastic fleet matches the static
fleet's SLO attainment at distinctly fewer provisioned chip-seconds,
and admission control buys back the latency tail for the price of a few
refused requests.
"""

from __future__ import annotations

import sys

from repro.analysis.serving import (
    ELASTIC_MAX_CHIPS,
    ELASTIC_MIN_CHIPS,
    ELASTIC_WORKLOAD,
    make_elastic_autoscaler,
)
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    format_service_report,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)


def main(n_requests: int = 160) -> None:
    workload = dict(ELASTIC_WORKLOAD, n_requests=n_requests)
    trace = generate_traffic(pattern="bursty", **workload)
    span = trace[-1].arrival_s - trace[0].arrival_s
    print(f"trace: {n_requests} bursty requests over {span:.2f} s, "
          f"SLO {workload['slo_s'] * 1e3:.0f} ms\n")

    runs = {
        "static": dict(
            cluster=ServeCluster(ELASTIC_MAX_CHIPS, policy="pipeline-affinity"),
        ),
        "autoscaled": dict(
            cluster=ServeCluster(ELASTIC_MIN_CHIPS, policy="cost-aware"),
            autoscaler=make_elastic_autoscaler(),
        ),
        "autoscaled+shed": dict(
            cluster=ServeCluster(ELASTIC_MIN_CHIPS, policy="cost-aware"),
            autoscaler=make_elastic_autoscaler(),
            admission=make_admission_policy("slo-shed"),
        ),
    }
    reports = {}
    for name, kwargs in runs.items():
        reports[name] = simulate_service(
            trace, cache=TraceCache(), batcher=PipelineBatcher(), **kwargs
        )
        print(f"=== {name} ===")
        print(format_service_report(reports[name]))
        print()

    static, auto, shed = (
        reports["static"], reports["autoscaled"], reports["autoscaled+shed"]
    )
    saved = 1.0 - auto.total_chip_seconds / static.total_chip_seconds
    print(
        f"autoscaled vs static: SLO {auto.slo_attainment * 100:.1f}% vs "
        f"{static.slo_attainment * 100:.1f}% at "
        f"{auto.total_chip_seconds:.2f} vs {static.total_chip_seconds:.2f} "
        f"chip-seconds ({saved * 100:.0f}% saved)"
    )
    print(
        f"adding slo-shed admission: p99 {shed.latency_p(99) * 1e3:.1f} ms "
        f"vs {auto.latency_p(99) * 1e3:.1f} ms, shedding {shed.n_shed} of "
        f"{shed.n_offered} offered requests"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 160)
