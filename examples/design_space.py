"""Design-space exploration (Table V and beyond).

Run:  python examples/design_space.py

Sweeps PE-array and SRAM scaling for every pipeline, reproducing
Table V's hash-grid study and extending it to the other four pipelines —
the "scaling up the proposed accelerator to handle even larger 3D
scenes" direction the paper points to in Sec. VII-D.
"""

from __future__ import annotations

from repro.analysis import table5_scaling
from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.core.area import area_report

PIPELINES = ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")
SCALES = (1, 2, 4)


def main() -> None:
    print("=== Table V (hash-grid pipeline, Unbounded-360-like) ===")
    print(table5_scaling()["text"])

    accel = UniRenderAccelerator()
    print("\n=== extension: the same sweep for every pipeline ===")
    for pipeline in PIPELINES:
        program = compile_program("room", pipeline, 1280, 720)
        matrix = accel.scale_study(program, SCALES, SCALES)
        print(f"\n{pipeline} (relative speed, rows = SRAM scale):")
        header = "        " + "".join(f"{pe}xPE    " for pe in SCALES)
        print(header)
        for sram in SCALES:
            cells = "".join(f"{matrix[(pe, sram)]:5.2f}   " for pe in SCALES)
            print(f"  {sram}xSRAM {cells}")

    print("\n=== area cost of scaling (28 nm) ===")
    for pe in SCALES:
        for sram in SCALES:
            config = accel.config.scaled(pe, sram)
            area = area_report(config)
            print(f"  {pe}xPE/{sram}xSRAM: {area.total:6.2f} mm^2 "
                  f"({config.n_pes} PEs, "
                  f"{config.total_sram_bytes / 1024:.0f} KB SRAM)")


if __name__ == "__main__":
    main()
