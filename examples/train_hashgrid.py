"""Training walkthrough: fit an Instant-NGP-style hash grid by gradient
descent and watch quality and hash-collision behaviour.

Run:  python examples/train_hashgrid.py

This is Fig. 1(a) made concrete: the representation's feature tables and
decoder MLP are optimized with Adam against the ground-truth field, then
rendered through the same pipeline the accelerator prices.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import psnr
from repro.renderers.hashgrid import HashGridRenderer, build_hashgrid_model
from repro.scenes import Camera, get_scene, orbit_poses

SCENE = "hotdog"


def main() -> None:
    spec = get_scene(SCENE)
    field = spec.field()
    camera = Camera(48, 48, pose=orbit_poses(spec.camera_radius, 8)[1])
    reference = field.render_reference(camera, n_samples=64)

    print(f"fitting hash grids to '{SCENE}' at increasing budgets\n")
    print(f"{'steps':>6s} {'levels':>7s} {'table':>7s} {'PSNR':>7s} "
          f"{'storage':>9s} {'finest collision rate':>22s}")
    for steps, levels, log2_t in ((30, 4, 11), (120, 6, 12), (350, 8, 13)):
        model = build_hashgrid_model(
            field,
            n_levels=levels,
            log2_table_size=log2_t,
            train_steps=steps,
            samples_per_ray=64,
            seed=1,
        )
        image, _ = HashGridRenderer(model, field).render(camera)
        collision = model.collision_rate(model.n_levels - 1)
        print(f"{steps:6d} {levels:7d} 2^{log2_t:<4d} "
              f"{psnr(image, reference):7.2f} "
              f"{model.storage_bytes() / 1024:7.1f}KB {collision:22.3f}")

    print("\ncollision rates per level (largest model):")
    for level in range(model.n_levels):
        dense = "dense" if model.level_is_dense(level) else "hashed"
        print(f"  level {level}: resolution {model.resolutions[level]:4d}^3 "
              f"({dense}), collision rate {model.collision_rate(level):.3f}")

    print("\nThe collision rate of the fine levels is the quality/storage "
          "trade-off Sec. II-D describes: hash grids are 3D grids with "
          "vector quantization.")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
