"""Frame-rate stability along a camera path (extension study).

Run:  python examples/trajectory_stability.py [scene] [pipeline]

The paper's real-time bar is an average; an immersive application cares
about the worst frame. This example walks an orbit around a scene,
compiles one micro-op program per view with that view's measured ray
statistics, and reports the FPS envelope — on cluttered indoor scenes
the worst view can dip below 30 FPS even when the mean clears it, which
is exactly the variability Pixel-Reuse-style techniques target.
"""

from __future__ import annotations

import sys

from repro.analysis import trajectory_study


def main(scene: str = "room", pipeline: str = "hashgrid") -> None:
    result = trajectory_study(scene=scene, pipeline=pipeline, n_frames=12)
    print(f"scene '{scene}', pipeline '{pipeline}', 12-view orbit at 1280x720\n")
    print(result["text"])
    data = result["data"]
    print(
        f"\nenvelope: mean {data['mean']:.1f} FPS, worst view {data['min']:.1f},"
        f" best view {data['max']:.1f}"
    )
    if not data["all_real_time"]:
        print("note: the mean clears 30 FPS but the worst view does not —\n"
              "per-frame variability is why adaptive reuse techniques matter.")


if __name__ == "__main__":
    main(*(sys.argv[1:3] or ["room", "hashgrid"]))
