"""Unbounded-360 survey: the paper's motivating benchmark, end to end.

Run:  python examples/unbounded360_survey.py

Reproduces the Fig. 7 device grid and the Fig. 16 speedup / energy
tables on the full seven-scene Unbounded-360-like set, then prints which
(device, pipeline) settings reach the 30 FPS real-time bar — the gap
Uni-Render was designed to close.
"""

from __future__ import annotations

from repro.analysis import (
    figure7_motivating,
    figure16_speedup_energy,
    uni_result,
)
from repro.analysis.runner import UNBOUNDED_EVAL_SCENES


def main() -> None:
    print("=== Fig. 7: FPS of existing devices (Unbounded-360, 1280x720) ===")
    fig7 = figure7_motivating()
    print(fig7["text"])

    print("\n=== Uni-Render on the same setting ===")
    print(f"{'pipeline':10s} {'FPS':>7s} {'power':>7s} {'bottleneck by op'}")
    for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian"):
        result = uni_result("room", pipeline)
        dominant = max(result.cycles_by_op, key=result.cycles_by_op.get)
        share = result.cycles_by_op[dominant] / result.cycles
        print(f"{pipeline:10s} {result.fps:7.1f} {result.power_w:6.2f}W "
              f"{dominant} ({share * 100:.0f}% of cycles)")

    print("\n=== Fig. 16: speedup and energy efficiency over baselines ===")
    fig16 = figure16_speedup_energy()
    print(fig16["text"])

    print(f"\nscenes evaluated: {', '.join(UNBOUNDED_EVAL_SCENES)}")


if __name__ == "__main__":
    main()
