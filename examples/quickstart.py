"""Quickstart: render one scene with every pipeline, functionally and on
the Uni-Render accelerator model.

Run:  python examples/quickstart.py [scene]

This touches the whole public API in ~a minute:
1. build a scene representation per pipeline from the procedural field,
2. render a small frame functionally and score it against the reference,
3. compile the frame into micro-operators and simulate the accelerator.
"""

from __future__ import annotations

import sys

from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.metrics import psnr
from repro.renderers import PIPELINE_RENDERERS, build_representation
from repro.scenes import Camera, get_scene, orbit_poses

#: Small build budgets: quickstart favours latency over fidelity.
QUICK_BUILDS = {
    "mesh": {"quality": 0.8, "train_steps": 80},
    "mlp": {"grid_size": 4, "train_steps": 150, "samples_per_ray": 64},
    "lowrank": {"train_steps": 120, "samples_per_ray": 64},
    "hashgrid": {"n_levels": 6, "train_steps": 150, "samples_per_ray": 64},
    "gaussian": {"n_gaussians": 6000},
}


def main(scene_name: str = "lego") -> None:
    spec = get_scene(scene_name)
    field = spec.field()
    camera = Camera(48, 48, pose=orbit_poses(spec.camera_radius, 8)[0])
    reference = field.render_reference(camera, n_samples=64)
    accelerator = UniRenderAccelerator()
    eval_res = (800, 800) if spec.kind == "synthetic" else (1280, 720)

    print(f"scene: {scene_name} ({spec.kind}), probe frame 48x48, "
          f"accelerator frame {eval_res[0]}x{eval_res[1]}")
    print(f"{'pipeline':10s} {'PSNR':>7s} {'storage':>10s} "
          f"{'sim FPS':>8s} {'power':>7s} {'real-time':>9s}")
    for pipeline, kwargs in QUICK_BUILDS.items():
        model = build_representation(scene_name, pipeline, **kwargs)
        renderer = PIPELINE_RENDERERS[pipeline](model, field)
        image, _stats = renderer.render(camera)
        quality = psnr(image, reference)

        program = compile_program(scene_name, pipeline, *eval_res)
        result = accelerator.simulate(program)
        print(
            f"{pipeline:10s} {quality:6.2f}d {model.storage_bytes() / 1024:8.1f}KB "
            f"{result.fps:8.1f} {result.power_w:6.2f}W "
            f"{'yes' if result.real_time else 'no':>9s}"
        )

    area = accelerator.area()
    print(f"\naccelerator: {accelerator.config.n_pes} PEs, "
          f"{area.total:.2f} mm^2 @ 28 nm, "
          f"{accelerator.config.dram_bandwidth / 1e9:.1f} GB/s DRAM")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "lego")
