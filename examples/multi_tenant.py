"""Multi-tenant QoS walkthrough: SLO classes, weighted admission, and
batch preemption on one overloaded two-tenant trace.

Run:  python examples/multi_tenant.py [n_requests]

Two tenant classes share one fleet:

* **premium** — tier 0, weight 4, 25% of the traffic, held to the base
  50 ms SLO. The tier makes the dispatcher serve its queued work first;
  the weight entitles it to 4/5 of the fleet under weighted admission.
* **economy** — tier 1, weight 1, 75% of the traffic, tolerating 2x the
  latency (SLO multiplier 2).

Three runs of the same deterministic bursty trace:

1. **single-class** — tenant tags stripped: one FIFO queue, admit
   everything. Premium and economy sink together under the burst.
2. **weighted + preempt** — weighted admission budgets each arrival's
   projected wait against its tenant's share of the fleet (economy
   floods shed economy, not premium), and dispatch-ahead batches staged
   on busy chips stay preemptible: a premium arrival displaces a staged
   economy batch back into its pipeline lane.
3. **weighted + preempt + autoscale** — the fleet grows under the
   burst; displaced economy work migrates to the newly warmed chips
   (the ``migrated`` column) instead of waiting behind premium.

The punchline printed at the end: QoS machinery holds premium's SLO
attainment near 100% under an overload that sinks the single-class
service, while economy absorbs the shedding and preemption.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.analysis.serving import TENANT_CHIPS, TENANT_MIX, TENANT_WORKLOAD
from repro.serve import (
    DEFAULT_TENANT,
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    format_service_report,
    generate_tenant_traffic,
    make_admission_policy,
    make_elastic_autoscaler,
    simulate_service,
)


def main(n_requests: int = 160) -> None:
    workload = dict(TENANT_WORKLOAD, n_requests=n_requests)
    trace = generate_tenant_traffic(list(TENANT_MIX), **workload)
    span = trace[-1].arrival_s - trace[0].arrival_s
    shares = ", ".join(
        f"{tenant.name} (tier {tenant.tier}, weight {tenant.weight:g}, "
        f"SLO x{tenant.slo_multiplier:g}, {share * 100:.0f}%)"
        for tenant, share in TENANT_MIX
    )
    print(f"trace: {n_requests} bursty requests over {span:.2f} s — {shares}\n")

    runs = {
        "single-class": dict(
            requests=[replace(r, tenant=DEFAULT_TENANT) for r in trace],
        ),
        "weighted+preempt": dict(
            requests=trace,
            admission=make_admission_policy("weighted"),
            preempt=True,
        ),
        "weighted+preempt+autoscale": dict(
            requests=trace,
            admission=make_admission_policy("weighted"),
            preempt=True,
            autoscaler=make_elastic_autoscaler(
                min_chips=TENANT_CHIPS, max_chips=TENANT_CHIPS + 3),
        ),
    }

    reports = {}
    for name, kwargs in runs.items():
        requests = kwargs.pop("requests")
        report = simulate_service(
            requests,
            ServeCluster(TENANT_CHIPS, policy="pipeline-affinity"),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
            **kwargs,
        )
        reports[name] = report
        print(f"=== {name} ===")
        print(format_service_report(report))
        print()

    premium = reports["weighted+preempt"].tenant_report()["premium"]
    qos = reports["weighted+preempt+autoscale"]
    print(
        f"punchline: weighted admission + preemption holds premium at "
        f"{premium['slo_attainment'] * 100:.1f}% SLO attainment on a fixed "
        f"fleet ({qos.tenant_report()['premium']['slo_attainment'] * 100:.1f}% "
        f"autoscaled, {qos.n_migrated} displaced requests migrated to other "
        f"chips), fairness index "
        f"{reports['weighted+preempt'].fairness_index:.3f}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 160)
