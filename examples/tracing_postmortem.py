"""Tracing post-mortem walkthrough: a bursty shed storm under a full
observer, from live telemetry to a Perfetto-loadable artifact.

Run:  python examples/tracing_postmortem.py [n_requests]

The scenario is an undersized two-chip fleet hit by bursty traffic hot
enough that `slo-shed` admission refuses a chunk of the offered load.
The run is instrumented with all three observability sinks:

1. **Tracer** — every hop of every sampled request (arrival, verdict,
   batch, completion) plus all fleet-scope events (batch spans per
   chip, compile spans per worker, preemptions, scale actions) into a
   bounded ring buffer;
2. **Metrics registry** — counters, gauges, and streaming P² latency
   quantiles, snapshotted on a simulated-time cadence;
3. **Flight recorder** — armed for shed bursts and SLO dips; each
   trigger freezes the recent trace history into a post-mortem dump.

The script then plays the operator: it prints the `repro trace`-style
rollup, walks the flight dumps, and writes `postmortem.trace.json` —
open that file in Perfetto (https://ui.perfetto.dev) or
chrome://tracing and you can watch the burst arrive, the queue back
up, and the shed storm begin, track by track.
"""

from __future__ import annotations

import sys

from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Observer,
    Tracer,
    chrome_trace,
    save_chrome_trace,
    summarize_chrome_trace,
    validate_chrome_trace,
)
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    format_service_report,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)


def main(n_requests: int = 150) -> None:
    trace = generate_traffic(
        "bursty", n_requests=n_requests, rate_rps=400.0, seed=0,
        scenes=("lego", "room"), pipelines=("hashgrid", "gaussian", "mesh"),
        resolution=(320, 180), slo_s=0.05,
    )

    observer = Observer(
        tracer=Tracer(capacity=65536, sample=1.0),
        metrics=MetricsRegistry(),
        flight=FlightRecorder(),
    )
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64),
        batcher=PipelineBatcher(max_batch=8),
        admission=make_admission_policy("slo-shed"),
        compile_workers=2,
        observer=observer,
    )

    print("=== the storm, as the report tells it ===")
    print(format_service_report(report))

    print("\n=== the storm, as the trace tells it ===")
    exported = chrome_trace(observer.tracer, metrics=observer.metrics)
    validate_chrome_trace(exported)
    print(summarize_chrome_trace(exported))

    print("\n=== the post-mortem: flight dumps ===")
    flight = observer.flight
    if not flight.dumps:
        print("no triggers fired (raise the rate or tighten the SLO)")
    for dump in flight.dumps:
        print(f"dump at t={dump['t_s'] * 1e3:8.2f} ms — {dump['reason']}")
        print(f"  froze the last {dump['n_events']} events; "
              f"tail of the story:")
        for event in dump["events"][-5:]:
            args = event.get("args") or {}
            detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            print(f"    {event['ts_s'] * 1e3:8.3f} ms  "
                  f"{event['name']:<14s} [{detail}]")
        metrics = dump["metrics"]
        if metrics:
            print(f"  metrics at the freeze: "
                  f"{metrics.get('engine.arrivals', 0):.0f} arrivals, "
                  f"{metrics.get('admission.slo-shed.shed', 0):.0f} shed, "
                  f"p95 latency "
                  f"{metrics.get('engine.latency_ms.p95', 0.0):.2f} ms")

    path = save_chrome_trace(observer.tracer, "postmortem.trace.json",
                             metrics=observer.metrics)
    print(f"\nwrote {path} — load it in Perfetto (ui.perfetto.dev) or "
          f"chrome://tracing,\nor run: python -m repro trace {path}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
