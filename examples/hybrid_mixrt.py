"""Hybrid-pipeline study (Sec. VII-C): MixRT on the indoor scenes.

Run:  python examples/hybrid_mixrt.py

Builds the two-layer MixRT representation for one indoor scene, renders
it functionally next to its two parent pipelines, and reproduces the
Fig. 17 speedup table — demonstrating that the accelerator supports a
pipeline it was never specifically designed for, because MixRT lowers to
the same five micro-operators.
"""

from __future__ import annotations

from repro.analysis import figure17_hybrid
from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.metrics import psnr
from repro.renderers import PIPELINE_RENDERERS, build_representation
from repro.scenes import Camera, get_scene, orbit_poses

SCENE = "room"


def main() -> None:
    spec = get_scene(SCENE)
    field = spec.field()
    camera = Camera(48, 48, pose=orbit_poses(spec.camera_radius, 8)[0])
    reference = field.render_reference(camera, n_samples=96)

    print(f"=== functional comparison on '{SCENE}' (48x48 probe) ===")
    builds = {
        "mesh": {"quality": 0.8, "train_steps": 80},
        "hashgrid": {"n_levels": 6, "train_steps": 150, "samples_per_ray": 64},
        "mixrt": {"mesh_train_steps": 80, "hash_train_steps": 150,
                  "samples_per_ray": 64},
    }
    for pipeline, kwargs in builds.items():
        model = build_representation(SCENE, pipeline, **kwargs)
        renderer = PIPELINE_RENDERERS[pipeline](model, field)
        image, stats = renderer.render(camera)
        print(f"{pipeline:9s} psnr {psnr(image, reference):6.2f} dB   "
              f"storage {model.storage_bytes() / 1024:8.1f} KB   "
              f"samples shaded {int(stats.get('samples_shaded')):>7d}")

    print("\n=== micro-operator trace of the hybrid frame ===")
    program = compile_program(SCENE, "mixrt", 1280, 720)
    result = UniRenderAccelerator().simulate(program)
    for phase in result.schedule.phases:
        inv = phase.invocation
        print(f"  {inv.name:24s} {inv.op.value:26s} "
              f"{phase.phase_cycles / 1e6:7.2f}M cycles  ({phase.bound}-bound)")
    print(f"total: {result.fps:.1f} FPS at {result.power_w:.2f} W "
          f"({result.reconfig_cycles / 1e3:.0f}k reconfiguration cycles)")

    print("\n=== Fig. 17: speedup over commercial devices ===")
    print(figure17_hybrid()["text"])


if __name__ == "__main__":
    main()
