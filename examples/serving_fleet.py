"""Serving fleet walkthrough: the same burst of mixed-pipeline traffic
dispatched under each sharding policy.

Run:  python examples/serving_fleet.py [n_requests]

The script generates one deterministic bursty trace, replays it through
a four-chip fleet once per policy (fresh chips and trace cache each
time), and prints the serving report plus the policy comparison. The
point to look at: pipeline-affinity sharding avoids most of the
PE-array reconfiguration switches that round-robin incurs, which shows
up directly in the reconfig-cycle totals and the latency tail.
"""

from __future__ import annotations

import sys

from repro.serve import (
    PipelineBatcher,
    SHARDING_POLICIES,
    ServeCluster,
    TraceCache,
    format_service_report,
    generate_traffic,
    simulate_service,
)

N_CHIPS = 4
RESOLUTION = (640, 360)


def main(n_requests: int = 200) -> None:
    trace = generate_traffic(
        pattern="bursty",
        n_requests=n_requests,
        rate_rps=250.0,
        seed=0,
        resolution=RESOLUTION,
    )
    span = trace[-1].arrival_s - trace[0].arrival_s
    print(f"trace: {n_requests} requests over {span:.2f} s, "
          f"{N_CHIPS}-chip fleet at {RESOLUTION[0]}x{RESOLUTION[1]}\n")

    reports = {}
    for policy in sorted(SHARDING_POLICIES):
        reports[policy] = simulate_service(
            trace,
            ServeCluster(N_CHIPS, policy=policy),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
        )

    for policy, report in reports.items():
        print(format_service_report(report))
        print()

    baseline = reports["round-robin"]
    affinity = reports["pipeline-affinity"]
    saved = baseline.total_switch_cycles - affinity.total_switch_cycles
    print(
        f"pipeline-affinity vs round-robin: "
        f"{affinity.total_switch_cycles:.0f} vs "
        f"{baseline.total_switch_cycles:.0f} switch cycles "
        f"({saved:.0f} saved), "
        f"p99 {affinity.latency_p(99) * 1e3:.1f} ms vs "
        f"{baseline.latency_p(99) * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
