"""Elastic-serving benchmark: autoscaled heterogeneous fleet vs static.

The acceptance claim of the elastic-serving extension: on bursty
traffic, an autoscaled heterogeneous fleet (cost-aware placement, mixed
2x-PE and baseline chips, drain between bursts) meets at least the SLO
attainment of a statically provisioned fleet of the same ceiling while
consuming fewer provisioned chip-seconds — and SLO-aware admission
control trades a few shed requests for a much shorter tail.
"""

from repro.analysis.serving import elastic_summary


def test_elastic_fleet_beats_static_on_cost(benchmark, save_text):
    result = benchmark.pedantic(elastic_summary, rounds=1, iterations=1)
    save_text("ext_elastic", result["text"])
    reports = result["reports"]

    for pattern in ("bursty", "diurnal"):
        static = reports[f"{pattern}/static"]
        auto = reports[f"{pattern}/autoscaled"]
        shedding = reports[f"{pattern}/autoscaled+shed"]

        # The elastic fleet provisions measurably fewer chip-seconds.
        assert auto["total_chip_seconds"] < 0.9 * static["total_chip_seconds"], pattern
        assert auto["autoscaled"] and not static["autoscaled"], pattern
        assert auto["fleet_events"], pattern
        # It grows beyond its floor and mixes design points when it does.
        assert auto["peak_fleet_size"] > 3, pattern
        if any(e["action"] == "add" for e in auto["fleet_events"]):
            assert len(auto["cost_by_config"]) > 1, pattern
        # Nothing is shed without an admission policy.
        assert auto["n_shed"] == 0 and static["n_shed"] == 0, pattern
        assert shedding["n_offered"] == auto["n_offered"], pattern

    # Headline (bursty): SLO attainment no worse, at lower cost.
    static = reports["bursty/static"]
    auto = reports["bursty/autoscaled"]
    assert auto["slo_attainment"] >= static["slo_attainment"]
    assert auto["total_cost_units"] < static["total_cost_units"]

    # Admission control: shedding hopeless requests shortens the tail of
    # what the service does complete.
    shedding = reports["bursty/autoscaled+shed"]
    assert shedding["n_shed"] > 0
    assert shedding["slo_attainment"] >= auto["slo_attainment"]
    assert shedding["latency_p99_ms"] < auto["latency_p99_ms"]
