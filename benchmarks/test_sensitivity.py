"""Robustness benchmarks: bandwidth sensitivity and calibration
perturbation (do the paper's conclusions survive model noise?)."""

from repro.analysis.sensitivity import (
    bandwidth_boundness,
    bandwidth_sensitivity,
    efficiency_sensitivity,
)


def test_bandwidth_sensitivity(benchmark, save_text):
    result = benchmark.pedantic(bandwidth_sensitivity, rounds=1, iterations=1)
    save_text("sensitivity_bandwidth", result["text"])

    data = result["data"]
    lo, hi = 30.0, 120.0
    span = {p: data[p][hi] / data[p][lo] for p in data}
    # Grid pipelines are bandwidth-hungry (Sec. VIII-A: irregular memory
    # access is the efficiency bottleneck)...
    assert span["hashgrid"] > 1.8
    assert span["lowrank"] > 1.8
    # ...while the pure-GEMM MLP pipeline responds, and the 3DGS/mesh
    # pipelines respond, but everything is monotone in bandwidth.
    for pipeline, row in data.items():
        values = [row[bw] for bw in sorted(row)]
        assert all(a <= b * 1.001 for a, b in zip(values, values[1:])), pipeline


def test_boundness_classification(benchmark, save_text):
    result = benchmark.pedantic(bandwidth_boundness, rounds=1, iterations=1)
    save_text("sensitivity_boundness", result["text"])
    data = result["data"]
    # The volume-grid pipelines spend most of their frame memory-bound;
    # the KiloNeRF MLP pipeline is dominated by weight traffic too.
    assert data["hashgrid"] > 0.4
    assert data["lowrank"] > 0.6
    assert data["mlp"] > 0.6


def test_efficiency_perturbation(benchmark, save_text):
    result = benchmark.pedantic(efficiency_sensitivity, rounds=1, iterations=1)
    save_text("sensitivity_efficiency", result["text"])

    for factor, row in result["data"].items():
        # The qualitative conclusions survive +/-20% lane-efficiency
        # error: volume pipelines stay near real time and the mesh
        # pipeline keeps losing to mesh-optimized mobile GPUs.
        assert row["volume_real_time"], factor
        assert row["mesh_crossover"], factor
