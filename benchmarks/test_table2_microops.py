"""Table II: micro-operator clustering, checked against the compilers.

Structural: the clustering is only meaningful if every pipeline's
compiled program really uses the micro-operators Table II assigns to its
steps.
"""

from repro.analysis import table2_microops
from repro.compile import compile_program
from repro.core import MicroOp


EXPECTED_OPS = {
    "mesh": {MicroOp.GEMM, MicroOp.GEOMETRIC, MicroOp.COMBINED_GRID},
    "mlp": {MicroOp.GEMM},
    "lowrank": {MicroOp.DECOMPOSED_GRID, MicroOp.GEMM},
    "hashgrid": {MicroOp.COMBINED_GRID, MicroOp.GEMM},
    "gaussian": {MicroOp.GEMM, MicroOp.GEOMETRIC, MicroOp.SORTING},
    "mixrt": {MicroOp.GEMM, MicroOp.GEOMETRIC, MicroOp.COMBINED_GRID},
}


def test_table2_microops(benchmark, save_text):
    result = benchmark.pedantic(table2_microops, rounds=1, iterations=1)
    text = result["text"] + "\n\npipeline -> micro-operators actually emitted:\n"

    for pipeline, expected in EXPECTED_OPS.items():
        scene = "room" if pipeline == "mixrt" else "lego"
        program = compile_program(scene, pipeline, 160, 160)
        used = set(program.ops_used())
        assert used == expected, (pipeline, used)
        text += f"  {pipeline:9s} {sorted(op.value for op in used)}\n"

    # All five micro-operators are exercised by some pipeline.
    assert set().union(*EXPECTED_OPS.values()) == set(MicroOp)
    save_text("table2_microops", text)
