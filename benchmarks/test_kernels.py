"""Microbenchmarks of the core computational kernels.

These time the actual work the library performs — functional rendering
stages and the performance simulator — so regressions in any substrate
show up here.
"""

import numpy as np
import pytest

from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.renderers import build_representation, PIPELINE_RENDERERS
from repro.renderers.gaussian.sort import merge_sort
from repro.renderers.hashgrid import spatial_hash
from repro.renderers.nerf import positional_encoding
from repro.scenes import Camera, get_scene, orbit_poses


@pytest.fixture(scope="module")
def lego_camera():
    return Camera(48, 48, pose=orbit_poses(3.0, 4)[0])


def test_bench_simulator(benchmark):
    """One full frame through the cycle/energy model."""
    program = compile_program("room", "hashgrid", 1280, 720)
    accel = UniRenderAccelerator()
    result = benchmark(accel.simulate, program)
    assert result.fps > 0


def test_bench_compile(benchmark):
    """Pipeline lowering (measurement cached, pricing live)."""
    compile_program("room", "gaussian", 1280, 720)  # warm the caches
    program = benchmark(compile_program, "room", "gaussian", 1280, 720)
    assert program.invocations


@pytest.mark.parametrize("pipeline", ["mesh", "gaussian", "hashgrid"])
def test_bench_functional_render(benchmark, lego_camera, pipeline):
    """Functional rendering of a small frame per pipeline."""
    kwargs = {
        "mesh": {"quality": 0.6, "train_steps": 20},
        "gaussian": {"n_gaussians": 2000},
        "hashgrid": {"n_levels": 6, "train_steps": 30, "samples_per_ray": 48},
    }[pipeline]
    model = build_representation("lego", pipeline, **kwargs)
    renderer = PIPELINE_RENDERERS[pipeline](model, get_scene("lego").field())
    image, _stats = benchmark(renderer.render, lego_camera)
    assert image.shape == (48, 48, 3)


def test_bench_positional_encoding(benchmark):
    pts = np.random.default_rng(0).uniform(-1, 1, (16384, 3))
    out = benchmark(positional_encoding, pts, 10)
    assert out.shape == (16384, 63)


def test_bench_spatial_hash(benchmark):
    coords = np.random.default_rng(0).integers(0, 4096, (65536, 3))
    idx = benchmark(spatial_hash, coords, 1 << 19)
    assert idx.shape == (65536,)


def test_bench_merge_sort(benchmark):
    keys = list(np.random.default_rng(0).integers(0, 10_000, 512))
    out, _comps = benchmark(merge_sort, keys)
    assert out == sorted(keys)


def test_bench_reference_render(benchmark):
    field = get_scene("lego").field()
    camera = Camera(32, 32, pose=orbit_poses(3.0, 4)[0])
    image = benchmark(field.render_reference, camera, 32)
    assert image.shape == (32, 32, 3)
