"""Serving benchmark: the fleet under synthetic load, per policy.

RZBENCH-style application benchmark on top of the low-level frame
model: one deterministic mixed-pipeline trace, replayed through the
fleet once per sharding policy, scored on throughput, tail latency,
SLO attainment, cache effectiveness, and reconfiguration spend.
"""

from repro.analysis.serving import serving_summary


def test_serving_policy_comparison(benchmark, save_text):
    result = benchmark.pedantic(serving_summary, rounds=1, iterations=1)
    save_text("ext_serving", result["text"])
    reports = result["reports"]
    assert set(reports) == {
        "round-robin", "least-loaded", "pipeline-affinity", "cost-aware"
    }

    affinity = reports["pipeline-affinity"]
    baseline = reports["round-robin"]

    # The headline claim: affinity sharding avoids most PE-array
    # switches oblivious round-robin incurs, without losing throughput.
    assert affinity["total_switch_cycles"] < 0.7 * baseline["total_switch_cycles"]
    assert affinity["total_reconfig_cycles"] < baseline["total_reconfig_cycles"]
    assert affinity["throughput_rps"] >= 0.95 * baseline["throughput_rps"]

    for policy, report in reports.items():
        # Service-level sanity on every policy.
        assert report["throughput_rps"] > 0, policy
        assert (report["latency_p50_ms"] <= report["latency_p95_ms"]
                <= report["latency_p99_ms"]), policy
        assert 0.0 <= report["slo_attainment"] <= 1.0, policy
        assert 0.0 <= report["mean_utilization"] <= 1.0, policy
        # Two scenes x three pipelines x one resolution = 6 distinct
        # traces; everything after the first compilations must hit.
        assert report["cache"]["hit_rate"] > 0.9, policy
        assert report["cache"]["misses"] == 6, policy
        # The fleet actually spreads the load.
        served = [c["requests_served"] for c in report["chips"]]
        assert sum(served) == report["n_requests"], policy
        assert sum(1 for s in served if s > 0) >= 2, policy
