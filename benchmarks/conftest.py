"""Benchmark harness plumbing.

Every benchmark regenerates one table or figure of the paper on the
*full* scene sets, saves the paper-style text under
``benchmarks/results/``, asserts its shape claims, and times a
representative kernel with pytest-benchmark.

The engine perf smokes additionally record their measured simulation
rates into ``BENCH_engine.json`` at the repo root — the machine-read
perf trajectory (scenario -> measured req/s + asserted floor) that CI
uploads as a build artifact.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_text(results_dir):
    """Persist one experiment's formatted output."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture(scope="session")
def record_bench():
    """Accumulate engine-floor measurements; flush to BENCH_engine.json.

    Scenarios merge into whatever the file already holds, so a partial
    run (``pytest benchmarks/test_engine_perf.py -k bare``) refreshes
    only the scenarios it measured.
    """
    entries: dict[str, dict] = {}

    def _record(scenario: str, measured_rps: float, floor_rps: float,
                n_requests: int) -> None:
        entries[scenario] = {
            "measured_rps": round(measured_rps, 1),
            "floor_rps": floor_rps,
            "n_requests": n_requests,
        }

    yield _record

    if not entries:
        return
    merged: dict[str, dict] = {}
    if BENCH_JSON.exists():
        merged = json.loads(BENCH_JSON.read_text()).get("scenarios", {})
    merged.update(entries)
    BENCH_JSON.write_text(json.dumps(
        {"scenarios": {name: merged[name] for name in sorted(merged)}},
        indent=2) + "\n")
