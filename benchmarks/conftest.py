"""Benchmark harness plumbing.

Every benchmark regenerates one table or figure of the paper on the
*full* scene sets, saves the paper-style text under
``benchmarks/results/``, asserts its shape claims, and times a
representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_text(results_dir):
    """Persist one experiment's formatted output."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save
