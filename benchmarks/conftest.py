"""Benchmark harness plumbing.

Every benchmark regenerates one table or figure of the paper on the
*full* scene sets, saves the paper-style text under
``benchmarks/results/``, asserts its shape claims, and times a
representative kernel with pytest-benchmark.

The engine perf smokes additionally record their measured simulation
rates into ``BENCH_engine.json`` at the repo root — the machine-read
perf trajectory (scenario -> measured req/s + asserted floor) that CI
uploads as a build artifact.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"

try:
    import fcntl
except ImportError:  # non-POSIX: merge without inter-process locking
    fcntl = None


def merge_bench_file(path: pathlib.Path, entries: dict[str, dict]) -> dict:
    """Merge scenario measurements into the JSON recorder at ``path``.

    A partial run (``pytest benchmarks/test_engine_perf.py -k bare``, or
    one ``-n`` worker's slice) must refresh only the scenarios it
    measured — never clobber the rest. The read-modify-write happens
    under an exclusive ``flock`` so concurrent workers serialize instead
    of losing each other's scenarios. Returns the merged mapping.
    """
    with open(path, "a+", encoding="utf-8") as handle:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        handle.seek(0)
        raw = handle.read()
        merged = json.loads(raw).get("scenarios", {}) if raw.strip() else {}
        merged.update(entries)
        handle.seek(0)
        handle.truncate()
        handle.write(json.dumps(
            {"scenarios": {name: merged[name] for name in sorted(merged)}},
            indent=2) + "\n")
    return merged


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_text(results_dir):
    """Persist one experiment's formatted output."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save


@pytest.fixture(scope="session")
def record_bench():
    """Accumulate engine-floor measurements; flush to BENCH_engine.json.

    Scenarios merge into whatever the file already holds, so a partial
    run (``pytest benchmarks/test_engine_perf.py -k bare``) refreshes
    only the scenarios it measured.
    """
    entries: dict[str, dict] = {}

    def _record(scenario: str, measured_rps: float, floor_rps: float,
                n_requests: int) -> None:
        entries[scenario] = {
            "measured_rps": round(measured_rps, 1),
            "floor_rps": floor_rps,
            "n_requests": n_requests,
        }

    yield _record

    if entries:
        merge_bench_file(BENCH_JSON, entries)
