"""Sec. VIII related-work comparisons: GSCore, CICERO, TRAM, FPGA-NVR."""

import pytest

from repro.analysis import related_work_comparisons


def test_related_work(benchmark, save_text):
    result = benchmark.pedantic(
        related_work_comparisons, rounds=1, iterations=1, kwargs={"scene": "room"}
    )
    save_text("related_work", result["text"])

    data = result["data"]
    # GSCore: 15x over Xavier NX on 3DGS vs our 12x (we are ~20% slower).
    assert data["GSCore"]["gscore_vs_xavier"] == pytest.approx(15.0, rel=0.2)
    assert data["GSCore"]["ours_vs_xavier"] == pytest.approx(12.0, rel=0.3)
    assert data["GSCore"]["ours_vs_xavier"] < data["GSCore"]["gscore_vs_xavier"]

    # CICERO: we are ~14% slower at iso-MACs on the hash-grid pipeline.
    assert data["CICERO"]["ours_over_cicero"] == pytest.approx(0.86, rel=0.15)

    # TRAM CGRA: 25x speedup on MLP pipelines.
    assert data["TRAM"]["uni_speedup"] == pytest.approx(25.0, rel=0.3)

    # FPGA-NVR: 15x speedup and 10x energy efficiency on hash grids.
    assert data["FPGA-NVR"]["uni_speedup"] == pytest.approx(15.0, rel=0.3)
    assert data["FPGA-NVR"]["energy_ratio"] == pytest.approx(10.0, rel=0.4)
