"""Regression tests for the BENCH_engine.json recorder.

The recorder must *merge* into an existing file: a partial run (a
``-k`` selection, or one ``pytest -n`` worker's slice of the perf
smokes) refreshes only the scenarios it measured and leaves every other
scenario's recorded rate alone. A clobbering recorder silently erases
the perf trajectory the floors are calibrated against.
"""

from benchmarks.conftest import merge_bench_file


def entry(rps, floor=1000.0, n=100):
    return {"measured_rps": rps, "floor_rps": floor, "n_requests": n}


def test_merge_into_missing_file(tmp_path):
    path = tmp_path / "bench.json"
    merged = merge_bench_file(path, {"bare": entry(5.0)})
    assert merged == {"bare": entry(5.0)}
    assert path.exists()


def test_partial_run_preserves_other_scenarios(tmp_path):
    path = tmp_path / "bench.json"
    merge_bench_file(path, {"bare": entry(5.0), "qos": entry(3.0)})
    # A later partial run measures only one scenario...
    merged = merge_bench_file(path, {"qos": entry(4.0)})
    # ...and must update it without erasing the rest.
    assert merged == {"bare": entry(5.0), "qos": entry(4.0)}


def test_file_round_trips_sorted(tmp_path):
    import json

    path = tmp_path / "bench.json"
    merge_bench_file(path, {"zeta": entry(1.0), "alpha": entry(2.0)})
    payload = json.loads(path.read_text())
    assert list(payload["scenarios"]) == ["alpha", "zeta"]


def test_empty_file_is_a_fresh_start(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("")
    assert merge_bench_file(path, {"bare": entry(5.0)}) == {"bare": entry(5.0)}
