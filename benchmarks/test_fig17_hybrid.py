"""Fig. 17: MixRT hybrid-pipeline speedups on the four indoor scenes."""

from repro.analysis import figure17_hybrid


def test_fig17_hybrid(benchmark, save_text):
    result = benchmark.pedantic(figure17_hybrid, rounds=1, iterations=1)
    save_text("fig17_hybrid", result["text"])

    data = result["data"]
    values = [v for row in data.values() for v in row.values()]

    # "a 2.0x to 3.7x speedup across all evaluated baselines"
    assert min(values) >= 2.0 * 0.85
    assert max(values) <= 3.7 * 1.15

    # "consistently achieves a speedup of 2.0x to 2.6x compared to the
    # most competitive baselines, Xavier NX and Orin NX"
    for device in ("Orin NX", "Xavier NX"):
        for scene, value in data[device].items():
            assert 2.0 * 0.85 <= value <= 2.6 * 1.15, (device, scene)

    # Speedups are consistent across scenes (each scene has its own
    # model, yet the ratio stays in a narrow band).
    for device, row in data.items():
        vals = list(row.values())
        assert max(vals) / min(vals) < 1.4, device

    benchmark.extra_info["geomean"] = {
        d: round(g, 2) for d, g in result["geomean"].items()
    }
