"""Table IV: real-time rendering on the NeRF-Synthetic scene set."""

import pytest

from repro.analysis import table4_realtime
from repro.analysis.tables import PAPER_TABLE_IV


def test_table4_realtime(benchmark, save_text):
    result = benchmark.pedantic(table4_realtime, rounds=1, iterations=1)
    save_text("table4_realtime", result["text"])

    data = result["data"]
    for pipeline, paper_fps in PAPER_TABLE_IV.items():
        ours = data[pipeline]["fps"]
        assert ours == pytest.approx(paper_fps, rel=0.6), (pipeline, ours)
        assert data[pipeline]["real_time"], pipeline
    # Pixel-Reuse pushes the MLP pipeline well past real time (paper >200).
    assert data["mlp_pixel_reuse"]["fps"] > 150.0
    # Speed ordering across pipelines matches the paper's column.
    fps = {p: data[p]["fps"] for p in PAPER_TABLE_IV}
    assert fps["hashgrid"] > fps["mesh"] > fps["lowrank"] > fps["gaussian"] > fps["mlp"]
    benchmark.extra_info["fps"] = {k: round(v, 1) for k, v in fps.items()}
