"""Sec. VII-E ablations: reconfiguration overhead and module gating."""

import pytest

from repro.analysis import gating_ablation, reconfiguration_overhead


def test_reconfiguration_overhead(benchmark, save_text):
    result = benchmark.pedantic(
        reconfiguration_overhead, rounds=1, iterations=1, kwargs={"scene": "room"}
    )
    save_text("ablation_reconfiguration", result["text"])

    data = result["data"]
    for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian", "mixrt"):
        row = data[pipeline]
        # Removing reconfiguration or the GEMM buffer stage helps, but
        # only modestly: the paper argues the overhead is worth the
        # flexibility.
        assert 1.0 <= row["no_reconfig_gain"] < 1.10, pipeline
        assert 1.0 <= row["no_buffer_stage_gain"] < 1.25, pipeline

    # MixRT switches micro-operators most often, so it benefits the most
    # from free reconfiguration among the pipelines.
    gains = {p: data[p]["no_reconfig_gain"]
             for p in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian", "mixrt")}
    assert gains["mixrt"] >= max(gains.values()) - 1e-9

    # MetaVRain's dedicated design is ~2.8x more energy-efficient per
    # pixel at iso-work (Sec. VII-E).
    ratio = data["metavrain_energy_per_pixel_ratio"]["ratio"]
    assert ratio == pytest.approx(2.8, rel=0.5)


def test_gating_ablation(benchmark, save_text):
    result = benchmark.pedantic(
        gating_ablation, rounds=1, iterations=1, kwargs={"scene": "room"}
    )
    save_text("ablation_gating", result["text"])

    for pipeline, row in result["data"].items():
        assert row["gated_j"] < row["ungated_j"], pipeline
        assert 0.0 < row["saving"] < 0.6, pipeline

    # Sorting-free pipelines leave fewer modules idle than 3DGS, whose
    # sorting phase idles the SFUs and reduction network.
    assert result["data"]["gaussian"]["saving"] > 0.0
