"""Table V: PE-array / SRAM scaling study on the hash-grid pipeline."""

import pytest

from repro.analysis import table5_scaling
from repro.analysis.tables import PAPER_TABLE_V
from repro.compile import compile_program
from repro.core import UniRenderAccelerator


def test_table5_scaling(benchmark, save_text):
    result = table5_scaling(scene="room")
    save_text("table5_scaling", result["text"])

    matrix = result["data"]
    for key, paper in PAPER_TABLE_V.items():
        assert matrix[key] == pytest.approx(paper, rel=0.15), key

    # The qualitative statement: speed is maximized at a 1:1 ratio
    # between PE-array and SRAM scaling (the diagonal dominates its row).
    assert matrix[(2, 2)] > matrix[(2, 1)]
    assert matrix[(4, 4)] > matrix[(4, 2)] > matrix[(4, 1)]

    # Benchmark one simulation of the scaled design point.
    program = compile_program("room", "hashgrid", 1280, 720)
    accel = UniRenderAccelerator(UniRenderAccelerator().config.scaled(4, 4))
    benchmark(accel.simulate, program)
    benchmark.extra_info["matrix"] = {str(k): round(v, 2) for k, v in matrix.items()}
