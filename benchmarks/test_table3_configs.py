"""Table III: hardware-module status per micro-operator."""

from repro.analysis import table3_module_status
from repro.core import MicroOp
from repro.core.alu import ALUMode
from repro.core.dataflow import MODULE_STATUS
from repro.core.network import ArrayMode, ReductionLinks


def test_table3_configs(benchmark, save_text):
    result = benchmark.pedantic(table3_module_status, rounds=1, iterations=1)
    save_text("table3_module_status", result["text"])

    # Spot-check every cell the paper prints.
    status = MODULE_STATUS
    assert not status[MicroOp.GEOMETRIC].input_network
    assert status[MicroOp.COMBINED_GRID].reduction_links is ReductionLinks.HORIZONTAL
    assert status[MicroOp.DECOMPOSED_GRID].reduction_links is ReductionLinks.FULL
    assert status[MicroOp.SORTING].alu_mode is ALUMode.COMPARATOR
    assert status[MicroOp.GEMM].array_mode is ArrayMode.SYSTOLIC
    # Only GEMM runs in Mode 1 (systolic); everything else is Mode 2.
    mode1 = [op for op, s in status.items() if s.array_mode is ArrayMode.SYSTOLIC]
    assert mode1 == [MicroOp.GEMM]
