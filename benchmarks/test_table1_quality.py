"""Table I quality/storage columns, *measured* on our scenes.

The paper cites PSNR and storage from the reference works; here we
measure both on this package's own representations so the trade-off
space of Table I is reproduced end to end: the mesh pipeline trades
quality for speed and toolchain compatibility, the grid pipelines sit in
the middle, and denser representations pay storage.
"""

import pytest

from repro.metrics import psnr
from repro.renderers import PIPELINE_RENDERERS, build_representation
from repro.scenes import Camera, get_scene, orbit_poses

SCENE = "lego"
SIZE = 48

#: Moderate build budgets: enough fidelity for a stable ordering while
#: keeping the benchmark in tens of seconds.
BUILDS = {
    "mesh": {"quality": 1.2, "train_steps": 200},
    "mlp": {"grid_size": 5, "hidden": 24, "train_steps": 500, "samples_per_ray": 64},
    "lowrank": {"plane_resolution": 64, "target_resolution": 48, "train_steps": 300,
                "samples_per_ray": 64},
    "hashgrid": {"n_levels": 8, "log2_table_size": 13, "train_steps": 350,
                 "samples_per_ray": 64},
    "gaussian": {"n_gaussians": 16000},
}


def _measure():
    spec = get_scene(SCENE)
    field = spec.field()
    camera = Camera(SIZE, SIZE, pose=orbit_poses(spec.camera_radius, 8)[0])
    reference = field.render_reference(camera, n_samples=64)
    rows = {}
    for pipeline, kwargs in BUILDS.items():
        model = build_representation(SCENE, pipeline, **kwargs)
        renderer = PIPELINE_RENDERERS[pipeline](model, field)
        image, _ = renderer.render(camera)
        rows[pipeline] = {
            "psnr": psnr(image, reference),
            "storage_kb": model.storage_bytes() / 1024,
        }
    return rows


def test_table1_quality_and_storage(benchmark, save_text):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = ["pipeline   PSNR(dB)  storage(KB)"]
    for pipeline, row in rows.items():
        lines.append(f"{pipeline:9s}  {row['psnr']:7.2f}  {row['storage_kb']:10.1f}")
    save_text("table1_quality_measured", "\n".join(lines))

    # Shape claims of Table I at our scale:
    # (1) the mesh pipeline has the lowest rendering quality;
    assert rows["mesh"]["psnr"] == min(r["psnr"] for r in rows.values())
    # (2) grid pipelines beat the mesh bake by a clear margin;
    assert rows["hashgrid"]["psnr"] > rows["mesh"]["psnr"] + 3.0
    assert rows["lowrank"]["psnr"] > rows["mesh"]["psnr"] + 2.0
    # (3) explicit point/mesh representations pay the most storage.
    assert rows["gaussian"]["storage_kb"] > rows["hashgrid"]["storage_kb"]
    benchmark.extra_info["rows"] = {
        k: {"psnr": round(v["psnr"], 2), "kb": round(v["storage_kb"], 1)}
        for k, v in rows.items()
    }
