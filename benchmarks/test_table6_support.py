"""Table VI: supported pipelines vs other reconfigurable accelerators."""

from repro.analysis import table6_support
from repro.analysis.tables import PIPELINES


def test_table6_support(benchmark, save_text):
    result = benchmark.pedantic(table6_support, rounds=1, iterations=1)
    save_text("table6_support", result["text"])

    matrix = result["data"]
    ours = matrix["Uni-Render (ours)"]
    assert all(ours[p] for p in PIPELINES)
    # No prior reconfigurable accelerator covers more than two pipelines.
    for name, row in matrix.items():
        if name == "Uni-Render (ours)":
            continue
        assert sum(row[p] for p in PIPELINES) <= 2, name
    # All NPUs support the MLP pipeline and nothing else.
    for name in ("Flexagon (NPU)", "STIFT (NPU)", "SIGMA (NPU)", "Eyeriss (NPU)"):
        assert matrix[name]["mlp"]
        assert sum(matrix[name][p] for p in PIPELINES) == 1
