"""Extension benchmarks: trajectory stability and larger-scene scaling
(the Sec. VII-D outlook made concrete)."""

from repro.analysis import scene_scaling_study, trajectory_study


def test_trajectory_stability(benchmark, save_text):
    result = benchmark.pedantic(
        trajectory_study, rounds=1, iterations=1,
        kwargs={"scene": "room", "pipeline": "hashgrid", "n_frames": 12},
    )
    save_text("ext_trajectory", result["text"])
    data = result["data"]
    # On average the pipeline is comfortably real-time...
    assert data["mean"] > 30.0
    # ...but the worst orbit view sits near (and can dip below) the
    # 30 FPS bar — the per-frame variability that motivates adaptive
    # techniques like Pixel-Reuse (Sec. VII-B). We assert the honest
    # envelope rather than frame-by-frame real time.
    assert data["min"] > 0.8 * 30.0
    # Orbit views differ, but within a bounded band.
    assert data["max"] / data["min"] < 2.0
    benchmark.extra_info["fps"] = {
        "min": round(data["min"], 1), "mean": round(data["mean"], 1),
        "max": round(data["max"], 1),
    }


def test_scene_scaling(benchmark, save_text):
    result = benchmark.pedantic(scene_scaling_study, rounds=1, iterations=1)
    save_text("ext_scene_scaling", result["text"])
    data = result["data"]

    # 1x scene is real-time at the paper's design point.
    assert data[1.0]["required_scale"] == 1
    # A 2x scene needs more than a 1x design (the spill regime makes
    # demand grow faster than content - the Block-NeRF partitioning
    # argument).
    assert data[2.0]["required_scale"] is None or data[2.0]["required_scale"] >= 2
    # Balanced scaling is monotone for every scene size.
    for factor, row in data.items():
        fps = row["fps_at_scale"]
        scales = sorted(fps)
        assert all(fps[a] <= fps[b] * 1.01 for a, b in zip(scales, scales[1:]))
