"""Deployment-sweep benchmark: the hash-grid design neighbourhood."""

from repro.analysis.profile_sweeps import hashgrid_deployment_sweep


def test_hashgrid_deployment_sweep(benchmark, save_text):
    result = benchmark.pedantic(hashgrid_deployment_sweep, rounds=1, iterations=1)
    save_text("ext_hashgrid_deployment", result["text"])
    data = result["data"]

    # FPS falls monotonically with table size at every level count, and
    # big deployments sit deeper in the memory-bound regime — the spill
    # mechanism behind Table V, seen from the model-size axis.
    for levels in (8, 16, 24):
        fps = [data[(levels, t)]["fps"] for t in (17, 19, 21, 23)]
        assert all(a >= b for a, b in zip(fps, fps[1:])), levels
    assert data[(16, 23)]["memory_share"] >= data[(16, 17)]["memory_share"]

    # The paper's deployment (16 levels, 2^21) stays (near-)real-time;
    # the 4x-larger table does not.
    assert data[(16, 21)]["fps"] > 25.0
    assert data[(16, 23)]["fps"] < data[(16, 21)]["fps"]
