"""Fig. 16: speedup (a) and energy-efficiency improvement (b) of
Uni-Render over the seven baselines on all five pipelines, full
Unbounded-360 scene set."""

import pytest

from repro.analysis import figure16_speedup_energy


def test_fig16_speedup_energy(benchmark, save_text):
    result = benchmark.pedantic(figure16_speedup_energy, rounds=1, iterations=1)
    save_text("fig16_speedup_energy", result["text"])

    sp = result["speedup"]
    en = result["energy"]

    # --- headline ranges over commercial devices ----------------------
    commercial = ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M")
    sp_vals = [v for d in commercial for v in sp[d].values()]
    en_vals = [v for d in commercial for v in en[d].values()]
    assert min(sp_vals) == pytest.approx(0.7, rel=0.3)      # "0.7x to
    assert max(sp_vals) == pytest.approx(119.0, rel=0.3)    #  119x"
    assert min(en_vals) == pytest.approx(1.5, rel=0.4)      # "1.5x to
    assert max(en_vals) == pytest.approx(354.0, rel=0.4)    #  354x"

    # --- the mesh crossover: optimized commercial GPUs win ------------
    assert sp["8Gen2"]["mesh"] < 1.0
    assert en["8Gen2"]["mesh"] > 1.0     # but we still win on energy
    assert en["Orin NX"]["mesh"] == pytest.approx(4.0, rel=0.35)

    # --- dedicated accelerators ----------------------------------------
    assert sp["RT-NeRF"]["lowrank"] == pytest.approx(3.0, rel=0.35)
    assert en["RT-NeRF"]["lowrank"] == pytest.approx(6.0, rel=0.35)
    assert sp["Instant-3D"]["hashgrid"] == pytest.approx(6.0, rel=0.35)
    assert en["Instant-3D"]["hashgrid"] == pytest.approx(2.2, rel=0.35)
    assert sp["MetaVRain"]["mlp"] == pytest.approx(0.10, rel=0.35)

    # --- every baseline loses on at least one pipeline ------------------
    # (the reconfigurability argument: geomean > 1 for every device that
    # supports more than one pipeline)
    for device in commercial:
        assert result["speedup_geomean"][device] > 1.0, device

    benchmark.extra_info["speedup_geomean"] = {
        d: round(g, 2) for d, g in result["speedup_geomean"].items()
    }
