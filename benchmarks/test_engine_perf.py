"""Perf smoke of the event engine: requests simulated per wall second.

The north star demands simulations fast enough to replay
millions-of-user traffic, so this benchmark pins a floor on the
engine's simulation rate at 100k requests of overload-grade bursty
traffic (deep queues, full batches) — the regime where the pre-engine
scheduler went quadratic in queue depth.

Measured perf trajectory (development machines differ; the committed
``BENCH_engine.json`` records the numbers behind each floor bump):

* pre-engine scheduler (PR 2): ~8.2k req/s at 50k requests, ~4k req/s
  extrapolated at 100k (scan-the-queue batching, O(pending) admission
  projections, window rebuilds per controller tick);
* event engine (PR 3): ~75k req/s at 100k requests;
* columnar engine (PR 8): arrivals batch-ingested from sorted NumPy
  columns, per-pipeline index lanes, no per-arrival heap ops — ~176k
  req/s measured on a 1-core CI-grade box, with the *scalar* loop
  itself up ~2.4x from the arrival-array change;
* columnar everywhere (this floor): batched trace-cache windows
  (``get_many``), vectorized chip-score lanes, per-tier pending lanes
  (strict-tier QoS now columnar-eligible), and a deferred-replay
  observer buffer.

Floors assert with CI headroom; dropping below one means the hot path
regressed structurally, not that a machine is merely slow. Modes the
columnar gate still excludes (weighted admission/preempt, faults,
hedging, autoscaling) anchor to ``SCALAR_FLOOR_RPS`` — the scalar
loop's own floor, also asserted via the ``columnar=False`` escape
hatch.
"""

import time

from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TenantClass,
    TraceCache,
    generate_tenant_traffic,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)
# The canonical synthetic per-pipeline frame costs shared by the
# scheduler test suites (identical costs keep the regimes comparable).
from tests.test_serve_invariants import stub_program

#: Requests in the smoke run and the asserted simulation-rate floor.
N_REQUESTS = 100_000
#: The columnar fast path simulates this scenario at ~176k req/s on a
#: 1-core box; batched cache windows and the chip-score lanes hold it
#: there with the wider eligibility, so the floor asserts >= 90k (1.5x
#: the PR 8 floor) with CI headroom.
FLOOR_RPS = 90_000.0
#: Floor of the scalar event loop (the ``columnar=False`` escape hatch
#: and every mode the columnar gate excludes): the pre-columnar floor,
#: which the arrival-array change lifted well clear of (~91k measured).
SCALAR_FLOOR_RPS = 20_000.0


def run_overload(columnar: bool = True):
    trace = generate_traffic(
        "bursty", n_requests=N_REQUESTS, rate_rps=60_000.0, seed=42,
        resolution=(64, 64), slo_s=0.0005,
    )
    began = time.perf_counter()
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        columnar=columnar,
    )
    elapsed = time.perf_counter() - began
    return report, N_REQUESTS / elapsed


def test_engine_simulation_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(run_overload, rounds=1, iterations=1)
    save_text(
        "engine_perf",
        f"simulated {N_REQUESTS} requests at {rate:,.0f} req/s "
        f"(floor {FLOOR_RPS:,.0f}); mean batch {report.mean_batch_size:.2f}, "
        f"throughput {report.throughput_rps:,.0f} sim-req/s",
    )
    record_bench("bare_columnar", rate, FLOOR_RPS, N_REQUESTS)
    # The workload really exercised the hot path: deep queues, full
    # batches, every request served.
    assert report.n_requests == N_REQUESTS
    assert report.mean_batch_size > 6.0
    # The floor itself: 1.5x the PR 8 floor, with CI headroom.
    assert rate >= FLOOR_RPS, (
        f"engine simulated only {rate:,.0f} req/s "
        f"(floor {FLOOR_RPS:,.0f}) — the columnar hot path has regressed"
    )


def test_scalar_escape_hatch_rate_floor(benchmark, save_text, record_bench):
    # ``columnar=False`` forces the scalar event loop on the same
    # scenario: the escape hatch must stay a usable fallback, and the
    # arrival-array change (no per-arrival heap entry) keeps even this
    # path well above the historical floor.
    report, rate = benchmark.pedantic(
        lambda: run_overload(columnar=False), rounds=1, iterations=1)
    save_text(
        "engine_perf_scalar",
        f"simulated {N_REQUESTS} requests on the scalar loop at "
        f"{rate:,.0f} req/s (floor {SCALAR_FLOOR_RPS:,.0f})",
    )
    record_bench("bare_scalar", rate, SCALAR_FLOOR_RPS, N_REQUESTS)
    assert report.n_requests == N_REQUESTS
    assert rate >= SCALAR_FLOOR_RPS, (
        f"scalar engine simulated only {rate:,.0f} req/s "
        f"(floor {SCALAR_FLOOR_RPS:,.0f}) — the general event loop has "
        f"regressed"
    )


# ----------------------------------------------------------------------
# Multi-tenant QoS paths. Strict-tier dispatch (tiers only — no
# weighted budgets, no preemption) is columnar-eligible since the
# per-tier pending lanes landed, so it anchors to the columnar floor
# with a 20% lane-bookkeeping allowance. The *full* machinery (weighted
# admission, dispatch-ahead staging, preemption) still runs on the
# scalar loop, so its floor anchors to the scalar floor: no more than
# 10% below it.
# ----------------------------------------------------------------------
QOS_COLUMNAR_FLOOR_RPS = FLOOR_RPS * 0.8
PREEMPT_FLOOR_RPS = SCALAR_FLOOR_RPS * 0.9


def run_tier_overload():
    premium = TenantClass("premium", slo_multiplier=1.0, tier=0)
    economy = TenantClass("economy", slo_multiplier=2.0, tier=1)
    trace = generate_tenant_traffic(
        [(premium, 0.25), (economy, 0.75)],
        pattern="bursty", n_requests=N_REQUESTS, rate_rps=60_000.0, seed=42,
        resolution=(64, 64), slo_s=0.0005,
    )
    began = time.perf_counter()
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
    )
    elapsed = time.perf_counter() - began
    return report, N_REQUESTS / elapsed


def test_qos_columnar_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(run_tier_overload, rounds=1,
                                      iterations=1)
    save_text(
        "engine_perf_qos_columnar",
        f"simulated {N_REQUESTS} strict-tier two-tenant requests at "
        f"{rate:,.0f} req/s (floor {QOS_COLUMNAR_FLOOR_RPS:,.0f})",
    )
    record_bench("qos_columnar", rate, QOS_COLUMNAR_FLOOR_RPS, N_REQUESTS)
    # Both tiers really flowed through the tier lanes.
    assert len(report.tenant_report()) == 2
    assert not report.preempt_enabled
    # No more than 20% below the columnar floor.
    assert rate >= QOS_COLUMNAR_FLOOR_RPS, (
        f"strict-tier QoS path simulated only {rate:,.0f} req/s "
        f"(floor {QOS_COLUMNAR_FLOOR_RPS:,.0f}) — the per-tier pending "
        f"lanes have regressed the columnar hot path"
    )


def run_tenant_overload():
    premium = TenantClass("premium", slo_multiplier=1.0, weight=4.0, tier=0)
    economy = TenantClass("economy", slo_multiplier=2.0, weight=1.0, tier=1)
    trace = generate_tenant_traffic(
        [(premium, 0.25), (economy, 0.75)],
        pattern="bursty", n_requests=N_REQUESTS, rate_rps=60_000.0, seed=42,
        resolution=(64, 64), slo_s=0.0005,
    )
    began = time.perf_counter()
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        admission=make_admission_policy("weighted"),
        preempt=True,
    )
    elapsed = time.perf_counter() - began
    return report, N_REQUESTS / elapsed


def test_preemption_path_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(run_tenant_overload, rounds=1,
                                      iterations=1)
    save_text(
        "engine_perf_tenants",
        f"simulated {N_REQUESTS} two-tenant requests at {rate:,.0f} req/s "
        f"(floor {PREEMPT_FLOOR_RPS:,.0f}); "
        f"{report.n_preemption_events} preemption events, "
        f"shed rate {report.shed_rate:.3f}",
    )
    record_bench("qos_preempt", rate, PREEMPT_FLOOR_RPS, N_REQUESTS)
    # The QoS machinery really engaged on this run.
    assert report.preempt_enabled
    assert len(report.tenant_report()) == 2
    # No more than 10% below the scalar floor.
    assert rate >= PREEMPT_FLOOR_RPS, (
        f"QoS path simulated only {rate:,.0f} req/s "
        f"(floor {PREEMPT_FLOOR_RPS:,.0f}) — tier dispatch, weighted "
        f"admission, or staging has regressed the hot path"
    )


# ----------------------------------------------------------------------
# Autoscaled paths: the controller ticks at every engine decision
# point, so fleet elasticity is hot-path code. The predictive mode adds
# an arrival feed, an EWMA trend fit, and a desired-fleet projection on
# top of the reactive controller — forecasting must never become a
# hot-path tax, so its floor is pinned at >= 0.9x the reactive-
# autoscaler floor (mirroring the QoS floor's 10% allowance).
# ----------------------------------------------------------------------
AUTOSCALE_FLOOR_RPS = 12_000.0
PREDICTIVE_FLOOR_RPS = AUTOSCALE_FLOOR_RPS * 0.9


def run_autoscaled_overload(mode):
    from repro.serve import Autoscaler

    trace = generate_traffic(
        "bursty", n_requests=N_REQUESTS, rate_rps=60_000.0, seed=42,
        resolution=(64, 64), slo_s=0.0005,
    )
    scaler = Autoscaler(
        min_chips=2, max_chips=6, target_queue_per_chip=4.0,
        slo_target=0.95, window_s=0.05, warmup_s=0.002, cooldown_s=0.01,
        mode=mode,
    )
    began = time.perf_counter()
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        autoscaler=scaler,
    )
    elapsed = time.perf_counter() - began
    return report, N_REQUESTS / elapsed


def test_reactive_autoscaler_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(
        lambda: run_autoscaled_overload("reactive"), rounds=1, iterations=1)
    save_text(
        "engine_perf_autoscaled",
        f"simulated {N_REQUESTS} autoscaled requests at {rate:,.0f} req/s "
        f"(floor {AUTOSCALE_FLOOR_RPS:,.0f}); peak fleet "
        f"{report.peak_fleet_size}, {len(report.fleet_events)} flex events",
    )
    record_bench("autoscale_reactive", rate, AUTOSCALE_FLOOR_RPS, N_REQUESTS)
    assert report.autoscaled and report.peak_fleet_size > 2
    assert rate >= AUTOSCALE_FLOOR_RPS, (
        f"reactive-autoscaled engine simulated only {rate:,.0f} req/s "
        f"(floor {AUTOSCALE_FLOOR_RPS:,.0f}) — the controller tick has "
        f"regressed the hot path"
    )


def test_predictive_autoscaler_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(
        lambda: run_autoscaled_overload("predictive"), rounds=1, iterations=1)
    save_text(
        "engine_perf_predictive",
        f"simulated {N_REQUESTS} forecast-autoscaled requests at "
        f"{rate:,.0f} req/s (floor {PREDICTIVE_FLOOR_RPS:,.0f}); peak fleet "
        f"{report.peak_fleet_size}, {len(report.fleet_events)} flex events",
    )
    record_bench("autoscale_predictive", rate, PREDICTIVE_FLOOR_RPS,
                 N_REQUESTS)
    assert report.autoscaled and report.peak_fleet_size > 2
    # No more than 10% below the reactive-autoscaler floor.
    assert rate >= PREDICTIVE_FLOOR_RPS, (
        f"predictive-autoscaled engine simulated only {rate:,.0f} req/s "
        f"(floor {PREDICTIVE_FLOOR_RPS:,.0f}) — the forecast (arrival feed, "
        f"trend fit, desired-fleet projection) has become a hot-path tax"
    )


# ----------------------------------------------------------------------
# Observability floors: the obs hooks live on the same hot path, so two
# floors pin their cost. Disabled means *absent* — a sink-less observer
# normalizes to None, so the run stays eligible for the columnar fast
# path and must hold >= 0.97x the *new* bare floor (the columnar
# rewrite must not reintroduce per-event observer overhead). Full
# tracing (ring-buffer tracer + metrics registry + flight recorder,
# sample 1.0) *also* stays columnar now: events are recorded into the
# engine's preallocated replay buffer during the run and dispatched
# into the sinks at finalize, so the hot loop pays an array store per
# event instead of Python hook dispatch. End to end the replay pass is
# still per-event Python and dominates (measured ~equal to the scalar
# loop's inline hooks), so the floor keeps the historical half-scalar
# anchor — the win is eligibility (one loop to trust), not yet rate.
# ----------------------------------------------------------------------
OBS_DISABLED_FLOOR_RPS = FLOOR_RPS * 0.97
OBS_ENABLED_FLOOR_RPS = SCALAR_FLOOR_RPS * 0.5


def run_observed_overload(observer):
    trace = generate_traffic(
        "bursty", n_requests=N_REQUESTS, rate_rps=60_000.0, seed=42,
        resolution=(64, 64), slo_s=0.0005,
    )
    began = time.perf_counter()
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        observer=observer,
    )
    elapsed = time.perf_counter() - began
    return report, N_REQUESTS / elapsed


def test_disabled_observer_rate_floor(benchmark, save_text, record_bench):
    from repro.obs import Observer

    # No sinks: resolve_observer() normalizes this to None inside the
    # engine, so the run measures exactly the disabled-path guards —
    # and stays on the columnar fast path.
    report, rate = benchmark.pedantic(
        lambda: run_observed_overload(Observer()), rounds=1, iterations=1)
    save_text(
        "engine_perf_obs_disabled",
        f"simulated {N_REQUESTS} requests with a disabled observer at "
        f"{rate:,.0f} req/s (floor {OBS_DISABLED_FLOOR_RPS:,.0f})",
    )
    record_bench("obs_disabled", rate, OBS_DISABLED_FLOOR_RPS, N_REQUESTS)
    assert report.n_requests == N_REQUESTS
    assert rate >= OBS_DISABLED_FLOOR_RPS, (
        f"disabled-observer run simulated only {rate:,.0f} req/s "
        f"(floor {OBS_DISABLED_FLOOR_RPS:,.0f}) — the is-not-None guards "
        f"have grown into real hot-path work"
    )


def test_full_tracing_rate_floor(benchmark, save_text, record_bench):
    from repro.obs import FlightRecorder, MetricsRegistry, Observer, Tracer

    def run():
        return run_observed_overload(Observer(
            tracer=Tracer(capacity=65536, sample=1.0),
            metrics=MetricsRegistry(),
            flight=FlightRecorder(),
        ))

    report, rate = benchmark.pedantic(run, rounds=1, iterations=1)
    save_text(
        "engine_perf_obs_enabled",
        f"simulated {N_REQUESTS} fully traced requests at {rate:,.0f} "
        f"req/s (floor {OBS_ENABLED_FLOOR_RPS:,.0f})",
    )
    record_bench("obs_full_tracing", rate, OBS_ENABLED_FLOOR_RPS, N_REQUESTS)
    assert report.n_requests == N_REQUESTS
    assert rate >= OBS_ENABLED_FLOOR_RPS, (
        f"fully traced run simulated only {rate:,.0f} req/s "
        f"(floor {OBS_ENABLED_FLOOR_RPS:,.0f}) — the record-then-replay "
        f"buffer has left its array-store-per-event budget"
    )


# ----------------------------------------------------------------------
# Chaos path: a fault plan puts a crash probe, a straggler-window
# lookup, and a speed-EWMA update on every dispatched frame, so fault
# injection is hot-path code too — scalar-loop code, since the columnar
# gate excludes fault plans. An active plan (two straggler windows
# spanning the whole run plus one mid-run recoverable crash) must hold
# >= 0.8x the scalar floor — below that, the per-frame fault checks
# have outgrown their dictionary-lookup budget.
# ----------------------------------------------------------------------
FAULT_FLOOR_RPS = SCALAR_FLOOR_RPS * 0.8


def run_faulted_overload():
    from repro.serve import ChipCrash, FaultPlan, StragglerWindow

    trace = generate_traffic(
        "bursty", n_requests=N_REQUESTS, rate_rps=60_000.0, seed=42,
        resolution=(64, 64), slo_s=0.0005,
    )
    horizon = max(r.arrival_s for r in trace)
    plan = FaultPlan(
        crashes=[ChipCrash(0, horizon * 0.4, horizon * 0.1)],
        stragglers=[StragglerWindow(0, 0.0, horizon, 1.5),
                    StragglerWindow(1, 0.0, horizon, 2.0)],
        rollback_s=0.0001,
    )
    began = time.perf_counter()
    report = simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        faults=plan,
    )
    elapsed = time.perf_counter() - began
    return report, N_REQUESTS / elapsed


def test_fault_injection_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(run_faulted_overload, rounds=1,
                                      iterations=1)
    save_text(
        "engine_perf_faults",
        f"simulated {N_REQUESTS} requests under an active fault plan at "
        f"{rate:,.0f} req/s (floor {FAULT_FLOOR_RPS:,.0f}); "
        f"{report.fault_stats['n_crashes']} crashes, "
        f"{report.fault_stats['n_requeued']} frames re-queued",
    )
    record_bench("fault_injection", rate, FAULT_FLOOR_RPS, N_REQUESTS)
    # The plan really engaged: the crash fired and stragglers dilated.
    assert report.fault_stats["n_crashes"] == 1
    assert report.fleet_availability < 1.0
    # No more than 20% below the scalar floor.
    assert rate >= FAULT_FLOOR_RPS, (
        f"faulted engine simulated only {rate:,.0f} req/s "
        f"(floor {FAULT_FLOOR_RPS:,.0f}) — per-frame fault checks have "
        f"regressed the hot path"
    )


# ----------------------------------------------------------------------
# Federation path: the planet-scale loop slices the workload into sync
# epochs, routes every arrival through the scored global router, runs
# each region's slice on a fresh fleet against its persistent cache,
# and gossips trace-library deltas at every epoch boundary. All of that
# is per-request or per-epoch bookkeeping on top of the engine, so the
# federated planet must still clear a hard floor — below it, the
# router, the epoch slicing, or the gossip plane has gone quadratic.
# Measured ~20k req/s on a 1-core box at 30k requests across three
# regions (17 epochs, 86 gossip messages); the floor asserts 8k.
# ----------------------------------------------------------------------
FEDERATION_N_PER_REGION = 10_000
FEDERATION_FLOOR_RPS = 8_000.0


def run_federated_planet():
    from repro.serve import (
        FederationConfig,
        generate_federation_traffic,
        parse_region_spec,
        simulate_federation,
    )

    specs = parse_region_spec(
        "us-east:tz=-5,chips=3;eu-west:tz=1,chips=3;ap-tokyo:tz=9,chips=3")
    streams = generate_federation_traffic(
        specs, n_requests_per_region=FEDERATION_N_PER_REGION,
        rate_rps=2000.0, seed=42, pattern="bursty",
        resolution=(64, 64), slo_s=0.02,
    )
    n_offered = sum(len(stream) for stream in streams.values())
    began = time.perf_counter()
    report = simulate_federation(
        specs, streams, config=FederationConfig(),
        compile_fn=lambda key: stub_program(key[1]),
    )
    elapsed = time.perf_counter() - began
    return report, n_offered / elapsed


def test_federation_rate_floor(benchmark, save_text, record_bench):
    report, rate = benchmark.pedantic(run_federated_planet, rounds=1,
                                      iterations=1)
    n_offered = 3 * FEDERATION_N_PER_REGION
    save_text(
        "engine_perf_federation",
        f"simulated {n_offered} requests across 3 federated regions at "
        f"{rate:,.0f} req/s (floor {FEDERATION_FLOOR_RPS:,.0f}); "
        f"{report.n_epochs} sync epochs, "
        f"{report.gossip_stats['messages']} gossip messages",
    )
    record_bench("federation", rate, FEDERATION_FLOOR_RPS, n_offered)
    # The planet really federated: every request served, gossip flowed,
    # and the ledger closed.
    assert report.n_offered == n_offered
    assert report.n_offered == (report.n_requests + report.n_shed
                                + report.n_failed)
    assert report.gossip_stats["messages"] > 0
    assert rate >= FEDERATION_FLOOR_RPS, (
        f"federation simulated only {rate:,.0f} req/s "
        f"(floor {FEDERATION_FLOOR_RPS:,.0f}) — the router, epoch "
        f"slicing, or gossip plane has regressed"
    )
