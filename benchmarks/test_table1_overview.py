"""Table I: comparative overview of the five typical pipelines."""

from repro.analysis import table1_overview


def test_table1_overview(benchmark, save_text):
    result = benchmark.pedantic(table1_overview, rounds=1, iterations=1)
    save_text("table1_overview", result["text"])

    data = result["data"]
    # The paper's overview shape on the Orin NX speed column: mesh is the
    # fastest pipeline, MLP by far the slowest, everything under 30 FPS.
    fps = {p: row["orin_fps"] for p, row in data.items()}
    assert fps["mesh"] == max(fps.values())
    assert fps["mlp"] == min(fps.values())
    assert all(v < 30.0 for v in fps.values())
    # Table I bounds: <=20 / <=0.2 / <=10 / <=1 / <=5 FPS.
    bounds = {"mesh": 20, "mlp": 0.2, "lowrank": 10, "hashgrid": 1, "gaussian": 5}
    for pipeline, bound in bounds.items():
        assert fps[pipeline] <= bound * 1.05, pipeline
    # Storage column: MLP most efficient, everything within ~25% of the
    # cited bounds (see tests/test_storage_and_summary.py for details).
    storage = {p: row["storage_mb"] for p, row in data.items()}
    assert storage["mlp"] == min(storage.values())
    assert storage["gaussian"] > storage["hashgrid"]
    benchmark.extra_info["orin_fps"] = {k: round(v, 2) for k, v in fps.items()}
    benchmark.extra_info["storage_mb"] = {k: round(v) for k, v in storage.items()}
