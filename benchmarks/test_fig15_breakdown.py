"""Fig. 15: area and power breakdown of the accelerator."""

import pytest

from repro.analysis import figure15_breakdowns
from repro.core import UniRenderAccelerator


def test_fig15_breakdown(benchmark, save_text):
    result = figure15_breakdowns()
    save_text("fig15_breakdown", result["text"])

    area = result["area"]
    power = result["power"]
    assert area.total == pytest.approx(14.96, rel=0.01)
    assert power.chip_total == pytest.approx(5.78, rel=0.03)
    for key, want in result["paper"]["area"].items():
        assert area.breakdown()[key] == pytest.approx(want, abs=0.02), key
    for key, want in result["paper"]["power"].items():
        assert power.fractions()[key] == pytest.approx(want, abs=0.03), key

    benchmark(UniRenderAccelerator().area)
    benchmark.extra_info["area_mm2"] = round(area.total, 2)
    benchmark.extra_info["typical_power_w"] = round(power.chip_total, 2)
