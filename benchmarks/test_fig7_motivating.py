"""Fig. 7: motivating FPS benchmark across devices and pipelines."""

from repro.analysis import figure7_motivating


def test_fig7_motivating(benchmark, save_text):
    result = benchmark.pedantic(figure7_motivating, rounds=1, iterations=1)
    save_text("fig7_motivating", result["text"])

    grid = result["data"]
    # "None of the existing devices or accelerators consistently achieve
    # a real-time rendering speed of 30 FPS ... only three met the
    # real-time requirements."
    assert len(result["real_time"]) == 3
    assert ("MetaVRain", "mlp") in result["real_time"]

    # Dedicated accelerators fail everywhere outside their pipeline.
    for device, pipeline in (
        ("Instant-3D", "mesh"),
        ("RT-NeRF", "gaussian"),
        ("MetaVRain", "hashgrid"),
    ):
        assert grid[device][pipeline] is None

    # Sec. I's two cross-device observations: 8Gen2 beats Xavier NX by
    # ~2.4x on mesh but loses by ~1.75x on low-rank grids.
    mesh_ratio = grid["8Gen2"]["mesh"] / grid["Xavier NX"]["mesh"]
    lowrank_ratio = grid["Xavier NX"]["lowrank"] / grid["8Gen2"]["lowrank"]
    assert 2.0 < mesh_ratio < 2.9
    assert 1.4 < lowrank_ratio < 2.1

    # No commercial device reaches real time on the MLP or hash pipeline.
    for device in ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M"):
        assert grid[device]["mlp"] < 1.0
        assert grid[device]["hashgrid"] < 2.0
