"""Durable on-disk artifacts: atomic replace + advisory-locked merges.

Every artifact this package writes (trace libraries, sweep results,
Chrome traces, metrics timelines, flight-recorder dumps) used to go
through a bare ``Path.write_text`` — a crash mid-write truncates the
file, and two processes sharing one path clobber each other's bytes.
Both failure modes matter now that the trace library is a *wire format*
(regions gossip it between each other) and sweep workers share output
directories.

:func:`atomic_write_text` gives crash safety: the text lands in a
temporary file in the destination directory (same filesystem, so the
final ``os.replace`` is atomic), is fsync'd, and only then renamed over
the target. A reader therefore always sees either the complete old
bytes or the complete new bytes, never a torn mix; a crash mid-write
leaves the previous artifact intact plus (at worst) one ``*.tmp``
orphan.

:func:`locked` adds cross-process mutual exclusion for read-modify-write
updates (the trace library's merge-on-save, the benchmark recorder's
scenario merge). The lock lives in a *sidecar* file — flocking the
target itself would be useless, since ``os.replace`` swaps the inode the
lock is attached to. On platforms without ``fcntl`` the lock degrades to
a no-op (single-process correctness is unaffected).
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: best-effort locking
    fcntl = None


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically; returns the path.

    The bytes are staged in a temporary file next to the target and
    renamed over it with ``os.replace``, so a crash at any instant
    leaves either the old artifact or the new one — never a truncated
    hybrid. On failure the temporary file is removed.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


@contextmanager
def locked(path: str | Path) -> Iterator[Path]:
    """Exclusive advisory lock guarding updates of artifact ``path``.

    Locks a ``<name>.lock`` sidecar (never the artifact itself — an
    atomic replace swaps the artifact's inode, which would orphan a
    lock held on it) for the duration of the ``with`` block. Reentrant
    use in one process is *not* supported; the lock serializes
    processes, not threads.
    """
    path = Path(path)
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a+", encoding="utf-8") as handle:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield path
        finally:
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_UN)


def atomic_write_json(path: str | Path, payload, **dumps_kwargs) -> Path:
    """``json.dumps`` + :func:`atomic_write_text` in one call."""
    return atomic_write_text(path, json.dumps(payload, **dumps_kwargs))
