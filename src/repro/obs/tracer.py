"""Ring-buffer event tracer: the flight data of one service run.

The tracer records *typed events* — instants (an arrival, an admission
verdict, a preemption, a fleet flex) and spans (a batch executing on a
chip, a compile job occupying a worker) — into a bounded ring buffer.
Memory is O(``capacity``): when the buffer is full the oldest event is
dropped and counted, never silently lost, so a multi-hour simulated run
always keeps its most recent history (exactly what the flight recorder
needs for a post-mortem).

Every event carries a *track*: a ``(group, index)`` pair that the
Chrome-trace exporter maps onto one Perfetto row — ``("chip", 2)`` is
chip 2's execution lane, ``("worker", 0)`` the first compile worker,
``("tier", 1)`` the economy tenants' request stream, ``("fleet", 0)``
the autoscaler/controller lane.

Sampling bounds the *rate* the same way capacity bounds the *memory*:
``sample=r`` keeps a deterministic pseudo-random fraction ``r`` of
requests, chosen by a Knuth multiplicative hash of the request id so
(1) the same run always traces the same requests and (2) a sampled
request keeps *all* of its events — a partially traced request would
export as a broken span chain. Fleet-scope events (scale actions,
compile jobs, batch spans) are never sampled away; they are rare and
carry the context the sampled request events hang off.

All timestamps are simulated seconds. Recording never perturbs the
simulation: the tracer only reads, so a run traced at ``sample=1.0``
produces a byte-identical :class:`~repro.serve.metrics.ServiceReport`
to the same run untraced (pinned in ``tests/test_obs_neutrality.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, NamedTuple, Optional

from repro.errors import ConfigError

#: Knuth's multiplicative hash constant (2^32 / golden ratio), used for
#: the deterministic per-request sampling decision.
_KNUTH = 2654435761
_U32 = 1 << 32


class TraceEvent(NamedTuple):
    """One recorded event. ``dur_s`` is ``None`` for instants."""

    ts_s: float
    dur_s: Optional[float]
    name: str
    cat: str
    track: tuple[str, int]
    args: Optional[dict]

    @property
    def is_span(self) -> bool:
        return self.dur_s is not None


class Tracer:
    """Bounded, drop-oldest recorder of typed service events.

    ``capacity`` bounds resident events (drop-oldest beyond it);
    ``sample`` in (0, 1] is the per-request keep fraction (see the
    module docstring — fleet-scope events always record).
    """

    def __init__(self, capacity: int = 65536, sample: float = 1.0) -> None:
        if capacity < 1:
            raise ConfigError("tracer capacity must be >= 1 event")
        if not 0.0 < sample <= 1.0:
            raise ConfigError("tracer sample rate must be in (0, 1]")
        self.capacity = capacity
        self.sample = sample
        self._threshold = _U32 if sample >= 1.0 else int(sample * _U32)
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0   # lifetime events accepted (dropped included)
        self.dropped = 0    # ring-buffer overwrites (oldest-first)

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buf)

    # -- sampling -------------------------------------------------------
    def wants(self, request_id: int) -> bool:
        """Deterministic sampling verdict for one request's events."""
        if self._threshold >= _U32:
            return True
        return (request_id * _KNUTH) % _U32 < self._threshold

    # -- recording ------------------------------------------------------
    def instant(self, ts_s: float, name: str, cat: str,
                track: tuple[str, int], args: Optional[dict] = None) -> None:
        """Record a point-in-time event."""
        buf = self._buf
        if len(buf) == self.capacity:
            self.dropped += 1
        buf.append(TraceEvent(ts_s, None, name, cat, track, args))
        self.recorded += 1

    def span(self, start_s: float, end_s: float, name: str, cat: str,
             track: tuple[str, int], args: Optional[dict] = None) -> None:
        """Record an interval event (``end_s >= start_s``)."""
        buf = self._buf
        if len(buf) == self.capacity:
            self.dropped += 1
        buf.append(TraceEvent(
            start_s, max(0.0, end_s - start_s), name, cat, track, args))
        self.recorded += 1

    # -- reading --------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """Resident events in recording order (oldest first)."""
        return list(self._buf)

    def tail(self, n: int) -> list[TraceEvent]:
        """The most recent ``n`` resident events (the flight-recorder
        freeze unit)."""
        if n >= len(self._buf):
            return list(self._buf)
        buf = self._buf
        return [buf[i] for i in range(len(buf) - n, len(buf))]

    def clear(self) -> None:
        """Drop resident events; lifetime counters are kept."""
        self._buf.clear()

    def to_dict(self) -> dict:
        """Recording statistics (the ``repro trace`` header line)."""
        return {
            "capacity": self.capacity,
            "sample": self.sample,
            "resident": len(self._buf),
            "recorded": self.recorded,
            "dropped": self.dropped,
        }
