"""Exporters: Chrome trace-event JSON and flat metrics timelines.

Two consumers, two formats:

* :func:`chrome_trace` turns a :class:`~repro.obs.tracer.Tracer` into a
  Chrome trace-event JSON object (the format Perfetto and
  ``chrome://tracing`` load): spans become ``"X"`` complete events,
  instants become ``"i"`` events, and metrics-timeline snapshots become
  ``"C"`` counter series. Tracks map onto processes/threads — one
  process per track *group* (chips, compile workers, tenant tiers, the
  fleet controller) and one named thread per track index, so a loaded
  trace shows one swimlane per chip, per compile worker, and per tenant
  tier.
* :func:`metrics_rows` / :func:`metrics_csv` flatten the registry's
  snapshot timeline into rows for the ``analysis/`` plotting path (JSON
  via ``metrics_rows``, CSV text via ``metrics_csv``).

:func:`validate_chrome_trace` is the schema check CI runs against every
``--trace-out`` artifact, and :func:`summarize_chrome_trace` renders the
``repro trace`` command's human summary of a dumped trace file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ObsError
from repro.persist import atomic_write_text
from repro.obs.tracer import TraceEvent, Tracer

#: Track group -> Chrome trace pid. One process per lane family keeps
#: Perfetto's process grouping meaningful (chips together, workers
#: together, tenant tiers together, controller on its own).
TRACK_PIDS = {"chip": 1, "worker": 2, "tier": 3, "fleet": 4}

#: Human names of the exported processes.
_PROCESS_NAMES = {1: "chips", 2: "compile workers", 3: "tenant tiers",
                  4: "fleet controller"}

#: Allowed event phases in an exported artifact (complete span,
#: instant, counter, metadata).
_VALID_PHASES = frozenset({"X", "i", "C", "M"})


def _track_pid_tid(track: tuple[str, int]) -> tuple[int, int]:
    group, index = track
    pid = TRACK_PIDS.get(group)
    if pid is None:
        raise ObsError(f"unknown track group {group!r}; "
                       f"expected one of {sorted(TRACK_PIDS)}")
    return pid, int(index)


def event_dicts(events: Iterable[TraceEvent]) -> list[dict]:
    """Raw JSON-ready form of events (the flight-dump payload)."""
    out = []
    for event in events:
        row = {
            "ts_s": event.ts_s,
            "name": event.name,
            "cat": event.cat,
            "track": list(event.track),
        }
        if event.dur_s is not None:
            row["dur_s"] = event.dur_s
        if event.args:
            row["args"] = dict(event.args)
        out.append(row)
    return out


def chrome_trace(tracer: Tracer | Iterable[TraceEvent],
                 metrics=None) -> dict:
    """Export events (plus an optional metrics timeline) as a Chrome
    trace-event JSON object.

    Timestamps convert from simulated seconds to the format's
    microseconds. Events are emitted in time order regardless of
    recording order (compile spans are recorded at submit time, ahead
    of instants that precede them on the clock).
    """
    events = tracer.events() if isinstance(tracer, Tracer) else list(tracer)
    trace_events: list[dict] = []
    seen_tracks: set[tuple[str, int]] = set()

    for event in sorted(events, key=lambda e: (e.ts_s, e.track, e.name)):
        pid, tid = _track_pid_tid(event.track)
        seen_tracks.add(event.track)
        row = {
            "name": event.name,
            "cat": event.cat,
            "ts": event.ts_s * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if event.dur_s is not None:
            row["ph"] = "X"
            row["dur"] = event.dur_s * 1e6
        else:
            row["ph"] = "i"
            row["s"] = "t"  # thread-scoped instant
        if event.args:
            row["args"] = dict(event.args)
        trace_events.append(row)

    if metrics is not None:
        for snap in metrics.timeline:
            ts = snap["t_s"] * 1e6
            for name, value in snap.items():
                if name == "t_s" or not isinstance(value, (int, float)):
                    continue
                trace_events.append({
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": ts,
                    "pid": TRACK_PIDS["fleet"],
                    "tid": 0,
                    "args": {"value": value},
                })
                seen_tracks.add(("fleet", 0))

    metadata: list[dict] = []
    for pid in sorted({TRACK_PIDS[group] for group, _ in seen_tracks}):
        metadata.append({
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": 0,
            "args": {"name": _PROCESS_NAMES[pid]},
        })
    for group, index in sorted(seen_tracks):
        pid, tid = _track_pid_tid((group, index))
        metadata.append({
            "name": "thread_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": tid,
            "args": {"name": f"{group} {index}"},
        })

    out = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }
    if isinstance(tracer, Tracer):
        out["otherData"] = tracer.to_dict()
    return out


def save_chrome_trace(tracer: Tracer | Iterable[TraceEvent],
                      path: str | Path, metrics=None) -> Path:
    """Write :func:`chrome_trace` output as a JSON file."""
    path = Path(path)
    atomic_write_text(path, json.dumps(chrome_trace(tracer, metrics=metrics)))
    return path


def validate_chrome_trace(obj: dict) -> int:
    """Schema-check one Chrome trace-event object; returns the event
    count. Raises :class:`~repro.errors.ObsError` on the first
    violation — this is the CI gate on every ``--trace-out`` artifact.
    """
    if not isinstance(obj, dict):
        raise ObsError("trace artifact must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ObsError("trace artifact needs a non-empty traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObsError(f"traceEvents[{i}] is not an object")
        where = f"traceEvents[{i}] ({event.get('name')!r})"
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ObsError(f"{where}: bad phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ObsError(f"{where}: missing event name")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ObsError(f"{where}: bad timestamp {ts!r}")
        if not isinstance(event.get("pid"), int):
            raise ObsError(f"{where}: missing integer pid")
        if not isinstance(event.get("tid"), int):
            raise ObsError(f"{where}: missing integer tid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObsError(f"{where}: complete event needs dur >= 0")
        if phase == "C" and "args" not in event:
            raise ObsError(f"{where}: counter event needs args")
    return len(events)


# ----------------------------------------------------------------------
# Metrics timeline
# ----------------------------------------------------------------------
def metrics_rows(registry) -> list[dict]:
    """The registry's snapshot timeline as JSON-ready rows."""
    return [dict(row) for row in registry.timeline]


def metrics_csv(registry) -> str:
    """The snapshot timeline as CSV text (columns = union of keys,
    ``t_s`` first, the rest name-sorted; absent values left empty)."""
    rows = registry.timeline
    if not rows:
        return "t_s\n"
    columns = sorted({key for row in rows for key in row} - {"t_s"})
    header = ["t_s"] + columns
    lines = [",".join(header)]
    for row in rows:
        cells = [repr(row["t_s"])]
        for column in columns:
            value = row.get(column, "")
            cells.append(repr(value) if value != "" else "")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def save_metrics(registry, path: str | Path) -> Path:
    """Write the metrics timeline; ``.csv`` suffix selects CSV,
    anything else JSON rows."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        atomic_write_text(path, metrics_csv(registry))
    else:
        atomic_write_text(path, json.dumps(metrics_rows(registry), indent=2))
    return path


# ----------------------------------------------------------------------
# Trace summary (`repro trace`)
# ----------------------------------------------------------------------
def summarize_chrome_trace(obj: dict) -> str:
    """Human summary of a dumped trace artifact (validates first)."""
    from repro.analysis.tables import format_table

    n_events = validate_chrome_trace(obj)
    events = obj["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]

    process_names = {}
    thread_names = {}
    for e in events:
        if e["ph"] != "M":
            continue
        if e["name"] == "process_name":
            process_names[e["pid"]] = e["args"]["name"]
        elif e["name"] == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]

    stamped = [e for e in events if e["ph"] in ("X", "i", "C")]
    t0 = min(e["ts"] for e in stamped)
    t1 = max(e["ts"] + e.get("dur", 0.0) for e in stamped)

    lines = [
        f"{n_events} trace events over {(t1 - t0) / 1e3:.3f} ms "
        f"({len(spans)} spans, {len(instants)} instants, "
        f"{len(counters)} counter samples, "
        f"{len(process_names)} processes / {len(thread_names)} tracks)",
    ]
    other = obj.get("otherData")
    if other:
        lines.append(
            f"recorder: {other.get('recorded', '?')} recorded, "
            f"{other.get('dropped', '?')} dropped "
            f"(capacity {other.get('capacity', '?')}, "
            f"sample {other.get('sample', '?')})"
        )

    # Per-(name, kind) rollup with span-duration stats.
    rollup: dict[tuple[str, str], list[float]] = {}
    for e in spans:
        rollup.setdefault((e["name"], "span"), []).append(e["dur"])
    for e in instants:
        rollup.setdefault((e["name"], "instant"), []).append(0.0)
    rows = []
    for (name, kind), durations in sorted(
            rollup.items(), key=lambda kv: (-len(kv[1]), kv[0])):
        if kind == "span":
            mean_ms = sum(durations) / len(durations) / 1e3
            total_ms = sum(durations) / 1e3
            rows.append([name, kind, len(durations),
                         f"{mean_ms:.4f}", f"{total_ms:.3f}"])
        else:
            rows.append([name, kind, len(durations), "-", "-"])
    lines.append("")
    lines.append(format_table(
        ["event", "kind", "count", "mean ms", "total ms"], rows))

    # Per-track rollup.
    by_track: dict[tuple[int, int], int] = {}
    for e in stamped:
        key = (e["pid"], e["tid"])
        by_track[key] = by_track.get(key, 0) + 1
    rows = [
        [process_names.get(pid, str(pid)),
         thread_names.get((pid, tid), str(tid)), count]
        for (pid, tid), count in sorted(by_track.items())
    ]
    lines.append("")
    lines.append(format_table(["process", "track", "events"], rows))
    return "\n".join(lines)


def load_chrome_trace(path: str | Path) -> dict:
    """Read and validate a trace artifact from disk."""
    path = Path(path)
    try:
        obj = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ObsError(f"cannot read trace artifact {path}: {err}") from err
    validate_chrome_trace(obj)
    return obj
