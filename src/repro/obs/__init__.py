"""Observability for the serve stack: tracing, metrics, flight data.

``repro.obs`` is always importable and off by default: nothing in the
serve stack records anything until a live :class:`Observer` is attached
(``ServeCluster(observer=...)`` or the CLI's ``--trace-out`` /
``--metrics-out`` / ``--flight-recorder`` flags). The pieces:

* :class:`Tracer` — bounded ring buffer of typed spans and instants
  with deterministic per-request sampling;
* :class:`MetricsRegistry` — counters, gauges, and P² streaming
  quantile histograms, snapshotable into a metrics timeline;
* :class:`FlightRecorder` — freezes the recent past on shed bursts and
  SLO breaches;
* :class:`Observer` — the facade the engine calls; fans events out to
  whichever sinks are attached;
* exporters — Chrome trace-event JSON (Perfetto-loadable) and flat
  metrics timelines (JSON/CSV).
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, P2Quantile
from repro.obs.observer import Observer, make_observer, resolve_observer
from repro.obs.tracer import TraceEvent, Tracer
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    metrics_csv,
    metrics_rows,
    save_chrome_trace,
    save_metrics,
    summarize_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "P2Quantile",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "load_chrome_trace",
    "make_observer",
    "metrics_csv",
    "metrics_rows",
    "resolve_observer",
    "save_chrome_trace",
    "save_metrics",
    "summarize_chrome_trace",
    "validate_chrome_trace",
]
