"""Flight recorder: freeze the recent past when the service degrades.

The tracer's ring buffer always holds the last ``capacity`` events; the
flight recorder decides *when that history is worth keeping*. Two
triggers watch the live run:

* **shed burst** — ``shed_burst`` refusals inside ``burst_window_s`` of
  simulated time (an admission-control storm);
* **SLO breach** — attainment over the last ``slo_window`` completions
  falling below ``slo_floor`` (the service is serving, but late);
* **chip crash** — a fault-plan failure took effect (every crash is a
  trigger: the moments before a chip died are exactly the history a
  post-mortem wants).

When either fires, the recorder freezes the tracer's most recent
``last_n`` events plus a full metrics snapshot into one *dump*: a
self-contained post-mortem artifact that records what the fleet was
doing in the moments before the incident, exportable as JSON (and each
dump's events still load in Perfetto through the Chrome-trace
exporter). ``cooldown_s`` of simulated time separates dumps so one
sustained storm produces one dump per cooldown window, not one per
shed; ``max_dumps`` bounds total memory.

Triggers evaluate on simulated time and deterministic state only, so
the same run always dumps at the same instants.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError
from repro.persist import atomic_write_text


class FlightRecorder:
    """Trigger-driven freezer of the tracer's recent history."""

    def __init__(
        self,
        last_n: int = 512,
        shed_burst: int = 12,
        burst_window_s: float = 0.05,
        slo_window: int = 64,
        slo_floor: float = 0.5,
        cooldown_s: float = 0.2,
        max_dumps: int = 8,
    ) -> None:
        if last_n < 1:
            raise ConfigError("flight recorder must freeze >= 1 event")
        if shed_burst < 1 or slo_window < 1:
            raise ConfigError("flight-recorder trigger windows must be >= 1")
        if burst_window_s <= 0 or cooldown_s < 0:
            raise ConfigError("flight-recorder time constants must be positive")
        if not 0.0 < slo_floor <= 1.0:
            raise ConfigError("SLO floor must be in (0, 1]")
        if max_dumps < 1:
            raise ConfigError("flight recorder must keep >= 1 dump")
        self.last_n = last_n
        self.shed_burst = shed_burst
        self.burst_window_s = burst_window_s
        self.slo_window = slo_window
        self.slo_floor = slo_floor
        self.cooldown_s = cooldown_s
        self.max_dumps = max_dumps
        self._shed_at: deque[float] = deque(maxlen=shed_burst)
        self._slo: deque[bool] = deque(maxlen=slo_window)
        self._slo_met = 0
        self._last_dump_s = float("-inf")
        self.n_triggers = 0           # trigger conditions observed
        self.dumps: list[dict] = []   # frozen artifacts (<= max_dumps kept)

    # -- trigger intake -------------------------------------------------
    def note_shed(self, t_s: float) -> Optional[str]:
        """Record one refusal; returns a trigger reason when it fires."""
        shed = self._shed_at
        shed.append(t_s)
        if (len(shed) == self.shed_burst
                and t_s - shed[0] <= self.burst_window_s):
            return (f"shed-burst: {self.shed_burst} refusals in "
                    f"{(t_s - shed[0]) * 1e3:.2f} ms")
        return None

    def note_completion(self, t_s: float, slo_met: bool) -> Optional[str]:
        """Record one completion; returns a trigger reason on breach."""
        window = self._slo
        if len(window) == self.slo_window:
            self._slo_met -= window[0]
        window.append(slo_met)
        self._slo_met += slo_met
        if len(window) == self.slo_window:
            attainment = self._slo_met / self.slo_window
            if attainment < self.slo_floor:
                return (f"slo-breach: attainment {attainment:.3f} over last "
                        f"{self.slo_window} completions "
                        f"(floor {self.slo_floor:.3f})")
        return None

    def note_crash(self, t_s: float, chip_id: int) -> str:
        """A chip failure took effect: always a trigger (the capture
        itself still honors the cooldown and dump budget)."""
        return f"chip-crash: chip {chip_id} went down"

    # -- capture ---------------------------------------------------------
    def capture(self, t_s: float, reason: str, tracer=None,
                metrics=None) -> Optional[dict]:
        """Freeze a dump unless still cooling down or out of slots."""
        self.n_triggers += 1
        if t_s - self._last_dump_s < self.cooldown_s:
            return None
        if len(self.dumps) >= self.max_dumps:
            return None
        from repro.obs.export import event_dicts

        dump = {
            "t_s": t_s,
            "reason": reason,
            "n_events": 0,
            "events": [],
            "metrics": {},
        }
        if tracer is not None:
            events = tracer.tail(self.last_n)
            dump["events"] = event_dicts(events)
            dump["n_events"] = len(events)
        if metrics is not None:
            dump["metrics"] = metrics.flatten()
        self.dumps.append(dump)
        self._last_dump_s = t_s
        return dump

    # -- export -----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "last_n": self.last_n,
            "n_triggers": self.n_triggers,
            "n_dumps": len(self.dumps),
            "dumps": self.dumps,
        }

    def save(self, path: str | Path) -> Path:
        """Write every dump as one JSON artifact; returns the path."""
        path = Path(path)
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path
