"""Counters, gauges, and streaming-quantile histograms.

The registry is the numeric half of :mod:`repro.obs` (the tracer being
the event half): engine, autoscaler, admission policy, trace cache, and
compile pool each publish named metrics into one
:class:`MetricsRegistry`, and the registry can be *snapshotted* at any
simulated instant — each snapshot is one flat ``{name: value}`` row of
the metrics timeline the exporters turn into JSON/CSV for the
``analysis/`` plotting path.

Histograms use the P² algorithm (Jain & Chlamtac, CACM 1985): each
tracked quantile keeps five markers — estimates of the quantile itself,
its two flanking quantiles, and the sample extremes — adjusted with a
piecewise-parabolic update per observation. Memory is O(1) per
quantile and an observation costs a handful of float operations, so a
million-request run can keep live latency percentiles without retaining
a million latencies.

Accuracy: on smooth unimodal distributions the P² estimate typically
sits within ~1–2% of the exact percentile once a few hundred samples
have arrived. The randomized suite in ``tests/test_obs_metrics.py``
locks the documented ceiling — estimate within **5% of the sample's
interdecile range** of ``numpy.percentile`` (10% at the p99 tail,
where the markers sit in the sparsest data) across seeds and
distributions (uniform, lognormal, bimodal) at n >= 2000 — so a
regression in the marker update shows up as a failed bound, not a
silently wrong dashboard.

Everything is deterministic: identical observation sequences produce
identical marker states, so two seeded runs snapshot identically
(also pinned in the test suite).
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from repro.errors import ConfigError, ObsError


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm."""

    __slots__ = ("q", "_heights", "_pos", "_desired", "_inc", "n")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigError("P2 quantile must be in (0, 1)")
        self.q = q
        self._heights: list[float] = []   # first 5 obs, then marker heights
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.n = 0

    def add(self, x: float) -> None:
        self.n += 1
        h = self._heights
        if self.n <= 5:
            insort(h, x)
            return

        # Locate the cell and clamp the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1

        pos = self._pos
        for i in range(k + 1, 5):
            pos[i] += 1.0
        desired = self._desired
        inc = self._inc
        for i in range(5):
            desired[i] += inc[i]

        # Adjust the three interior markers toward their desired
        # positions with the piecewise-parabolic (P²) update.
        for i in (1, 2, 3):
            d = desired[i] - pos[i]
            right = pos[i + 1] - pos[i]
            left = pos[i - 1] - pos[i]
            if (d >= 1.0 and right > 1.0) or (d <= -1.0 and left < -1.0):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """The current quantile estimate (NaN before any observation).

        Below six observations the exact order statistic is returned
        (linear interpolation over the sorted buffer, matching
        ``numpy.percentile``'s default)."""
        h = self._heights
        if not h:
            return float("nan")
        if self.n <= 5:
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (rank - lo) * (h[hi] - h[lo])
        return h[2]


class Histogram:
    """Streaming distribution summary: count/sum/min/max plus one
    :class:`P2Quantile` estimator per tracked quantile."""

    __slots__ = ("name", "quantiles", "_estimators", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)) -> None:
        if not quantiles:
            raise ConfigError("histogram needs at least one quantile")
        self.name = name
        self.quantiles = tuple(quantiles)
        self._estimators = [P2Quantile(q) for q in self.quantiles]
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for estimator in self._estimators:
            estimator.add(x)

    def quantile(self, q: float) -> float:
        """Current estimate of a *tracked* quantile."""
        for estimator in self._estimators:
            if estimator.q == q:
                return estimator.value()
        raise ObsError(
            f"histogram {self.name!r} does not track q={q}; "
            f"tracked: {self.quantiles}"
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for estimator in self._estimators:
            label = f"p{estimator.q * 100:g}"
            out[label] = estimator.value() if self.count else 0.0
        return out


class MetricsRegistry:
    """Named metrics plus the snapshot timeline they produce.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent,
    so every component can resolve its instruments at bind time and pay
    only an attribute access per event). :meth:`snapshot` flattens the
    registry into one ``{name: value}`` row — histogram fields expand to
    ``name.count`` / ``name.p50`` / ... — stamps it with the simulated
    time, and appends it to :attr:`timeline`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.timeline: list[dict] = []

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        return self._metrics.get(name)

    def _register(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = kind(name, **kwargs)
        elif not isinstance(metric, kind):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._register(name, Gauge)

    def histogram(self, name: str,
                  quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
                  ) -> Histogram:
        return self._register(name, Histogram, quantiles=quantiles)

    # -- snapshots ------------------------------------------------------
    def flatten(self) -> dict:
        """Current values as one flat, name-sorted dict."""
        row: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                for field, value in metric.snapshot().items():
                    row[f"{name}.{field}"] = value
            else:
                row[name] = metric.value
        return row

    def snapshot(self, t_s: float) -> dict:
        """Record (and return) the timeline row at simulated ``t_s``."""
        row = {"t_s": t_s}
        row.update(self.flatten())
        self.timeline.append(row)
        return row
