"""The Observer facade: one object the serve stack talks to.

The engine, autoscaler, admission policy, trace cache, and compile pool
never touch the tracer/metrics/flight-recorder directly — each
instrumentation site calls one :class:`Observer` hook (``on_arrival``,
``on_batch``, ``on_scale``, ...). The observer fans the event out to
whichever sinks are attached: the ring-buffer tracer, the metrics
registry, and the flight recorder.

Cost discipline:

* **Disabled** means *absent*: components hold ``obs = None`` and guard
  every site with one ``is not None`` check, so an untraced run pays a
  single pointer comparison per site — there is no "null observer
  object" receiving calls on the hot path.
  :func:`resolve_observer` normalizes ``None`` / disabled observers to
  ``None`` at construction time so the engine only ever stores a live
  observer or nothing.
* **Enabled** hooks resolve their metric instruments once, in
  ``__init__`` (bind-time resolution) — per event they increment
  pre-resolved counters and append one tuple to the tracer's deque.

Sampling is per *request*: :meth:`wants` answers once per request id
(forwarded from the tracer's deterministic hash) and the engine keeps
the verdict alongside the queued request, so a sampled request traces
every hop and an unsampled one traces nothing. Fleet-scope events
(batches, compiles, scale actions, preemptions) always trace.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class Observer:
    """Fan-out point for serve-stack instrumentation.

    Any sink may be omitted: ``Observer(tracer=Tracer())`` traces
    without metrics, ``Observer(metrics=MetricsRegistry())`` meters
    without tracing. With no sinks at all the observer is *disabled*
    (see :func:`resolve_observer`). ``snapshot_every_s`` sets the
    metrics-timeline cadence, sampled on controller ticks.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        flight: Optional[FlightRecorder] = None,
        snapshot_every_s: float = 0.01,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.flight = flight
        self.snapshot_every_s = snapshot_every_s
        self._next_snapshot_s = 0.0

        m = metrics
        self._m_arrivals = m.counter("engine.arrivals") if m is not None else None
        self._m_responses = m.counter("engine.responses") if m is not None else None
        self._m_slo_met = m.counter("engine.slo_met") if m is not None else None
        self._m_batches = m.counter("engine.batches") if m is not None else None
        self._m_preempt = m.counter("engine.preemptions") if m is not None else None
        self._m_compiles = m.counter("engine.compiles") if m is not None else None
        self._m_scale_up = m.counter("fleet.scale_up") if m is not None else None
        self._m_scale_down = m.counter("fleet.scale_down") if m is not None else None
        self._m_crashes = m.counter("fault.crashes") if m is not None else None
        self._m_recoveries = m.counter("fault.recoveries") if m is not None else None
        self._m_hedges = m.counter("engine.hedges") if m is not None else None
        self._m_hedge_wins = m.counter("engine.hedge_wins") if m is not None else None
        self._h_latency = m.histogram("engine.latency_ms") if m is not None else None
        self._h_queue = m.histogram("engine.queue_ms") if m is not None else None
        self._h_batch = m.histogram("engine.batch_size") if m is not None else None

    @property
    def enabled(self) -> bool:
        return (self.tracer is not None or self.metrics is not None
                or self.flight is not None)

    def wants(self, request_id: int) -> bool:
        """Per-request sampling verdict (True when not tracing, so
        metrics still see every request)."""
        tracer = self.tracer
        return tracer.wants(request_id) if tracer is not None else True

    # -- request lifecycle ----------------------------------------------
    def on_arrival(self, t_s: float, req, sampled: bool) -> None:
        if self._m_arrivals is not None:
            self._m_arrivals.inc()
        if sampled and self.tracer is not None:
            self.tracer.instant(
                t_s, "arrival", "request", ("tier", req.tenant.tier),
                {"request_id": req.request_id, "scene": req.scene,
                 "pipeline": req.pipeline, "tenant": req.tenant.name})

    def on_admit(self, t_s: float, req, verdict: str, sampled: bool) -> None:
        """``verdict`` is "admit" or "degrade" (sheds go to
        :meth:`on_shed`)."""
        if sampled and self.tracer is not None:
            self.tracer.instant(
                t_s, verdict, "admission", ("tier", req.tenant.tier),
                {"request_id": req.request_id})

    def on_shed(self, t_s: float, req, sampled: bool) -> Optional[dict]:
        """Record a refusal; returns a flight dump if one triggered."""
        if sampled and self.tracer is not None:
            self.tracer.instant(
                t_s, "shed", "admission", ("tier", req.tenant.tier),
                {"request_id": req.request_id, "tenant": req.tenant.name})
        flight = self.flight
        if flight is not None:
            reason = flight.note_shed(t_s)
            if reason is not None:
                return self._capture(t_s, reason)
        return None

    def on_response(self, resp, sampled: bool) -> Optional[dict]:
        """Record a completion; returns a flight dump if one triggered."""
        if self._m_responses is not None:
            self._m_responses.inc()
            if resp.slo_met:
                self._m_slo_met.inc()
            self._h_latency.observe(resp.latency_s * 1e3)
            self._h_queue.observe(resp.queue_s * 1e3)
        if sampled and self.tracer is not None:
            req = resp.request
            self.tracer.instant(
                resp.finish_s, "completion", "request",
                ("tier", req.tenant.tier),
                {"request_id": req.request_id, "chip": resp.chip_id,
                 "latency_ms": round(resp.latency_s * 1e3, 4),
                 "slo_met": resp.slo_met})
        flight = self.flight
        if flight is not None:
            reason = flight.note_completion(resp.finish_s, resp.slo_met)
            if reason is not None:
                return self._capture(resp.finish_s, reason)
        return None

    # -- fleet-scope events (never sampled away) -------------------------
    def on_batch(self, start_s: float, end_s: float, chip_id: int,
                 batch_id: int, size: int, pipeline: str, tier: int) -> None:
        if self._m_batches is not None:
            self._m_batches.inc()
            self._h_batch.observe(size)
        if self.tracer is not None:
            self.tracer.span(
                start_s, end_s, f"batch {pipeline}", "batch",
                ("chip", chip_id),
                {"batch_id": batch_id, "size": size, "tier": tier})

    def on_preempt(self, t_s: float, chip_id: int, batch_id: int,
                   size: int, by_tier: int) -> None:
        if self._m_preempt is not None:
            self._m_preempt.inc()
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "preempt", "preempt", ("chip", chip_id),
                {"batch_id": batch_id, "size": size, "by_tier": by_tier})

    def on_compile(self, start_s: float, done_s: float, worker_id: int,
                   pipeline: str, origin: str) -> None:
        """One compile job occupying a worker (origin: "sync" /
        "worker" / "prefetch")."""
        if self._m_compiles is not None:
            self._m_compiles.inc()
        if self.tracer is not None:
            self.tracer.span(
                start_s, done_s, f"compile {pipeline}", "compile",
                ("worker", worker_id), {"origin": origin})

    def on_compile_sync(self, start_s: float, end_s: float, chip_id: int,
                        pipeline: str) -> None:
        """A synchronous compile stalling the dispatch path on a chip
        (the ``compile_workers=0`` model: no worker track exists, so the
        span lands on the chip that paid the stall)."""
        if self._m_compiles is not None:
            self._m_compiles.inc()
        if self.tracer is not None:
            self.tracer.span(
                start_s, end_s, f"compile {pipeline}", "compile",
                ("chip", chip_id), {"origin": "sync"})

    def on_prefetch_issue(self, t_s: float, key) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "prefetch issue", "prefetch", ("fleet", 0),
                {"scene": key[0], "pipeline": key[1]})

    def on_prefetch_hit(self, t_s: float, key) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "prefetch hit", "prefetch", ("fleet", 0),
                {"scene": key[0], "pipeline": key[1]})

    def on_crash(self, t_s: float, chip_id: int, down_s: Optional[float],
                 n_requeued: int) -> Optional[dict]:
        """A chip failure took effect (``down_s`` None == permanent);
        returns a flight dump if the crash triggered one."""
        if self._m_crashes is not None:
            self._m_crashes.inc()
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "crash", "fault", ("chip", chip_id),
                {"down_s": down_s, "requeued": n_requeued,
                 "permanent": down_s is None})
        flight = self.flight
        if flight is not None:
            reason = flight.note_crash(t_s, chip_id)
            if reason is not None:
                return self._capture(t_s, reason)
        return None

    def on_recover(self, t_s: float, chip_id: int, outage_s: float) -> None:
        if self._m_recoveries is not None:
            self._m_recoveries.inc()
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "recover", "fault", ("chip", chip_id),
                {"outage_ms": round(outage_s * 1e3, 4)})

    def on_hedge(self, t_s: float, request_id: int, queue_age_s: float) -> None:
        """A queued request crossed the hedge threshold and was
        duplicated onto the pending index."""
        if self._m_hedges is not None:
            self._m_hedges.inc()
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "hedge", "hedge", ("fleet", 0),
                {"request_id": request_id,
                 "queue_age_ms": round(queue_age_s * 1e3, 4)})

    def on_hedge_settle(self, t_s: float, request_id: int,
                        winner: str) -> None:
        """A hedged pair resolved (``winner``: "primary" or "clone")."""
        if self._m_hedge_wins is not None and winner == "clone":
            self._m_hedge_wins.inc()
        if self.tracer is not None:
            self.tracer.instant(
                t_s, "hedge settle", "hedge", ("fleet", 0),
                {"request_id": request_id, "winner": winner})

    def on_scale(self, t_s: float, action: str, delta: int,
                 n_chips: int) -> None:
        """A fleet flex: ``action`` is "scale_up" or "scale_down"."""
        if self.metrics is not None:
            (self._m_scale_up if action == "scale_up"
             else self._m_scale_down).inc()
            self.metrics.gauge("fleet.n_chips").set(n_chips)
        if self.tracer is not None:
            self.tracer.instant(
                t_s, action, "fleet", ("fleet", 0),
                {"delta": delta, "n_chips": n_chips})

    # -- cadence / teardown ----------------------------------------------
    def maybe_snapshot(self, t_s: float) -> None:
        """Append a metrics-timeline row if the cadence elapsed (called
        on controller ticks)."""
        if self.metrics is not None and t_s >= self._next_snapshot_s:
            self.metrics.snapshot(t_s)
            self._next_snapshot_s = t_s + self.snapshot_every_s

    def finalize(self, end_s: float) -> None:
        """Final timeline row at the end of the run."""
        if self.metrics is not None:
            self.metrics.snapshot(end_s)

    def _capture(self, t_s: float, reason: str) -> Optional[dict]:
        return self.flight.capture(
            t_s, reason, tracer=self.tracer, metrics=self.metrics)


def resolve_observer(observer: Optional[Observer]) -> Optional[Observer]:
    """Normalize the engine's ``observer=`` argument: a disabled
    observer (no sinks) becomes ``None`` so hot-path guards stay a
    single pointer check."""
    if observer is None or not observer.enabled:
        return None
    return observer


def make_observer(
    trace: bool = False,
    metrics: bool = False,
    flight: bool = False,
    capacity: int = 65536,
    sample: float = 1.0,
    snapshot_every_s: float = 0.01,
) -> Optional[Observer]:
    """Convenience constructor used by the CLI: pick sinks by flag.

    Returns ``None`` when every sink is off (so callers can pass the
    result straight to ``ServeCluster(observer=...)``).
    """
    if not (trace or metrics or flight):
        return None
    return Observer(
        tracer=Tracer(capacity=capacity, sample=sample) if trace else None,
        metrics=MetricsRegistry() if metrics else None,
        flight=FlightRecorder() if flight else None,
        snapshot_every_s=snapshot_every_s,
    )
