"""Uni-Render (HPCA 2025) reproduction.

The package is organized around the paper's structure:

* :mod:`repro.nn` — minimal neural-network substrate (linear layers,
  activations, Adam) used by every pipeline's MLP stage.
* :mod:`repro.scenes` — procedural ground-truth scenes, cameras, and
  builders that derive all five scene representations from one field.
* :mod:`repro.renderers` — functional implementations of the five typical
  neural rendering pipelines (Sec. II) plus the MixRT hybrid (Sec. VII-C).
* :mod:`repro.compile` — lowers a pipeline invocation into a trace of the
  five common micro-operators (Sec. IV, Table II).
* :mod:`repro.core` — the Uni-Render accelerator model itself: the
  reconfigurable PE array, the five dataflows (Sec. VI), and the cycle /
  energy / area models (Sec. V, Fig. 15).
* :mod:`repro.devices` — baseline device and accelerator models used in
  the paper's comparisons (Sec. III, Sec. VII).
* :mod:`repro.metrics` — PSNR / FPS / speedup / energy-efficiency metrics.
* :mod:`repro.analysis` — regenerates every table and figure of the paper.
* :mod:`repro.serve` — the simulated multi-accelerator rendering service:
  trace caching, pipeline-affinity batching, fleet sharding policies, a
  discrete-event scheduler, and throughput / tail-latency / SLO metrics.

Quickstart::

    from repro import quick_render
    image, stats = quick_render("lego", pipeline="hashgrid", size=(64, 64))
"""

from __future__ import annotations

from repro.version import __version__
from repro.errors import (
    CompileError,
    ConfigError,
    ReproError,
    SceneError,
    SimulationError,
    UnsupportedPipelineError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigError",
    "SceneError",
    "CompileError",
    "UnsupportedPipelineError",
    "SimulationError",
    "quick_render",
    "UniRenderAccelerator",
    "ServeCluster",
    "simulate_service",
    "PIPELINES",
]

#: Canonical names of the five typical pipelines (Table I ordering).
PIPELINES = ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")


def quick_render(scene_name, pipeline="hashgrid", size=(64, 64)):
    """Render a named scene with one pipeline; returns ``(image, stats)``.

    Convenience wrapper used by the examples; see
    :func:`repro.renderers.render_scene` for the full-control API.
    """
    from repro.renderers import render_scene

    return render_scene(scene_name, pipeline=pipeline, size=size)


def __getattr__(name):
    # Lazy import so that `import repro` stays light.
    if name == "UniRenderAccelerator":
        from repro.core.simulator import UniRenderAccelerator

        return UniRenderAccelerator
    if name == "ServeCluster":
        from repro.serve import ServeCluster

        return ServeCluster
    if name == "simulate_service":
        from repro.serve import simulate_service

        return simulate_service
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
