"""Full-scale representation profiles of the paper's reference pipelines.

The functional renderers in this package run laptop-scale models; the
accelerator is evaluated against the *deployed* sizes of the reference
implementations (Sec. III: MobileNeRF [17], KiloNeRF [87], MeRF [88],
Instant-NGP [72], 3DGS [40]). Each profile records those sizes, split by
dataset kind — Unbounded-360 models are substantially heavier than
NeRF-Synthetic ones. Values follow the reference papers' released
configurations; entries marked (cal.) were nudged within their plausible
ranges during calibration against Table IV (see DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError


@dataclass(frozen=True)
class MeshProfile:
    """MobileNeRF-style deployed mesh."""

    n_triangles: int             # triangles after baking
    vertex_bytes: int = 16       # position + packed uv
    texel_bytes: int = 8         # 8 feature channels, 8-bit each
    texture_bytes: int = 0       # total atlas size
    shader_macs_per_pixel: int = 0
    shader_weight_bytes: int = 4096
    supersample: int = 4         # MobileNeRF's 2x2 anti-aliasing
    n_layers: int = 1            # alpha layers (3 for unbounded scenes)


@dataclass(frozen=True)
class VolumeProfile:
    """A ray-marching pipeline's deployed model (MLP / low-rank / hash).

    ``deferred`` marks MeRF-style architectures that blend *features*
    along the ray and decode once per pixel; ``mlp_macs_per_sample``
    then counts MACs per pixel instead of per sample.
    """

    samples_per_ray: int             # candidates along each ray
    mlp_macs_per_sample: int         # decoder cost (per pixel if deferred)
    mlp_weight_bytes: int
    deferred: bool = False
    lookup_int_ops: int = 0          # index arithmetic per lookup
    lookups_per_sample: int = 0      # table/plane/grid fetches per sample
    fetch_bytes: int = 4             # bytes per lookup
    table_bytes: int = 0             # total feature storage
    touched_fraction: float = 1.0    # hot fraction of the table per frame
    encoding_sfu_per_sample: int = 0  # sin/cos or exp evaluations


@dataclass(frozen=True)
class GaussianProfile:
    """3DGS deployed point cloud."""

    n_gaussians: int
    sh_coeffs: int = 16              # degree-3 (4^2) per color channel
    gaussian_bytes: int = 236        # 3DGS PLY layout per point
    visible_fraction: float = 0.35   # after frustum + threshold culling
    splat_tests_per_pixel: float = 120.0  # pairwise tile tests (cal.)
    tiles_per_splat: float = 5.0     # average 16x16 tiles each splat hits


#: (pipeline, kind) -> profile. kind is "synthetic" or "unbounded".
FULL_SCALE_PROFILES: dict[tuple[str, str], object] = {
    # --- MobileNeRF: ~500k tris synthetic, ~1M tris x 3 layers unbounded -
    ("mesh", "synthetic"): MeshProfile(
        n_triangles=500_000,
        texture_bytes=2048 * 2048 * 8,
        shader_macs_per_pixel=400,
        supersample=4,
        n_layers=2,                  # opaque + alpha-tested pass
    ),
    ("mesh", "unbounded"): MeshProfile(
        n_triangles=1_000_000,
        texture_bytes=4096 * 4096 * 8,
        shader_macs_per_pixel=400,
        supersample=4,
        n_layers=3,
    ),
    # --- KiloNeRF: tiny MLPs, many samples survive (no grid features) ---
    ("mlp", "synthetic"): VolumeProfile(
        samples_per_ray=192,
        mlp_macs_per_sample=3_000,
        mlp_weight_bytes=56 * 1024 * 1024,
        encoding_sfu_per_sample=60,
    ),
    ("mlp", "unbounded"): VolumeProfile(
        samples_per_ray=320,
        mlp_macs_per_sample=3_000,
        mlp_weight_bytes=88 * 1024 * 1024,
        encoding_sfu_per_sample=60,
    ),
    # --- MeRF: tri-plane 2048^2 + low-res 3D grid, small decoder --------
    ("lowrank", "synthetic"): VolumeProfile(
        samples_per_ray=96,
        mlp_macs_per_sample=1_500,
        mlp_weight_bytes=32 * 1024,
        deferred=True,
        lookup_int_ops=4,
        lookups_per_sample=20,       # 3 planes x 4 corners + 3D grid x 8
        fetch_bytes=8,
        table_bytes=60 * 1024 * 1024,   # MeRF synthetic-scale tables
        touched_fraction=0.48,
        encoding_sfu_per_sample=4,
    ),
    ("lowrank", "unbounded"): VolumeProfile(
        samples_per_ray=256,
        mlp_macs_per_sample=1_500,
        mlp_weight_bytes=32 * 1024,
        deferred=True,
        lookup_int_ops=4,
        lookups_per_sample=20,
        fetch_bytes=8,
        table_bytes=150 * 1024 * 1024,  # Table I: <= 160 MB on Unbounded-360
        touched_fraction=0.30,
        encoding_sfu_per_sample=4,
    ),
    # --- Instant-NGP: 16 levels, deferred tiny decoder, dense marching ---
    ("hashgrid", "synthetic"): VolumeProfile(
        samples_per_ray=192,
        mlp_macs_per_sample=1_500,
        mlp_weight_bytes=24 * 1024,
        deferred=True,
        lookup_int_ops=6,            # hash: 2 mults + 2 xors + mask + addr
        lookups_per_sample=128,      # 16 levels x 8 corners
        fetch_bytes=4,               # 2 features, fp16
        table_bytes=16 * (1 << 19) * 4,
        touched_fraction=0.53,       # ray coherence keeps fine levels warm
        encoding_sfu_per_sample=16,
    ),
    ("hashgrid", "unbounded"): VolumeProfile(
        samples_per_ray=512,         # contracted space marched finely
        mlp_macs_per_sample=1_500,
        mlp_weight_bytes=24 * 1024,
        deferred=True,
        lookup_int_ops=6,
        lookups_per_sample=128,
        fetch_bytes=4,
        table_bytes=16 * (1 << 21) * 4,
        touched_fraction=0.34,
        encoding_sfu_per_sample=16,
    ),
    # --- 3DGS: ~300k points synthetic, ~1.5M unbounded -------------------
    ("gaussian", "synthetic"): GaussianProfile(
        n_gaussians=300_000,
        visible_fraction=0.40,
        splat_tests_per_pixel=340.0,
        tiles_per_splat=6.0,
    ),
    ("gaussian", "unbounded"): GaussianProfile(
        n_gaussians=1_500_000,
        visible_fraction=0.30,
        splat_tests_per_pixel=370.0,
    ),
}


def profile_for(pipeline: str, kind: str):
    """Profile lookup with a clear error for unknown combinations."""
    try:
        return FULL_SCALE_PROFILES[(pipeline, kind)]
    except KeyError:
        raise CompileError(
            f"no full-scale profile for pipeline {pipeline!r} on kind {kind!r}"
        ) from None


#: Storage-representative size of the MLP pipeline's checkpoint. Table I
#: cites NeRF [67] (a few MB of weights) for the storage column, while
#: the *speed* representative is KiloNeRF [87] with far more parameters;
#: we follow the paper and report the NeRF figure here.
VANILLA_NERF_STORAGE_BYTES = 8 * 1024 * 1024


def storage_estimate_bytes(pipeline: str, kind: str) -> int:
    """Deployed-model storage implied by the full-scale profile.

    This is Table I's storage column derived from the same profiles the
    performance model uses, so speed and storage stay consistent:
    mesh = vertices + indices + texture atlas; volume pipelines = tables
    + decoder weights; 3DGS = the per-point PLY layout. The MLP row is
    the NeRF checkpoint (see ``VANILLA_NERF_STORAGE_BYTES``).
    """
    if pipeline == "mlp":
        return VANILLA_NERF_STORAGE_BYTES
    profile = profile_for(pipeline, kind)
    if isinstance(profile, MeshProfile):
        vertices = int(0.6 * profile.n_triangles) * profile.vertex_bytes
        indices = profile.n_triangles * 3 * 4
        return vertices + indices + profile.texture_bytes
    if isinstance(profile, GaussianProfile):
        return profile.n_gaussians * profile.gaussian_bytes
    if isinstance(profile, VolumeProfile):
        return profile.table_bytes + profile.mlp_weight_bytes
    raise CompileError(f"no storage rule for profile {type(profile).__name__}")
