"""Pipeline -> micro-operator compiler (Sec. IV made executable).

``compile_program(scene, pipeline, width, height)`` lowers one frame of
one rendering pipeline into a :class:`~repro.core.microops.MicroOpProgram`
— an ordered list of the five common micro-operators with quantified
workloads. Workloads combine:

* **full-scale profiles** (:mod:`repro.compile.profiles`): the deployed
  representation sizes of the paper's reference implementations
  (MobileNeRF / KiloNeRF / MeRF / Instant-NGP / 3DGS), and
* **measured coefficients** (:mod:`repro.compile.measure`): dimensionless
  per-scene statistics (ray occupancy, raster coverage, splat overlap)
  probed from this package's functional renderers.
"""

from repro.compile.profiles import (
    FULL_SCALE_PROFILES,
    GaussianProfile,
    MeshProfile,
    VolumeProfile,
    profile_for,
)
from repro.compile.measure import measure_coeffs, clear_measure_cache
from repro.compile.compilers import (
    COMPILERS,
    compile_program,
)

__all__ = [
    "FULL_SCALE_PROFILES",
    "MeshProfile",
    "VolumeProfile",
    "GaussianProfile",
    "profile_for",
    "measure_coeffs",
    "clear_measure_cache",
    "COMPILERS",
    "compile_program",
]
