"""Workload constructors: natural pipeline quantities -> micro-op costs.

Each constructor converts the numbers a graphics engineer thinks in
(triangles tested, table lookups, MACs, elements sorted) into the
:class:`~repro.core.microops.Workload` fields the dataflow cost model
prices. Conversion factors (ops per test, scratch-pad accesses per
lookup) are fixed properties of the Sec. VI dataflows.
"""

from __future__ import annotations

import numpy as np

from repro.core.microops import Workload


def gemm_workload(
    macs: float,
    rows: float,
    in_width: float,
    out_width: float,
    weight_bytes: float,
    sfu_ops: float = 0.0,
    act_bytes: float = 2.0,
    stream_in: bool = True,
    stream_out: bool = True,
) -> Workload:
    """Weight-stationary GEMM (Fig. 14).

    Weights are the resident working set; activations stream through the
    global buffer. ``stream_in`` / ``stream_out`` are False when the
    stage is fused with its neighbour inside a tile (producer-consumer
    through the global buffer, no DRAM round trip). Scratch-pad traffic:
    one weight word per MAC (FF) and one partial-sum update per output
    element (PS).
    """
    io_stream = rows * act_bytes * (
        (in_width if stream_in else 0.0) + (out_width if stream_out else 0.0)
    )
    return Workload(
        int_ops=rows,  # address counters only (Table III: automatic counter)
        bf16_ops=macs,
        sfu_ops=sfu_ops,
        sram_accesses=macs + rows * out_width,
        dram_unique_bytes=weight_bytes,
        working_set_bytes=weight_bytes,
        streaming_bytes=io_stream,
        items=rows,
    )


def grid_workload(
    lookups: float,
    fetch_bytes: float,
    table_bytes: float,
    int_ops_per_lookup: float,
    bf16_per_lookup: float = 1.0,
    sfu_ops: float = 0.0,
    coord_stream_bytes: float = 0.0,
) -> Workload:
    """Combined / Decomposed Grid Indexing (Figs. 11-12).

    Each lookup computes an address (INT16 lanes), reads the feature
    word from the FF scratch pad, and feeds the weighted adder tree of
    the reduction network (BF16 lanes). Compulsory DRAM traffic is the
    touched fraction of the table, capped by its total size.
    """
    touched = min(table_bytes, lookups * fetch_bytes)
    return Workload(
        int_ops=lookups * int_ops_per_lookup,
        bf16_ops=lookups * bf16_per_lookup,
        sfu_ops=sfu_ops,
        sram_accesses=lookups * max(1.0, fetch_bytes / 2.0),
        dram_unique_bytes=touched,
        working_set_bytes=table_bytes,
        streaming_bytes=coord_stream_bytes,
        items=lookups,
    )


def geometric_workload(
    tests: float,
    primitives: float,
    primitive_bytes: float,
    int_ops_per_test: float = 6.0,
    bf16_per_test: float = 2.0,
    sfu_ops: float = 0.0,
    output_bytes: float = 0.0,
) -> Workload:
    """Geometric Processing (Fig. 10): coverage tests + min-depth hold.

    Cross products run on the INT16 lanes (fixed-point screen coords);
    depth interpolation and the compare of the min-hold on BF16. Each
    test touches the Z-buffer view of the PS scratch pad.
    """
    return Workload(
        int_ops=tests * int_ops_per_test,
        bf16_ops=tests * bf16_per_test,
        sfu_ops=sfu_ops,
        sram_accesses=tests * 2.0 + primitives,
        dram_unique_bytes=primitives * primitive_bytes,
        working_set_bytes=primitives * primitive_bytes,
        streaming_bytes=output_bytes,
        items=tests,
    )


def sorting_workload(elements: float, per_patch: float, key_bytes: float = 8.0) -> Workload:
    """Per-patch merge sort (Fig. 13).

    ``elements`` is the total across patches, ``per_patch`` the average
    list length; comparisons follow n log2 n within each patch. Keys are
    staged in the FF scratch pad, one read+write per element per pass.
    """
    passes = max(1.0, float(np.ceil(np.log2(max(per_patch, 2.0)))))
    compares = elements * passes
    return Workload(
        int_ops=compares,
        bf16_ops=0.0,
        sram_accesses=2.0 * elements * passes,
        dram_unique_bytes=0.0,
        working_set_bytes=elements * key_bytes,
        streaming_bytes=2.0 * elements * key_bytes,
        items=elements,
    )
