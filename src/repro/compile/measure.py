"""Per-scene workload coefficients measured from the functional renderers.

The compiler needs dimensionless statistics that depend on scene content
— what fraction of ray samples survive empty-space skipping, how much of
the screen the meshes cover, how strongly splats overlap. We obtain them
by rendering a small probe frame with quick-built (low-fidelity)
representations: these statistics depend on scene *geometry*, not on how
well the representation is trained, so the probes use minimal training.
Results are cached per (scene, pipeline).
"""

from __future__ import annotations

import numpy as np

from repro.renderers import build_representation, PIPELINE_RENDERERS
from repro.renderers.nerf.sampling import OccupancyGrid, sample_along_rays
from repro.scenes import Camera, get_scene, orbit_poses

#: Probe frame resolution; statistics are resolution-stable ratios.
PROBE_SIZE = 40

#: Samples per probe ray for the field-based ray statistics.
PROBE_SAMPLES = 96

#: MixRT's volume pass only shades content its mesh layer represents
#: poorly; empirically about half of a standalone volume pass survives.
MIXRT_VOLUME_SHARE = 0.5

#: Quick-build parameters per pipeline: fidelity does not affect the
#: measured geometry statistics, so training is minimal.
_PROBE_BUILD_KWARGS: dict[str, dict] = {
    "mesh": {"quality": 0.8, "train_steps": 10},
    "mlp": {"grid_size": 3, "train_steps": 10, "samples_per_ray": 96},
    "lowrank": {"train_steps": 10, "samples_per_ray": 96},
    "hashgrid": {"train_steps": 10, "samples_per_ray": 96},
    "gaussian": {"n_gaussians": 4000},
    "mixrt": {"mesh_train_steps": 10, "hash_train_steps": 10, "samples_per_ray": 96},
}

_CACHE: dict[tuple[str, str], dict[str, float]] = {}


def clear_measure_cache() -> None:
    _CACHE.clear()
    _RAY_STATS_CACHE.clear()


def measure_coeffs(scene_name: str, pipeline: str, n_views: int = 2) -> dict[str, float]:
    """Probe a scene under one pipeline; returns averaged coefficients.

    Keys (all dimensionless):

    * ``live_fraction`` — samples surviving empty-space skipping.
    * ``coverage`` — fraction of pixels covered by geometry.
    * ``overdraw`` — triangle coverage tests per pixel. Dominated by the
      screen-space footprint of visible surfaces, so it is stable under
      retessellation (finer triangles shrink individually).
    * ``visible_fraction`` — splats surviving culling.
    * ``splat_overlap`` — splat/pixel tests per visible splat, times the
      probe count (scale-free overlap statistic).
    * ``sort_share`` — sorted elements per pixel per visible splat.
    * ``complexity`` — the scene registry's relative complexity knob.
    """
    key = (scene_name, pipeline)
    if key in _CACHE:
        return _CACHE[key]

    spec = get_scene(scene_name)
    field = spec.field()

    if pipeline in ("mlp", "lowrank", "hashgrid", "mixrt"):
        # Ray statistics come from the ground-truth field: a *converged*
        # model skips and terminates where the true density says so, so
        # probing the field avoids any dependence on probe-model quality.
        coeffs = dict(_ray_stats(scene_name))
        coeffs["complexity"] = spec.complexity
        if pipeline == "mixrt":
            coeffs["live_fraction"] *= MIXRT_VOLUME_SHARE
        _CACHE[key] = coeffs
        return coeffs
    model = build_representation(
        scene_name, pipeline, cache=True, **_PROBE_BUILD_KWARGS.get(pipeline, {})
    )
    renderer = PIPELINE_RENDERERS[pipeline](model, field)
    poses = orbit_poses(spec.camera_radius, max(n_views, 1))

    totals: dict[str, float] = {}
    for pose in poses[:n_views]:
        camera = Camera(PROBE_SIZE, PROBE_SIZE, pose=pose)
        _image, stats = renderer.render(camera)
        for k, v in stats.counts.items():
            totals[k] = totals.get(k, 0.0) + v

    pixels = max(totals.get("pixels", 1.0), 1.0)
    coeffs: dict[str, float] = {"complexity": spec.complexity}

    samples_total = totals.get("samples_total", 0.0)
    if samples_total > 0:
        # Prefer the early-ray-termination count (what a deployed
        # renderer shades); fall back to the skip-only count.
        effective = totals.get("samples_effective", totals.get("samples_shaded", 0.0))
        coeffs["live_fraction"] = effective / samples_total

    if totals.get("tri_tests", 0.0) > 0:
        covered = totals.get("mlp_inputs", totals.get("texture_fetches", 0.0) / 4.0)
        if pipeline == "mixrt":
            covered = totals.get("texture_fetches", 0.0) / 4.0
        coeffs["coverage"] = min(covered / pixels, 1.0)
        coeffs["overdraw"] = totals.get("tri_tests", 0.0) / pixels

    projected = totals.get("gaussians_projected", 0.0)
    if projected > 0:
        visible = totals.get("mlp_inputs", 0.0)  # SH decoded per visible
        coeffs["visible_fraction"] = min(visible / projected, 1.0)
        if visible > 0:
            coeffs["splat_overlap"] = totals.get("splat_tests", 0.0) / pixels / visible
            coeffs["sort_share"] = totals.get("sort_elements", 0.0) / pixels / visible

    _CACHE[key] = coeffs
    return coeffs


_RAY_STATS_CACHE: dict[str, dict[str, float]] = {}


def _ray_stats(scene_name: str) -> dict[str, float]:
    """Field-derived ray statistics: occupancy-skip plus early-ray-
    termination survival fraction, averaged over probe views."""
    if scene_name in _RAY_STATS_CACHE:
        return _RAY_STATS_CACHE[scene_name]
    spec = get_scene(scene_name)
    field = spec.field()
    occupancy = OccupancyGrid(field, resolution=32)
    poses = orbit_poses(spec.camera_radius, 3)
    t_range = field.ray_t_range()

    live_total = 0
    sample_total = 0
    for pose in poses:
        camera = Camera(PROBE_SIZE, PROBE_SIZE, pose=pose)
        origins, dirs = camera.rays()
        points, dt = sample_along_rays(origins, dirs, t_range, PROBE_SAMPLES)
        flat = points.reshape(-1, 3)
        live = occupancy.query(flat).reshape(len(origins), PROBE_SAMPLES)
        sigma = field.density(flat).reshape(len(origins), PROBE_SAMPLES)
        alpha = 1.0 - np.exp(-np.maximum(sigma, 0.0) * dt)
        transmittance = np.cumprod(1.0 - alpha + 1e-10, axis=1)
        before_term = np.concatenate(
            [np.ones_like(transmittance[:, :1], dtype=bool), transmittance[:, :-1] > 1e-2],
            axis=1,
        )
        live_total += int((live & before_term).sum())
        sample_total += live.size
    stats = {"live_fraction": live_total / max(sample_total, 1)}
    _RAY_STATS_CACHE[scene_name] = stats
    return stats
