"""The six pipeline compilers: one frame -> micro-operator program.

Each compiler mirrors its pipeline's figure in the paper (Figs. 2-6 and
the MixRT composition of Sec. VII-C), emitting invocations of exactly
the micro-operators Table II assigns to each step.
"""

from __future__ import annotations

import numpy as np

from repro.compile.measure import measure_coeffs
from repro.compile.profiles import GaussianProfile, MeshProfile, VolumeProfile, profile_for
from repro.compile.workloads import (
    gemm_workload,
    geometric_workload,
    grid_workload,
    sorting_workload,
)
from repro.core.microops import MicroOp, MicroOpProgram, Workload
from repro.errors import CompileError
from repro.scenes import get_scene

#: 3DGS sorts per 16x16 patch.
PATCH = 16


def _blending_workload(
    shaded_samples: float, pixels: float, stream_inputs: bool = True
) -> Workload:
    """Volume blending as the GEMM micro-operator ("Others", Table II):
    per surviving sample one alpha conversion (exp on the SFU), one
    transmittance update, and three color MACs.

    ``stream_inputs`` is True for the ray-marching pipelines, whose
    (sigma, rgb) samples were written to external memory by the MLP
    phase (Fig. 9a: intermediate results live off chip); 3DGS fragments
    are produced and consumed inside the tile, so only the final pixels
    stream out.
    """
    in_bytes = shaded_samples * 8.0 if stream_inputs else 0.0
    return Workload(
        int_ops=shaded_samples,
        bf16_ops=shaded_samples * 5.0,
        sfu_ops=shaded_samples,
        sram_accesses=shaded_samples * 5.0,
        dram_unique_bytes=64.0,
        working_set_bytes=64.0,
        streaming_bytes=in_bytes + pixels * 6.0,
        items=shaded_samples,
    )


# ----------------------------------------------------------------------
# Mesh (Fig. 2)
# ----------------------------------------------------------------------
def compile_mesh(scene_name: str, width: int, height: int) -> MicroOpProgram:
    spec = get_scene(scene_name)
    profile: MeshProfile = profile_for("mesh", spec.kind)
    coeffs = measure_coeffs(scene_name, "mesh")
    pixels = float(width * height)
    # MobileNeRF rasterizes at supersampled resolution and, for unbounded
    # scenes, in several alpha layers; both multiply the fragment work.
    fragments_scale = profile.supersample * profile.n_layers
    coverage = coeffs.get("coverage", 0.5)
    covered = coverage * pixels * fragments_scale
    tests = (
        coeffs.get("overdraw", 4.0) * pixels * fragments_scale
        + 4.0 * profile.n_triangles * profile.n_layers
    )
    n_verts = 0.6 * profile.n_triangles

    program = MicroOpProgram(pipeline="mesh", pixels=int(pixels))
    program.append(
        MicroOp.GEMM,
        "space_conversion",
        gemm_workload(
            macs=n_verts * 16.0,
            rows=n_verts,
            in_width=4,
            out_width=4,
            weight_bytes=64.0,
            act_bytes=4.0,
        ),
    )
    program.append(
        MicroOp.GEOMETRIC,
        "rasterization",
        geometric_workload(
            tests=tests,
            primitives=float(profile.n_triangles),
            primitive_bytes=28.0,  # 3 indices + 3 screen verts (packed)
            output_bytes=covered * 8.0,
        ),
    )
    program.append(
        MicroOp.COMBINED_GRID,
        "texture_indexing",
        grid_workload(
            lookups=covered * 4.0,
            fetch_bytes=float(profile.texel_bytes),
            table_bytes=float(profile.texture_bytes),
            int_ops_per_lookup=4.0,
            bf16_per_lookup=float(profile.texel_bytes),
            coord_stream_bytes=covered * 8.0,
        ),
    )
    # MobileNeRF's deferred MLP is a full-screen pass over the feature
    # G-buffer: it runs once per (supersampled) screen pixel regardless
    # of coverage; uncovered pixels decode the background.
    shaded_pixels = pixels * profile.supersample
    program.append(
        MicroOp.GEMM,
        "mlp_shading",
        gemm_workload(
            macs=shaded_pixels * profile.shader_macs_per_pixel,
            rows=shaded_pixels,
            in_width=11,
            out_width=3,
            weight_bytes=float(profile.shader_weight_bytes),
        ),
    )
    return program


# ----------------------------------------------------------------------
# Volume pipelines (Figs. 3-5) share one skeleton
# ----------------------------------------------------------------------
def _compile_volume(
    scene_name: str, pipeline: str, width: int, height: int, grid_op: MicroOp | None
) -> MicroOpProgram:
    spec = get_scene(scene_name)
    profile: VolumeProfile = profile_for(pipeline, spec.kind)
    coeffs = measure_coeffs(scene_name, pipeline)
    pixels = float(width * height)
    live = coeffs.get("live_fraction", 0.05)
    shaded = pixels * profile.samples_per_ray * live

    program = MicroOpProgram(pipeline=pipeline, pixels=int(pixels))
    if grid_op is not None:
        lookups = shaded * profile.lookups_per_sample
        stage = "hash_indexing" if grid_op is MicroOp.COMBINED_GRID else "lowrank_indexing"
        # Sample coordinates are generated on chip by the ray marcher;
        # only camera parameters stream in (negligible).
        program.append(
            grid_op,
            stage,
            grid_workload(
                lookups=lookups,
                fetch_bytes=float(profile.fetch_bytes),
                table_bytes=float(profile.table_bytes) * profile.touched_fraction,
                int_ops_per_lookup=float(profile.lookup_int_ops),
                bf16_per_lookup=profile.fetch_bytes / 2.0,
                sfu_ops=shaded * profile.encoding_sfu_per_sample,
            ),
        )
        mlp_sfu = 0.0
    else:
        # Pure-MLP pipelines evaluate positional encodings on the SFUs.
        mlp_sfu = shaded * profile.encoding_sfu_per_sample

    # The grid -> blend -> decode chain is fused per tile: features and
    # per-sample values flow through the global buffer, never to DRAM.
    mlp_rows = pixels if profile.deferred else shaded
    if profile.deferred:
        # MeRF-style deferred shading: blend features along the ray
        # first, then decode once per pixel.
        program.append(
            MicroOp.GEMM,
            "blending",
            _blending_workload(shaded, pixels, stream_inputs=False),
        )
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(
            macs=mlp_rows * profile.mlp_macs_per_sample,
            rows=mlp_rows,
            in_width=32,
            out_width=4,
            weight_bytes=float(profile.mlp_weight_bytes),
            sfu_ops=mlp_sfu,
            stream_in=False,
            stream_out=not profile.deferred,
        ),
    )
    if not profile.deferred:
        program.append(
            MicroOp.GEMM,
            "blending",
            _blending_workload(shaded, pixels, stream_inputs=False),
        )
    return program


def compile_mlp(
    scene_name: str, width: int, height: int, pixel_reuse: int = 1
) -> MicroOpProgram:
    """MLP pipeline; ``pixel_reuse`` > 1 enables the MetaVRain-style
    Pixel-Reuse optimization [32] (Table IV): only 1/R of the pixels are
    rendered and the rest are reused from neighbouring frames, cutting
    per-sample work by ~R (the paper cites ~20x) and weight traffic by
    the corresponding locality gain."""
    program = _compile_volume(scene_name, "mlp", width, height, grid_op=None)
    if pixel_reuse <= 1:
        return program
    reused = MicroOpProgram(pipeline="mlp", pixels=program.pixels)
    for inv in program.invocations:
        scaled = inv.workload.scaled(1.0 / pixel_reuse)
        # Fewer rays also touch fewer KiloNeRF cells per frame.
        scaled.working_set_bytes = inv.workload.working_set_bytes / (pixel_reuse**0.5)
        scaled.dram_unique_bytes = min(scaled.dram_unique_bytes * pixel_reuse,
                                       scaled.working_set_bytes)
        reused.append(inv.op, inv.name, scaled)
    return reused


def compile_lowrank(scene_name: str, width: int, height: int) -> MicroOpProgram:
    return _compile_volume(
        scene_name, "lowrank", width, height, grid_op=MicroOp.DECOMPOSED_GRID
    )


def compile_hashgrid(scene_name: str, width: int, height: int) -> MicroOpProgram:
    return _compile_volume(
        scene_name, "hashgrid", width, height, grid_op=MicroOp.COMBINED_GRID
    )


# ----------------------------------------------------------------------
# 3D Gaussian (Fig. 6)
# ----------------------------------------------------------------------
def compile_gaussian(scene_name: str, width: int, height: int) -> MicroOpProgram:
    spec = get_scene(scene_name)
    profile: GaussianProfile = profile_for("gaussian", spec.kind)
    coeffs = measure_coeffs(scene_name, "gaussian")
    pixels = float(width * height)
    # Scene-to-scene visibility variation from the probe (centered on the
    # ~0.9 typical probe visibility), anchored to the profile's deployed
    # average visible fraction.
    scene_factor = 0.5 + 0.5 * coeffs.get("visible_fraction", 0.9) / 0.9
    visible = profile.n_gaussians * profile.visible_fraction * scene_factor
    tests = profile.splat_tests_per_pixel * pixels * coeffs.get("complexity", 1.0)

    program = MicroOpProgram(pipeline="gaussian", pixels=int(pixels))
    program.append(
        MicroOp.GEMM,
        "space_conversion",
        gemm_workload(
            macs=profile.n_gaussians * 50.0,  # 4x4 matvec + covariance J
            rows=float(profile.n_gaussians),
            in_width=4,
            out_width=8,
            weight_bytes=256.0,
            act_bytes=4.0,
        ),
    )
    # Per-tile processing re-streams each splat's attributes for every
    # tile it touches (the dominant 3DGS memory term).
    attr_stream = visible * profile.tiles_per_splat * profile.gaussian_bytes
    program.append(
        MicroOp.GEOMETRIC,
        "splatting",
        geometric_workload(
            tests=tests,
            primitives=visible,
            primitive_bytes=float(profile.gaussian_bytes),
            int_ops_per_test=6.0,
            bf16_per_test=6.0,          # quadratic form per inspection
            sfu_ops=tests,               # exp() per density evaluation
            output_bytes=attr_stream,
        ),
    )
    elements = visible * profile.tiles_per_splat
    per_patch = elements / max(pixels / (PATCH * PATCH), 1.0)
    program.append(
        MicroOp.SORTING, "sorting", sorting_workload(elements, per_patch)
    )
    program.append(
        MicroOp.GEMM,
        "sh_color",
        gemm_workload(
            macs=visible * profile.sh_coeffs * 3.0,
            rows=visible,
            in_width=profile.sh_coeffs,
            out_width=3,
            weight_bytes=64.0,
        ),
    )
    # Alpha blending of surviving fragments (~1/3 of tested pairs);
    # fragments never leave the tile, so inputs do not stream.
    program.append(
        MicroOp.GEMM,
        "blending",
        _blending_workload(tests * 0.35, pixels, stream_inputs=False),
    )
    return program


# ----------------------------------------------------------------------
# MixRT hybrid (Sec. VII-C)
# ----------------------------------------------------------------------
def compile_mixrt(scene_name: str, width: int, height: int) -> MicroOpProgram:
    """MixRT = low-poly mesh pass + depth-limited hash-grid pass.

    The mesh layer carries ~40% of the standalone triangle budget; the
    volumetric pass shades only samples in front of surfaces, which the
    probe measures directly from the hybrid renderer.
    """
    spec = get_scene(scene_name)
    coeffs = measure_coeffs(scene_name, "mixrt")
    mesh_program = compile_mesh(scene_name, width, height)
    hash_program = compile_hashgrid(scene_name, width, height)

    program = MicroOpProgram(pipeline="mixrt", pixels=width * height)
    mesh_share = 0.4
    for inv in mesh_program.invocations:
        program.append(inv.op, f"mesh:{inv.name}", inv.workload.scaled(mesh_share))

    hash_coeffs = measure_coeffs(scene_name, "hashgrid")
    live_ratio = coeffs.get("live_fraction", 0.03) / max(
        hash_coeffs.get("live_fraction", 0.05), 1e-9
    )
    volume_share = float(np.clip(live_ratio, 0.1, 1.0))
    for inv in hash_program.invocations:
        program.append(inv.op, f"volume:{inv.name}", inv.workload.scaled(volume_share))
    return program


COMPILERS = {
    "mesh": compile_mesh,
    "mlp": compile_mlp,
    "lowrank": compile_lowrank,
    "hashgrid": compile_hashgrid,
    "gaussian": compile_gaussian,
    "mixrt": compile_mixrt,
}


def compile_program(
    scene_name: str, pipeline: str, width: int, height: int, **kwargs
) -> MicroOpProgram:
    """Lower one frame of ``pipeline`` on ``scene_name`` at WxH.

    Extra keyword arguments go to the pipeline's compiler (e.g.
    ``pixel_reuse`` for the MLP pipeline).
    """
    if pipeline not in COMPILERS:
        raise CompileError(
            f"unknown pipeline {pipeline!r}; choose from {sorted(COMPILERS)}"
        )
    if width < 1 or height < 1:
        raise CompileError("resolution must be positive")
    return COMPILERS[pipeline](scene_name, width, height, **kwargs)
