"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the everyday workflows:

* ``render``   — build a representation and render a probe frame.
* ``simulate`` — compile a frame and run the accelerator model.
* ``serve``    — run the multi-chip rendering service on synthetic load.
* ``federate`` — compose regions behind a global router with
  trace-library gossip and serve a planet-wide workload.
* ``sweep``    — fan independent service configurations across worker
  processes and merge the results deterministically.
* ``trace``    — summarize a ``serve --trace-out`` artifact.
* ``report``   — regenerate the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def _cmd_render(args) -> int:
    from repro.metrics import psnr
    from repro.renderers import PIPELINE_RENDERERS, build_representation
    from repro.scenes import Camera, get_scene, orbit_poses

    spec = get_scene(args.scene)
    field = spec.field()
    model = build_representation(args.scene, args.pipeline)
    renderer = PIPELINE_RENDERERS[args.pipeline](model, field)
    camera = Camera(args.size, args.size,
                    pose=orbit_poses(spec.camera_radius, 8)[args.view % 8])
    image, stats = renderer.render(camera)
    print(f"rendered {args.scene}/{args.pipeline} at {args.size}x{args.size}")
    if args.psnr:
        reference = field.render_reference(camera, n_samples=64)
        print(f"psnr {psnr(image, reference):.2f} dB")
    shown = {k: int(v) for k, v in sorted(stats.counts.items()) if v}
    print("workload counters:", shown)
    return 0


def _cmd_simulate(args) -> int:
    from repro.compile import compile_program
    from repro.core import UniRenderAccelerator
    from repro.core.config import AcceleratorConfig

    config = AcceleratorConfig().scaled(args.pe_scale, args.sram_scale)
    program = compile_program(args.scene, args.pipeline, args.width, args.height)
    result = UniRenderAccelerator(config).simulate(program)
    print(result.summary())
    if args.timeline:
        print(result.timeline())
    return 0


def _cmd_serve(args) -> int:
    from repro.core.config import AcceleratorConfig, CompileLatencyModel
    from repro.errors import ConfigError
    from repro.serve import (
        FaultPlan,
        PipelineBatcher,
        make_elastic_autoscaler,
        ServeCluster,
        SHARDING_POLICIES,
        TraceCache,
        TraceLibrary,
        format_service_report,
        generate_tenant_traffic,
        generate_traffic,
        make_admission_policy,
        parse_fleet_spec,
        simulate_service,
    )

    if args.prefetch and args.compile_workers < 1:
        raise ConfigError("--prefetch needs --compile-workers >= 1")
    compile_latency = (
        CompileLatencyModel() if args.compile_workers > 0 else None
    )
    config = AcceleratorConfig().scaled(args.pe_scale, args.sram_scale)
    fleet_configs = (
        parse_fleet_spec(args.fleet_spec, base=config) if args.fleet_spec else None
    )
    traffic_kwargs = dict(
        pattern=args.traffic,
        n_requests=args.requests,
        rate_rps=args.rate,
        seed=args.seed,
        scenes=tuple(args.scenes.split(",")),
        pipelines=tuple(args.pipelines.split(",")),
        resolution=(args.width, args.height),
        slo_s=args.slo_ms / 1e3,
    )
    if args.tenants:
        trace = generate_tenant_traffic(args.tenants, **traffic_kwargs)
    else:
        trace = generate_traffic(**traffic_kwargs)
    faults = FaultPlan.parse(args.faults) if args.faults else None

    def admission():
        if args.admission == "admit-all":
            return None
        return make_admission_policy(args.admission)

    def static_cluster(policy):
        if fleet_configs is not None:
            return ServeCluster(configs=fleet_configs, policy=policy)
        return ServeCluster(args.chips, config=config, policy=policy)

    # Every comparison run below warm-starts from the same *initial*
    # library state (what the file held when this invocation began), so
    # the static-vs-autoscaled and --compare-policies numbers stay
    # apples-to-apples — a later run must not inherit the compile
    # results an earlier run just flushed. Only the primary run (the
    # static fleet under the first policy) persists back to the file.
    import json

    initial_library = (TraceLibrary.load(args.trace_library).dumps()
                       if args.trace_library else None)

    def fresh_library():
        if initial_library is None:
            return None
        return TraceLibrary.from_dict(json.loads(initial_library))

    # Observability sinks ride on the *primary* run only (the static
    # fleet under the first policy) — comparison and autoscaled runs
    # stay untraced so their reports cost nothing extra and the trace
    # artifact describes exactly one schedule. ``--flight-recorder``
    # implies a tracer: a dump with no frozen events is useless.
    observer = None
    if args.trace_out or args.metrics_out or args.flight_recorder:
        from repro.obs import FlightRecorder, MetricsRegistry, Observer, Tracer

        observer = Observer(
            tracer=(Tracer(capacity=args.trace_capacity,
                           sample=args.trace_sample)
                    if args.trace_out or args.flight_recorder else None),
            metrics=(MetricsRegistry()
                     if args.trace_out or args.metrics_out else None),
            flight=FlightRecorder() if args.flight_recorder else None,
        )

    policies = sorted(SHARDING_POLICIES) if args.compare_policies else [args.policy]
    for index, policy in enumerate(policies):
        # Fresh cache/batcher per run so comparisons stay apples-to-apples.
        library = fresh_library()
        static = simulate_service(
            trace,
            static_cluster(policy),
            cache=TraceCache(capacity=args.cache_size),
            batcher=PipelineBatcher(max_batch=args.max_batch),
            admission=admission(),
            compile_workers=args.compile_workers,
            compile_latency=compile_latency,
            prefetch=args.prefetch,
            preempt=args.preempt,
            trace_library=library,
            observer=observer if index == 0 else None,
            faults=faults,
            hedge=args.hedge,
            columnar=not args.no_columnar,
        )
        print(format_service_report(static))
        if library is not None:
            if index == 0:
                # Merge-on-save: a concurrent process sharing this
                # library path must not lose its hits to ours.
                library.save(args.trace_library, merge=True)
                destination = f"-> {args.trace_library}"
            else:
                destination = "(comparison run, not persisted)"
            warmed = static.cache_stats.get("warmed", 0)
            print(
                f"trace library     {len(library):10d} traces "
                f"({library.total_hits} lifetime hits, {warmed} warm-started)"
                f" {destination}"
            )
        if args.autoscale:
            # Grow through the fleet spec round-robin; without a spec,
            # mix 2x-PE/2x-SRAM chips with the base design point.
            growth = fleet_configs or [config.scaled(2, 2), config]
            max_chips = len(fleet_configs) if fleet_configs else args.chips
            autoscaled = simulate_service(
                trace,
                ServeCluster(args.min_chips, config=config, policy=policy),
                cache=TraceCache(capacity=args.cache_size),
                batcher=PipelineBatcher(max_batch=args.max_batch),
                autoscaler=make_elastic_autoscaler(
                    min_chips=args.min_chips,
                    max_chips=max(max_chips, args.min_chips),
                    warmup_s=args.warmup_ms / 1e3,
                    growth_configs=growth,
                    mode=args.autoscale,
                ),
                admission=admission(),
                compile_workers=args.compile_workers,
                compile_latency=compile_latency,
                prefetch=args.prefetch,
                preempt=args.preempt,
                trace_library=fresh_library(),
                faults=faults,
                hedge=args.hedge,
                columnar=not args.no_columnar,
            )
            print()
            print(format_service_report(autoscaled))
            saved = 1.0 - autoscaled.total_chip_seconds / static.total_chip_seconds
            print(
                f"\nautoscaled vs static ({policy}): "
                f"SLO {autoscaled.slo_attainment * 100:.1f}% vs "
                f"{static.slo_attainment * 100:.1f}%, "
                f"chip-seconds {autoscaled.total_chip_seconds:.2f} vs "
                f"{static.total_chip_seconds:.2f} ({saved * 100:.0f}% saved), "
                f"cost {autoscaled.total_cost_units:.2f} vs "
                f"{static.total_cost_units:.2f} units"
            )
        if len(policies) > 1:
            print()

    if observer is not None:
        from pathlib import Path

        from repro.obs import save_chrome_trace, save_metrics

        if args.trace_out:
            tracer = observer.tracer
            path = save_chrome_trace(tracer, args.trace_out,
                                     metrics=observer.metrics)
            print(f"trace             {tracer.recorded:10d} events "
                  f"({tracer.dropped} dropped) -> {path}")
        if args.metrics_out:
            path = save_metrics(observer.metrics, args.metrics_out)
            rows = len(observer.metrics.timeline)
            print(f"metrics           {rows:10d} timeline rows -> {path}")
        flight = observer.flight
        if flight is not None:
            if flight.dumps:
                base = args.trace_out or args.metrics_out or "serve"
                path = flight.save(Path(base).with_suffix(".flight.json"))
                print(f"flight recorder   {len(flight.dumps):10d} dumps "
                      f"({flight.n_triggers} triggers) -> {path}")
            else:
                print("flight recorder   armed, no dumps triggered")
    return 0


def _cmd_federate(args) -> int:
    from repro.serve import (
        FederationConfig,
        FederationPlan,
        format_federation_report,
        generate_federation_traffic,
        parse_region_spec,
        simulate_federation,
    )

    specs = parse_region_spec(args.regions)
    config = FederationConfig(
        router=args.router,
        gossip=not args.no_gossip,
        sync_cadence_s=args.sync_ms / 1e3,
        gossip_delay_s=args.gossip_delay_ms / 1e3,
        failover_cost_s=args.failover_ms / 1e3,
        admission=None if args.admission == "admit-all" else args.admission,
    )
    plan = (FederationPlan.parse(args.faults) if args.faults
            else FederationPlan())
    streams = generate_federation_traffic(
        specs,
        n_requests_per_region=args.requests,
        rate_rps=args.rate,
        seed=args.seed,
        pattern=args.traffic,
        scenes=tuple(args.scenes.split(",")),
        pipelines=tuple(args.pipelines.split(",")),
        resolution=(args.width, args.height),
        slo_s=args.slo_ms / 1e3,
    )
    report = simulate_federation(specs, streams, config=config, plan=plan)
    print(format_federation_report(report))
    if args.out:
        import json

        from repro.persist import atomic_write_text

        atomic_write_text(
            args.out, json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True) + "\n")
        print(f"federation report -> {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    import json
    import time
    from pathlib import Path

    from repro.analysis.runner import (
        SCENARIO_DEFAULTS,
        experiment_points,
        run_sweep,
        scenario_points,
        sweep_table,
    )
    from repro.errors import ConfigError

    def parse_assignment(entry: str) -> tuple[str, str]:
        key, sep, raw = entry.partition("=")
        if not sep or not key or not raw:
            raise ConfigError(f"expected KEY=VALUE, got {entry!r}")
        return key, raw

    def coerce(key: str, raw: str):
        """Parse a value to the type of the scenario default it overrides."""
        default = SCENARIO_DEFAULTS.get(key)
        if isinstance(default, bool):
            return raw.lower() in ("1", "true", "yes", "on")
        if isinstance(default, int):
            return int(raw)
        if isinstance(default, float):
            return float(raw)
        return raw

    if args.experiment:
        if args.set or args.vary:
            raise ConfigError(
                "--experiment sweeps run the experiment's registered arms; "
                "--set/--vary apply to scenario sweeps only")
        points = experiment_points(args.experiment)
    else:
        base: dict = {}
        for entry in args.set or []:
            key, raw = parse_assignment(entry)
            base[key] = coerce(key, raw)
        vary: dict = {}
        for entry in args.vary or []:
            key, raw = parse_assignment(entry)
            # Dedupe on *parsed* values: "0.50" and "0.5" are one float,
            # and two points with one name would collide in the
            # name-sorted sweep merge.
            vary[key] = list(dict.fromkeys(
                coerce(key, value) for value in raw.split(",")))
        points = scenario_points(base, vary)

    started = time.perf_counter()
    sweep = run_sweep(points, workers=args.workers)
    elapsed = time.perf_counter() - started
    print(sweep_table(sweep))
    print(f"\n{sweep['n_points']} point(s), {args.workers} worker(s), "
          f"{elapsed:.1f}s wall")
    if args.out:
        from repro.persist import atomic_write_text

        atomic_write_text(
            Path(args.out),
            json.dumps(sweep, indent=2, sort_keys=True) + "\n")
        print(f"sweep results -> {args.out}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import load_chrome_trace, summarize_chrome_trace

    print(summarize_chrome_trace(load_chrome_trace(args.file)))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis import ALL_EXPERIMENTS, run_all

    ids = tuple(args.experiments) if args.experiments else None
    if ids:
        unknown = [e for e in ids if e not in ALL_EXPERIMENTS]
        if unknown:
            raise ReproError(
                f"unknown experiments {unknown}; choose from {list(ALL_EXPERIMENTS)}"
            )
    for exp_id, result in run_all(ids).items():
        title, _fn = ALL_EXPERIMENTS[exp_id]
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
        print(result["text"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Uni-Render reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="functionally render a scene")
    render.add_argument("scene")
    render.add_argument("--pipeline", default="hashgrid")
    render.add_argument("--size", type=int, default=48)
    render.add_argument("--view", type=int, default=0)
    render.add_argument("--psnr", action="store_true",
                        help="also score against the reference image")
    render.set_defaults(fn=_cmd_render)

    simulate = sub.add_parser("simulate", help="run the accelerator model")
    simulate.add_argument("scene")
    simulate.add_argument("pipeline")
    simulate.add_argument("--width", type=int, default=1280)
    simulate.add_argument("--height", type=int, default=720)
    simulate.add_argument("--pe-scale", type=int, default=1)
    simulate.add_argument("--sram-scale", type=int, default=1)
    simulate.add_argument("--timeline", action="store_true",
                          help="print the per-phase ASCII timeline")
    simulate.set_defaults(fn=_cmd_simulate)

    serve = sub.add_parser("serve", help="run the simulated rendering service")
    serve.add_argument("--chips", type=int, default=4)
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--traffic", default="mixed",
                       help="steady | bursty | diurnal | mixed")
    serve.add_argument("--policy", default="pipeline-affinity",
                       help="round-robin | least-loaded | pipeline-affinity")
    serve.add_argument("--compare-policies", action="store_true",
                       help="run every sharding policy on the same trace")
    serve.add_argument("--rate", type=float, default=150.0,
                       help="mean arrival rate, requests/s")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--scenes", default="lego,room",
                       help="comma-separated scene names")
    serve.add_argument("--pipelines", default="hashgrid,gaussian,mesh",
                       help="comma-separated pipeline names")
    serve.add_argument("--width", type=int, default=640)
    serve.add_argument("--height", type=int, default=360)
    serve.add_argument("--slo-ms", type=float, default=50.0,
                       help="per-request latency SLO, milliseconds")
    serve.add_argument("--cache-size", type=int, default=64,
                       help="trace-cache capacity (0 disables caching)")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--pe-scale", type=int, default=1)
    serve.add_argument("--sram-scale", type=int, default=1)
    serve.add_argument("--autoscale", nargs="?", const="reactive",
                       choices=["reactive", "predictive"], default=None,
                       help="also run an autoscaled fleet (floor "
                            "--min-chips, ceiling --chips or the fleet "
                            "spec) and compare it against the static one; "
                            "the optional mode picks the controller: "
                            "reactive (default) trails queue/SLO pressure, "
                            "predictive forecasts the arrival-rate trend "
                            "and provisions one warm-up ahead of it")
    serve.add_argument("--min-chips", type=int, default=2,
                       help="autoscaler fleet floor")
    serve.add_argument("--warmup-ms", type=float, default=5.0,
                       help="delay before an added chip accepts work")
    serve.add_argument("--admission", default="admit-all",
                       help="admit-all | tail-drop | slo-shed | downgrade "
                            "| weighted (weighted budgets the queue per "
                            "tenant share; pair it with --tenants)")
    serve.add_argument("--tenants", default=None,
                       help="multi-tenant traffic spec: ';'-separated "
                            "name:key=value,... entries with keys tier= "
                            "(dispatch priority, lower = more premium), "
                            "weight= (fleet share under weighted "
                            "admission), slo= (SLO multiplier), share= "
                            "(traffic fraction), e.g. "
                            "'premium:tier=0,weight=4,share=0.25;"
                            "economy:tier=1,slo=2'")
    serve.add_argument("--preempt", action="store_true",
                       help="arm batch preemption: dispatch-ahead batches "
                            "stay queued (staged) on busy chips and a "
                            "premium arrival may displace a staged batch "
                            "of a more economical tier")
    serve.add_argument("--fleet-spec", default=None,
                       help="heterogeneous fleet as [count*]PExSRAM entries, "
                            "e.g. '3*1x1,1*2x2' (static fleet composition "
                            "and the autoscaler's growth pool)")
    serve.add_argument("--compile-workers", type=int, default=0,
                       help="compile worker pool size: 0 keeps compilation "
                            "invisible to simulated time (the synchronous "
                            "baseline); N>=1 overlaps compile-on-miss with "
                            "chip execution")
    serve.add_argument("--prefetch", action="store_true",
                       help="warm the trace cache with keys predicted by "
                            "a per-session Markov model over pipeline "
                            "transitions during idle compile capacity "
                            "(needs --compile-workers >= 1)")
    serve.add_argument("--trace-library", default=None, metavar="PATH",
                       help="persistent trace library: warm-start the "
                            "trace cache from this JSON artifact (absent "
                            "file = cold start) and flush updated trace "
                            "metadata back to it on shutdown, so a "
                            "restarted service skips the cold-miss storm")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON of the "
                            "primary run (open it in Perfetto / "
                            "chrome://tracing, or summarize it with "
                            "'repro trace PATH')")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="R",
                       help="fraction of requests whose lifecycle events "
                            "are traced (deterministic per-request hash; "
                            "fleet-scope events always trace)")
    serve.add_argument("--trace-capacity", type=int, default=65536,
                       metavar="N",
                       help="tracer ring-buffer capacity; oldest events "
                            "drop first")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics timeline of the primary "
                            "run ('.csv' suffix for CSV, anything else "
                            "for JSON)")
    serve.add_argument("--flight-recorder", action="store_true",
                       help="arm the flight recorder: on a shed burst, "
                            "an SLO-attainment dip, or a chip crash, "
                            "freeze the recent trace history plus a "
                            "metrics snapshot into a .flight.json "
                            "artifact next to --trace-out")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="chaos fault plan: ';'-separated "
                            "crash=CHIP@AT[+DOWN] (omit +DOWN for a "
                            "permanent loss), slow=CHIP@A-BxF (straggler "
                            "window, service times xF), stall=A-BxF "
                            "(compile-worker stall), rollback=S "
                            "(checkpoint-rollback cost per crash retry), "
                            "e.g. 'crash=1@0.010+0.050;slow=2@0-0.1x4'; "
                            "or 'seeded:seed=S,chips=N,horizon=H[,...]' "
                            "for a randomized plan")
    serve.add_argument("--no-columnar", action="store_true",
                       help="force the scalar reference event loop even "
                            "for configurations the columnar fast path "
                            "accepts (reports are byte-identical either "
                            "way; this is the escape hatch / A-B knob)")
    serve.add_argument("--hedge", action="store_true",
                       help="arm request hedging: duplicate a queued "
                            "request onto a second chip once its queue "
                            "age crosses a quantile-derived threshold; "
                            "first completion wins, the loser is "
                            "cancelled or counted as wasted work "
                            "(exactly-once in the report)")
    serve.set_defaults(fn=_cmd_serve)

    federate = sub.add_parser(
        "federate",
        help="serve a planet-wide workload across federated regions "
             "with trace-library gossip replication")
    federate.add_argument("--regions",
                          default="us-east:tz=-5,chips=3;"
                                  "eu-west:tz=1,chips=3,cost=1.2;"
                                  "ap-tokyo:tz=9,chips=3",
                          help="region topology: ';'-separated "
                               "name[:tz=H,chips=N,cost=F,cap=N,"
                               "policy=P] entries")
    federate.add_argument("--router", default="federated",
                          choices=["naive", "federated"],
                          help="naive pins requests to their home region "
                               "(and fails them when it is down); "
                               "federated scores latency + load + cost "
                               "with sticky sessions and failover")
    federate.add_argument("--no-gossip", action="store_true",
                          help="disable trace-library replication between "
                               "regions (every region compiles cold)")
    federate.add_argument("--requests", type=int, default=150,
                          help="requests per region")
    federate.add_argument("--traffic", default="diurnal",
                          help="steady | bursty | diurnal | mixed (each "
                               "region's wave is phase-shifted by its "
                               "time zone)")
    federate.add_argument("--rate", type=float, default=150.0,
                          help="mean arrival rate per region, requests/s")
    federate.add_argument("--seed", type=int, default=0)
    federate.add_argument("--scenes", default="lego,room")
    federate.add_argument("--pipelines", default="hashgrid,gaussian,mesh")
    federate.add_argument("--width", type=int, default=640)
    federate.add_argument("--height", type=int, default=360)
    federate.add_argument("--slo-ms", type=float, default=120.0,
                          help="per-request latency SLO (the planetary "
                               "budget: cross-region failover pays RTT + "
                               "migration cost against it)")
    federate.add_argument("--sync-ms", type=float, default=500.0,
                          help="gossip sync cadence, milliseconds")
    federate.add_argument("--gossip-delay-ms", type=float, default=250.0,
                          help="replication transit time; staleness bound "
                               "= cadence + delay")
    federate.add_argument("--failover-ms", type=float, default=20.0,
                          help="session-migration cost charged on a "
                               "cross-region failover")
    federate.add_argument("--admission", default="admit-all",
                          help="per-region admission policy: admit-all | "
                               "tail-drop | slo-shed | downgrade")
    federate.add_argument("--faults", default=None, metavar="SPEC",
                          help="federation fault plan: ';'-separated "
                               "outage=REGION@START[+DUR] (omit +DUR for "
                               "a permanent loss) and "
                               "partition=A|B@START[+DUR] (replication "
                               "channel severed), e.g. "
                               "'outage=eu-west@0.6+1.2;"
                               "partition=us-east|ap-tokyo@0.4+0.8'")
    federate.add_argument("--out", default=None, metavar="PATH",
                          help="write the federation report JSON here")
    federate.set_defaults(fn=_cmd_federate)

    sweep = sub.add_parser(
        "sweep",
        help="fan independent service configurations across worker "
             "processes; the merged result is byte-identical to a "
             "serial run (every point regenerates its seeded trace, "
             "results merge sorted by name)")
    sweep.add_argument("--experiment", default=None,
                       choices=["ext_chaos", "ext_federation",
                                "ext_tenants", "ext_predictive"],
                       help="sweep the registered arms of one analysis "
                            "experiment instead of an ad-hoc scenario "
                            "grid (ext_predictive covers the fleet arms; "
                            "its warm/cold restart phases are "
                            "sequential by construction and stay in "
                            "'repro report')")
    sweep.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override one scenario default (repeatable), "
                            "e.g. --set traffic=diurnal --set chips=4")
    sweep.add_argument("--vary", action="append", metavar="KEY=V1,V2",
                       help="sweep axis: run every combination of the "
                            "listed values (repeatable; axes cross-"
                            "multiply), e.g. --vary rate=200,400 "
                            "--vary admission=admit-all,slo-shed")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial in-process)")
    sweep.add_argument("--out", default=None, metavar="PATH",
                       help="write the merged sweep JSON here")
    sweep.set_defaults(fn=_cmd_sweep)

    trace = sub.add_parser("trace",
                           help="summarize a 'serve --trace-out' artifact")
    trace.add_argument("file", help="Chrome trace-event JSON written by "
                                    "'repro serve --trace-out'")
    trace.set_defaults(fn=_cmd_trace)

    report = sub.add_parser("report", help="regenerate paper experiments")
    report.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
