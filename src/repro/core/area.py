"""Area model (28 nm, Sec. VII-A / Fig. 15).

The paper reports 14.96 mm^2 with breakdown 54 % computing & control
logic, 31 % SRAM inside the PE array, 15 % SRAM outside. We model area
as constant-per-component at that technology node; the constants are
back-computed from the paper's totals (the RTL -> Design Compiler ->
Innovus flow is substituted per DESIGN.md section 3) and stay valid as
the configuration scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AcceleratorConfig

#: mm^2 per PE of computing & control logic (ALU, controller, routers):
#: 54% of 14.96 mm^2 spread over 256 PEs.
LOGIC_MM2_PER_PE = 0.54 * 14.96 / 256

#: mm^2 per KB of PE-local scratch-pad SRAM (many small single-port
#: macros): 31% of 14.96 mm^2 over 1.25 MB.
PE_SRAM_MM2_PER_KB = 0.31 * 14.96 / 1280

#: mm^2 per KB of the global buffer (wide multi-banked macros have a
#: higher per-KB cost): 15% of 14.96 mm^2 over 256 KB.
GLOBAL_SRAM_MM2_PER_KB = 0.15 * 14.96 / 256


@dataclass(frozen=True)
class AreaReport:
    """Component areas in mm^2 (Fig. 15, left)."""

    logic: float
    pe_sram: float
    global_sram: float

    @property
    def total(self) -> float:
        return self.logic + self.pe_sram + self.global_sram

    def breakdown(self) -> dict[str, float]:
        """Fractions per component, matching Fig. 15's area pie."""
        total = self.total
        return {
            "computing_and_control_logic": self.logic / total,
            "sram_inside_pe_array": self.pe_sram / total,
            "sram_outside_pe_array": self.global_sram / total,
        }


def area_report(config: AcceleratorConfig) -> AreaReport:
    """Area of a design point."""
    pe_sram_kb = config.n_pes * (
        config.ff_scratchpad_bytes + config.ps_scratchpad_bytes
    ) / 1024
    return AreaReport(
        logic=config.n_pes * LOGIC_MM2_PER_PE,
        pe_sram=pe_sram_kb * PE_SRAM_MM2_PER_KB,
        global_sram=(config.global_buffer_bytes / 1024) * GLOBAL_SRAM_MM2_PER_KB,
    )
