"""Dataflows for the five micro-operators (Sec. VI) and their costs.

``MODULE_STATUS`` is Table III in executable form: which networks, PE
controller program, scratch-pad contents, ALU layout, and PS role each
micro-operator needs. ``phase_cost`` prices one invocation:

* compute cycles — lane-limited issue over the PE array, derated by a
  per-dataflow efficiency (indirection stalls, pipeline bubbles, the
  GEMM buffer stage of Sec. VII-E);
* DRAM traffic — compulsory bytes times a spill factor
  ``min(max(1, working_set / on-chip), no-reuse ceiling)`` plus
  uncacheable streaming bytes. The ``max(compute, memory)`` composition
  happens in the scheduler (double-buffered tiles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alu import ALUMode
from repro.core.config import AcceleratorConfig
from repro.core.microops import MicroOp, Workload
from repro.core.network import ArrayMode, ReductionLinks
from repro.core.pe import ControllerMode, PSUse
from repro.errors import ConfigError


@dataclass(frozen=True)
class ModuleStatus:
    """One row of Table III."""

    input_network: bool
    reduction_links: ReductionLinks
    array_mode: ArrayMode
    controller: ControllerMode
    ff_contents: str
    alu_mode: ALUMode
    ps_use: PSUse


#: Table III verbatim.
MODULE_STATUS: dict[MicroOp, ModuleStatus] = {
    MicroOp.GEOMETRIC: ModuleStatus(
        input_network=False,
        reduction_links=ReductionLinks.OFF,
        array_mode=ArrayMode.PIPELINE,
        controller=ControllerMode.RASTERIZATION,
        ff_contents="geometry_representation",
        alu_mode=ALUMode.VECTOR,
        ps_use=PSUse.Z_BUFFER,
    ),
    MicroOp.COMBINED_GRID: ModuleStatus(
        input_network=True,
        reduction_links=ReductionLinks.HORIZONTAL,
        array_mode=ArrayMode.PIPELINE,
        controller=ControllerMode.GRID,
        ff_contents="grid_features",
        alu_mode=ALUMode.INDEX_FUNCTION,
        ps_use=PSUse.OFF,
    ),
    MicroOp.DECOMPOSED_GRID: ModuleStatus(
        input_network=True,
        reduction_links=ReductionLinks.FULL,
        array_mode=ArrayMode.PIPELINE,
        controller=ControllerMode.GRID,
        ff_contents="grid_features",
        alu_mode=ALUMode.INDEX_FUNCTION,
        ps_use=PSUse.OFF,
    ),
    MicroOp.SORTING: ModuleStatus(
        input_network=False,
        reduction_links=ReductionLinks.OFF,
        array_mode=ArrayMode.PIPELINE,
        controller=ControllerMode.SORTING,
        ff_contents="sorting_elements",
        alu_mode=ALUMode.COMPARATOR,
        ps_use=PSUse.OFF,
    ),
    MicroOp.GEMM: ModuleStatus(
        input_network=True,
        reduction_links=ReductionLinks.OFF,
        array_mode=ArrayMode.SYSTOLIC,
        controller=ControllerMode.GEMM,
        ff_contents="model_weights",
        alu_mode=ALUMode.ADDER_TREE,
        ps_use=PSUse.OUTPUT_FEATURES,
    ),
}


@dataclass(frozen=True)
class DataflowEfficiency:
    """Achieved fraction of peak lane throughput for one dataflow.

    These derates encode the microarchitectural frictions Sec. VI / VII-E
    describe: scratch-pad indirection on grid lookups, the extra GEMM
    buffer stage, pipeline fill, bank conflicts.
    """

    int16: float
    bf16: float
    sfu: float

    def __post_init__(self) -> None:
        for value in (self.int16, self.bf16, self.sfu):
            if not 0.0 < value <= 1.0:
                raise ConfigError("efficiencies must lie in (0, 1]")


#: Per-dataflow lane efficiencies (calibration constants; see DESIGN.md
#: section 6 — Uni-Render absolute FPS anchors to Table IV through these).
EFFICIENCY: dict[MicroOp, DataflowEfficiency] = {
    MicroOp.GEOMETRIC: DataflowEfficiency(int16=0.85, bf16=0.85, sfu=0.90),
    MicroOp.COMBINED_GRID: DataflowEfficiency(int16=0.70, bf16=0.70, sfu=0.90),
    MicroOp.DECOMPOSED_GRID: DataflowEfficiency(int16=0.65, bf16=0.65, sfu=0.90),
    MicroOp.SORTING: DataflowEfficiency(int16=0.80, bf16=0.80, sfu=0.90),
    MicroOp.GEMM: DataflowEfficiency(int16=0.95, bf16=1.0, sfu=0.90),
}

#: Pipeline fill/drain latency charged once per invocation, cycles.
LAUNCH_LATENCY = 64.0


@dataclass
class PhaseCost:
    """Priced execution of one micro-op invocation on the array."""

    compute_cycles: float
    dram_bytes: float
    int_ops: float
    bf16_ops: float
    sfu_ops: float
    sram_accesses: float
    global_buffer_bytes: float

    def memory_cycles(self, config: AcceleratorConfig) -> float:
        return self.dram_bytes / config.dram_bytes_per_cycle


def onchip_capacity_for(op: MicroOp, config: AcceleratorConfig) -> float:
    """Bytes of on-chip storage available to hold an op's working set.

    Grid features / geometry / sorting elements live in the FF scratch
    pads, staged through the global buffer; both capacities contribute
    to reuse. The PS scratch pads hold outputs and do not extend it.
    """
    return float(
        config.global_buffer_bytes + config.n_pes * config.ff_scratchpad_bytes
    )


#: DRAM burst granularity: a discrete (random) access that misses on chip
#: transfers a full line even for a small feature word.
DRAM_LINE_BYTES = 64.0


def no_reuse_ceiling_bytes(workload: Workload, op: MicroOp) -> float:
    """Worst-case traffic if nothing is ever reused on chip.

    The bound depends on the reduction task's memory access pattern
    (Table II): *discrete* ops (grid indexing) pay the DRAM line
    granularity per item, *continuous* ops stream at word granularity.
    """
    from repro.core.microops import TABLE_II, MemAccessPattern

    pattern = TABLE_II[op][2].pattern
    if pattern is MemAccessPattern.DISCRETE:
        return workload.items * DRAM_LINE_BYTES
    return 2.0 * workload.sram_accesses


def spill_factor(workload: Workload, op: MicroOp, config: AcceleratorConfig) -> float:
    """How many times the compulsory bytes are re-fetched.

    1.0 when the working set fits on chip; grows linearly with the
    oversubscription ratio (tiled reuse halves traffic per capacity
    doubling — the Table V mechanism); capped at the no-reuse ceiling
    where every access goes to DRAM.
    """
    if workload.dram_unique_bytes <= 0:
        return 1.0
    capacity = onchip_capacity_for(op, config)
    raw = max(1.0, workload.working_set_bytes / capacity)
    ceiling = max(
        1.0, no_reuse_ceiling_bytes(workload, op) / workload.dram_unique_bytes
    )
    return min(raw, ceiling)


def phase_cost(
    op: MicroOp, workload: Workload, config: AcceleratorConfig
) -> PhaseCost:
    """Price one invocation (Sec. VI's dataflow, Sec. VII-A's simulator)."""
    if op not in EFFICIENCY:
        raise ConfigError(f"no dataflow for {op!r}")
    eff = EFFICIENCY[op]

    int_rate = config.peak_int16_macs_per_cycle * eff.int16
    bf16_rate = config.peak_bf16_macs_per_cycle * eff.bf16
    sfu_rate = config.n_pes * config.sfus_per_pe * eff.sfu
    if op is MicroOp.GEMM:
        # The extra buffer stage before the ALUs (Sec. VII-E).
        bf16_rate /= 1.0 + config.gemm_buffer_stage_overhead

    compute = max(
        workload.int_ops / int_rate,
        workload.bf16_ops / bf16_rate,
        workload.sfu_ops / sfu_rate,
        LAUNCH_LATENCY,
    )

    dram = (
        workload.dram_unique_bytes * spill_factor(workload, op, config)
        + workload.streaming_bytes
    )
    # Everything entering or leaving the array passes the global buffer.
    global_buffer_bytes = dram + 2.0 * workload.sram_accesses * 0.25

    return PhaseCost(
        compute_cycles=compute,
        dram_bytes=dram,
        int_ops=workload.int_ops,
        bf16_ops=workload.bf16_ops,
        sfu_ops=workload.sfu_ops,
        sram_accesses=workload.sram_accesses,
        global_buffer_bytes=global_buffer_bytes,
    )
