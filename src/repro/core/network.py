"""Reconfigurable input/reduction data networks (Sec. V-B, Fig. 9b).

Two array-level modes: Mode 1 chains PEs "systolic-array-like" for GEMM;
Mode 2 turns the array into a pipeline whose reduction links adapt to
the reduction task's memory access pattern. Reduction links can be off,
horizontally active (interpolation within a PE line — Combined Grid
Indexing), or fully active (interpolation within lines then aggregation
across lines — Decomposed Grid Indexing).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigError


class ArrayMode(enum.Enum):
    """Fig. 9b's two operating modes."""

    SYSTOLIC = 1   # Mode 1: GEMM
    PIPELINE = 2   # Mode 2: reduction-task driven


class ReductionLinks(enum.Enum):
    """State of the reduction data paths & routers (Table III)."""

    OFF = "off"
    HORIZONTAL = "horizontal"
    FULL = "full"


class DataNetwork:
    """Array-level network state plus behavioural reductions for tests."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ConfigError("network dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.mode = ArrayMode.SYSTOLIC
        self.reduction = ReductionLinks.OFF
        self.input_active = False
        self.reconfigurations = 0

    def configure(
        self, mode: ArrayMode, reduction: ReductionLinks, input_active: bool
    ) -> bool:
        """Set the network state; returns True when anything changed
        (the scheduler charges reconfiguration cycles on change)."""
        changed = (
            mode is not self.mode
            or reduction is not self.reduction
            or input_active != self.input_active
        )
        self.mode = mode
        self.reduction = reduction
        self.input_active = input_active
        if changed:
            self.reconfigurations += 1
        return changed

    # ------------------------------------------------------------------
    # Behavioural reductions (used by dataflow unit tests).
    # ------------------------------------------------------------------
    def horizontal_reduce(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> np.ndarray:
        """Weighted sum along each PE line: (rows, cols) -> (rows,).

        This is the "weighted adder tree" interpolating features held by
        the PEs of one line (Fig. 11).
        """
        if self.reduction is ReductionLinks.OFF:
            raise ConfigError("reduction links are off")
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.rows, self.cols):
            raise ConfigError(f"expected shape {(self.rows, self.cols)}")
        if weights is None:
            return values.sum(axis=1)
        return (values * np.asarray(weights, dtype=np.float64)).sum(axis=1)

    def full_reduce(
        self,
        values: np.ndarray,
        line_weights: np.ndarray | None = None,
        combine: str = "multiply",
    ) -> float:
        """Two-level reduction (Fig. 12): weighted addition within each
        line, then aggregation across lines — multiplicative for the
        Decomposed Grid Indexing micro-operator."""
        if self.reduction is not ReductionLinks.FULL:
            raise ConfigError("full reduction requires fully active links")
        per_line = self.horizontal_reduce(values, line_weights)
        if combine == "multiply":
            return float(np.prod(per_line))
        if combine == "add":
            return float(np.sum(per_line))
        raise ConfigError(f"unknown combine {combine!r}")
