"""Energy and power model (28 nm, 0.9 V, Sec. VII-A / Fig. 15).

Per-operation energies are constants at the technology node; following
the paper ("the power estimation excludes DRAM"), DRAM energy is
computed but reported separately and never enters the chip-power figure.
The constants were calibrated once so that the default design point
draws ~5.78 W on the paper's workload mix with the Fig. 15 breakdown
(75 % compute & control, 10 % PE-array SRAM, 15 % outside SRAM); they
then extrapolate across configurations and workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AcceleratorConfig
from repro.core.dataflow import PhaseCost
from repro.core.gating import idle_power_factor, module_activity
from repro.core.microops import MicroOp

# ----------------------------------------------------------------------
# Per-operation dynamic energies, joules. Values include pipeline
# registers and local clocking (hence above bare-datapath literature
# numbers).
# ----------------------------------------------------------------------
E_INT16_MAC = 1.6e-12
E_BF16_MAC = 3.2e-12
E_SFU_OP = 6.0e-12
E_SRAM_WORD = 1.4e-12          # one 16-bit scratch-pad access
E_GLOBAL_BUFFER_BYTE = 2.4e-12
E_DRAM_BYTE = 40.0e-12          # reported separately (excluded from power)

#: Control/clock-tree multiplier on datapath energy (compute & control
#: logic is 54 % of area; its clock tree dominates dynamic power).
CONTROL_OVERHEAD = 1.45

#: Leakage power density of the 28 nm logic/SRAM, W per mm^2.
LEAKAGE_W_PER_MM2 = 0.012

# ----------------------------------------------------------------------
# Nameplate ("typical") operating point, Sec. VII-A: the synthesis flow
# reports power at a reference activity factor. These utilizations were
# calibrated once so the default design point reports 5.78 W split
# 75/10/15 (Fig. 15, right).
# ----------------------------------------------------------------------
TYPICAL_UTILIZATION = {
    "int16": 0.35,
    "bf16": 0.53,
    "sfu": 0.10,
    "sram_words_per_pe_cycle": 1.46,
    "global_buffer_bytes_per_cycle": 350.0,
}


@dataclass
class EnergyBreakdown:
    """Joules per component group for one frame (Fig. 15, right)."""

    compute_and_control: float = 0.0
    pe_sram: float = 0.0
    global_sram: float = 0.0
    dram: float = 0.0  # excluded from chip power, reported for context

    @property
    def chip_total(self) -> float:
        """On-chip energy (the paper's power figure excludes DRAM)."""
        return self.compute_and_control + self.pe_sram + self.global_sram

    def fractions(self) -> dict[str, float]:
        total = self.chip_total
        return {
            "computing_and_control_logic": self.compute_and_control / total,
            "sram_inside_pe_array": self.pe_sram / total,
            "sram_outside_pe_array": self.global_sram / total,
        }

    def add(self, other: "EnergyBreakdown") -> None:
        self.compute_and_control += other.compute_and_control
        self.pe_sram += other.pe_sram
        self.global_sram += other.global_sram
        self.dram += other.dram


def nameplate_power(config: AcceleratorConfig) -> EnergyBreakdown:
    """Typical power (watts per component) at the reference activity.

    This is the number the paper quotes (5.78 W for the default design
    point) and the basis of Fig. 15's power pie. Returned as an
    :class:`EnergyBreakdown` whose fields are watts (J/s at 1 s).
    """
    from repro.core.area import area_report  # local import avoids a cycle

    u = TYPICAL_UTILIZATION
    hz = config.clock_hz
    compute_w = (
        config.peak_int16_macs_per_cycle * u["int16"] * E_INT16_MAC
        + config.peak_bf16_macs_per_cycle * u["bf16"] * E_BF16_MAC
        + config.n_pes * config.sfus_per_pe * u["sfu"] * E_SFU_OP
    ) * hz * CONTROL_OVERHEAD
    pe_sram_w = config.n_pes * u["sram_words_per_pe_cycle"] * E_SRAM_WORD * hz
    global_w = u["global_buffer_bytes_per_cycle"] * E_GLOBAL_BUFFER_BYTE * hz

    areas = area_report(config)
    return EnergyBreakdown(
        compute_and_control=compute_w + areas.logic * LEAKAGE_W_PER_MM2,
        pe_sram=pe_sram_w + areas.pe_sram * LEAKAGE_W_PER_MM2,
        global_sram=global_w + areas.global_sram * LEAKAGE_W_PER_MM2,
    )


def phase_energy(
    op: MicroOp,
    cost: PhaseCost,
    phase_cycles: float,
    config: AcceleratorConfig,
    gated: bool = True,
) -> EnergyBreakdown:
    """Energy of one scheduled phase.

    Dynamic energy follows the op counts; idle energy follows the
    gating model (unused modules burn a fraction of their active power
    for the phase duration); leakage follows area and time.
    """
    seconds = phase_cycles / config.clock_hz
    activity = module_activity(op)

    # --- dynamic, datapath --------------------------------------------
    mac_energy = (
        cost.int_ops * E_INT16_MAC
        + cost.bf16_ops * E_BF16_MAC
        + cost.sfu_ops * E_SFU_OP
    ) * CONTROL_OVERHEAD

    # --- idle power of unused ALU lanes (Sec. VII-E) --------------------
    # A module active in this phase contributes through its op counts
    # above; an idle one burns the gated (or ungated) fraction of its
    # full-utilization power for the whole phase.
    def idle_extra(active: bool, full_power_w: float) -> float:
        if active:
            return 0.0
        return idle_power_factor(False, gated) * full_power_w * seconds

    int_active_w = config.peak_int16_macs_per_cycle * E_INT16_MAC * config.clock_hz
    bf16_active_w = config.peak_bf16_macs_per_cycle * E_BF16_MAC * config.clock_hz
    sfu_active_w = config.n_pes * config.sfus_per_pe * E_SFU_OP * config.clock_hz
    idle_energy = (
        idle_extra(activity.int16_active, int_active_w)
        + idle_extra(activity.bf16_active, bf16_active_w)
        + idle_extra(activity.sfu_active, sfu_active_w)
    )

    # --- leakage, split by component area shares ------------------------
    from repro.core.area import area_report  # local import avoids a cycle

    areas = area_report(config)
    leak_logic = areas.logic * LEAKAGE_W_PER_MM2 * seconds
    leak_pe_sram = areas.pe_sram * LEAKAGE_W_PER_MM2 * seconds
    leak_global = areas.global_sram * LEAKAGE_W_PER_MM2 * seconds

    return EnergyBreakdown(
        compute_and_control=mac_energy + idle_energy + leak_logic,
        pe_sram=cost.sram_accesses * E_SRAM_WORD + leak_pe_sram,
        global_sram=cost.global_buffer_bytes * E_GLOBAL_BUFFER_BYTE + leak_global,
        dram=cost.dram_bytes * E_DRAM_BYTE,
    )
