"""Behavioural array executor: run small workloads on the modeled array.

The cost models in :mod:`repro.core.dataflow` price workloads without
executing them; this module closes the loop for *small* inputs by really
running each micro-operator's dataflow on a grid of
:class:`~repro.core.pe.ReconfigurablePE` objects wired by a
:class:`~repro.core.network.DataNetwork`. The executor is used by the
test suite to show that each Table III configuration computes what its
pipeline stage needs:

* Geometric Processing — per-PE pixel regions, barycentric coverage via
  the ALU's vector mode, min-depth hold in the PS scratch pad (Fig. 10).
* Combined Grid Indexing — per-line levels, features interpolated on the
  horizontal reduction links (Fig. 11).
* Decomposed Grid Indexing — per-line planes, two-level reduction
  (Fig. 12).
* Sorting — one patch per PE, merge sort staged in the FF scratch pad
  (Fig. 13).
* GEMM — weight-stationary tiles, partial sums in the PS scratch pad
  (Fig. 14).
"""

from __future__ import annotations

import numpy as np

from repro.core.alu import ALUMode
from repro.core.dataflow import MODULE_STATUS
from repro.core.microops import MicroOp
from repro.core.network import DataNetwork
from repro.core.pe import ReconfigurablePE
from repro.errors import ConfigError, SimulationError


class ArrayExecutor:
    """A small behavioural PE array (functional, not cycle-stepped)."""

    def __init__(self, rows: int = 4, cols: int = 4) -> None:
        if rows < 1 or cols < 1:
            raise ConfigError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.pes = [[ReconfigurablePE() for _ in range(cols)] for _ in range(rows)]
        self.network = DataNetwork(rows, cols)
        self.configured_for: MicroOp | None = None

    # ------------------------------------------------------------------
    def configure(self, op: MicroOp) -> bool:
        """Apply one Table III row to every PE and the data networks."""
        status = MODULE_STATUS[op]
        changed = self.network.configure(
            status.array_mode, status.reduction_links, status.input_network
        )
        for row in self.pes:
            for pe in row:
                pe.configure(status.controller, status.alu_mode, status.ps_use)
        self.configured_for = op
        return changed

    def _require(self, op: MicroOp) -> None:
        if self.configured_for is not op:
            raise SimulationError(
                f"array configured for {self.configured_for}, needs {op.value}"
            )

    # ------------------------------------------------------------------
    # Geometric Processing (Fig. 10)
    # ------------------------------------------------------------------
    def run_geometric(
        self, triangles: np.ndarray, pixels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rasterize ``triangles`` (n, 3, 2 screen xy + depth in [:, :, 2])
        against ``pixels`` (p, 2), pixels distributed across PEs.

        ``triangles`` has shape (n, 3, 3): three vertices of (x, y, depth).
        Returns (nearest_depth, nearest_index) per pixel (inf/-1 if none).
        """
        self._require(MicroOp.GEOMETRIC)
        triangles = np.asarray(triangles, dtype=np.float64)
        pixels = np.asarray(pixels, dtype=np.float64)
        n_pes = self.rows * self.cols
        depths = np.full(len(pixels), np.inf)
        indices = np.full(len(pixels), -1, dtype=np.int64)

        for pixel_id, (px, py) in enumerate(pixels):
            pe = self.pes[(pixel_id // self.cols) % self.rows][pixel_id % self.cols]
            pe.reset_counter()
            hit_depths, hit_ids = [], []
            for tri_id in range(len(triangles)):
                _ = pe.next_index()  # automatic-counter indexing task
                a, b, c = triangles[tri_id, :, :2]
                area = pe.alu.cross2d(b - a, c - a)
                if abs(area) < 1e-12:
                    continue
                w0 = pe.alu.cross2d(b - np.array([px, py]), c - np.array([px, py])) / area
                w1 = pe.alu.cross2d(c - np.array([px, py]), a - np.array([px, py])) / area
                w2 = 1.0 - w0 - w1
                if w0 >= 0 and w1 >= 0 and w2 >= 0:
                    depth = (
                        w0 * triangles[tri_id, 0, 2]
                        + w1 * triangles[tri_id, 1, 2]
                        + w2 * triangles[tri_id, 2, 2]
                    )
                    hit_depths.append(depth)
                    hit_ids.append(tri_id)
            if hit_depths:
                depths[pixel_id], indices[pixel_id] = pe.min_depth_hold(
                    hit_depths, hit_ids
                )
        del n_pes
        return depths, indices

    # ------------------------------------------------------------------
    # Combined Grid Indexing (Fig. 11)
    # ------------------------------------------------------------------
    def run_combined_grid(
        self, level_tables: list[np.ndarray], indices: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Interpolate per-level features on the horizontal links.

        One PE line per level (levels must fit in ``rows``); each PE in a
        line supplies one interpolation candidate, the horizontal
        reduction network forms the weighted sum. ``indices``/``weights``
        have shape (levels, candidates <= cols).
        """
        self._require(MicroOp.COMBINED_GRID)
        levels = len(level_tables)
        if levels > self.rows:
            raise SimulationError("more levels than PE lines")
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        candidates = indices.shape[1]
        if candidates > self.cols:
            raise SimulationError("more candidates than PEs per line")

        values = np.zeros((self.rows, self.cols))
        w_grid = np.zeros((self.rows, self.cols))
        for level in range(levels):
            table = np.asarray(level_tables[level], dtype=np.float64)
            for cand in range(candidates):
                values[level, cand] = table[indices[level, cand]]
                w_grid[level, cand] = weights[level, cand]
        return self.network.horizontal_reduce(values, w_grid)[:levels]

    # ------------------------------------------------------------------
    # Decomposed Grid Indexing (Fig. 12)
    # ------------------------------------------------------------------
    def run_decomposed_grid(
        self,
        plane_values: np.ndarray,
        plane_weights: np.ndarray,
        combine: str = "multiply",
    ) -> float:
        """Per-line interpolation then cross-line aggregation.

        ``plane_values``/``plane_weights`` have shape (planes <= rows,
        candidates <= cols); returns the aggregated scalar feature.
        """
        self._require(MicroOp.DECOMPOSED_GRID)
        values = np.zeros((self.rows, self.cols))
        weights = np.zeros((self.rows, self.cols))
        planes, candidates = np.asarray(plane_values).shape
        if planes > self.rows or candidates > self.cols:
            raise SimulationError("plane workload exceeds the array")
        values[:planes, :candidates] = plane_values
        weights[:planes, :candidates] = plane_weights
        if combine == "multiply":
            # Identity element for the multiplicative aggregation.
            values[planes:, 0] = 1.0
            weights[planes:, 0] = 1.0
        return self.network.full_reduce(values, weights, combine=combine)

    # ------------------------------------------------------------------
    # Sorting (Fig. 13)
    # ------------------------------------------------------------------
    def run_sorting(self, patches: list[list]) -> tuple[list[list], int]:
        """Merge-sort one patch per PE; returns sorted patches and the
        total comparator operations."""
        self._require(MicroOp.SORTING)
        if len(patches) > self.rows * self.cols:
            raise SimulationError("more patches than PEs")
        sorted_patches = []
        comparisons = 0
        for i, patch in enumerate(patches):
            pe = self.pes[i // self.cols][i % self.cols]
            out, comps = pe.merge_sort_in_ff(patch)
            sorted_patches.append(out)
            comparisons += comps
        return sorted_patches, comparisons

    # ------------------------------------------------------------------
    # GEMM (Fig. 14)
    # ------------------------------------------------------------------
    def run_gemm(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Weight-stationary GEMM tiled across PEs by output column."""
        self._require(MicroOp.GEMM)
        weights = np.asarray(weights, dtype=np.float64)
        inputs = np.asarray(inputs, dtype=np.float64)
        n_out = weights.shape[1]
        out = np.zeros((len(inputs), n_out))
        for col in range(n_out):
            pe = self.pes[(col // self.cols) % self.rows][col % self.cols]
            out[:, col] = pe.weight_stationary_gemm(
                weights[:, col : col + 1], inputs
            )[:, 0]
        return out
