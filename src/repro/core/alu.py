"""The reconfigurable ALU inside each PE (Sec. V-C).

Four INT16 MACs (index computations), four BF16 MACs (feature
computations), and four special function units, reconfigurable into the
layouts Table III lists: vector mode (barycentric cross products),
index-function mode, comparator mode (merge sort), adder-tree mode
(interpolation/GEMM reductions), and plain MAC mode.

The class is behavioural — its methods really compute — so unit tests
can check that each configuration produces the math its dataflow needs,
while the cost model only reads the throughput properties.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigError


class ALUMode(enum.Enum):
    """ALU layouts selected per micro-operator (Table III)."""

    VECTOR = "vector"            # Geometric Processing
    INDEX_FUNCTION = "index"     # Combined / Decomposed Grid Indexing
    COMPARATOR = "comparator"    # Sorting
    ADDER_TREE = "adder_tree"    # GEMM and interpolation reductions
    MAC = "mac"                  # plain multiply-accumulate


class ReconfigurableALU:
    """One PE's ALU: lanes plus a mode register."""

    def __init__(
        self, int16_lanes: int = 4, bf16_lanes: int = 4, sfu_lanes: int = 4
    ) -> None:
        if min(int16_lanes, bf16_lanes, sfu_lanes) < 1:
            raise ConfigError("ALU lane counts must be positive")
        self.int16_lanes = int16_lanes
        self.bf16_lanes = bf16_lanes
        self.sfu_lanes = sfu_lanes
        self.mode = ALUMode.MAC

    def configure(self, mode: ALUMode) -> None:
        """Switch the MAC layout (one-cycle control write)."""
        if not isinstance(mode, ALUMode):
            raise ConfigError(f"not an ALU mode: {mode!r}")
        self.mode = mode

    # ------------------------------------------------------------------
    # Behavioural operations, one per mode.
    # ------------------------------------------------------------------
    def cross2d(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """2D cross products for barycentric coverage tests (vector mode)."""
        self._require(ALUMode.VECTOR)
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        return a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]

    def index_address(
        self, coords: np.ndarray, strides: np.ndarray, base: int = 0
    ) -> np.ndarray:
        """Linear addressing: ``base + coords . strides`` (index mode)."""
        self._require(ALUMode.INDEX_FUNCTION)
        coords = np.asarray(coords, dtype=np.int64)
        strides = np.asarray(strides, dtype=np.int64)
        return base + coords @ strides

    def compare_exchange(self, a, b) -> tuple:
        """Return (min, max) — the merge-sort comparator (comparator mode)."""
        self._require(ALUMode.COMPARATOR)
        return (a, b) if a <= b else (b, a)

    def adder_tree(self, values: np.ndarray, weights: np.ndarray | None = None) -> float:
        """Weighted reduction of up to ``bf16_lanes`` values per cycle
        (adder-tree mode); larger inputs fold log-tree style."""
        self._require(ALUMode.ADDER_TREE)
        values = np.asarray(values, dtype=np.float64)
        if weights is not None:
            values = values * np.asarray(weights, dtype=np.float64)
        return float(values.sum())

    def mac(self, acc: float, a: float, b: float) -> float:
        """One multiply-accumulate (MAC mode)."""
        self._require(ALUMode.MAC)
        return acc + a * b

    # ------------------------------------------------------------------
    def int_throughput(self) -> int:
        """INT16 operations issued per cycle in the current mode."""
        return self.int16_lanes

    def bf16_throughput(self) -> int:
        """BF16 MACs issued per cycle in the current mode."""
        if self.mode is ALUMode.COMPARATOR:
            # Comparators are built from the BF16 adders; one compare
            # consumes one adder but produces no MAC.
            return 0
        return self.bf16_lanes

    def compare_throughput(self) -> int:
        """Compares per cycle (only meaningful in comparator mode)."""
        return self.bf16_lanes if self.mode is ALUMode.COMPARATOR else 0

    def _require(self, mode: ALUMode) -> None:
        if self.mode is not mode:
            raise ConfigError(
                f"ALU is configured as {self.mode.value}, operation needs {mode.value}"
            )
