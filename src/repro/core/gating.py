"""Power and clock gating of idle modules (Sec. VII-E).

"Not all modules in the proposed accelerator are used for each
micro-operator ... we leverage power and clock gating to conserve energy
and minimize the impacts of unused modules." The model: a module that is
idle during a phase burns a fraction of its active power — small when
gated, noticeable when not. The ablation benchmark toggles ``gated``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alu import ALUMode
from repro.core.dataflow import MODULE_STATUS
from repro.core.microops import MicroOp
from repro.core.network import ReductionLinks
from repro.errors import ConfigError

#: Idle power as a fraction of a module's active power.
IDLE_FRACTION_GATED = 0.02
IDLE_FRACTION_UNGATED = 0.20


@dataclass(frozen=True)
class ModuleActivity:
    """Which PE/network modules a micro-operator exercises."""

    sfu_active: bool
    bf16_active: bool
    int16_active: bool
    reduction_network_active: bool
    input_network_active: bool


def module_activity(op: MicroOp) -> ModuleActivity:
    """Derive per-module activity from Table III."""
    if op not in MODULE_STATUS:
        raise ConfigError(f"unknown micro-op {op!r}")
    status = MODULE_STATUS[op]
    # SFUs evaluate exp/sin/rsqrt: needed by geometric (depth recip),
    # grid ops (encodings) — but idle during GEMM and sorting, the
    # example Sec. VII-E gives.
    sfu_active = op in (MicroOp.GEOMETRIC, MicroOp.COMBINED_GRID, MicroOp.DECOMPOSED_GRID)
    return ModuleActivity(
        sfu_active=sfu_active,
        # The BF16 datapath is exercised by every dataflow (sorting's
        # comparators are built from its adders).
        bf16_active=True,
        int16_active=status.alu_mode is not ALUMode.ADDER_TREE or op is MicroOp.GEMM,
        reduction_network_active=status.reduction_links is not ReductionLinks.OFF,
        input_network_active=status.input_network,
    )


def idle_power_factor(active: bool, gated: bool) -> float:
    """Fraction of a module's active power it draws during this phase."""
    if active:
        return 1.0
    return IDLE_FRACTION_GATED if gated else IDLE_FRACTION_UNGATED
