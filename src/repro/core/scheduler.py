"""Maps a micro-op program onto the array and totals the frame cost.

Phases execute back to back; within a phase, compute and DRAM transfers
overlap through double buffering, so phase time is
``max(compute_cycles, memory_cycles)`` plus launch latency.
Reconfiguration cycles are charged whenever consecutive invocations need
different network/PE configurations (Sec. VII-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import AcceleratorConfig
from repro.core.dataflow import MODULE_STATUS, PhaseCost, phase_cost
from repro.core.energy import EnergyBreakdown, phase_energy
from repro.core.microops import MicroOpInvocation, MicroOpProgram
from repro.errors import SimulationError


@dataclass
class ScheduledPhase:
    """One invocation placed on the array."""

    invocation: MicroOpInvocation
    cost: PhaseCost
    reconfig_cycles: float
    memory_cycles: float
    phase_cycles: float
    energy: EnergyBreakdown

    @property
    def bound(self) -> str:
        """What limited this phase: 'compute' or 'memory'."""
        return "compute" if self.cost.compute_cycles >= self.memory_cycles else "memory"


@dataclass
class FrameSchedule:
    """A fully scheduled frame."""

    program: MicroOpProgram
    phases: list[ScheduledPhase] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(p.phase_cycles + p.reconfig_cycles for p in self.phases)

    @property
    def reconfig_cycles(self) -> float:
        return sum(p.reconfig_cycles for p in self.phases)

    @property
    def dram_bytes(self) -> float:
        return sum(p.cost.dram_bytes for p in self.phases)

    def energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for p in self.phases:
            total.add(p.energy)
        return total

    def cycles_by_op(self) -> dict[str, float]:
        """Cycle share per micro-operator, for the reports."""
        shares: dict[str, float] = {}
        for p in self.phases:
            key = p.invocation.op.value
            shares[key] = shares.get(key, 0.0) + p.phase_cycles + p.reconfig_cycles
        return shares


def schedule(
    program: MicroOpProgram, config: AcceleratorConfig, gated: bool = True
) -> FrameSchedule:
    """Schedule every invocation in order, charging reconfigurations."""
    if not program.invocations:
        raise SimulationError("cannot schedule an empty program")
    frame = FrameSchedule(program=program)
    previous_status = None
    for invocation in program.invocations:
        status = MODULE_STATUS[invocation.op]
        reconfig = float(config.reconfigure_cycles) if status != previous_status else 0.0
        previous_status = status

        cost = phase_cost(invocation.op, invocation.workload, config)
        memory_cycles = cost.memory_cycles(config)
        phase_cycles = max(cost.compute_cycles, memory_cycles)
        energy = phase_energy(
            invocation.op, cost, phase_cycles + reconfig, config, gated=gated
        )
        frame.phases.append(
            ScheduledPhase(
                invocation=invocation,
                cost=cost,
                reconfig_cycles=reconfig,
                memory_cycles=memory_cycles,
                phase_cycles=phase_cycles,
                energy=energy,
            )
        )
    return frame
