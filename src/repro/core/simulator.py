"""The user-facing Uni-Render accelerator model.

:class:`UniRenderAccelerator` wraps the scheduler, energy, and area
models behind the API the experiment harness uses: simulate a frame
program, report FPS / power / energy, run the Table V scaling study,
and emit the Fig. 15 breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area import AreaReport, area_report
from repro.core.config import AcceleratorConfig
from repro.core.energy import EnergyBreakdown
from repro.core.microops import MicroOpProgram
from repro.core.scheduler import FrameSchedule, schedule
from repro.errors import SimulationError


@dataclass
class FrameResult:
    """Outcome of simulating one frame."""

    pipeline: str
    cycles: float
    fps: float
    energy: EnergyBreakdown
    power_w: float              # chip power, DRAM excluded (Sec. VII-A)
    dram_bytes: float
    reconfig_cycles: float
    cycles_by_op: dict[str, float]
    schedule: FrameSchedule

    @property
    def energy_per_frame_j(self) -> float:
        return self.energy.chip_total

    @property
    def real_time(self) -> bool:
        """The paper's bar: >30 FPS."""
        return self.fps > 30.0

    def to_dict(self) -> dict:
        """JSON-ready export for programmatic consumers (schedule
        omitted; use ``timeline()`` for the per-phase view)."""
        return {
            "pipeline": self.pipeline,
            "cycles": self.cycles,
            "fps": self.fps,
            "real_time": self.real_time,
            "power_w": self.power_w,
            "dram_bytes": self.dram_bytes,
            "reconfig_cycles": self.reconfig_cycles,
            "cycles_by_op": dict(self.cycles_by_op),
            "energy_per_frame_j": self.energy_per_frame_j,
            "energy": {
                "compute_and_control": self.energy.compute_and_control,
                "pe_sram": self.energy.pe_sram,
                "global_sram": self.energy.global_sram,
                "dram": self.energy.dram,
            },
        }

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        dominant = max(self.cycles_by_op, key=self.cycles_by_op.get)
        share = self.cycles_by_op[dominant] / self.cycles
        return (
            f"{self.pipeline}: {self.fps:.1f} FPS "
            f"({self.cycles / 1e6:.2f}M cycles, {self.power_w:.2f} W, "
            f"{self.dram_bytes / 1e6:.0f} MB DRAM/frame; "
            f"{dominant} dominates with {share * 100:.0f}% of cycles; "
            f"{'real-time' if self.real_time else 'below real-time'})"
        )

    def timeline(self, width: int = 60, compile_cycles: float = 0.0,
                 compile_label: str = "compile") -> str:
        """ASCII timeline of the frame's phases (one bar per invocation),
        annotated with the binding resource.

        ``compile_cycles`` prepends a labelled compile/prefetch phase —
        the serving path uses it to show the trace-compile latency a
        request paid (or avoided) ahead of its frame's execution.
        """
        # A hand-built FrameResult may carry zero total cycles; bars are
        # then drawn at minimum length instead of dividing by zero.
        span = self.cycles + compile_cycles
        denom = span if span > 0 else 1.0
        lines = []
        if compile_cycles > 0:
            bar = max(1, int(round(width * compile_cycles / denom)))
            label = f"{compile_label} [compile]"
            lines.append(f"{label:32s} |{'=' * bar}")
        for phase in self.schedule.phases:
            total = phase.phase_cycles + phase.reconfig_cycles
            bar = max(1, int(round(width * total / denom)))
            label = f"{phase.invocation.name} [{phase.bound}]"
            lines.append(f"{label:32s} |{'#' * bar}")
        return "\n".join(lines)


class UniRenderAccelerator:
    """The Uni-Render accelerator at one design point."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config if config is not None else AcceleratorConfig()

    # ------------------------------------------------------------------
    def simulate(self, program: MicroOpProgram, gated: bool = True) -> FrameResult:
        """Run one frame program through the performance model."""
        frame = schedule(program, self.config, gated=gated)
        cycles = frame.total_cycles
        if cycles <= 0:
            raise SimulationError("frame has zero cycles")
        seconds = cycles / self.config.clock_hz
        energy = frame.energy()
        return FrameResult(
            pipeline=program.pipeline,
            cycles=cycles,
            fps=1.0 / seconds,
            energy=energy,
            power_w=energy.chip_total / seconds,
            dram_bytes=frame.dram_bytes,
            reconfig_cycles=frame.reconfig_cycles,
            cycles_by_op=frame.cycles_by_op(),
            schedule=frame,
        )

    # ------------------------------------------------------------------
    def area(self) -> AreaReport:
        """Fig. 15 (left): component areas at this design point."""
        return area_report(self.config)

    def power_breakdown(self, program: MicroOpProgram) -> dict[str, float]:
        """Fig. 15 (right): power fractions on a workload."""
        return self.simulate(program).energy.fractions()

    # ------------------------------------------------------------------
    def scale_study(
        self,
        program: MicroOpProgram,
        pe_scales: tuple[int, ...] = (1, 2, 4),
        sram_scales: tuple[int, ...] = (1, 2, 4),
    ) -> dict[tuple[int, int], float]:
        """Table V: relative rendering speed per (PE, SRAM) scaling.

        Returns ``{(pe_scale, sram_scale): speed relative to (1, 1)}``.
        """
        base = UniRenderAccelerator(self.config.scaled(1, 1)).simulate(program).fps
        out: dict[tuple[int, int], float] = {}
        for pe in pe_scales:
            for sram in sram_scales:
                fps = UniRenderAccelerator(self.config.scaled(pe, sram)).simulate(program).fps
                out[(pe, sram)] = fps / base
        return out
