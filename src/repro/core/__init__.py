"""The Uni-Render accelerator model — the paper's primary contribution.

Structure mirrors Sec. V / VI of the paper:

* :mod:`repro.core.config` — hardware configuration (16x16 PE array,
  1 GHz, 28 nm, 59.7 GB/s LPDDR4, 256 KB global buffer).
* :mod:`repro.core.microops` — the five common micro-operators and their
  indexing/reduction task descriptors (Table II).
* :mod:`repro.core.pe`, :mod:`repro.core.alu`,
  :mod:`repro.core.scratchpad`, :mod:`repro.core.network` — the
  reconfigurable building blocks (Fig. 9 b/c).
* :mod:`repro.core.dataflow` — the five dataflow mappings and their
  cycle/traffic cost models (Sec. VI, Table III).
* :mod:`repro.core.scheduler` — maps a micro-op program onto the array,
  charging reconfiguration overhead between modes (Sec. VII-E).
* :mod:`repro.core.energy`, :mod:`repro.core.area` — power/area models
  calibrated to the paper's 5.78 W / 14.96 mm^2 and Fig. 15 breakdowns.
* :mod:`repro.core.simulator` — the user-facing
  :class:`~repro.core.simulator.UniRenderAccelerator`.
"""

from repro.core.config import AcceleratorConfig
from repro.core.microops import (
    MicroOp,
    IndexingTask,
    ReductionTask,
    MicroOpInvocation,
    MicroOpProgram,
    TABLE_II,
)
from repro.core.simulator import UniRenderAccelerator, FrameResult

__all__ = [
    "AcceleratorConfig",
    "MicroOp",
    "IndexingTask",
    "ReductionTask",
    "MicroOpInvocation",
    "MicroOpProgram",
    "TABLE_II",
    "UniRenderAccelerator",
    "FrameResult",
]
