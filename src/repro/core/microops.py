"""The five common micro-operators and their task descriptors (Table II).

The paper's central insight: every step of every pipeline clusters into
five micro-operators, each decomposing into one *indexing* task
("indexing {Item} from a {Dimension} tensor, with the index retrieved by
{Function}") and one *reduction* task ("performing reduction within a
set of {Mem. Access Pattern} memory addresses").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CompileError


class MicroOp(enum.Enum):
    """The five unique micro-operators (Fig. 8)."""

    GEOMETRIC = "geometric_processing"
    COMBINED_GRID = "combined_grid_indexing"
    DECOMPOSED_GRID = "decomposed_grid_indexing"
    SORTING = "sorting"
    GEMM = "gemm"


class IndexFunction(enum.Enum):
    """How the indexing task obtains its next index (Table II)."""

    AUTOMATIC_COUNTER = "automatic_counter"
    RANDOM_HASH = "random_hash"
    LINEAR_INDEXING = "linear_indexing"


class MemAccessPattern(enum.Enum):
    """Reduction-task memory access pattern (Table II)."""

    CONTINUOUS = "continuous"
    DISCRETE = "discrete"
    MIXED = "continuous/discrete"


@dataclass(frozen=True)
class IndexingTask:
    """'Indexing {item} from a {dims} tensor via {functions}'."""

    item: str
    dims: tuple[int, ...]
    functions: tuple[IndexFunction, ...]


@dataclass(frozen=True)
class ReductionTask:
    """'Reduction within a set of {pattern} memory addresses'."""

    pattern: MemAccessPattern


#: Table II verbatim: micro-operator -> (pipeline steps it absorbs,
#: indexing task, reduction task).
TABLE_II: dict[MicroOp, tuple[tuple[str, ...], IndexingTask, ReductionTask]] = {
    MicroOp.GEOMETRIC: (
        ("rasterization", "splatting"),
        IndexingTask("mesh/gaussian", (1,), (IndexFunction.AUTOMATIC_COUNTER,)),
        ReductionTask(MemAccessPattern.CONTINUOUS),
    ),
    MicroOp.COMBINED_GRID: (
        ("texture_indexing", "hash_indexing"),
        IndexingTask(
            "features",
            (1, 2, 3),
            (IndexFunction.RANDOM_HASH, IndexFunction.LINEAR_INDEXING),
        ),
        ReductionTask(MemAccessPattern.DISCRETE),
    ),
    MicroOp.DECOMPOSED_GRID: (
        ("low_rank_decomposed_indexing",),
        IndexingTask("features", (2, 3), (IndexFunction.LINEAR_INDEXING,)),
        ReductionTask(MemAccessPattern.DISCRETE),
    ),
    MicroOp.SORTING: (
        ("sorting",),
        IndexingTask("sorting_keys", (1,), (IndexFunction.AUTOMATIC_COUNTER,)),
        ReductionTask(MemAccessPattern.CONTINUOUS),
    ),
    MicroOp.GEMM: (
        ("mlp", "blending", "space_conversion", "others"),
        IndexingTask("scalars", (1, 2), (IndexFunction.AUTOMATIC_COUNTER,)),
        ReductionTask(MemAccessPattern.MIXED),
    ),
}


@dataclass
class Workload:
    """Quantified work of one micro-operator invocation.

    The dataflow cost model (Sec. VI) prices exactly these quantities:

    * ``int_ops`` — INT16 MAC-equivalents (index arithmetic).
    * ``bf16_ops`` — BF16 MACs (feature math, interpolation, blending).
    * ``sfu_ops`` — special-function evaluations (exp, sin/cos, rsqrt).
    * ``sram_accesses`` — 16-bit scratch-pad accesses.
    * ``dram_unique_bytes`` — compulsory off-chip traffic (read once if
      everything fits on chip).
    * ``working_set_bytes`` — the resident set the invocation wants on
      chip; when it exceeds capacity, unique traffic is re-fetched
      (the spill model behind Table V).
    * ``streaming_bytes`` — per-item traffic that can never be cached
      (e.g. GEMM activations in and out).
    * ``items`` — logical work items, for reporting.
    """

    int_ops: float = 0.0
    bf16_ops: float = 0.0
    sfu_ops: float = 0.0
    sram_accesses: float = 0.0
    dram_unique_bytes: float = 0.0
    working_set_bytes: float = 0.0
    streaming_bytes: float = 0.0
    items: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "int_ops",
            "bf16_ops",
            "sfu_ops",
            "sram_accesses",
            "dram_unique_bytes",
            "working_set_bytes",
            "streaming_bytes",
            "items",
        ):
            if getattr(self, name) < 0:
                raise CompileError(f"workload field {name} is negative")

    def scaled(self, factor: float) -> "Workload":
        """All quantities multiplied by ``factor``; working set is a
        capacity, not a rate, so it is left unchanged."""
        return Workload(
            int_ops=self.int_ops * factor,
            bf16_ops=self.bf16_ops * factor,
            sfu_ops=self.sfu_ops * factor,
            sram_accesses=self.sram_accesses * factor,
            dram_unique_bytes=self.dram_unique_bytes * factor,
            working_set_bytes=self.working_set_bytes,
            streaming_bytes=self.streaming_bytes * factor,
            items=self.items * factor,
        )


@dataclass
class MicroOpInvocation:
    """One micro-operator instance inside a frame's program."""

    op: MicroOp
    name: str                 # human-readable stage name, e.g. "rasterization"
    workload: Workload

    def __post_init__(self) -> None:
        if not isinstance(self.op, MicroOp):
            raise CompileError(f"op must be a MicroOp, got {self.op!r}")


@dataclass
class MicroOpProgram:
    """An ordered list of micro-op invocations rendering one frame."""

    pipeline: str
    invocations: list[MicroOpInvocation] = field(default_factory=list)
    pixels: int = 0

    def append(self, op: MicroOp, name: str, workload: Workload) -> None:
        self.invocations.append(MicroOpInvocation(op, name, workload))

    def ops_used(self) -> tuple[MicroOp, ...]:
        """Distinct micro-operators, in first-use order."""
        seen: list[MicroOp] = []
        for inv in self.invocations:
            if inv.op not in seen:
                seen.append(inv.op)
        return tuple(seen)

    def total(self, field_name: str) -> float:
        """Sum of one workload field across invocations."""
        return sum(getattr(inv.workload, field_name) for inv in self.invocations)
