"""The reconfigurable Processing Element (Sec. V-C, Fig. 9c).

Each PE = PE controller + FF scratch pad (4x 512x16) + ALU + PS scratch
pad with register buffer. The controller mode, scratch-pad contents, ALU
layout, and PS usage are reconfigured per micro-operator (Table III).

Besides the structural state the class implements small behavioural
kernels — min-depth hold, counter indexing, in-PE merge sort, weight-
stationary MAC loops — that the unit tests run to check each dataflow's
PE-level semantics.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.core.alu import ALUMode, ReconfigurableALU
from repro.core.scratchpad import Scratchpad


class ControllerMode(enum.Enum):
    """PE-controller programs (Table III column 'PE Controller')."""

    RASTERIZATION = "rasterization_control"
    GRID = "grid_control"
    SORTING = "sorting_control"
    GEMM = "gemm_control"


class PSUse(enum.Enum):
    """Partial-sum scratch-pad roles (Table III column 'PS Scratch Pad')."""

    OFF = "off"
    Z_BUFFER = "z_buffer"
    OUTPUT_FEATURES = "output_features"


class ReconfigurablePE:
    """One PE of the 16x16 array."""

    def __init__(self) -> None:
        self.controller = ControllerMode.GEMM
        self.alu = ReconfigurableALU()
        self.ff = Scratchpad(words_per_cell=512, n_cells=4)
        self.ps = Scratchpad(words_per_cell=512, n_cells=1)
        self.ps_use = PSUse.OFF
        self._counter = 0

    def configure(
        self, controller: ControllerMode, alu_mode: ALUMode, ps_use: PSUse
    ) -> None:
        """Apply one row of Table III to this PE."""
        self.controller = controller
        self.alu.configure(alu_mode)
        self.ps_use = ps_use
        self._counter = 0

    # ------------------------------------------------------------------
    # Indexing-task primitives
    # ------------------------------------------------------------------
    def next_index(self) -> int:
        """Automatic counter: 'increments the index by one each time the
        function is called' (Table II)."""
        value = self._counter
        self._counter += 1
        return value

    def reset_counter(self) -> None:
        self._counter = 0

    # ------------------------------------------------------------------
    # Behavioural kernels, one per dataflow
    # ------------------------------------------------------------------
    def min_depth_hold(self, depths, indices) -> tuple[float, int]:
        """Geometric Processing reduction: keep the nearest primitive.

        Streams (depth, primitive-id) pairs; the surviving pair is what
        the PS scratch pad (acting as the Z-buffer) retains.
        """
        if self.ps_use is not PSUse.Z_BUFFER:
            raise ConfigError("PS scratch pad is not configured as a Z-buffer")
        best_depth = float("inf")
        best_index = -1
        for depth, index in zip(depths, indices):
            if depth < best_depth:
                best_depth = float(depth)
                best_index = int(index)
        # Depth stored as fixed-point in the PS scratch pad.
        self.ps.write(0, min(int(best_depth * 256), 2**31 - 1))
        self.ps.write(1, best_index)
        return best_depth, best_index

    def merge_sort_in_ff(self, keys: list) -> tuple[list, int]:
        """Sorting dataflow: bottom-up merge sort staged through the FF
        scratch pad, ALU acting as comparators (Fig. 13)."""
        if self.controller is not ControllerMode.SORTING:
            raise ConfigError("PE controller is not in sorting mode")
        if len(keys) > self.ff.capacity_words:
            raise SimulationError("patch does not fit in the FF scratch pad")
        self.ff.load_block(0, [int(k) for k in keys])
        items = list(keys)
        comparisons = 0
        width = 1
        n = len(items)
        while width < n:
            merged: list = []
            for start in range(0, n, 2 * width):
                left = items[start : start + width]
                right = items[start + width : start + 2 * width]
                i = j = 0
                while i < len(left) and j < len(right):
                    lo, _hi = self.alu.compare_exchange(left[i], right[j])
                    comparisons += 1
                    if lo == left[i]:
                        merged.append(left[i])
                        i += 1
                    else:
                        merged.append(right[j])
                        j += 1
                merged.extend(left[i:])
                merged.extend(right[j:])
            items = merged
            # Each pass writes the merged run back to the scratch pad.
            self.ff.load_block(0, [int(k) for k in items])
            width *= 2
        return items, comparisons

    def weight_stationary_gemm(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """GEMM dataflow: weights pinned in the FF scratch pad, inputs
        streamed, partial sums accumulated into the PS scratch pad."""
        if self.controller is not ControllerMode.GEMM:
            raise ConfigError("PE controller is not in GEMM mode")
        if self.ps_use is not PSUse.OUTPUT_FEATURES:
            raise ConfigError("PS scratch pad must hold output features")
        weights = np.asarray(weights, dtype=np.float64)
        inputs = np.asarray(inputs, dtype=np.float64)
        if weights.size > self.ff.capacity_words:
            raise SimulationError("weight tile exceeds the FF scratch pad")
        out = inputs @ weights
        # Account the scratch-pad traffic the loop would generate.
        self.ff.reads += weights.size * len(inputs)
        self.ps.writes += out.size
        return out
