"""Scratch-pad SRAM models (Fig. 9c).

Each PE has a filter/feature (FF) scratch pad of four 512x16 single-port
cells and a 512x16 partial-sum (PS) scratch pad. The model enforces
capacity, tracks access counts for the energy model, and exposes the
per-cycle port limit the dataflows must respect.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError


class Scratchpad:
    """A banked single-port SRAM of 16-bit words."""

    def __init__(self, words_per_cell: int = 512, n_cells: int = 4) -> None:
        if words_per_cell < 1 or n_cells < 1:
            raise ConfigError("scratchpad dimensions must be positive")
        self.words_per_cell = words_per_cell
        self.n_cells = n_cells
        self._data = np.zeros((n_cells, words_per_cell), dtype=np.int32)
        self.reads = 0
        self.writes = 0

    @property
    def capacity_words(self) -> int:
        return self.words_per_cell * self.n_cells

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_words * 2

    @property
    def ports_per_cycle(self) -> int:
        """Single-port cells: one access per cell per cycle."""
        return self.n_cells

    def _locate(self, address: int) -> tuple[int, int]:
        if not 0 <= address < self.capacity_words:
            raise SimulationError(
                f"scratchpad address {address} out of range [0, {self.capacity_words})"
            )
        return address // self.words_per_cell, address % self.words_per_cell

    def read(self, address: int) -> int:
        cell, offset = self._locate(address)
        self.reads += 1
        return int(self._data[cell, offset])

    def write(self, address: int, value: int) -> None:
        cell, offset = self._locate(address)
        self.writes += 1
        self._data[cell, offset] = np.int32(value)

    def load_block(self, start: int, values) -> None:
        """Bulk load (DMA fill from the global buffer)."""
        values = np.asarray(values, dtype=np.int32).ravel()
        if start < 0 or start + len(values) > self.capacity_words:
            raise SimulationError("block does not fit in the scratchpad")
        for i, v in enumerate(values):
            cell, offset = self._locate(start + i)
            self._data[cell, offset] = v
        self.writes += len(values)

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0
