"""Hardware configuration of the Uni-Render accelerator (Sec. V, VII-A).

Defaults reproduce the paper's evaluated design point: a 16x16 PE array
at 1 GHz in 28 nm, a 256 KB on-chip global SRAM buffer, 1.25 MB of
PE-local memory (4 KB FF + 1 KB PS scratch pad per PE), and 59.7 GB/s of
LPDDR4 DRAM bandwidth. ``pe_scale`` / ``sram_scale`` implement the
Table V scaling study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: The paper's default design point, used to normalize derived chip
#: cost rates: 16x16 PEs and 1.25 MB local + 256 KB global SRAM.
_BASELINE_PES = 256
_BASELINE_SRAM_BYTES = 256 * (4 * 512 * 2 + 512 * 2) + 256 * 1024


@dataclass(frozen=True)
class AcceleratorConfig:
    """A Uni-Render design point.

    Attributes mirror Fig. 9: each PE holds a controller, a
    filter/feature scratch pad of four 512x16 single-port SRAM cells, an
    ALU with four INT16 MACs, four BF16 MACs, and four special function
    units, and a 512x16 partial-sum scratch pad.
    """

    pe_rows: int = 16
    pe_cols: int = 16
    clock_hz: float = 1.0e9
    dram_bandwidth: float = 59.7e9        # bytes/s (LPDDR4-1866, [75])
    global_buffer_bytes: int = 256 * 1024

    # Per-PE resources (Fig. 9c).
    ff_scratchpad_bytes: int = 4 * 512 * 2   # four 512x16 SRAM cells
    ps_scratchpad_bytes: int = 512 * 2       # one 512x16 SRAM cell
    int16_macs_per_pe: int = 4
    bf16_macs_per_pe: int = 4
    sfus_per_pe: int = 4

    # Reconfiguration cost between micro-operator modes (Sec. VII-E):
    # drain the array, rewrite network/PE configuration state.
    reconfigure_cycles: int = 2048

    # Extra pipeline stage on the GEMM path ("data must pass through a
    # buffer before reaching ALUs", Sec. VII-E) expressed as a throughput
    # derate relative to a vanilla systolic array.
    gemm_buffer_stage_overhead: float = 0.15

    # Serving-economics hook: cost units charged per *provisioned*
    # chip-second. ``None`` derives the rate from silicon (PE count and
    # on-chip SRAM against the paper's 16x16 / 1.5 MB baseline, which
    # prices at exactly 1.0); autoscaling experiments override it to
    # model e.g. spot or reserved pricing.
    cost_rate_per_s: float | None = None

    def __post_init__(self) -> None:
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ConfigError("PE array dimensions must be positive")
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.dram_bandwidth <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.global_buffer_bytes < 1024:
            raise ConfigError("global buffer unreasonably small")
        if self.gemm_buffer_stage_overhead < 0:
            raise ConfigError("overheads cannot be negative")
        if self.cost_rate_per_s is not None and self.cost_rate_per_s <= 0:
            raise ConfigError("chip cost rate must be positive")

    # ------------------------------------------------------------------
    @property
    def n_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def local_sram_bytes(self) -> int:
        """Total PE-local memory (1.25 MB at the default design point)."""
        return self.n_pes * (self.ff_scratchpad_bytes + self.ps_scratchpad_bytes)

    @property
    def total_sram_bytes(self) -> int:
        return self.local_sram_bytes + self.global_buffer_bytes

    @property
    def peak_bf16_macs_per_cycle(self) -> int:
        return self.n_pes * self.bf16_macs_per_pe

    @property
    def peak_int16_macs_per_cycle(self) -> int:
        return self.n_pes * self.int16_macs_per_pe

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth / self.clock_hz

    # -- serving economics ----------------------------------------------
    @property
    def label(self) -> str:
        """Short design-point tag used in fleet cost breakdowns."""
        return f"{self.pe_rows}x{self.pe_cols}pe-{self.total_sram_bytes // 1024}KB"

    @property
    def chip_cost_rate(self) -> float:
        """Cost units per provisioned chip-second.

        Explicit ``cost_rate_per_s`` wins; otherwise the rate is derived
        from silicon, half weighted on the PE array and half on total
        on-chip SRAM, normalized so the paper's default design point
        costs 1.0/s. Derived rates therefore track ``scaled()``
        automatically (a 4x-PE chip is pricier than the baseline but
        cheaper than four baseline chips' idle tails it replaces).
        """
        if self.cost_rate_per_s is not None:
            return self.cost_rate_per_s
        return (0.5 * self.n_pes / _BASELINE_PES
                + 0.5 * self.total_sram_bytes / _BASELINE_SRAM_BYTES)

    # ------------------------------------------------------------------
    def scaled(self, pe_scale: int = 1, sram_scale: int = 1) -> "AcceleratorConfig":
        """The Table V scaling knobs, scaled *independently*.

        ``pe_scale`` multiplies the PE count (by widening the array);
        ``sram_scale`` multiplies the *total* on-chip SRAM capacity.
        Because scratch pads are per-PE, growing the array alone spreads
        the same total local SRAM across more PEs — exactly the
        configuration Table V shows saturating at 1.1x.
        """
        if pe_scale < 1 or sram_scale < 1:
            raise ConfigError("scales must be >= 1")
        if pe_scale & (pe_scale - 1) or sram_scale & (sram_scale - 1):
            raise ConfigError("scales must be powers of two")
        rows, cols = self.pe_rows, self.pe_cols
        remaining = pe_scale
        while remaining > 1:
            if cols <= rows:
                cols *= 2
            else:
                rows *= 2
            remaining //= 2
        per_pe_factor = sram_scale / pe_scale
        ff = int(self.ff_scratchpad_bytes * per_pe_factor)
        ps = int(self.ps_scratchpad_bytes * per_pe_factor)
        if ff < 2 or ps < 2:
            raise ConfigError("scaling leaves PEs with no scratch pad")
        return replace(
            self,
            pe_rows=rows,
            pe_cols=cols,
            global_buffer_bytes=self.global_buffer_bytes * sram_scale,
            ff_scratchpad_bytes=ff,
            ps_scratchpad_bytes=ps,
        )


@dataclass(frozen=True)
class CompileLatencyModel:
    """Deterministic, program-size-derived trace-compile latency.

    Compiling a frame trace renders probe frames to measure scene
    coefficients — host-side work the serving simulator must price in
    *simulated* time (wall-clock compile time varies run to run and
    would make reports nondeterministic). The model charges a fixed
    setup cost plus terms proportional to the compiled program's size:
    its invocation count, its total arithmetic work, and the probe
    resolution. All inputs are deterministic functions of the trace
    key, so the same workload always prices the same.
    """

    base_s: float = 1e-3           # fixed lowering/setup cost
    per_invocation_s: float = 2.5e-4  # per micro-op invocation emitted
    per_gop_s: float = 8e-3        # per 1e9 arithmetic ops in the program
    per_mpixel_s: float = 2e-4     # per 1e6 output pixels (probe frames)

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ConfigError("compile base latency must be positive")
        for name in ("per_invocation_s", "per_gop_s", "per_mpixel_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"compile latency term {name} is negative")

    def latency_s(self, program) -> float:
        """Simulated seconds to compile ``program`` (a MicroOpProgram)."""
        ops = (program.total("int_ops") + program.total("bf16_ops")
               + program.total("sfu_ops"))
        return (self.base_s
                + self.per_invocation_s * len(program.invocations)
                + self.per_gop_s * ops / 1e9
                + self.per_mpixel_s * program.pixels / 1e6)
