"""Exception hierarchy for the Uni-Render reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid hardware or pipeline configuration was supplied."""


class SceneError(ReproError):
    """A scene, camera, or representation was malformed or unknown."""


class CompileError(ReproError):
    """A rendering pipeline could not be lowered to a micro-op trace."""


class UnsupportedPipelineError(ReproError):
    """A device model was asked to run a pipeline it does not support.

    Mirrors the "x" bars in Fig. 7 / Fig. 16 of the paper: dedicated
    accelerators only execute their target pipeline.
    """

    def __init__(self, device: str, pipeline: str) -> None:
        super().__init__(f"device {device!r} does not support pipeline {pipeline!r}")
        self.device = device
        self.pipeline = pipeline


class SimulationError(ReproError):
    """The performance simulator reached an inconsistent state."""


class ObsError(ReproError):
    """An observability artifact (trace, metrics dump, flight-recorder
    capture) was malformed or failed validation."""
