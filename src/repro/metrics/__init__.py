"""Evaluation metrics: image quality and rendering performance."""

from repro.metrics.quality import mse, psnr, ssim_global
from repro.metrics.perf import (
    energy_efficiency_ratio,
    fps_from_seconds,
    geometric_mean,
    speedup,
)

__all__ = [
    "mse",
    "psnr",
    "ssim_global",
    "speedup",
    "energy_efficiency_ratio",
    "geometric_mean",
    "fps_from_seconds",
]
