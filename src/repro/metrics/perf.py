"""Performance metrics: speedup, energy efficiency, geometric means."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError


def fps_from_seconds(seconds_per_frame: float) -> float:
    """Frames per second from frame latency."""
    if seconds_per_frame <= 0:
        raise ConfigError("frame time must be positive")
    return 1.0 / seconds_per_frame


def speedup(ours_fps: float, baseline_fps: float) -> float:
    """How many times faster ours renders than the baseline."""
    if ours_fps <= 0 or baseline_fps <= 0:
        raise ConfigError("FPS values must be positive")
    return ours_fps / baseline_fps


def energy_efficiency_ratio(
    ours_fps: float, ours_power_w: float, baseline_fps: float, baseline_power_w: float
) -> float:
    """Ratio of frames-per-joule, ours over baseline (Fig. 16b)."""
    if min(ours_fps, ours_power_w, baseline_fps, baseline_power_w) <= 0:
        raise ConfigError("inputs must be positive")
    return (ours_fps / ours_power_w) / (baseline_fps / baseline_power_w)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-pipeline summary statistic."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ConfigError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
