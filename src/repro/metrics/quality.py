"""Image-quality metrics (Table I's rendering-quality column)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def mse(image: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared error between two images in [0, 1]."""
    image = np.asarray(image, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if image.shape != reference.shape:
        raise ConfigError(
            f"shape mismatch: {image.shape} vs {reference.shape}"
        )
    return float(np.mean(np.square(image - reference)))


def psnr(image: np.ndarray, reference: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better)."""
    err = mse(image, reference)
    if err <= 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


def ssim_global(image: np.ndarray, reference: np.ndarray) -> float:
    """Global (single-window) SSIM — a luminance/contrast/structure
    summary adequate for ordering our synthetic renders."""
    x = np.asarray(image, dtype=np.float64).ravel()
    y = np.asarray(reference, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ConfigError("shape mismatch")
    c1 = (0.01) ** 2
    c2 = (0.03) ** 2
    mx, my = x.mean(), y.mean()
    vx, vy = x.var(), y.var()
    cov = float(np.mean((x - mx) * (y - my)))
    return float(
        ((2 * mx * my + c1) * (2 * cov + c2))
        / ((mx**2 + my**2 + c1) * (vx + vy + c2))
    )
