"""The six rendering pipelines with one registry-based entry point.

``build_representation(scene, pipeline)`` constructs the pipeline's scene
representation from a named scene's ground-truth field (cached), and
``make_renderer`` / ``render_scene`` wrap it in the matching renderer.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SceneError
from repro.renderers.base import RenderStats, Renderer, Representation
from repro.renderers.mesh import MeshRenderer, build_mesh_model
from repro.renderers.nerf import NerfRenderer, build_kilonerf_model
from repro.renderers.lowrank import LowRankRenderer, build_triplane_model
from repro.renderers.hashgrid import HashGridRenderer, build_hashgrid_model
from repro.renderers.gaussian import GaussianRenderer, build_gaussian_model
from repro.renderers.hybrid import MixRTRenderer, build_mixrt_model
from repro.scenes import Camera, get_scene, orbit_poses

__all__ = [
    "RenderStats",
    "Renderer",
    "Representation",
    "PIPELINE_BUILDERS",
    "PIPELINE_RENDERERS",
    "build_representation",
    "make_renderer",
    "render_scene",
    "clear_representation_cache",
]

#: pipeline name -> (builder function, renderer class)
PIPELINE_BUILDERS = {
    "mesh": build_mesh_model,
    "mlp": build_kilonerf_model,
    "lowrank": build_triplane_model,
    "hashgrid": build_hashgrid_model,
    "gaussian": build_gaussian_model,
    "mixrt": build_mixrt_model,
}

PIPELINE_RENDERERS = {
    "mesh": MeshRenderer,
    "mlp": NerfRenderer,
    "lowrank": LowRankRenderer,
    "hashgrid": HashGridRenderer,
    "gaussian": GaussianRenderer,
    "mixrt": MixRTRenderer,
}

_REPRESENTATION_CACHE: dict[tuple, Any] = {}


def clear_representation_cache() -> None:
    """Drop all cached representations (mainly for tests)."""
    _REPRESENTATION_CACHE.clear()


def build_representation(scene_name: str, pipeline: str, cache: bool = True, **kwargs):
    """Build (or fetch from cache) one pipeline's representation of a scene.

    ``kwargs`` are forwarded to the pipeline's builder (e.g. ``quality``
    for mesh, ``n_gaussians`` for 3DGS).
    """
    if pipeline not in PIPELINE_BUILDERS:
        raise SceneError(
            f"unknown pipeline {pipeline!r}; choose from {sorted(PIPELINE_BUILDERS)}"
        )
    key = (scene_name, pipeline, tuple(sorted(kwargs.items())))
    if cache and key in _REPRESENTATION_CACHE:
        return _REPRESENTATION_CACHE[key]
    field = get_scene(scene_name).field()
    model = PIPELINE_BUILDERS[pipeline](field, **kwargs)
    if cache:
        _REPRESENTATION_CACHE[key] = model
    return model


def make_renderer(scene_name: str, pipeline: str, model=None, **build_kwargs):
    """A ready-to-use renderer for ``scene_name`` under ``pipeline``."""
    field = get_scene(scene_name).field()
    if model is None:
        model = build_representation(scene_name, pipeline, **build_kwargs)
    return PIPELINE_RENDERERS[pipeline](model, field)


def render_scene(
    scene_name: str,
    pipeline: str = "hashgrid",
    size: tuple[int, int] = (64, 64),
    view: int = 0,
    n_views: int = 8,
    **build_kwargs,
):
    """One-call rendering of a named scene from an orbit viewpoint.

    Returns ``(image, stats)``. Used by the examples and quick tests.
    """
    spec = get_scene(scene_name)
    renderer = make_renderer(scene_name, pipeline, **build_kwargs)
    poses = orbit_poses(spec.camera_radius, n_views)
    camera = Camera(size[0], size[1], pose=poses[view % n_views])
    return renderer.render(camera)
