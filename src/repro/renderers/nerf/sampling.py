"""Ray sampling and the occupancy grid used for empty-space skipping.

Every volume pipeline (MLP, low-rank, hash-grid) casts rays, samples
points, skips empty space with a coarse occupancy grid, and only shades
surviving samples. The ratio ``samples_shaded / samples_total`` is a key
workload statistic for the performance model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SceneError
from repro.scenes.fields import SceneField, contract_unbounded


def sample_along_rays(
    origins: np.ndarray,
    dirs: np.ndarray,
    t_range: tuple[float, float],
    n_samples: int,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, float]:
    """Sample points along rays; returns ``(points, dt)``.

    Stratified when ``rng`` is given (training), uniform midpoints when
    deterministic (rendering). ``points`` has shape (rays, samples, 3).
    """
    if n_samples < 2:
        raise SceneError("need at least two samples per ray")
    t0, t1 = t_range
    if not t0 < t1:
        raise SceneError("t_range must be increasing")
    edges = np.linspace(t0, t1, n_samples + 1)
    mids = 0.5 * (edges[:-1] + edges[1:])
    dt = float(edges[1] - edges[0])
    if rng is not None:
        jitter = rng.uniform(-0.5, 0.5, size=(len(origins), n_samples)) * dt
        ts = mids[None, :] + jitter
    else:
        ts = np.broadcast_to(mids, (len(origins), n_samples))
    points = origins[:, None, :] + dirs[:, None, :] * ts[..., None]
    return points, dt


class OccupancyGrid:
    """A coarse boolean grid marking where the scene has matter.

    Built once per scene from the ground-truth field (the real systems
    maintain it from the trained representation); queried per sample to
    skip shading of empty space.
    """

    def __init__(
        self,
        field: SceneField,
        resolution: int = 32,
        threshold: float = 0.1,
        supersample: int = 3,
    ) -> None:
        if resolution < 2:
            raise SceneError("occupancy resolution must be >= 2")
        self.resolution = resolution
        self.contracted = field.unbounded
        if self.contracted:
            lo = np.full(3, -2.0)
            hi = np.full(3, 2.0)
        else:
            lo, hi = field.bounds
        self.lo, self.hi = np.asarray(lo, float), np.asarray(hi, float)

        # Probe each cell at supersample^3 jittered points.
        lin = (np.arange(resolution) + 0.5) / resolution
        grid = np.stack(
            np.meshgrid(lin, lin, lin, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        occupied = np.zeros(len(grid), dtype=bool)
        rng = np.random.default_rng(0)
        cell = (self.hi - self.lo) / resolution
        for _ in range(max(1, supersample**3 // 2)):
            jitter = rng.uniform(-0.5, 0.5, size=grid.shape) / resolution
            world = self.lo + (grid + jitter) * (self.hi - self.lo)
            query = world
            if self.contracted:
                # The grid lives in contracted space, the field in world
                # space: invert the contraction approximately by scaling
                # radially (exact for |x| <= 1, monotone outside).
                query = _uncontract(world)
            occupied |= field.density(query) > threshold
        self.cells = occupied.reshape(resolution, resolution, resolution)

    @property
    def occupancy(self) -> float:
        """Fraction of occupied cells."""
        return float(self.cells.mean())

    def cell_index(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates for (possibly contracted) points."""
        unit = (points - self.lo) / (self.hi - self.lo)
        idx = np.floor(unit * self.resolution).astype(np.int64)
        return np.clip(idx, 0, self.resolution - 1)

    def query(self, points: np.ndarray, already_contracted: bool = False) -> np.ndarray:
        """True where a world-space point may contain matter."""
        points = np.asarray(points, dtype=np.float64)
        if self.contracted and not already_contracted:
            points = contract_unbounded(points)
        inside = np.all((points >= self.lo) & (points <= self.hi), axis=-1)
        idx = self.cell_index(points)
        hit = self.cells[idx[..., 0], idx[..., 1], idx[..., 2]]
        return hit & inside

    def storage_bytes(self) -> int:
        """One bit per cell, as shipped with real models."""
        return self.cells.size // 8


def importance_sample(
    bin_edges: np.ndarray,
    weights: np.ndarray,
    n_samples: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Hierarchical (coarse-to-fine) sampling: draw ``n_samples`` depths
    per ray from the piecewise-constant PDF the coarse pass produced.

    ``bin_edges`` has shape (bins + 1,), ``weights`` (rays, bins).
    Returns sorted sample depths of shape (rays, n_samples). This is
    NeRF's fine-network sampler [67]; the accelerator sees it as extra
    GEMM batch rows concentrated near surfaces.
    """
    if n_samples < 1:
        raise SceneError("need at least one importance sample")
    weights = np.asarray(weights, dtype=np.float64) + 1e-5
    pdf = weights / weights.sum(axis=1, keepdims=True)
    cdf = np.concatenate(
        [np.zeros((len(pdf), 1)), np.cumsum(pdf, axis=1)], axis=1
    )
    if rng is not None:
        u = rng.uniform(0.0, 1.0, size=(len(pdf), n_samples))
    else:
        u = np.broadcast_to(
            (np.arange(n_samples) + 0.5) / n_samples, (len(pdf), n_samples)
        ).copy()

    # Invert the CDF per ray.
    idx = np.empty((len(pdf), n_samples), dtype=np.int64)
    for r in range(len(pdf)):
        idx[r] = np.searchsorted(cdf[r], u[r], side="right") - 1
    idx = np.clip(idx, 0, weights.shape[1] - 1)
    lo = cdf[np.arange(len(pdf))[:, None], idx]
    hi = cdf[np.arange(len(pdf))[:, None], idx + 1]
    frac = np.where(hi > lo, (u - lo) / np.maximum(hi - lo, 1e-12), 0.5)
    edges = np.asarray(bin_edges, dtype=np.float64)
    depths = edges[idx] + frac * (edges[idx + 1] - edges[idx])
    return np.sort(depths, axis=1)


def _uncontract(points: np.ndarray) -> np.ndarray:
    """Inverse of :func:`~repro.scenes.fields.contract_unbounded`."""
    norms = np.linalg.norm(points, axis=-1, keepdims=True)
    safe = np.maximum(norms, 1e-12)
    # |y| = 2 - 1/|x|  =>  |x| = 1 / (2 - |y|)
    inv = 1.0 / np.maximum(2.0 - safe, 1e-6)
    outside = (points / safe) * inv
    return np.where(norms <= 1.0, points, outside)
