"""The MLP (NeRF/KiloNeRF) rendering pipeline end to end (Fig. 3).

Ray casting -> (empty-space skip) -> tiny-MLP queries -> blending, with
an optional MetaVRain-style Pixel-Reuse mode (Table IV) that shades a
subsampled pixel grid and interpolates the rest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.renderers.base import RenderStats, as_image
from repro.renderers.nerf.kilonerf import KiloNeRFModel
from repro.renderers.volume import VolumeRendererBase
from repro.scenes.camera import Camera
from repro.scenes.fields import SceneField


class NerfRenderer(VolumeRendererBase):
    """Renders a :class:`KiloNeRFModel` — the MLP-based pipeline."""

    pipeline = "mlp"

    def __init__(
        self,
        model: KiloNeRFModel,
        field: SceneField,
        pixel_reuse: int = 1,
        chunk: int = 4096,
    ) -> None:
        if pixel_reuse < 1:
            raise ConfigError("pixel_reuse must be >= 1")
        super().__init__(field, model.samples_per_ray, model.occupancy, chunk)
        self.model = model
        self.pixel_reuse = pixel_reuse

    def shade_samples(
        self, points: np.ndarray, dirs: np.ndarray, stats: RenderStats
    ) -> tuple[np.ndarray, np.ndarray]:
        sigma, rgb = self.model.query(points, dirs)
        stats.add("mlp_inputs", len(points))
        stats.add("mlp_macs", len(points) * self.model.macs_per_sample())
        return sigma, rgb

    def render(self, camera: Camera) -> tuple[np.ndarray, RenderStats]:
        """Render one view; Pixel-Reuse [32] shades a coarse pixel grid
        (~reuse^2 fewer rays, the paper cites ~20x) and interpolates."""
        if self.pixel_reuse == 1:
            return super().render(camera)
        stats = RenderStats()
        stats.add("pixels", camera.num_pixels)
        small_cam = camera.resized(
            max(2, camera.width // self.pixel_reuse),
            max(2, camera.height // self.pixel_reuse),
        )
        flat = self.render_rays(small_cam, stats)
        small = flat.reshape(small_cam.height, small_cam.width, 3)
        full = _bilinear_resize(small, camera.height, camera.width)
        return as_image(full.reshape(-1, 3), camera.height, camera.width), stats


def _bilinear_resize(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Minimal bilinear upsampling for the Pixel-Reuse mode."""
    src_h, src_w = image.shape[:2]
    ys = np.linspace(0, src_h - 1, height)
    xs = np.linspace(0, src_w - 1, width)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    fy = (ys - y0)[:, None, None]
    fx = (xs - x0)[None, :, None]
    top = image[y0][:, x0] * (1 - fx) + image[y0][:, x1] * fx
    bot = image[y1][:, x0] * (1 - fx) + image[y1][:, x1] * fx
    return top * (1 - fy) + bot * fy
