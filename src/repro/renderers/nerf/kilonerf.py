"""KiloNeRF: a regular grid of thousands of independent tiny MLPs [87].

This is the MLP-pipeline implementation the paper benchmarks ("fewer than
1 million parameters ... batch sizes greater than 1024", Sec. VI). All
cell MLPs are trained *jointly* with batched einsum passes — one
(cells, batch, width) tensor per layer — so fitting stays laptop-fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import ConfigError, SceneError
from repro.nn import Adam, relu, sigmoid
from repro.renderers.nerf.encoding import encoding_width, positional_encoding
from repro.renderers.nerf.sampling import OccupancyGrid
from repro.scenes.fields import SceneField, contract_unbounded


@dataclass
class KiloNeRFModel:
    """Grid of tiny MLPs plus the occupancy grid for empty-space skipping.

    Weight tensors are stacked over cells: ``w1`` has shape
    ``(cells, in, hidden)`` and so on. Cell MLPs map
    ``PE(local_xyz) ++ view_dir`` to ``(sigma_raw, r, g, b)``.
    """

    grid_size: int
    n_freqs: int
    hidden: int
    lo: np.ndarray
    hi: np.ndarray
    contracted: bool
    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray
    w3: np.ndarray
    b3: np.ndarray
    sigma_scale: float
    occupancy: OccupancyGrid | None = None
    samples_per_ray: int = 96
    cell_empty: np.ndarray = dataclass_field(default=None)

    @property
    def n_cells(self) -> int:
        return self.grid_size**3

    @property
    def input_width(self) -> int:
        return encoding_width(3, self.n_freqs) + 3

    @property
    def num_params(self) -> int:
        return sum(a.size for a in (self.w1, self.b1, self.w2, self.b2, self.w3, self.b3))

    def macs_per_sample(self) -> int:
        """MACs for one shaded sample (one tiny-MLP forward pass)."""
        return (
            self.w1.shape[1] * self.w1.shape[2]
            + self.w2.shape[1] * self.w2.shape[2]
            + self.w3.shape[1] * self.w3.shape[2]
        )

    def storage_bytes(self) -> int:
        """BF16 weights + 1-bit occupancy — the Table I storage column."""
        occ = self.occupancy.storage_bytes() if self.occupancy is not None else 0
        return self.num_params * 2 + occ

    # ------------------------------------------------------------------
    def cell_of(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat cell ids and cell-local coordinates in [-1, 1]."""
        unit = (points - self.lo) / (self.hi - self.lo)
        unit = np.clip(unit, 0.0, 1.0 - 1e-9)
        idx = np.floor(unit * self.grid_size).astype(np.int64)
        flat = (idx[:, 0] * self.grid_size + idx[:, 1]) * self.grid_size + idx[:, 2]
        local = (unit * self.grid_size - idx) * 2.0 - 1.0
        return flat, local

    def _features(self, local: np.ndarray, dirs: np.ndarray) -> np.ndarray:
        return np.concatenate([positional_encoding(local, self.n_freqs), dirs], axis=1)

    def forward_cells(self, cells: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Per-point forward pass through each point's own cell MLP.

        Groups points by cell and runs one small GEMM per distinct cell —
        the same blocking a real KiloNeRF kernel uses.
        """
        out = np.empty((len(x), 4))
        order = np.argsort(cells, kind="stable")
        sorted_cells = cells[order]
        boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            if len(group) == 0:
                continue
            c = cells[group[0]]
            h = relu(x[group] @ self.w1[c] + self.b1[c])
            h = relu(h @ self.w2[c] + self.b2[c])
            out[group] = h @ self.w3[c] + self.b3[c]
        return out

    def query(self, points: np.ndarray, dirs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sigma, rgb) at world points — the full representation query."""
        points = np.asarray(points, dtype=np.float64)
        if self.contracted:
            points = contract_unbounded(points)
        cells, local = self.cell_of(points)
        raw = self.forward_cells(cells, self._features(local, dirs))
        sigma = np.maximum(raw[:, 0], 0.0) * self.sigma_scale
        if self.cell_empty is not None:
            sigma = np.where(self.cell_empty[cells], 0.0, sigma)
        rgb = sigmoid(raw[:, 1:4])
        return sigma, rgb


def build_kilonerf_model(
    scene_field: SceneField,
    grid_size: int = 4,
    hidden: int = 16,
    n_freqs: int = 4,
    train_steps: int = 300,
    batch_per_cell: int = 48,
    samples_per_ray: int = 96,
    occupancy_resolution: int = 32,
    seed: int = 0,
) -> KiloNeRFModel:
    """Jointly fit all cell MLPs to the ground-truth field.

    Each training step draws ``batch_per_cell`` stratified points in every
    cell, evaluates the field, and regresses (sigma, rgb) with Adam.
    """
    if grid_size < 1:
        raise ConfigError("grid_size must be >= 1")
    rng = np.random.default_rng(seed)
    contracted = scene_field.unbounded
    if contracted:
        lo, hi = np.full(3, -2.0), np.full(3, 2.0)
    else:
        lo, hi = scene_field.bounds

    n_cells = grid_size**3
    in_width = encoding_width(3, n_freqs) + 3
    sigma_scale = max(p.density_scale for p in scene_field.primitives)

    def winit(fan_in, fan_out):
        return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(n_cells, fan_in, fan_out))

    model = KiloNeRFModel(
        grid_size=grid_size,
        n_freqs=n_freqs,
        hidden=hidden,
        lo=np.asarray(lo, float),
        hi=np.asarray(hi, float),
        contracted=contracted,
        w1=winit(in_width, hidden),
        b1=np.zeros((n_cells, hidden)),
        w2=winit(hidden, hidden),
        b2=np.zeros((n_cells, hidden)),
        w3=winit(hidden, 4),
        b3=np.zeros((n_cells, 4)),
        sigma_scale=sigma_scale,
        samples_per_ray=samples_per_ray,
    )

    # Cell centers in unit coordinates -> world corners for sampling.
    idx = np.stack(
        np.meshgrid(*([np.arange(grid_size)] * 3), indexing="ij"), axis=-1
    ).reshape(-1, 3)
    cell_lo = model.lo + idx / grid_size * (model.hi - model.lo)
    cell_span = (model.hi - model.lo) / grid_size

    params = [model.w1, model.b1, model.w2, model.b2, model.w3, model.b3]
    optimizer = Adam(params, lr=5e-3)

    for _ in range(train_steps):
        unit = rng.uniform(0.0, 1.0, size=(n_cells, batch_per_cell, 3))
        pts = cell_lo[:, None, :] + unit * cell_span[None, None, :]
        flat_pts = pts.reshape(-1, 3)
        world_pts = _uncontract_if(flat_pts, contracted)
        dirs = rng.normal(size=(len(flat_pts), 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        sigma_t, rgb_t = scene_field.density_and_color(world_pts, dirs)

        local = (unit * 2.0 - 1.0).reshape(-1, 3)
        x = model._features(local, dirs).reshape(n_cells, batch_per_cell, in_width)

        # Batched forward across all cells.
        pre1 = np.einsum("cbi,cih->cbh", x, model.w1) + model.b1[:, None, :]
        h1 = relu(pre1)
        pre2 = np.einsum("cbh,chk->cbk", h1, model.w2) + model.b2[:, None, :]
        h2 = relu(pre2)
        out = np.einsum("cbh,cho->cbo", h2, model.w3) + model.b3[:, None, :]

        target = np.concatenate(
            [
                (sigma_t / sigma_scale).reshape(n_cells, batch_per_cell, 1),
                rgb_t.reshape(n_cells, batch_per_cell, 3),
            ],
            axis=2,
        )
        pred = np.concatenate(
            [np.maximum(out[..., :1], 0.0), sigmoid(out[..., 1:4])], axis=2
        )
        diff = pred - target
        g_out = np.empty_like(out)
        g_out[..., :1] = 2.0 * diff[..., :1] * (out[..., :1] > 0)
        s = pred[..., 1:4]
        g_out[..., 1:4] = 2.0 * diff[..., 1:4] * s * (1.0 - s)
        g_out /= batch_per_cell

        # Batched backward.
        g_w3 = np.einsum("cbh,cbo->cho", h2, g_out)
        g_b3 = g_out.sum(axis=1)
        g_h2 = np.einsum("cbo,cho->cbh", g_out, model.w3) * (pre2 > 0)
        g_w2 = np.einsum("cbh,cbk->chk", h1, g_h2)
        g_b2 = g_h2.sum(axis=1)
        g_h1 = np.einsum("cbk,chk->cbh", g_h2, model.w2) * (pre1 > 0)
        g_w1 = np.einsum("cbi,cbh->cih", x, g_h1)
        g_b1 = g_h1.sum(axis=1)
        optimizer.step([g_w1, g_b1, g_w2, g_b2, g_w3, g_b3])

    model.occupancy = OccupancyGrid(scene_field, resolution=occupancy_resolution)
    # Mark cells with no occupied voxels as empty (KiloNeRF's skip list).
    occ = model.occupancy
    probe = cell_lo[:, None, :] + rng.uniform(0, 1, (n_cells, 16, 3)) * cell_span
    hits = occ.query(probe.reshape(-1, 3), already_contracted=contracted)
    model.cell_empty = ~hits.reshape(n_cells, 16).any(axis=1)
    return model


def _uncontract_if(points: np.ndarray, contracted: bool) -> np.ndarray:
    """Map sampled (possibly contracted-space) points back to world."""
    if not contracted:
        return points
    from repro.renderers.nerf.sampling import _uncontract

    return _uncontract(points)
