"""Sinusoidal positional encoding (NeRF's input featurization).

The "massive varying scalar computations" and "complex positional
encoding" called out in Sec. VIII-B are exactly these sin/cos evaluations;
the accelerator prices them on the PE's special function units.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def encoding_width(dims: int, n_freqs: int, include_input: bool = True) -> int:
    """Output width of :func:`positional_encoding` for planning layers."""
    return dims * (2 * n_freqs + (1 if include_input else 0))


def positional_encoding(
    points: np.ndarray, n_freqs: int, include_input: bool = True
) -> np.ndarray:
    """gamma(p) = (p, sin(2^k pi p), cos(2^k pi p)) for k < n_freqs.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates, ideally normalized to roughly [-1, 1].
    n_freqs:
        Number of octaves L; NeRF uses 10 for positions, 4 for directions.
    """
    if n_freqs < 0:
        raise ConfigError("n_freqs must be non-negative")
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ConfigError("points must be a 2D batch")
    parts = [points] if include_input else []
    for k in range(n_freqs):
        scaled = (2.0**k) * np.pi * points
        parts.append(np.sin(scaled))
        parts.append(np.cos(scaled))
    if not parts:
        return np.zeros((len(points), 0))
    return np.concatenate(parts, axis=1)
