"""MLP-based rendering pipeline (Sec. II-B) — NeRF [67] / KiloNeRF [87].

Steps: ray casting -> MLP -> blending. The scene lives implicitly in MLP
weights. We implement the KiloNeRF variant the paper benchmarks (a grid
of thousands of tiny MLPs with empty-space skipping) plus the
MetaVRain-style Pixel-Reuse option referenced in Table IV.
"""

from repro.renderers.nerf.encoding import positional_encoding, encoding_width
from repro.renderers.nerf.sampling import (
    OccupancyGrid,
    importance_sample,
    sample_along_rays,
)
from repro.renderers.nerf.kilonerf import KiloNeRFModel, build_kilonerf_model
from repro.renderers.nerf.vanilla import VanillaNeRFModel, build_vanilla_nerf
from repro.renderers.nerf.pipeline import NerfRenderer

__all__ = [
    "positional_encoding",
    "encoding_width",
    "OccupancyGrid",
    "sample_along_rays",
    "importance_sample",
    "KiloNeRFModel",
    "build_kilonerf_model",
    "VanillaNeRFModel",
    "build_vanilla_nerf",
    "NerfRenderer",
]
