"""Vanilla NeRF: one large MLP for the whole scene [67].

The original pipeline the paper's Sec. II-B describes — no spatial
decomposition, no empty-space skipping, every sample through the full
network. It is the quality reference of Table I and the reason the MLP
pipeline is the slowest row of Fig. 7; KiloNeRF (:mod:`.kilonerf`) is
the deployable variant the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn import MLP, Adam
from repro.renderers.nerf.encoding import encoding_width, positional_encoding
from repro.scenes.fields import SceneField, contract_unbounded


@dataclass
class VanillaNeRFModel:
    """A single scene-wide MLP with positional encoding.

    Satisfies the same query interface as
    :class:`~repro.renderers.nerf.kilonerf.KiloNeRFModel`, so
    :class:`~repro.renderers.nerf.pipeline.NerfRenderer` renders it
    directly. ``occupancy`` is None: vanilla NeRF shades every sample.
    """

    mlp: MLP
    n_freqs: int
    lo: np.ndarray
    hi: np.ndarray
    contracted: bool
    sigma_scale: float
    samples_per_ray: int = 128
    occupancy = None  # no empty-space skipping in the original pipeline

    @property
    def num_params(self) -> int:
        return self.mlp.num_params

    def macs_per_sample(self) -> int:
        return self.mlp.macs_per_sample()

    def storage_bytes(self) -> int:
        """BF16 weights only — why Table I calls NeRF the most
        storage-efficient representation."""
        return self.mlp.storage_bytes()

    def _features(self, points: np.ndarray, dirs: np.ndarray) -> np.ndarray:
        unit = 2.0 * (points - self.lo) / (self.hi - self.lo) - 1.0
        return np.concatenate([positional_encoding(unit, self.n_freqs), dirs], axis=1)

    def query(self, points: np.ndarray, dirs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sigma, rgb) at world points."""
        points = np.asarray(points, dtype=np.float64)
        if self.contracted:
            points = contract_unbounded(points)
        raw = self.mlp.forward(self._features(points, dirs))
        sigma = np.maximum(raw[:, 0], 0.0) * self.sigma_scale
        rgb = 1.0 / (1.0 + np.exp(-np.clip(raw[:, 1:4], -30, 30)))
        return sigma, rgb


def build_vanilla_nerf(
    field: SceneField,
    hidden: int = 48,
    depth: int = 3,
    n_freqs: int = 6,
    train_steps: int = 500,
    train_batch: int = 1024,
    samples_per_ray: int = 128,
    seed: int = 0,
) -> VanillaNeRFModel:
    """Fit one MLP to the whole field with Adam (surface-biased batches)."""
    if depth < 1:
        raise ConfigError("need at least one hidden layer")
    rng = np.random.default_rng(seed)
    contracted = field.unbounded
    if contracted:
        lo, hi = np.full(3, -2.0), np.full(3, 2.0)
    else:
        lo, hi = (np.asarray(b, float) for b in field.bounds)
    sigma_scale = max(p.density_scale for p in field.primitives)

    widths = [encoding_width(3, n_freqs) + 3] + [hidden] * depth + [4]
    model = VanillaNeRFModel(
        mlp=MLP(widths, output_activation="linear", rng=rng),
        n_freqs=n_freqs,
        lo=lo,
        hi=hi,
        contracted=contracted,
        sigma_scale=sigma_scale,
        samples_per_ray=samples_per_ray,
    )

    # Surface-biased sampling, as for the grid representations.
    probe = rng.uniform(0.0, 1.0, size=(20000, 3))
    world_probe = lo + probe * (hi - lo)
    occupied = probe[field.density(world_probe) > 0.05]

    optimizer = Adam(model.mlp.parameters(), lr=3e-3)
    for _ in range(train_steps):
        unit = rng.uniform(0.0, 1.0, size=(train_batch, 3))
        if len(occupied):
            n_occ = int(0.6 * train_batch)
            picks = rng.integers(0, len(occupied), n_occ)
            unit[:n_occ] = np.clip(
                occupied[picks] + rng.uniform(-0.03, 0.03, (n_occ, 3)), 0.0, 1.0
            )
        world = lo + unit * (hi - lo)
        dirs = rng.normal(size=(train_batch, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        sigma_t, rgb_t = field.density_and_color(world, dirs)

        out = model.mlp.forward(model._features(world, dirs))
        sigma_pred = np.maximum(out[:, :1], 0.0)
        rgb_pred = 1.0 / (1.0 + np.exp(-np.clip(out[:, 1:4], -30, 30)))
        grad = np.empty_like(out)
        grad[:, :1] = 2.0 * (sigma_pred - (sigma_t / sigma_scale)[:, None]) * (
            out[:, :1] > 0
        )
        grad[:, 1:4] = 2.0 * (rgb_pred - rgb_t) * rgb_pred * (1.0 - rgb_pred)
        grad /= train_batch
        model.mlp.backward(grad)
        optimizer.step(model.mlp.gradients())
    return model
