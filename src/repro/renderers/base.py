"""Shared renderer interfaces and workload statistics.

Every pipeline records :class:`RenderStats` while rendering. The counters
are the bridge between the functional renderers and the performance model:
:mod:`repro.compile` turns them into micro-operator workloads (Table II),
which :mod:`repro.core` then prices in cycles and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import SceneError

#: Canonical counter keys. Renderers may add others, but these are the
#: ones the compiler understands.
STAT_KEYS = (
    "pixels",                 # pixels produced
    "rays",                   # rays cast (volume pipelines)
    "samples_total",          # candidate samples along rays
    "samples_shaded",         # samples that survived empty-space skipping
    "tri_tests",              # triangle/pixel intersection tests
    "tris_projected",         # triangles through space conversion
    "gaussians_projected",    # gaussians through space conversion
    "splat_tests",            # gaussian/pixel density evaluations
    "texture_fetches",        # 2D texture-map reads (bilinear corners)
    "hash_lookups",           # hash-table reads (per corner per level)
    "plane_fetches",          # low-rank plane reads (bilinear corners)
    "grid_fetches",           # low-res 3D grid reads (trilinear corners)
    "sort_elements",          # elements passed through per-patch sorting
    "mlp_inputs",             # rows through the MLP (GEMM batch size)
    "mlp_macs",               # multiply-accumulates in MLPs
    "blend_samples",          # samples blended in volume rendering
)


@dataclass
class RenderStats:
    """Workload counters accumulated during one render call."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, key: str, value: float) -> None:
        """Accumulate ``value`` into counter ``key``."""
        self.counts[key] = self.counts.get(key, 0.0) + float(value)

    def get(self, key: str, default: float = 0.0) -> float:
        return self.counts.get(key, default)

    def merge(self, other: "RenderStats") -> "RenderStats":
        """Counter-wise sum of two stats objects (returns a new one)."""
        merged = RenderStats(dict(self.counts))
        for key, value in other.counts.items():
            merged.add(key, value)
        return merged

    def scaled(self, factor: float) -> "RenderStats":
        """All counters multiplied by ``factor`` — used to extrapolate
        statistics measured at probe resolution to full resolution."""
        return RenderStats({k: v * factor for k, v in self.counts.items()})

    def per_pixel(self) -> dict[str, float]:
        """Counters normalized by the pixel count (resolution-free form)."""
        pixels = self.counts.get("pixels", 0.0)
        if pixels <= 0:
            raise SceneError("stats have no pixels recorded")
        return {k: v / pixels for k, v in self.counts.items()}


class Representation(Protocol):
    """A built scene representation (weights/grids/meshes/gaussians)."""

    def storage_bytes(self) -> int:
        """On-disk/on-device size of the representation."""
        ...


class Renderer(Protocol):
    """A functional rendering pipeline over one representation."""

    #: Canonical pipeline name ("mesh", "mlp", "lowrank", "hashgrid",
    #: "gaussian", or "mixrt").
    pipeline: str

    def render(self, camera) -> tuple[np.ndarray, RenderStats]:
        """Render an (H, W, 3) image and report workload statistics."""
        ...


def as_image(flat_rgb: np.ndarray, height: int, width: int) -> np.ndarray:
    """Reshape a flat (H*W, 3) buffer into an (H, W, 3) image, clipped."""
    return np.clip(flat_rgb, 0.0, 1.0).reshape(height, width, 3)
