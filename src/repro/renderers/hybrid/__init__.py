"""Hybrid rendering pipeline (Sec. VII-C) — MixRT [51] analogue.

MixRT combines a low-poly mesh (fast rasterized base geometry) with a
hash-grid volumetric layer that adds the content meshes represent
poorly. The accelerator supports it because both halves decompose into
the same five micro-operators (Table II).
"""

from repro.renderers.hybrid.mixrt import MixRTModel, MixRTRenderer, build_mixrt_model

__all__ = ["MixRTModel", "MixRTRenderer", "build_mixrt_model"]
