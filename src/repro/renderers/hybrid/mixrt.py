"""MixRT: low-poly mesh base layer + hash-grid volumetric layer.

Rendering: rasterize the mesh for per-pixel depth and base color, then
ray-march the hash grid only *in front of* the mesh surface and
composite the mesh color as each ray's background. The volume pass
reuses the standard hash-grid pipeline; the mesh pass reuses the mesh
pipeline — exactly the "combining existing neural components" trend the
paper motivates the unified accelerator with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.renderers.base import RenderStats, as_image
from repro.renderers.hashgrid.hashenc import HashGridModel, build_hashgrid_model
from repro.renderers.hashgrid.pipeline import HashGridRenderer
from repro.renderers.mesh.build import MeshModel, build_mesh_model
from repro.renderers.mesh.raster import rasterize
from repro.scenes.camera import Camera
from repro.scenes.fields import SceneField


@dataclass
class MixRTModel:
    """The two-layer hybrid representation."""

    mesh: MeshModel
    hashgrid: HashGridModel

    def storage_bytes(self) -> int:
        return self.mesh.storage_bytes() + self.hashgrid.storage_bytes()


def build_mixrt_model(
    field: SceneField,
    mesh_quality: float = 0.6,
    mesh_train_steps: int = 150,
    hash_levels: int = 6,
    hash_log2_table_size: int = 12,
    hash_train_steps: int = 250,
    samples_per_ray: int = 48,
    seed: int = 0,
) -> MixRTModel:
    """Build both layers. The mesh is deliberately lower-poly and the
    hash grid smaller than their standalone counterparts — MixRT's point
    is that the combination reaches quality at lower total cost."""
    mesh = build_mesh_model(
        field, quality=mesh_quality, train_steps=mesh_train_steps, seed=seed
    )
    hashgrid = build_hashgrid_model(
        field,
        n_levels=hash_levels,
        log2_table_size=hash_log2_table_size,
        train_steps=hash_train_steps,
        samples_per_ray=samples_per_ray,
        seed=seed,
    )
    return MixRTModel(mesh=mesh, hashgrid=hashgrid)


class _StoppingHashRenderer(HashGridRenderer):
    """Hash-grid pass that composites a supplied per-ray background."""

    def __init__(self, model, field, backgrounds: np.ndarray, chunk: int = 4096):
        super().__init__(model, field, chunk)
        self._backgrounds = backgrounds

    def background_for(self, dirs: np.ndarray, sl: slice) -> np.ndarray:
        return self._backgrounds[sl]


class MixRTRenderer:
    """Renders a :class:`MixRTModel` — the hybrid pipeline of Fig. 17."""

    pipeline = "mixrt"

    def __init__(self, model: MixRTModel, field: SceneField, chunk: int = 4096) -> None:
        self.model = model
        self.field = field
        self.chunk = chunk

    def render(self, camera: Camera) -> tuple[np.ndarray, RenderStats]:
        """Mesh base pass, then a depth-limited volumetric pass."""
        stats = RenderStats()
        stats.add("pixels", camera.num_pixels)

        # --- mesh base layer (same steps as the mesh pipeline) ---------
        raster = rasterize(self.model.mesh.mesh, camera)
        stats.add("tris_projected", raster.tris_projected)
        stats.add("tri_tests", raster.tri_tests)

        origins, dirs = camera.rays()
        base = self.field.background_color(dirs)
        covered = (raster.face_id >= 0).ravel()
        if covered.any():
            rows, cols = np.nonzero(raster.face_id >= 0)
            faces = raster.face_id[rows, cols]
            b1 = raster.bary[rows, cols, 0]
            b2 = raster.bary[rows, cols, 1]
            feats = self.model.mesh.fetch_features(faces, b1, b2)
            rgb = self.model.mesh.shader.forward(
                np.concatenate([feats, dirs[covered]], axis=1)
            )
            base[covered] = rgb
            stats.add("texture_fetches", 4 * int(covered.sum()))
            stats.add("mlp_inputs", int(covered.sum()))
            stats.add(
                "mlp_macs",
                int(covered.sum()) * self.model.mesh.shader.macs_per_sample(),
            )

        # --- hash-grid layer in front of the mesh -----------------------
        volume = _StoppingHashRenderer(self.model.hashgrid, self.field, base, self.chunk)
        stop = raster.depth.ravel()  # inf where mesh absent
        flat = volume.march(origins, dirs, stats, stop_depth=stop)
        return as_image(flat, camera.height, camera.width), stats
