"""Real spherical harmonics up to degree 2.

3DGS stores view-dependent color as SH coefficients; evaluating them for
a batch of view directions is a vector-matrix multiply, which is exactly
why the paper maps this step onto the GEMM micro-operator (Sec. II-E).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Number of SH basis functions per degree.
SH_DEG1_COEFFS = 4
SH_DEG2_COEFFS = 9

_C0 = 0.28209479177387814
_C1 = 0.4886025119029199
_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)


def n_coeffs(degree: int) -> int:
    """Basis size for an SH expansion of the given degree."""
    if degree not in (0, 1, 2):
        raise ConfigError("only SH degrees 0..2 are supported")
    return (degree + 1) ** 2


def sh_basis(dirs: np.ndarray, degree: int = 1) -> np.ndarray:
    """Evaluate the SH basis at unit directions; shape (n, n_coeffs)."""
    dirs = np.asarray(dirs, dtype=np.float64)
    if dirs.ndim != 2 or dirs.shape[1] != 3:
        raise ConfigError("dirs must have shape (n, 3)")
    x, y, z = dirs[:, 0], dirs[:, 1], dirs[:, 2]
    cols = [np.full(len(dirs), _C0)]
    if degree >= 1:
        cols += [-_C1 * y, _C1 * z, -_C1 * x]
    if degree >= 2:
        cols += [
            _C2[0] * x * y,
            _C2[1] * y * z,
            _C2[2] * (2.0 * z * z - x * x - y * y),
            _C2[3] * x * z,
            _C2[4] * (x * x - y * y),
        ]
    return np.stack(cols, axis=1)


def eval_sh(coeffs: np.ndarray, dirs: np.ndarray) -> np.ndarray:
    """Colors from SH coefficients: ``(n, K, 3) x (n, 3) -> (n, 3)``.

    The 0.5 offset follows the 3DGS convention (colors are stored
    zero-centered); output is clipped to [0, 1].
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.ndim != 3 or coeffs.shape[2] != 3:
        raise ConfigError("coeffs must have shape (n, K, 3)")
    k = coeffs.shape[1]
    degree = int(np.sqrt(k)) - 1
    if (degree + 1) ** 2 != k:
        raise ConfigError(f"coefficient count {k} is not a full SH band")
    basis = sh_basis(dirs, degree)
    rgb = np.einsum("nk,nkc->nc", basis, coeffs) + 0.5
    return np.clip(rgb, 0.0, 1.0)


def fit_sh(colors: np.ndarray, dirs: np.ndarray, degree: int = 1) -> np.ndarray:
    """Least-squares SH fit: ``(n, d, 3)`` colors at ``(d, 3)`` shared
    directions -> ``(n, K, 3)`` coefficients (inverts :func:`eval_sh`)."""
    basis = sh_basis(dirs, degree)  # (d, K)
    pinv = np.linalg.pinv(basis)    # (K, d)
    return np.einsum("kd,ndc->nkc", pinv, np.asarray(colors) - 0.5)
