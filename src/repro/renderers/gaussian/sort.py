"""Per-patch depth sorting for splat rasterization.

The accelerator executes this with the Sorting micro-operator: one patch
of unordered elements per PE, merge-sorted in the FF scratch pad via
ALU comparators (Sec. VI, Fig. 13). :func:`merge_sort` is the reference
implementation with an exact comparison count; the pipeline uses the
vectorized :func:`counting_depth_sort` with the same complexity model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def merge_sort(keys: list) -> tuple[list, int]:
    """Stable bottom-up merge sort; returns ``(sorted, comparisons)``.

    Bottom-up (iterative) merging matches the hardware implementation:
    "gradually merges smaller ordered sets into larger ones" with
    intermediate results written back to the FF scratch pad.
    """
    items = list(keys)
    n = len(items)
    comparisons = 0
    width = 1
    while width < n:
        merged = []
        for start in range(0, n, 2 * width):
            left = items[start : start + width]
            right = items[start + width : start + 2 * width]
            i = j = 0
            while i < len(left) and j < len(right):
                comparisons += 1
                if left[i] <= right[j]:
                    merged.append(left[i])
                    i += 1
                else:
                    merged.append(right[j])
                    j += 1
            merged.extend(left[i:])
            merged.extend(right[j:])
        items = merged
        width *= 2
    return items, comparisons


def merge_sort_comparisons(n: int) -> float:
    """Expected comparison count ``n log2 n`` used by the cost model."""
    if n <= 1:
        return 0.0
    return float(n * np.ceil(np.log2(n)))


def counting_depth_sort(depths: np.ndarray) -> tuple[np.ndarray, float]:
    """Vectorized stable sort returning ``(order, modeled_comparisons)``.

    NumPy's stable sort is itself a merge sort; the modeled comparison
    count keeps the workload accounting identical to :func:`merge_sort`.
    """
    depths = np.asarray(depths)
    if depths.ndim != 1:
        raise ConfigError("depths must be one-dimensional")
    order = np.argsort(depths, kind="stable")
    return order, merge_sort_comparisons(len(depths))
