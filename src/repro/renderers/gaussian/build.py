"""Fit a Gaussian set to a ground-truth field.

Real 3DGS optimizes Gaussians with a rendering loss; here they are
placed by rejection-sampling the density field and sized from the local
point spacing, with SH color fitted in closed form from a handful of
view directions. Density of coverage (``n_gaussians``) is the
quality/storage knob.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SceneError
from repro.renderers.gaussian.gaussians import GaussianModel
from repro.renderers.gaussian.sh import fit_sh, n_coeffs
from repro.scenes.fields import SceneField

#: Fixed fitting directions for the closed-form SH solve (octahedron).
_FIT_DIRS = np.array(
    [
        [1.0, 0.0, 0.0],
        [-1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, -1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 0.0, -1.0],
        [0.577, 0.577, 0.577],
        [-0.577, -0.577, -0.577],
    ]
)


def build_gaussian_model(
    field: SceneField,
    n_gaussians: int = 4000,
    sh_degree: int = 1,
    density_threshold: float = 2.0,
    seed: int = 0,
) -> GaussianModel:
    """Sample, size, and color a Gaussian set from the field."""
    if n_gaussians < 1:
        raise SceneError("need at least one gaussian")
    rng = np.random.default_rng(seed)
    lo, hi = field.bounds

    # Rejection-sample positions proportional to density.
    accepted: list[np.ndarray] = []
    budget = 40
    max_density = max(p.density_scale for p in field.primitives)
    while sum(len(a) for a in accepted) < n_gaussians and budget > 0:
        budget -= 1
        pts = rng.uniform(lo, hi, size=(4 * n_gaussians, 3))
        dens = field.density(pts)
        keep = dens > np.maximum(
            density_threshold, rng.uniform(0.0, max_density, len(pts))
        )
        accepted.append(pts[keep])
    points = np.concatenate(accepted)[:n_gaussians]
    if len(points) == 0:
        raise SceneError("field appears empty: no gaussian positions found")

    # Size from mean spacing: cover the occupied volume without gaps.
    volume = float(np.prod(np.asarray(hi) - np.asarray(lo)))
    occ = max(field.occupancy_fraction(rng), 1e-3)
    spacing = (volume * occ / len(points)) ** (1.0 / 3.0)
    base_scale = 0.75 * spacing
    scales = base_scale * rng.uniform(0.7, 1.3, size=(len(points), 3))

    quats = rng.normal(size=(len(points), 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)

    # Opacity from local density: optically thick matter -> opaque splat.
    sigma = field.density(points)
    opacities = np.clip(1.0 - np.exp(-sigma * 2.0 * base_scale), 0.05, 0.95)

    # Closed-form SH fit from the octahedron directions.
    colors = np.stack(
        [
            field.color(points, np.broadcast_to(d, points.shape).copy())
            for d in _FIT_DIRS
        ],
        axis=1,
    )  # (n, d, 3)
    coeffs = fit_sh(colors, _FIT_DIRS, degree=sh_degree)
    coeffs = coeffs[:, : n_coeffs(sh_degree)]

    return GaussianModel(
        means=points,
        scales=scales,
        quats=quats,
        opacities=opacities,
        sh_coeffs=coeffs,
    )
