"""3D-Gaussian splatting pipeline (Sec. II-E) — 3DGS [40] analogue.

Steps: space conversion -> splatting (project 3D covariances to 2D,
threshold) -> per-16x16-patch depth sorting -> spherical-harmonics
view-dependent color (executed as the GEMM micro-operator) -> front-to-
back alpha blending.
"""

from repro.renderers.gaussian.sh import eval_sh, sh_basis, SH_DEG1_COEFFS
from repro.renderers.gaussian.gaussians import GaussianModel
from repro.renderers.gaussian.build import build_gaussian_model
from repro.renderers.gaussian.sort import merge_sort, counting_depth_sort
from repro.renderers.gaussian.splat import ProjectedSplats, project_gaussians
from repro.renderers.gaussian.pipeline import GaussianRenderer

__all__ = [
    "eval_sh",
    "sh_basis",
    "SH_DEG1_COEFFS",
    "GaussianModel",
    "build_gaussian_model",
    "merge_sort",
    "counting_depth_sort",
    "ProjectedSplats",
    "project_gaussians",
    "GaussianRenderer",
]
