"""The 3D-Gaussian pipeline end to end (Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.renderers.base import RenderStats, as_image
from repro.renderers.gaussian.gaussians import GaussianModel
from repro.renderers.gaussian.sh import eval_sh
from repro.renderers.gaussian.sort import counting_depth_sort
from repro.renderers.gaussian.splat import (
    ALPHA_CULL_THRESHOLD,
    ProjectedSplats,
    assign_tiles,
    project_gaussians,
)
from repro.scenes.camera import Camera
from repro.scenes.fields import SceneField

#: Rays stop accumulating once transmittance drops below this.
TRANSMITTANCE_FLOOR = 1e-3


class GaussianRenderer:
    """Renders a :class:`GaussianModel` — the 3DGS pipeline."""

    pipeline = "gaussian"

    def __init__(self, model: GaussianModel, field: SceneField, patch: int = 16) -> None:
        self.model = model
        self.field = field
        self.patch = patch

    def render(self, camera: Camera) -> tuple[np.ndarray, RenderStats]:
        """Project, sort per patch, and blend front to back."""
        stats = RenderStats()
        stats.add("pixels", camera.num_pixels)

        splats = project_gaussians(self.model, camera)
        stats.add("gaussians_projected", splats.n_projected)

        # View-dependent color via SH — a vector-matrix multiply, i.e.
        # the GEMM micro-operator (Sec. II-E).
        cam_pos = camera.origin
        if len(splats.index):
            dirs = self.model.means[splats.index] - cam_pos
            dirs /= np.maximum(np.linalg.norm(dirs, axis=1, keepdims=True), 1e-12)
            colors = eval_sh(self.model.sh_coeffs[splats.index], dirs)
            stats.add("mlp_inputs", len(splats.index))
            stats.add("mlp_macs", len(splats.index) * self.model.sh_coeffs.shape[1] * 3)
        else:
            colors = np.zeros((0, 3))

        tiles = assign_tiles(splats, camera.height, camera.width, self.patch)

        _, bg_dirs = camera.rays()
        image = self.field.background_color(bg_dirs).reshape(
            camera.height, camera.width, 3
        )

        for (ty, tx), rows in tiles.items():
            y0, x0 = ty * self.patch, tx * self.patch
            y1 = min(y0 + self.patch, camera.height)
            x1 = min(x0 + self.patch, camera.width)
            order, compares = counting_depth_sort(splats.depth[rows])
            rows = rows[order]
            stats.add("sort_elements", len(rows))
            stats.add("sort_compares", compares)
            image[y0:y1, x0:x1] = self._blend_tile(
                splats, colors, rows, y0, y1, x0, x1, image[y0:y1, x0:x1], stats
            )
        return as_image(image.reshape(-1, 3), camera.height, camera.width), stats

    # ------------------------------------------------------------------
    def _blend_tile(
        self,
        splats: ProjectedSplats,
        colors: np.ndarray,
        rows: np.ndarray,
        y0: int,
        y1: int,
        x0: int,
        x1: int,
        background: np.ndarray,
        stats: RenderStats,
    ) -> np.ndarray:
        """Front-to-back alpha blending of one tile's sorted splats."""
        ys, xs = np.mgrid[y0:y1, x0:x1]
        pix = np.stack([xs.ravel() + 0.5, ys.ravel() + 0.5], axis=1)  # (p, 2)
        delta = pix[:, None, :] - splats.center[rows][None, :, :]     # (p, g, 2)
        inv = splats.inv_cov[rows]
        power = np.einsum("pgi,gij,pgj->pg", delta, inv, delta)
        stats.add("splat_tests", power.size)
        alpha = splats.opacity[rows][None, :] * np.exp(-0.5 * power)
        alpha = np.where(alpha < ALPHA_CULL_THRESHOLD, 0.0, np.minimum(alpha, 0.99))

        transmittance = np.cumprod(1.0 - alpha + 1e-12, axis=1)
        transmittance = np.concatenate(
            [np.ones((len(pix), 1)), transmittance[:, :-1]], axis=1
        )
        # Hard stop once the ray is saturated (3DGS early termination).
        weights = np.where(
            transmittance > TRANSMITTANCE_FLOOR, alpha * transmittance, 0.0
        )
        stats.add("blend_samples", weights.size)
        rgb = weights @ colors[rows]
        residual = 1.0 - weights.sum(axis=1, keepdims=True)
        out = rgb + residual * background.reshape(-1, 3)
        return out.reshape(y1 - y0, x1 - x0, 3)
