"""The 3D Gaussian scene representation.

Each Gaussian is a point with shape and color (Sec. II-E): centroid,
covariance (factored as rotation x scale), opacity, and SH color
coefficients. Storage matches point-cloud formats (PLY-like accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError


def quaternion_to_rotation(quats: np.ndarray) -> np.ndarray:
    """Batch of unit quaternions (n, 4) [w, x, y, z] -> (n, 3, 3)."""
    quats = np.asarray(quats, dtype=np.float64)
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    w, x, y, z = (quats / np.maximum(norms, 1e-12)).T
    rot = np.empty((len(quats), 3, 3))
    rot[:, 0, 0] = 1 - 2 * (y * y + z * z)
    rot[:, 0, 1] = 2 * (x * y - w * z)
    rot[:, 0, 2] = 2 * (x * z + w * y)
    rot[:, 1, 0] = 2 * (x * y + w * z)
    rot[:, 1, 1] = 1 - 2 * (x * x + z * z)
    rot[:, 1, 2] = 2 * (y * z - w * x)
    rot[:, 2, 0] = 2 * (x * z - w * y)
    rot[:, 2, 1] = 2 * (y * z + w * x)
    rot[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return rot


@dataclass
class GaussianModel:
    """A set of 3D Gaussians.

    Attributes
    ----------
    means:
        ``(n, 3)`` centroids.
    scales:
        ``(n, 3)`` per-axis standard deviations.
    quats:
        ``(n, 4)`` unit quaternions orienting the principal axes.
    opacities:
        ``(n,)`` peak alpha of each splat in (0, 1].
    sh_coeffs:
        ``(n, K, 3)`` spherical-harmonics color coefficients.
    """

    means: np.ndarray
    scales: np.ndarray
    quats: np.ndarray
    opacities: np.ndarray
    sh_coeffs: np.ndarray

    def __post_init__(self) -> None:
        self.means = np.asarray(self.means, dtype=np.float64)
        self.scales = np.asarray(self.scales, dtype=np.float64)
        self.quats = np.asarray(self.quats, dtype=np.float64)
        self.opacities = np.asarray(self.opacities, dtype=np.float64)
        self.sh_coeffs = np.asarray(self.sh_coeffs, dtype=np.float64)
        n = len(self.means)
        if self.means.shape != (n, 3):
            raise SceneError("means must have shape (n, 3)")
        if self.scales.shape != (n, 3) or np.any(self.scales <= 0):
            raise SceneError("scales must be positive with shape (n, 3)")
        if self.quats.shape != (n, 4):
            raise SceneError("quats must have shape (n, 4)")
        if self.opacities.shape != (n,):
            raise SceneError("opacities must have shape (n,)")
        if np.any((self.opacities <= 0) | (self.opacities > 1)):
            raise SceneError("opacities must lie in (0, 1]")
        if self.sh_coeffs.ndim != 3 or self.sh_coeffs.shape[0] != n:
            raise SceneError("sh_coeffs must have shape (n, K, 3)")

    @property
    def count(self) -> int:
        return len(self.means)

    @property
    def sh_degree(self) -> int:
        return int(np.sqrt(self.sh_coeffs.shape[1])) - 1

    def covariances(self) -> np.ndarray:
        """World-space covariances: R S S^T R^T, shape (n, 3, 3)."""
        rot = quaternion_to_rotation(self.quats)
        scaled = rot * self.scales[:, None, :]
        return scaled @ scaled.transpose(0, 2, 1)

    def storage_bytes(self) -> int:
        """PLY-style fp32 attributes (Table I storage column).

        Means + scales + quats + opacity + SH coefficients, 4 B each —
        the same per-point layout 3DGS checkpoints use.
        """
        floats = (
            self.means.size
            + self.scales.size
            + self.quats.size
            + self.opacities.size
            + self.sh_coeffs.size
        )
        return floats * 4
