"""Space conversion + splatting: 3D Gaussians to 2D screen ellipses.

Implements the EWA-splatting projection used by 3DGS: world covariance
-> camera space -> first-order perspective Jacobian -> 2D covariance,
plus the density-threshold culling step of Fig. 6 (low-contribution
splats are bypassed before sorting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.renderers.gaussian.gaussians import GaussianModel
from repro.scenes.camera import Camera

#: Splats whose peak alpha falls below this never contribute a visible
#: pixel (the 1/255 quantization floor used by 3DGS).
ALPHA_CULL_THRESHOLD = 1.0 / 255.0

#: Screen-space dilation added by 3DGS for antialiasing stability.
DILATION = 0.3


@dataclass
class ProjectedSplats:
    """Visible splats after projection and thresholding.

    ``index`` maps rows back into the source :class:`GaussianModel`.
    ``inv_cov`` holds the inverse 2D covariances; ``radius`` the 3-sigma
    screen extent used for tile assignment.
    """

    index: np.ndarray      # (m,) into the model
    center: np.ndarray     # (m, 2) pixel coordinates
    depth: np.ndarray      # (m,) camera depth
    inv_cov: np.ndarray    # (m, 2, 2)
    radius: np.ndarray     # (m,)
    opacity: np.ndarray    # (m,)
    n_projected: int       # gaussians through space conversion
    n_culled: int          # gaussians bypassed by the threshold


def project_gaussians(model: GaussianModel, camera: Camera) -> ProjectedSplats:
    """Project all Gaussians and cull the negligible ones."""
    means = model.means
    view = camera.view_matrix()
    cam_pts = means @ view[:3, :3].T + view[:3, 3]
    depth = -cam_pts[:, 2]

    in_front = depth > camera.near
    screen, _ = camera.world_to_screen(means)

    # Camera-space covariance.
    cov_world = model.covariances()
    rot = view[:3, :3]
    cov_cam = np.einsum("ij,njk,lk->nil", rot, cov_world, rot)

    # Perspective Jacobian (per gaussian).
    f = camera.focal
    z = np.maximum(depth, 1e-6)
    x, y = cam_pts[:, 0], cam_pts[:, 1]
    jac = np.zeros((model.count, 2, 3))
    jac[:, 0, 0] = f / z
    jac[:, 0, 2] = f * x / z**2
    jac[:, 1, 1] = -f / z
    jac[:, 1, 2] = -f * y / z**2
    cov2d = np.einsum("nij,njk,nlk->nil", jac, cov_cam, jac)
    cov2d[:, 0, 0] += DILATION
    cov2d[:, 1, 1] += DILATION

    det = cov2d[:, 0, 0] * cov2d[:, 1, 1] - cov2d[:, 0, 1] * cov2d[:, 1, 0]
    trace = cov2d[:, 0, 0] + cov2d[:, 1, 1]
    # Largest eigenvalue -> 3-sigma screen radius.
    lam_max = 0.5 * trace + np.sqrt(np.maximum(0.25 * trace**2 - det, 0.0))
    radius = 3.0 * np.sqrt(np.maximum(lam_max, 1e-9))

    # Threshold culling (the splatting step's bypass, Fig. 6): peak alpha
    # below the quantization floor, degenerate covariance, or off screen.
    visible = (
        in_front
        & (det > 1e-12)
        & (model.opacities > ALPHA_CULL_THRESHOLD)
        & (screen[:, 0] + radius >= 0)
        & (screen[:, 0] - radius < camera.width)
        & (screen[:, 1] + radius >= 0)
        & (screen[:, 1] - radius < camera.height)
    )
    idx = np.nonzero(visible)[0]

    inv_cov = np.empty((len(idx), 2, 2))
    d = det[idx]
    inv_cov[:, 0, 0] = cov2d[idx, 1, 1] / d
    inv_cov[:, 1, 1] = cov2d[idx, 0, 0] / d
    inv_cov[:, 0, 1] = -cov2d[idx, 0, 1] / d
    inv_cov[:, 1, 0] = -cov2d[idx, 1, 0] / d

    return ProjectedSplats(
        index=idx,
        center=screen[idx],
        depth=depth[idx],
        inv_cov=inv_cov,
        radius=radius[idx],
        opacity=model.opacities[idx],
        n_projected=model.count,
        n_culled=model.count - len(idx),
    )


def assign_tiles(
    splats: ProjectedSplats, height: int, width: int, patch: int
) -> dict[tuple[int, int], np.ndarray]:
    """Map each 16x16 (by default) tile to the splats overlapping it.

    Returns ``{(tile_y, tile_x): splat_rows}``; pixels in a patch share
    one sorted list (Sec. II-E: sorting cost is amortized per patch).
    """
    tiles: dict[tuple[int, int], list[int]] = {}
    x0 = np.clip(((splats.center[:, 0] - splats.radius) // patch).astype(int), 0, None)
    x1 = np.clip(((splats.center[:, 0] + splats.radius) // patch).astype(int), None,
                 (width - 1) // patch)
    y0 = np.clip(((splats.center[:, 1] - splats.radius) // patch).astype(int), 0, None)
    y1 = np.clip(((splats.center[:, 1] + splats.radius) // patch).astype(int), None,
                 (height - 1) // patch)
    for row in range(len(splats.index)):
        for ty in range(y0[row], y1[row] + 1):
            for tx in range(x0[row], x1[row] + 1):
                tiles.setdefault((ty, tx), []).append(row)
    return {key: np.asarray(rows, dtype=np.int64) for key, rows in tiles.items()}
