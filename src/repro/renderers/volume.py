"""Shared skeleton of the volume-rendering pipelines.

The MLP, low-rank-grid, and hash-grid pipelines differ only in how a
sample point becomes (sigma, rgb) — ray casting, empty-space skipping,
and blending are identical (Sec. II-B/C/D all say "the remaining steps
are identical"). This base class implements that shared structure once;
each pipeline supplies :meth:`shade_samples` plus its own counters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.renderers.base import RenderStats, as_image
from repro.renderers.nerf.sampling import OccupancyGrid, sample_along_rays
from repro.scenes.camera import Camera
from repro.scenes.fields import SceneField, composite_along_rays


class VolumeRendererBase:
    """Template for ray-marching pipelines.

    Subclasses set :attr:`pipeline`, provide ``samples_per_ray`` and
    ``occupancy`` through the constructor, and implement
    :meth:`shade_samples` to turn surviving sample points into densities
    and colors while recording pipeline-specific counters.
    """

    pipeline = "volume"

    def __init__(
        self,
        field: SceneField,
        samples_per_ray: int,
        occupancy: OccupancyGrid | None,
        chunk: int = 4096,
    ) -> None:
        if samples_per_ray < 2:
            raise ConfigError("samples_per_ray must be >= 2")
        if chunk < 1:
            raise ConfigError("chunk must be positive")
        self.field = field
        self.samples_per_ray = samples_per_ray
        self.occupancy = occupancy
        self.chunk = chunk

    # -- hook -------------------------------------------------------------
    def shade_samples(
        self, points: np.ndarray, dirs: np.ndarray, stats: RenderStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (sigma, rgb) for sample points that survived skipping."""
        raise NotImplementedError

    # -- shared pipeline ----------------------------------------------------
    def render(self, camera: Camera) -> tuple[np.ndarray, RenderStats]:
        """Ray casting -> skipping -> shading -> blending."""
        stats = RenderStats()
        stats.add("pixels", camera.num_pixels)
        flat = self.render_rays(camera, stats)
        return as_image(flat, camera.height, camera.width), stats

    def render_rays(self, camera: Camera, stats: RenderStats) -> np.ndarray:
        """The ray loop, exposed separately so hybrid pipelines can call
        it with their own compositing."""
        origins, dirs = camera.rays()
        return self.march(origins, dirs, stats)

    def march(
        self,
        origins: np.ndarray,
        dirs: np.ndarray,
        stats: RenderStats,
        stop_depth: np.ndarray | None = None,
    ) -> np.ndarray:
        """March a batch of rays; optionally stop at a per-ray depth.

        ``stop_depth`` is used by the MixRT hybrid: volume samples behind
        the mesh surface are discarded and the mesh color is composited
        as the background of each ray.
        """
        n_samples = self.samples_per_ray
        t_range = self.field.ray_t_range()
        out = np.empty((len(origins), 3))
        stats.add("rays", len(origins))

        for start in range(0, len(origins), self.chunk):
            sl = slice(start, min(start + self.chunk, len(origins)))
            o, d = origins[sl], dirs[sl]
            pts, dt = sample_along_rays(o, d, t_range, n_samples)
            flat_pts = pts.reshape(-1, 3)
            flat_dirs = np.repeat(d, n_samples, axis=0)
            stats.add("samples_total", len(flat_pts))

            live = (
                self.occupancy.query(flat_pts)
                if self.occupancy is not None
                else np.ones(len(flat_pts), dtype=bool)
            )
            if stop_depth is not None:
                ts = np.linspace(*t_range, n_samples + 1)
                mids = 0.5 * (ts[:-1] + ts[1:])
                in_front = (mids[None, :] < stop_depth[sl, None]).reshape(-1)
                live &= in_front
            stats.add("samples_shaded", int(live.sum()))

            sigma = np.zeros(len(flat_pts))
            rgb = np.zeros((len(flat_pts), 3))
            if live.any():
                sigma[live], rgb[live] = self.shade_samples(
                    flat_pts[live], flat_dirs[live], stats
                )
            sigma = sigma.reshape(len(o), n_samples)
            rgb = rgb.reshape(len(o), n_samples, 3)
            stats.add("blend_samples", sigma.size)
            # Early ray termination accounting: deployed renderers stop
            # once transmittance is exhausted, so samples behind opaque
            # content cost nothing. Count the ones a terminating renderer
            # would actually shade.
            alpha = 1.0 - np.exp(-np.maximum(sigma, 0.0) * dt)
            transmittance = np.cumprod(1.0 - alpha + 1e-10, axis=1)
            before_term = np.concatenate(
                [
                    np.ones_like(transmittance[:, :1], dtype=bool),
                    transmittance[:, :-1] > 1e-2,
                ],
                axis=1,
            )
            live_grid = live.reshape(len(o), n_samples)
            stats.add("samples_effective", int((live_grid & before_term).sum()))
            background = self.background_for(d, sl)
            out[sl] = composite_along_rays(sigma, rgb, dt, background)
        return out

    def background_for(self, dirs: np.ndarray, sl: slice) -> np.ndarray:
        """Background color per ray; hybrids override to return the mesh
        layer's colors instead of the sky."""
        return self.field.background_color(dirs)
