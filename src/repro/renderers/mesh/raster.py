"""Software rasterizer with a z-buffer (the paper's Rasterization step).

For every projected triangle we test the pixels in its screen bounding
box with barycentric (cross-product) coverage and keep the minimum depth
per pixel — the "Min. Hold" mechanism of Fig. 2, which the accelerator
reproduces inside each PE's PS scratch pad (Sec. VI, Geometric
Processing dataflow).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.renderers.mesh.geometry import TriangleMesh
from repro.scenes.camera import Camera


@dataclass
class RasterOutput:
    """Result of rasterizing one view.

    ``face_id`` is -1 where no triangle covers the pixel. ``bary`` holds
    perspective-corrected barycentric coordinates (b1, b2) of the hit
    with respect to the face's second and third vertices.
    """

    face_id: np.ndarray   # (H, W) int64
    bary: np.ndarray      # (H, W, 2) float64
    depth: np.ndarray     # (H, W) float64, inf where empty
    tri_tests: int        # pixel-in-triangle tests executed
    tris_projected: int   # triangles through space conversion


def rasterize(mesh: TriangleMesh, camera: Camera) -> RasterOutput:
    """Project and rasterize ``mesh`` into ``camera``'s image plane."""
    height, width = camera.height, camera.width
    screen, depth = camera.world_to_screen(mesh.vertices)

    face_id = np.full((height, width), -1, dtype=np.int64)
    bary = np.zeros((height, width, 2))
    zbuf = np.full((height, width), np.inf)

    tri = mesh.faces
    p0, p1, p2 = screen[tri[:, 0]], screen[tri[:, 1]], screen[tri[:, 2]]
    z0, z1, z2 = depth[tri[:, 0]], depth[tri[:, 1]], depth[tri[:, 2]]

    # Cull faces with any vertex behind the near plane (no clipping —
    # scenes keep geometry in front of the cameras) or fully off screen.
    in_front = (z0 > camera.near) & (z1 > camera.near) & (z2 > camera.near)
    xs = np.stack([p0[:, 0], p1[:, 0], p2[:, 0]], axis=1)
    ys = np.stack([p0[:, 1], p1[:, 1], p2[:, 1]], axis=1)
    on_screen = (
        (xs.max(axis=1) >= 0)
        & (xs.min(axis=1) < width)
        & (ys.max(axis=1) >= 0)
        & (ys.min(axis=1) < height)
    )
    candidates = np.nonzero(in_front & on_screen)[0]

    tri_tests = 0
    inv_z = 1.0 / np.maximum(depth, 1e-12)
    for f in candidates:
        a, b, c = p0[f], p1[f], p2[f]
        # Signed twice-area; degenerate (edge-on) triangles are skipped.
        area = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
        if abs(area) < 1e-12:
            continue
        x_min = max(int(np.floor(min(a[0], b[0], c[0]))), 0)
        x_max = min(int(np.ceil(max(a[0], b[0], c[0]))), width - 1)
        y_min = max(int(np.floor(min(a[1], b[1], c[1]))), 0)
        y_max = min(int(np.ceil(max(a[1], b[1], c[1]))), height - 1)
        if x_min > x_max or y_min > y_max:
            continue
        px, py = np.meshgrid(
            np.arange(x_min, x_max + 1) + 0.5, np.arange(y_min, y_max + 1) + 0.5
        )
        tri_tests += px.size
        # Barycentric coordinates from cross products (Sec. VI: the ALU's
        # vector mode computes exactly these).
        w1 = ((px - a[0]) * (c[1] - a[1]) - (py - a[1]) * (c[0] - a[0])) / area
        w2 = ((b[0] - a[0]) * (py - a[1]) - (b[1] - a[1]) * (px - a[0])) / area
        w0 = 1.0 - w1 - w2
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not inside.any():
            continue
        # Perspective-correct depth and barycentrics.
        iz = w0 * inv_z[tri[f, 0]] + w1 * inv_z[tri[f, 1]] + w2 * inv_z[tri[f, 2]]
        z = 1.0 / np.maximum(iz, 1e-12)
        rows = py.astype(np.int64) - 0  # pixel centers at +0.5 round down
        cols = px.astype(np.int64)
        rows = np.clip(rows, 0, height - 1)
        cols = np.clip(cols, 0, width - 1)
        closer = inside & (z < zbuf[rows, cols])
        if not closer.any():
            continue
        r_sel, c_sel = rows[closer], cols[closer]
        zbuf[r_sel, c_sel] = z[closer]
        face_id[r_sel, c_sel] = f
        b1_corr = w1[closer] * inv_z[tri[f, 1]] * z[closer]
        b2_corr = w2[closer] * inv_z[tri[f, 2]] * z[closer]
        bary[r_sel, c_sel, 0] = b1_corr
        bary[r_sel, c_sel, 1] = b2_corr

    return RasterOutput(
        face_id=face_id,
        bary=bary,
        depth=zbuf,
        tri_tests=tri_tests,
        tris_projected=int(len(candidates)),
    )
