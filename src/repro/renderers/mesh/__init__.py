"""Mesh-based rendering pipeline (Sec. II-A) — MobileNeRF [17] analogue.

Steps: space conversion -> rasterization (z-buffer) -> texture indexing
(bilinear) -> MLP shading. The scene representation is a triangle mesh
with a per-face texture patch of learned features.
"""

from repro.renderers.mesh.geometry import (
    TriangleMesh,
    box_mesh,
    cylinder_mesh,
    plane_mesh,
    sphere_mesh,
    torus_mesh,
)
from repro.renderers.mesh.build import MeshModel, build_mesh_model
from repro.renderers.mesh.raster import RasterOutput, rasterize
from repro.renderers.mesh.pipeline import MeshRenderer

__all__ = [
    "TriangleMesh",
    "sphere_mesh",
    "box_mesh",
    "cylinder_mesh",
    "torus_mesh",
    "plane_mesh",
    "MeshModel",
    "build_mesh_model",
    "RasterOutput",
    "rasterize",
    "MeshRenderer",
]
