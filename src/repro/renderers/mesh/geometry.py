"""Triangle meshes and tessellators for the scene primitives.

The mesh representation stores "the coordinates of all vertices and the
indices of vertices forming each mesh" (Sec. II-A). Tessellation density
is the quality/storage knob: meshes are piecewise-linear approximations
of the smooth ground-truth surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(V, 3)`` float array of world-space positions.
    faces:
        ``(F, 3)`` int array of vertex indices.
    """

    vertices: np.ndarray
    faces: np.ndarray

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        self.faces = np.asarray(self.faces, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise SceneError("vertices must have shape (V, 3)")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise SceneError("faces must have shape (F, 3)")
        if len(self.faces) and self.faces.max() >= len(self.vertices):
            raise SceneError("face index out of range")

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    def face_corners(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three (F, 3) corner-position arrays of every face."""
        v = self.vertices
        f = self.faces
        return v[f[:, 0]], v[f[:, 1]], v[f[:, 2]]

    def face_areas(self) -> np.ndarray:
        """World-space area of each face."""
        a, b, c = self.face_corners()
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def transformed(self, scale: np.ndarray, offset: np.ndarray) -> "TriangleMesh":
        """Mesh with vertices scaled then translated."""
        return TriangleMesh(self.vertices * scale + offset, self.faces.copy())

    @staticmethod
    def merge(meshes: list["TriangleMesh"]) -> tuple["TriangleMesh", np.ndarray]:
        """Concatenate meshes; returns the merged mesh and a per-face
        array of source-mesh indices."""
        if not meshes:
            raise SceneError("cannot merge zero meshes")
        verts, faces, owner = [], [], []
        offset = 0
        for i, mesh in enumerate(meshes):
            verts.append(mesh.vertices)
            faces.append(mesh.faces + offset)
            owner.append(np.full(mesh.num_faces, i, dtype=np.int64))
            offset += mesh.num_vertices
        return (
            TriangleMesh(np.concatenate(verts), np.concatenate(faces)),
            np.concatenate(owner),
        )


def _grid_faces(rows: int, cols: int, wrap_cols: bool = False) -> np.ndarray:
    """Triangulate a (rows+1) x (cols+1) vertex grid into 2*rows*cols faces."""
    faces = []
    ncol = cols if wrap_cols else cols
    stride = cols + (0 if wrap_cols else 1)
    for r in range(rows):
        for c in range(ncol):
            c1 = (c + 1) % stride if wrap_cols else c + 1
            i00 = r * stride + c
            i01 = r * stride + c1
            i10 = (r + 1) * stride + c
            i11 = (r + 1) * stride + c1
            faces.append((i00, i10, i01))
            faces.append((i01, i10, i11))
    return np.asarray(faces, dtype=np.int64)


def sphere_mesh(center, radius: float, segments: int = 12) -> TriangleMesh:
    """Latitude/longitude tessellation of a sphere."""
    if segments < 3:
        raise SceneError("sphere needs at least 3 segments")
    lats = np.linspace(0.0, np.pi, segments + 1)
    lons = np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False)
    lat_grid, lon_grid = np.meshgrid(lats, lons, indexing="ij")
    x = np.sin(lat_grid) * np.cos(lon_grid)
    y = np.sin(lat_grid) * np.sin(lon_grid)
    z = np.cos(lat_grid)
    verts = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    faces = _grid_faces(segments, segments, wrap_cols=True)
    return TriangleMesh(verts * radius + np.asarray(center), faces)


def box_mesh(center, half_extents, segments: int = 2) -> TriangleMesh:
    """A box tessellated into ``segments x segments`` quads per side."""
    if segments < 1:
        raise SceneError("box needs at least 1 segment per side")
    half = np.asarray(half_extents, dtype=np.float64)
    meshes = []
    lin = np.linspace(-1.0, 1.0, segments + 1)
    for axis in range(3):
        for sign in (-1.0, 1.0):
            u, v = np.meshgrid(lin, lin, indexing="ij")
            pts = np.zeros((u.size, 3))
            others = [a for a in range(3) if a != axis]
            pts[:, others[0]] = u.ravel()
            pts[:, others[1]] = v.ravel()
            pts[:, axis] = sign
            faces = _grid_faces(segments, segments)
            meshes.append(TriangleMesh(pts * half + np.asarray(center), faces))
    merged, _ = TriangleMesh.merge(meshes)
    return merged


def cylinder_mesh(center, radius: float, half_height: float, segments: int = 12) -> TriangleMesh:
    """A capped cylinder with its axis along +z."""
    if segments < 3:
        raise SceneError("cylinder needs at least 3 segments")
    angles = np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False)
    ring = np.stack([np.cos(angles), np.sin(angles)], axis=1) * radius
    top = np.concatenate([ring, np.full((segments, 1), half_height)], axis=1)
    bot = np.concatenate([ring, np.full((segments, 1), -half_height)], axis=1)
    verts = [top, bot, np.array([[0.0, 0.0, half_height]]), np.array([[0.0, 0.0, -half_height]])]
    verts = np.concatenate(verts)
    faces = []
    top_center = 2 * segments
    bot_center = 2 * segments + 1
    for i in range(segments):
        j = (i + 1) % segments
        # Side quad.
        faces.append((i, segments + i, j))
        faces.append((j, segments + i, segments + j))
        # Caps.
        faces.append((top_center, i, j))
        faces.append((bot_center, segments + j, segments + i))
    return TriangleMesh(verts + np.asarray(center), np.asarray(faces, dtype=np.int64))


def torus_mesh(center, major_radius: float, minor_radius: float, segments: int = 12) -> TriangleMesh:
    """A torus lying in the xy plane."""
    if segments < 3:
        raise SceneError("torus needs at least 3 segments")
    us = np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False)
    vs = np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False)
    u_grid, v_grid = np.meshgrid(us, vs, indexing="ij")
    ring = major_radius + minor_radius * np.cos(v_grid)
    x = ring * np.cos(u_grid)
    y = ring * np.sin(u_grid)
    z = minor_radius * np.sin(v_grid)
    verts = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    faces = []
    for i in range(segments):
        for j in range(segments):
            i1 = (i + 1) % segments
            j1 = (j + 1) % segments
            a = i * segments + j
            b = i * segments + j1
            c = i1 * segments + j
            d = i1 * segments + j1
            faces.append((a, c, b))
            faces.append((b, c, d))
    return TriangleMesh(verts + np.asarray(center), np.asarray(faces, dtype=np.int64))


def plane_mesh(center, half_size: float, segments: int = 8, axis: int = 2) -> TriangleMesh:
    """A square patch of ground plane (the finite stand-in for the
    infinite :class:`~repro.scenes.primitives.FloorPlane`)."""
    if segments < 1:
        raise SceneError("plane needs at least 1 segment")
    lin = np.linspace(-half_size, half_size, segments + 1)
    u, v = np.meshgrid(lin, lin, indexing="ij")
    pts = np.zeros((u.size, 3))
    others = [a for a in range(3) if a != axis]
    pts[:, others[0]] = u.ravel()
    pts[:, others[1]] = v.ravel()
    faces = _grid_faces(segments, segments)
    return TriangleMesh(pts + np.asarray(center), faces)
