"""The mesh rendering pipeline end to end (Fig. 2).

Space conversion -> rasterization -> texture indexing -> MLP shading,
with workload counters for the compiler.
"""

from __future__ import annotations

import numpy as np

from repro.renderers.base import RenderStats, as_image
from repro.renderers.mesh.build import MeshModel
from repro.renderers.mesh.raster import rasterize
from repro.scenes.camera import Camera
from repro.scenes.fields import SceneField


class MeshRenderer:
    """Renders a :class:`MeshModel` — the MobileNeRF-style pipeline."""

    pipeline = "mesh"

    def __init__(self, model: MeshModel, field: SceneField) -> None:
        self.model = model
        self.field = field

    def render(self, camera: Camera) -> tuple[np.ndarray, RenderStats]:
        """Render one view; returns the image and workload statistics."""
        stats = RenderStats()
        stats.add("pixels", camera.num_pixels)

        raster = rasterize(self.model.mesh, camera)
        stats.add("tris_projected", raster.tris_projected)
        stats.add("tri_tests", raster.tri_tests)

        covered = raster.face_id >= 0
        rows, cols = np.nonzero(covered)
        out = np.empty((camera.num_pixels, 3))

        # Background for uncovered pixels.
        _, dirs = camera.rays()
        flat_covered = covered.ravel()
        out[~flat_covered] = self.field.background_color(dirs[~flat_covered])

        if len(rows):
            faces = raster.face_id[rows, cols]
            b1 = raster.bary[rows, cols, 0]
            b2 = raster.bary[rows, cols, 1]
            feats = self.model.fetch_features(faces, b1, b2)
            view_dirs = dirs[flat_covered]
            rgb = self.model.shader.forward(np.concatenate([feats, view_dirs], axis=1))
            out[flat_covered] = rgb
            stats.add("texture_fetches", 4 * len(rows))  # bilinear corners
            stats.add("mlp_inputs", len(rows))
            stats.add("mlp_macs", len(rows) * self.model.shader.macs_per_sample())

        return as_image(out, camera.height, camera.width), stats
