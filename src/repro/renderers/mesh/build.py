"""Build a mesh representation (geometry + feature textures + shader MLP)
from a ground-truth scene field.

MobileNeRF-style: surfaces carry *learned features* in 2D texture maps,
decoded per pixel by a small MLP together with the view direction
(Sec. II-A). Here the features are baked from the field and the shader
MLP is trained with Adam against ground-truth view-dependent colors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.nn import MLP, Adam
from repro.renderers.mesh.geometry import (
    TriangleMesh,
    box_mesh,
    cylinder_mesh,
    plane_mesh,
    sphere_mesh,
    torus_mesh,
)
from repro.scenes.fields import SceneField
from repro.scenes.primitives import Box, Cylinder, FloorPlane, Sphere, Torus

#: Feature channels per texel: 3 baked RGB + 3 positional features.
FEATURE_CHANNELS = 6


@dataclass
class MeshModel:
    """The mesh scene representation.

    Attributes
    ----------
    mesh:
        Merged triangle mesh of the whole scene.
    atlas:
        ``(F, K, K, C)`` per-face texture patches of learned features.
    shader:
        MLP decoding ``(features, view_dir) -> rgb``.
    """

    mesh: TriangleMesh
    atlas: np.ndarray
    shader: MLP

    @property
    def patch_size(self) -> int:
        return self.atlas.shape[1]

    @property
    def feature_channels(self) -> int:
        return self.atlas.shape[3]

    def storage_bytes(self) -> int:
        """Representation size: fp32 vertices + int32 indices + uint8
        texels + BF16 shader weights — the Table I storage column."""
        mesh_bytes = self.mesh.num_vertices * 3 * 4 + self.mesh.num_faces * 3 * 4
        atlas_bytes = self.atlas.size  # one byte per quantized texel channel
        return mesh_bytes + atlas_bytes + self.shader.storage_bytes()

    def fetch_features(self, face_ids: np.ndarray, b1: np.ndarray, b2: np.ndarray) -> np.ndarray:
        """Bilinear texture indexing (the paper's Texture Indexing step).

        ``b1``/``b2`` are perspective-corrected barycentric coordinates of
        the hit point; they address the face's K x K patch through the
        square-to-triangle mapping used at bake time.
        """
        k = self.patch_size
        s = np.clip(b1, 0.0, 1.0)
        t = np.clip(b2 / np.maximum(1.0 - b1, 1e-9), 0.0, 1.0)
        x = s * (k - 1)
        y = t * (k - 1)
        x0 = np.clip(np.floor(x).astype(np.int64), 0, k - 2)
        y0 = np.clip(np.floor(y).astype(np.int64), 0, k - 2)
        fx = (x - x0)[:, None]
        fy = (y - y0)[:, None]
        patch = self.atlas[face_ids]
        c00 = patch[np.arange(len(face_ids)), y0, x0]
        c01 = patch[np.arange(len(face_ids)), y0, x0 + 1]
        c10 = patch[np.arange(len(face_ids)), y0 + 1, x0]
        c11 = patch[np.arange(len(face_ids)), y0 + 1, x0 + 1]
        top = c00 * (1 - fx) + c01 * fx
        bot = c10 * (1 - fx) + c11 * fx
        return top * (1 - fy) + bot * fy


def tessellate_field(field: SceneField, quality: float = 1.0) -> tuple[TriangleMesh, np.ndarray]:
    """Triangulate every primitive of the field.

    ``quality`` scales tessellation density — the knob that trades
    storage for the piecewise-linear approximation error that makes the
    mesh pipeline the lowest-quality one in Table I.
    """
    if quality <= 0:
        raise SceneError("quality must be positive")
    segments = max(4, int(round(10 * quality)))
    meshes = []
    for prim in field.primitives:
        if isinstance(prim, FloorPlane):
            lo, hi = field.bounds
            half = 0.75 * max(hi[0] - lo[0], hi[1] - lo[1])
            meshes.append(
                plane_mesh(prim.center, half_size=half, segments=max(2, segments // 2))
            )
        elif isinstance(prim, Sphere):
            meshes.append(sphere_mesh(prim.center, prim.radius, segments))
        elif isinstance(prim, Box):
            meshes.append(box_mesh(prim.center, prim.half_extents, max(1, segments // 4)))
        elif isinstance(prim, Cylinder):
            meshes.append(cylinder_mesh(prim.center, prim.radius, prim.half_height, segments))
        elif isinstance(prim, Torus):
            meshes.append(torus_mesh(prim.center, prim.major_radius, prim.minor_radius, segments))
        else:
            raise SceneError(f"no tessellator for primitive {type(prim).__name__}")
    return TriangleMesh.merge(meshes)


def _bake_atlas(field: SceneField, mesh: TriangleMesh, patch_size: int) -> np.ndarray:
    """Sample the field at each texel's surface point (diffuse bake)."""
    v0, v1, v2 = mesh.face_corners()
    lin = np.linspace(0.0, 1.0, patch_size)
    s_grid, t_grid = np.meshgrid(lin, lin, indexing="xy")  # (K, K): x fast
    # Square -> triangle mapping (matches MeshModel.fetch_features).
    u = s_grid.ravel()
    v = (t_grid * (1.0 - s_grid)).ravel()
    n_texels = patch_size * patch_size
    atlas = np.empty((mesh.num_faces, patch_size, patch_size, FEATURE_CHANNELS))
    scale = max(field.aabb_diagonal(), 1e-6)
    # Bake in chunks of faces to bound peak memory.
    chunk = max(1, 262144 // n_texels)
    for start in range(0, mesh.num_faces, chunk):
        sl = slice(start, min(start + chunk, mesh.num_faces))
        base = v0[sl][:, None, :]
        e1 = (v1[sl] - v0[sl])[:, None, :]
        e2 = (v2[sl] - v0[sl])[:, None, :]
        pts = base + u[None, :, None] * e1 + v[None, :, None] * e2
        flat = pts.reshape(-1, 3)
        rgb = field.color(flat)
        pos = np.sin(np.pi * flat / scale)
        feats = np.concatenate([rgb, 0.5 + 0.5 * pos], axis=1)
        atlas[sl] = feats.reshape(-1, patch_size, patch_size, FEATURE_CHANNELS)
    return atlas


def _train_shader(
    field: SceneField,
    model: MeshModel,
    rng: np.random.Generator,
    steps: int,
    batch: int,
) -> None:
    """Fit the shader MLP to reproduce view-dependent ground-truth color."""
    mesh = model.mesh
    v0, v1, v2 = mesh.face_corners()
    areas = mesh.face_areas()
    probs = areas / areas.sum()
    optimizer = Adam(model.shader.parameters(), lr=5e-3)
    for _ in range(steps):
        faces = rng.choice(mesh.num_faces, size=batch, p=probs)
        b1 = rng.uniform(0.0, 1.0, batch)
        b2 = rng.uniform(0.0, 1.0, batch) * (1.0 - b1)
        pts = v0[faces] + b1[:, None] * (v1[faces] - v0[faces]) + b2[:, None] * (
            v2[faces] - v0[faces]
        )
        dirs = rng.normal(size=(batch, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        feats = model.fetch_features(faces, b1, b2)
        target = field.color(pts, dirs)
        pred = model.shader.forward(np.concatenate([feats, dirs], axis=1))
        grad = 2.0 * (pred - target) / batch
        model.shader.backward(grad)
        optimizer.step(model.shader.gradients())


def build_mesh_model(
    field: SceneField,
    quality: float = 1.0,
    patch_size: int = 4,
    shader_hidden: int = 16,
    train_steps: int = 250,
    train_batch: int = 256,
    seed: int = 0,
) -> MeshModel:
    """Tessellate, bake the feature atlas, and train the shader MLP."""
    if patch_size < 2:
        raise SceneError("patch_size must be at least 2")
    rng = np.random.default_rng(seed)
    mesh, _ = tessellate_field(field, quality)
    atlas = _bake_atlas(field, mesh, patch_size)
    shader = MLP(
        [FEATURE_CHANNELS + 3, shader_hidden, 3],
        output_activation="sigmoid",
        rng=rng,
    )
    model = MeshModel(mesh=mesh, atlas=atlas, shader=shader)
    if train_steps > 0:
        _train_shader(field, model, rng, train_steps, train_batch)
    return model
