"""Low-rank-decomposed-grid pipeline (Sec. II-C) — MeRF [88]/TensoRF [14].

Steps: ray casting -> low-rank decomposed indexing (tri-plane bilinear
fetches + low-res 3D grid) -> MLP decode -> blending. The 3D feature
field is factorized into three 2D planes plus a coarse 3D residual grid,
"dense 2D grids and sparse 3D grids" as the paper describes MeRF.
"""

from repro.renderers.lowrank.triplane import TriplaneModel, build_triplane_model
from repro.renderers.lowrank.pipeline import LowRankRenderer

__all__ = ["TriplaneModel", "build_triplane_model", "LowRankRenderer"]
