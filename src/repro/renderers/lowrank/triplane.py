"""Tri-plane + low-res-grid factorized scene representation (MeRF-style).

The 3D feature field is approximated as::

    F(x, y, z) ~= G(x, y, z) + P_xy(x, y) + P_xz(x, z) + P_yz(y, z)

where ``G`` is a coarse (trilinear) 3D grid and the ``P`` planes are
dense 2D grids — "dense 2D grids and sparse 3D grids" as Sec. VII-B
describes MeRF [88]. Rank truncation (finite plane resolution and the
additive structure) is this pipeline's characteristic quality loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn import MLP, Adam
from repro.renderers.nerf.sampling import OccupancyGrid
from repro.scenes.fields import SceneField, contract_unbounded

#: Feature channels carried by the factorized field.
N_CHANNELS = 8

#: The three axis-aligned projection planes: (kept axes), dropped axis.
PLANE_AXES = (((0, 1), 2), ((0, 2), 1), ((1, 2), 0))


def bilinear_2d(plane: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Bilinear fetch from a (R, R, C) plane at unit coords (u, v)."""
    res = plane.shape[0]
    x = np.clip(u, 0.0, 1.0) * (res - 1)
    y = np.clip(v, 0.0, 1.0) * (res - 1)
    x0 = np.clip(np.floor(x).astype(np.int64), 0, res - 2)
    y0 = np.clip(np.floor(y).astype(np.int64), 0, res - 2)
    fx = (x - x0)[:, None]
    fy = (y - y0)[:, None]
    c00 = plane[x0, y0]
    c01 = plane[x0, y0 + 1]
    c10 = plane[x0 + 1, y0]
    c11 = plane[x0 + 1, y0 + 1]
    return (
        c00 * (1 - fx) * (1 - fy)
        + c01 * (1 - fx) * fy
        + c10 * fx * (1 - fy)
        + c11 * fx * fy
    )


def trilinear_3d(grid: np.ndarray, unit: np.ndarray) -> np.ndarray:
    """Trilinear fetch from a (R, R, R, C) grid at unit coords."""
    res = grid.shape[0]
    p = np.clip(unit, 0.0, 1.0) * (res - 1)
    i0 = np.clip(np.floor(p).astype(np.int64), 0, res - 2)
    f = p - i0
    out = 0.0
    for dx in (0, 1):
        for dy in (0, 1):
            for dz in (0, 1):
                w = (
                    (f[:, 0] if dx else 1 - f[:, 0])
                    * (f[:, 1] if dy else 1 - f[:, 1])
                    * (f[:, 2] if dz else 1 - f[:, 2])
                )
                out = out + w[:, None] * grid[i0[:, 0] + dx, i0[:, 1] + dy, i0[:, 2] + dz]
    return out


@dataclass
class TriplaneModel:
    """Factorized grids plus the decoder MLP and occupancy grid."""

    planes: list[np.ndarray]        # three (R, R, C) arrays, PLANE_AXES order
    grid3d: np.ndarray              # (Rg, Rg, Rg, C)
    decoder: MLP                    # (C + 3 dirs) -> 4 raw outputs
    lo: np.ndarray
    hi: np.ndarray
    contracted: bool
    sigma_scale: float
    occupancy: OccupancyGrid | None = None
    samples_per_ray: int = 96

    @property
    def plane_resolution(self) -> int:
        return self.planes[0].shape[0]

    @property
    def grid_resolution(self) -> int:
        return self.grid3d.shape[0]

    def storage_bytes(self) -> int:
        """FP16 grids + BF16 decoder + occupancy bitfield."""
        plane_bytes = sum(p.size for p in self.planes) * 2
        grid_bytes = self.grid3d.size * 2
        occ = self.occupancy.storage_bytes() if self.occupancy is not None else 0
        return plane_bytes + grid_bytes + self.decoder.storage_bytes() + occ

    # ------------------------------------------------------------------
    def unit_coords(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        if self.contracted:
            points = contract_unbounded(points)
        return (points - self.lo) / (self.hi - self.lo)

    def features(self, points: np.ndarray) -> np.ndarray:
        """The Low-Rank Decomposed Indexing step: one trilinear fetch from
        the coarse grid plus three bilinear plane fetches, aggregated."""
        unit = self.unit_coords(points)
        feats = trilinear_3d(self.grid3d, unit)
        for plane, ((a, b), _dropped) in zip(self.planes, PLANE_AXES):
            feats = feats + bilinear_2d(plane, unit[:, a], unit[:, b])
        return feats

    def query(self, points: np.ndarray, dirs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sigma, rgb) — features decoded by the MLP."""
        raw = self.decoder.forward(np.concatenate([self.features(points), dirs], axis=1))
        sigma = np.maximum(raw[:, 0], 0.0) * self.sigma_scale
        rgb = 1.0 / (1.0 + np.exp(-np.clip(raw[:, 1:4], -30, 30)))
        return sigma, rgb


def _feature_targets(field: SceneField, points: np.ndarray, sigma_scale: float) -> np.ndarray:
    """The C-channel target features the factorization approximates."""
    sigma, rgb = field.density_and_color(points)
    sn = (sigma / sigma_scale)[:, None]
    # Density, color, density-weighted color, luminance: redundant views
    # of the same content give the additive factorization more paths.
    lum = rgb.mean(axis=1, keepdims=True)
    return np.concatenate([sn, rgb, sn * rgb, lum], axis=1)


def build_triplane_model(
    field: SceneField,
    plane_resolution: int = 64,
    grid_resolution: int = 16,
    target_resolution: int = 48,
    decoder_hidden: int = 24,
    factor_iters: int = 4,
    train_steps: int = 300,
    train_batch: int = 1024,
    samples_per_ray: int = 96,
    occupancy_resolution: int = 32,
    seed: int = 0,
) -> TriplaneModel:
    """Factorize the field into planes + coarse grid and train the decoder.

    The factorization is alternating least squares on a dense target
    tensor: the coarse grid captures the low-frequency part, then each
    plane takes the mean of the residual along its dropped axis.
    """
    if plane_resolution < 4 or grid_resolution < 2:
        raise ConfigError("resolutions too small")
    rng = np.random.default_rng(seed)
    contracted = field.unbounded
    if contracted:
        lo, hi = np.full(3, -2.0), np.full(3, 2.0)
    else:
        lo, hi = (np.asarray(b, float) for b in field.bounds)
    sigma_scale = max(p.density_scale for p in field.primitives)

    # Dense target tensor at an intermediate resolution.
    res = target_resolution
    lin = (np.arange(res) + 0.5) / res
    unit = np.stack(np.meshgrid(lin, lin, lin, indexing="ij"), axis=-1).reshape(-1, 3)
    world = lo + unit * (hi - lo)
    if contracted:
        from repro.renderers.nerf.sampling import _uncontract

        world = _uncontract(world)
    target = _feature_targets(field, world, sigma_scale).reshape(res, res, res, N_CHANNELS)

    # Coarse grid: average-pool the target.
    pool = res // grid_resolution
    usable = grid_resolution * pool
    grid3d = (
        target[:usable, :usable, :usable]
        .reshape(grid_resolution, pool, grid_resolution, pool, grid_resolution, pool, N_CHANNELS)
        .mean(axis=(1, 3, 5))
    )

    # Residual after trilinear upsampling of the coarse grid.
    up = trilinear_3d(grid3d, unit).reshape(res, res, res, N_CHANNELS)
    residual = target - up

    # Occupancy-weighted alternating least squares for the three planes.
    # Only occupied cells are ever shaded (the occupancy grid gates empty
    # space at render time), so the factorization spends its limited rank
    # where it matters instead of smearing density along the planes'
    # projection axes.
    weight = (target[..., 0] > 0.02).astype(np.float64) + 0.01
    weight = weight[..., None]
    planes = [np.zeros((res, res, N_CHANNELS)) for _ in PLANE_AXES]
    axis_of = [dropped for (_kept, dropped) in PLANE_AXES]
    for _ in range(factor_iters):
        for i, dropped in enumerate(axis_of):
            others = residual.copy()
            for j, dropped_j in enumerate(axis_of):
                if j == i:
                    continue
                others -= np.expand_dims(planes[j], axis=dropped_j)
            planes[i] = (others * weight).sum(axis=dropped) / weight.sum(axis=dropped)

    # Downsample planes to the requested resolution if needed.
    if plane_resolution != res:
        planes = [_resample_plane(p, plane_resolution) for p in planes]

    decoder = MLP(
        [N_CHANNELS + 3, decoder_hidden, 4], output_activation="linear", rng=rng
    )
    model = TriplaneModel(
        planes=planes,
        grid3d=grid3d,
        decoder=decoder,
        lo=lo,
        hi=hi,
        contracted=contracted,
        sigma_scale=sigma_scale,
        samples_per_ray=samples_per_ray,
    )
    _train_decoder(field, model, rng, train_steps, train_batch)
    model.occupancy = OccupancyGrid(field, resolution=occupancy_resolution)
    return model


def _resample_plane(plane: np.ndarray, new_res: int) -> np.ndarray:
    lin = (np.arange(new_res) + 0.5) / new_res
    u, v = np.meshgrid(lin, lin, indexing="ij")
    return bilinear_2d(plane, u.ravel(), v.ravel()).reshape(new_res, new_res, -1)


def _train_decoder(
    field: SceneField,
    model: TriplaneModel,
    rng: np.random.Generator,
    steps: int,
    batch: int,
) -> None:
    """Fit the decoder MLP on (features -> sigma, rgb) pairs."""
    optimizer = Adam(model.decoder.parameters(), lr=5e-3)
    lo, hi = model.lo, model.hi
    # Bias training toward occupied cells (where render-time queries go).
    occupied_units = _occupied_unit_coords(field, model, rng)
    for _ in range(steps):
        unit = rng.uniform(0.0, 1.0, size=(batch, 3))
        if len(occupied_units):
            n_occ = int(0.7 * batch)
            picks = rng.integers(0, len(occupied_units), n_occ)
            jitter = rng.uniform(-0.02, 0.02, size=(n_occ, 3))
            unit[:n_occ] = np.clip(occupied_units[picks] + jitter, 0.0, 1.0)
        world = lo + unit * (hi - lo)
        if model.contracted:
            from repro.renderers.nerf.sampling import _uncontract

            world = _uncontract(world)
        dirs = rng.normal(size=(batch, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        sigma_t, rgb_t = field.density_and_color(world, dirs)

        feats = model.features(world)
        out = model.decoder.forward(np.concatenate([feats, dirs], axis=1))
        sigma_pred = np.maximum(out[:, :1], 0.0)
        rgb_pred = 1.0 / (1.0 + np.exp(-np.clip(out[:, 1:4], -30, 30)))
        grad = np.empty_like(out)
        d_sigma = sigma_pred - (sigma_t / model.sigma_scale)[:, None]
        grad[:, :1] = 2.0 * d_sigma * (out[:, :1] > 0)
        d_rgb = rgb_pred - rgb_t
        grad[:, 1:4] = 2.0 * d_rgb * rgb_pred * (1.0 - rgb_pred)
        grad /= batch
        model.decoder.backward(grad)
        optimizer.step(model.decoder.gradients())


def _occupied_unit_coords(
    field: SceneField,
    model: TriplaneModel,
    rng: np.random.Generator,
    n_probe: int = 20000,
) -> np.ndarray:
    """Unit coordinates of probe points that landed in matter."""
    unit = rng.uniform(0.0, 1.0, size=(n_probe, 3))
    world = model.lo + unit * (model.hi - model.lo)
    if model.contracted:
        from repro.renderers.nerf.sampling import _uncontract

        world = _uncontract(world)
    return unit[field.density(world) > 0.05]
