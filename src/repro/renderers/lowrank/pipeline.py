"""The low-rank-decomposed-grid pipeline end to end (Fig. 4)."""

from __future__ import annotations

import numpy as np

from repro.renderers.base import RenderStats
from repro.renderers.lowrank.triplane import TriplaneModel
from repro.renderers.volume import VolumeRendererBase
from repro.scenes.fields import SceneField


class LowRankRenderer(VolumeRendererBase):
    """Renders a :class:`TriplaneModel` — the MeRF-style pipeline."""

    pipeline = "lowrank"

    def __init__(self, model: TriplaneModel, field: SceneField, chunk: int = 4096) -> None:
        super().__init__(field, model.samples_per_ray, model.occupancy, chunk)
        self.model = model

    def shade_samples(
        self, points: np.ndarray, dirs: np.ndarray, stats: RenderStats
    ) -> tuple[np.ndarray, np.ndarray]:
        sigma, rgb = self.model.query(points, dirs)
        n = len(points)
        # Low-Rank Decomposed Indexing: 3 planes x 4 bilinear corners and
        # one coarse-grid trilinear fetch (8 corners) per sample.
        stats.add("plane_fetches", 12 * n)
        stats.add("grid_fetches", 8 * n)
        stats.add("mlp_inputs", n)
        stats.add("mlp_macs", n * self.model.decoder.macs_per_sample())
        return sigma, rgb
