"""Hash-grid rendering pipeline (Sec. II-D) — Instant-NGP [72] analogue.

Steps: ray casting -> hash indexing (multi-level grids stored in 1D hash
tables, trilinear interpolation from the 8 nearest vertices) -> MLP ->
blending. Hash collisions at fine levels are the representation's
characteristic quality loss ("3D grids with vector quantization").
"""

from repro.renderers.hashgrid.hashenc import (
    HashGridModel,
    build_hashgrid_model,
    spatial_hash,
)
from repro.renderers.hashgrid.pipeline import HashGridRenderer

__all__ = ["HashGridModel", "build_hashgrid_model", "spatial_hash", "HashGridRenderer"]
