"""Multi-resolution hash encoding with trained feature tables.

Faithful to Instant-NGP [72]: L levels of virtual 3D grids with
geometrically growing resolution, each backed by a fixed-size 1D table.
Coarse levels whose dense grid fits in the table are indexed directly;
fine levels use the spatial hash (collisions allowed). Tables and the
decoder MLP are trained jointly with Adam against the ground-truth field
— the "gradient descent" loop of Fig. 1(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.errors import ConfigError
from repro.nn import MLP, Adam
from repro.renderers.nerf.sampling import OccupancyGrid
from repro.scenes.fields import SceneField, contract_unbounded

#: Instant-NGP's hashing primes (pi_1 = 1 keeps x unmixed).
HASH_PRIMES = (1, 2654435761, 805459861)

#: The 8 corner offsets of a grid cell.
CORNER_OFFSETS = np.array(
    [[dx, dy, dz] for dx in (0, 1) for dy in (0, 1) for dz in (0, 1)], dtype=np.int64
)


def spatial_hash(coords: np.ndarray, table_size: int) -> np.ndarray:
    """Instant-NGP's XOR spatial hash: ``(x ^ y*p2 ^ z*p3) mod T``.

    ``coords`` is integer (n, 3); ``table_size`` must be a power of two
    (the modulo then reduces to a mask, as in the paper's hardware).
    """
    if table_size & (table_size - 1):
        raise ConfigError("table_size must be a power of two")
    coords = np.asarray(coords, dtype=np.uint64)
    acc = coords[..., 0] * np.uint64(HASH_PRIMES[0])
    acc ^= coords[..., 1] * np.uint64(HASH_PRIMES[1])
    acc ^= coords[..., 2] * np.uint64(HASH_PRIMES[2])
    return (acc & np.uint64(table_size - 1)).astype(np.int64)


@dataclass
class HashGridModel:
    """Trained multi-level hash tables plus decoder MLP."""

    resolutions: tuple[int, ...]         # per-level virtual grid resolution
    table_size: int                      # entries per level
    n_features: int                      # feature channels per level
    tables: list[np.ndarray]             # per-level (T, F) arrays
    decoder: MLP                         # (L*F + 3) -> 4 raw outputs
    lo: np.ndarray
    hi: np.ndarray
    contracted: bool
    sigma_scale: float
    occupancy: OccupancyGrid | None = None
    samples_per_ray: int = 96
    _collision_rates: list[float] = dataclass_field(default_factory=list)

    @property
    def n_levels(self) -> int:
        return len(self.resolutions)

    @property
    def encoding_width(self) -> int:
        return self.n_levels * self.n_features

    def level_is_dense(self, level: int) -> bool:
        """True when the level's virtual grid fits the table directly."""
        res = self.resolutions[level]
        return (res + 1) ** 3 <= self.table_size

    def storage_bytes(self) -> int:
        """FP16 tables + BF16 decoder + occupancy bitfield."""
        table_bytes = sum(t.size for t in self.tables) * 2
        occ = self.occupancy.storage_bytes() if self.occupancy is not None else 0
        return table_bytes + self.decoder.storage_bytes() + occ

    # ------------------------------------------------------------------
    def unit_coords(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        if self.contracted:
            points = contract_unbounded(points)
        return np.clip((points - self.lo) / (self.hi - self.lo), 0.0, 1.0 - 1e-9)

    def level_lookup(self, level: int, unit: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-level corner table indices and trilinear weights.

        Returns ``(indices, weights)`` of shapes (n, 8) — the Hash
        Indexing step of Fig. 5.
        """
        res = self.resolutions[level]
        scaled = unit * res
        base = np.floor(scaled).astype(np.int64)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]  # (n, 8, 3)
        if self.level_is_dense(level):
            stride = res + 1
            idx = (corners[..., 0] * stride + corners[..., 1]) * stride + corners[..., 2]
        else:
            idx = spatial_hash(corners, self.table_size)
        w = np.ones((len(unit), 8))
        for axis in range(3):
            f = frac[:, axis : axis + 1]
            bit = CORNER_OFFSETS[:, axis][None, :]
            w = w * np.where(bit == 1, f, 1.0 - f)
        return idx, w

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Concatenated multi-level features, shape (n, L*F)."""
        unit = self.unit_coords(points)
        feats = np.empty((len(unit), self.encoding_width))
        for level in range(self.n_levels):
            idx, w = self.level_lookup(level, unit)
            gathered = self.tables[level][idx]  # (n, 8, F)
            f0 = level * self.n_features
            feats[:, f0 : f0 + self.n_features] = np.einsum("nc,ncf->nf", w, gathered)
        return feats

    def query(self, points: np.ndarray, dirs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(sigma, rgb) at world points."""
        raw = self.decoder.forward(np.concatenate([self.encode(points), dirs], axis=1))
        sigma = np.maximum(raw[:, 0], 0.0) * self.sigma_scale
        rgb = 1.0 / (1.0 + np.exp(-np.clip(raw[:, 1:4], -30, 30)))
        return sigma, rgb

    def collision_rate(self, level: int, n_probe: int = 4096, seed: int = 0) -> float:
        """Fraction of probed vertices sharing a table slot with another
        probed vertex — the vector-quantization loss of Sec. II-D."""
        rng = np.random.default_rng(seed)
        res = self.resolutions[level]
        coords = rng.integers(0, res + 1, size=(n_probe, 3))
        coords = np.unique(coords, axis=0)
        if self.level_is_dense(level):
            return 0.0
        idx = spatial_hash(coords, self.table_size)
        _unique, counts = np.unique(idx, return_counts=True)
        collided = counts[counts > 1].sum()
        return float(collided) / len(coords)


def build_hashgrid_model(
    field: SceneField,
    n_levels: int = 8,
    log2_table_size: int = 13,
    base_resolution: int = 8,
    growth: float = 1.5,
    n_features: int = 2,
    decoder_hidden: int = 32,
    train_steps: int = 350,
    train_batch: int = 1024,
    samples_per_ray: int = 96,
    occupancy_resolution: int = 32,
    seed: int = 0,
) -> HashGridModel:
    """Train hash tables + decoder jointly against the ground-truth field."""
    if n_levels < 1:
        raise ConfigError("need at least one level")
    if growth <= 1.0:
        raise ConfigError("growth factor must exceed 1")
    rng = np.random.default_rng(seed)
    contracted = field.unbounded
    if contracted:
        lo, hi = np.full(3, -2.0), np.full(3, 2.0)
    else:
        lo, hi = (np.asarray(b, float) for b in field.bounds)
    sigma_scale = max(p.density_scale for p in field.primitives)
    table_size = 1 << log2_table_size

    resolutions = tuple(
        int(np.floor(base_resolution * growth**level)) for level in range(n_levels)
    )
    tables = [
        rng.uniform(-1e-2, 1e-2, size=(table_size, n_features)) for _ in range(n_levels)
    ]
    decoder = MLP(
        [n_levels * n_features + 3, decoder_hidden, 4],
        output_activation="linear",
        rng=rng,
    )
    model = HashGridModel(
        resolutions=resolutions,
        table_size=table_size,
        n_features=n_features,
        tables=tables,
        decoder=decoder,
        lo=lo,
        hi=hi,
        contracted=contracted,
        sigma_scale=sigma_scale,
        samples_per_ray=samples_per_ray,
    )
    _train(field, model, rng, train_steps, train_batch)
    model.occupancy = OccupancyGrid(field, resolution=occupancy_resolution)
    return model


def _train(
    field: SceneField,
    model: HashGridModel,
    rng: np.random.Generator,
    steps: int,
    batch: int,
) -> None:
    """Joint Adam training of tables and decoder (MSE on sigma and rgb)."""
    params = list(model.tables) + model.decoder.parameters()
    optimizer = Adam(params, lr=1e-2)

    # Bias samples toward matter, mirroring occupancy-grid ray sampling.
    probe = rng.uniform(0.0, 1.0, size=(20000, 3))
    world_probe = _to_world(model, probe)
    occupied = probe[field.density(world_probe) > 0.05]

    for _ in range(steps):
        unit = rng.uniform(0.0, 1.0, size=(batch, 3))
        if len(occupied):
            n_occ = int(0.7 * batch)
            picks = rng.integers(0, len(occupied), n_occ)
            jitter = rng.uniform(-0.03, 0.03, size=(n_occ, 3))
            unit[:n_occ] = np.clip(occupied[picks] + jitter, 0.0, 1.0 - 1e-9)
        world = _to_world(model, unit)
        dirs = rng.normal(size=(batch, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        sigma_t, rgb_t = field.density_and_color(world, dirs)

        # Forward, keeping per-level lookups for the backward pass.
        lookups = []
        feats = np.empty((batch, model.encoding_width))
        for level in range(model.n_levels):
            idx, w = model.level_lookup(level, unit)
            lookups.append((idx, w))
            f0 = level * model.n_features
            feats[:, f0 : f0 + model.n_features] = np.einsum(
                "nc,ncf->nf", w, model.tables[level][idx]
            )
        x = np.concatenate([feats, dirs], axis=1)
        out = model.decoder.forward(x)

        sigma_pred = np.maximum(out[:, :1], 0.0)
        rgb_pred = 1.0 / (1.0 + np.exp(-np.clip(out[:, 1:4], -30, 30)))
        grad = np.empty_like(out)
        grad[:, :1] = 2.0 * (sigma_pred - (sigma_t / model.sigma_scale)[:, None]) * (
            out[:, :1] > 0
        )
        grad[:, 1:4] = (
            2.0 * (rgb_pred - rgb_t) * rgb_pred * (1.0 - rgb_pred)
        )
        grad /= batch

        g_x = model.decoder.backward(grad)
        table_grads = []
        for level in range(model.n_levels):
            idx, w = lookups[level]
            f0 = level * model.n_features
            g_feat = g_x[:, f0 : f0 + model.n_features]  # (n, F)
            g_table = np.zeros_like(model.tables[level])
            np.add.at(g_table, idx.ravel(), (w[..., None] * g_feat[:, None, :]).reshape(-1, model.n_features))
            table_grads.append(g_table)
        optimizer.step(table_grads + model.decoder.gradients())


def _to_world(model: HashGridModel, unit: np.ndarray) -> np.ndarray:
    world = model.lo + unit * (model.hi - model.lo)
    if model.contracted:
        from repro.renderers.nerf.sampling import _uncontract

        world = _uncontract(world)
    return world
