"""The hash-grid pipeline end to end (Fig. 5)."""

from __future__ import annotations

import numpy as np

from repro.renderers.base import RenderStats
from repro.renderers.hashgrid.hashenc import HashGridModel
from repro.renderers.volume import VolumeRendererBase
from repro.scenes.fields import SceneField


class HashGridRenderer(VolumeRendererBase):
    """Renders a :class:`HashGridModel` — the Instant-NGP-style pipeline."""

    pipeline = "hashgrid"

    def __init__(self, model: HashGridModel, field: SceneField, chunk: int = 4096) -> None:
        super().__init__(field, model.samples_per_ray, model.occupancy, chunk)
        self.model = model

    def shade_samples(
        self, points: np.ndarray, dirs: np.ndarray, stats: RenderStats
    ) -> tuple[np.ndarray, np.ndarray]:
        sigma, rgb = self.model.query(points, dirs)
        n = len(points)
        # Hash Indexing: 8 corner lookups per level per sample.
        stats.add("hash_lookups", 8 * self.model.n_levels * n)
        stats.add("mlp_inputs", n)
        stats.add("mlp_macs", n * self.model.decoder.macs_per_sample())
        return sigma, rgb
