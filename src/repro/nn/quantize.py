"""Quantization helpers mirroring the accelerator datatypes (Sec. V-C).

Each Uni-Render PE carries four INT16 MACs (index computations) and four
BF16 MACs (feature computations). These helpers let the functional
pipelines and tests measure what those datatypes do to accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def bf16_round(x: np.ndarray) -> np.ndarray:
    """Round float values to bfloat16 precision (8-bit mantissa).

    Implemented by truncating the low 16 bits of the float32 encoding with
    round-to-nearest-even, which is exactly what BF16 hardware does.
    """
    as_f32 = np.asarray(x, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # Round half to even on the truncated mantissa bits.
    rounding = ((bits >> 16) & 1) + 0x7FFF
    rounded = (bits + rounding) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(np.float64)


def int16_quantize(x: np.ndarray, scale: float) -> np.ndarray:
    """Quantize to INT16 with the given scale; saturates at the type range."""
    if scale <= 0:
        raise ConfigError("quantization scale must be positive")
    q = np.round(np.asarray(x, dtype=np.float64) / scale)
    return np.clip(q, -32768, 32767).astype(np.int16)


def int16_dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`int16_quantize`."""
    if scale <= 0:
        raise ConfigError("quantization scale must be positive")
    return q.astype(np.float64) * scale


def quantization_mse(x: np.ndarray, scale: float) -> float:
    """Mean squared error introduced by an INT16 round trip."""
    x = np.asarray(x, dtype=np.float64)
    back = int16_dequantize(int16_quantize(x, scale), scale)
    return float(np.mean(np.square(x - back)))
