"""Dense layers and small MLPs with explicit forward/backward passes.

The implementation is intentionally plain NumPy: the accelerator model in
:mod:`repro.core` charges cycles for exactly the multiply-accumulates that
these layers perform, so keeping the math explicit makes the workload
accounting auditable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.init import he_init


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`relu` with respect to its input."""
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def sigmoid_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`sigmoid` with respect to its input."""
    s = sigmoid(x)
    return s * (1.0 - s)


_ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "relu": (relu, relu_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "linear": (lambda x: x, lambda x: np.ones_like(x)),
}


class Dense:
    """A fully connected layer ``y = act(x @ W + b)``.

    Parameters
    ----------
    fan_in, fan_out:
        Input and output widths.
    activation:
        One of ``"relu"``, ``"sigmoid"``, ``"linear"``.
    rng:
        Generator used for He initialization.
    """

    def __init__(
        self,
        fan_in: int,
        fan_out: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ConfigError(f"unknown activation {activation!r}")
        if fan_in <= 0 or fan_out <= 0:
            raise ConfigError("layer widths must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = he_init(rng, fan_in, fan_out)
        self.bias = np.zeros(fan_out, dtype=np.float64)
        self.activation = activation
        self._act, self._act_grad = _ACTIVATIONS[activation]
        # Populated by forward(); consumed by backward().
        self._last_input: np.ndarray | None = None
        self._last_pre: np.ndarray | None = None

    @property
    def fan_in(self) -> int:
        return self.weight.shape[0]

    @property
    def fan_out(self) -> int:
        return self.weight.shape[1]

    @property
    def num_params(self) -> int:
        """Parameter count (weights + biases)."""
        return self.weight.size + self.bias.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to a batch ``x`` of shape ``(n, fan_in)``."""
        pre = x @ self.weight + self.bias
        self._last_input = x
        self._last_pre = pre
        return self._act(pre)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/dy``; stores param grads, returns ``dL/dx``."""
        if self._last_input is None or self._last_pre is None:
            raise ConfigError("backward() called before forward()")
        grad_pre = grad_out * self._act_grad(self._last_pre)
        self.grad_weight = self._last_input.T @ grad_pre
        self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weight.T

    def macs_per_sample(self) -> int:
        """Multiply-accumulates needed for one input row (the GEMM load)."""
        return self.weight.size


class MLP:
    """A stack of :class:`Dense` layers.

    This is the "MLP" box in Figs. 2-6 of the paper. ``widths`` includes
    the input width, e.g. ``MLP([32, 64, 64, 4])`` has three layers.
    """

    def __init__(
        self,
        widths: Sequence[int],
        hidden_activation: str = "relu",
        output_activation: str = "sigmoid",
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(widths) < 2:
            raise ConfigError("an MLP needs at least input and output widths")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.layers: list[Dense] = []
        for i, (a, b) in enumerate(zip(widths[:-1], widths[1:])):
            act = output_activation if i == len(widths) - 2 else hidden_activation
            self.layers.append(Dense(a, b, activation=act, rng=rng))
        self.widths = tuple(widths)

    @property
    def num_params(self) -> int:
        """Total parameter count across all layers."""
        return sum(layer.num_params for layer in self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the batch ``x`` of shape ``(n, widths[0])`` through all layers."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate through the whole stack; returns ``dL/dx``."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays, paired with :meth:`gradients`."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend((layer.weight, layer.bias))
        return params

    def gradients(self) -> list[np.ndarray]:
        """Flat list of gradient arrays matching :meth:`parameters`."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend((layer.grad_weight, layer.grad_bias))
        return grads

    def macs_per_sample(self) -> int:
        """MACs per input row — what the GEMM micro-operator will execute."""
        return sum(layer.macs_per_sample() for layer in self.layers)

    def storage_bytes(self, bytes_per_param: int = 2) -> int:
        """On-device storage of the weights (BF16 by default, Sec. V-C)."""
        return self.num_params * bytes_per_param
