"""Weight initializers.

Kept deterministic: every initializer takes an explicit ``rng`` so that
scenes, representations, and trained MLPs are reproducible bit-for-bit
across runs — a requirement for the experiment harness, whose outputs are
committed to EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np


def he_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He-normal initialization, the right scale for ReLU MLPs."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out)).astype(np.float64)


def uniform_init(
    rng: np.random.Generator, fan_in: int, fan_out: int, scale: float = 1e-2
) -> np.ndarray:
    """Small uniform initialization, used for feature-grid tables."""
    return rng.uniform(-scale, scale, size=(fan_in, fan_out)).astype(np.float64)
