"""Optimizers for the small fitting jobs in the examples and tests.

Neural rendering representations are *learned* (Fig. 1a: "gradient
descent"); we include Adam so the examples can actually fit hash grids and
MLP shaders instead of only loading constructed weights.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError


def sgd_step(params: Sequence[np.ndarray], grads: Sequence[np.ndarray], lr: float) -> None:
    """In-place vanilla SGD update."""
    if len(params) != len(grads):
        raise ConfigError("params and grads length mismatch")
    for p, g in zip(params, grads):
        p -= lr * g


class Adam:
    """Adam optimizer (Kingma & Ba) operating in-place on numpy arrays."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if not 0.0 < lr:
            raise ConfigError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigError("betas must lie in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one Adam update given gradients matching ``params``."""
        if len(grads) != len(self.params):
            raise ConfigError("gradient list does not match parameter list")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
