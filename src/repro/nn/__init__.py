"""Minimal neural-network substrate used by every rendering pipeline.

The paper's pipelines all end in a small MLP (Sec. II); NeRF-style MLPs
have fewer than one million parameters but run at batch sizes above 1024
(Sec. VI, "Dataflow for GEMM"). This package provides exactly what those
workloads need — dense layers, a couple of activations, an Adam optimizer
for the fitting examples, and the BF16/INT16 quantization helpers that
mirror the accelerator's ALU datatypes (Sec. V-C).
"""

from repro.nn.layers import Dense, MLP, relu, relu_grad, sigmoid, sigmoid_grad
from repro.nn.optim import Adam, sgd_step
from repro.nn.quantize import (
    bf16_round,
    int16_quantize,
    int16_dequantize,
    quantization_mse,
)
from repro.nn.init import he_init, uniform_init

__all__ = [
    "Dense",
    "MLP",
    "relu",
    "relu_grad",
    "sigmoid",
    "sigmoid_grad",
    "Adam",
    "sgd_step",
    "bf16_round",
    "int16_quantize",
    "int16_dequantize",
    "quantization_mse",
    "he_init",
    "uniform_init",
]
