"""Signed-distance primitives that compose the ground-truth scenes.

Each primitive contributes a smooth density blob (a sigmoid of its signed
distance) and an albedo. Scenes are unions of primitives; see
:mod:`repro.scenes.fields` for how the contributions combine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SceneError


def _as_vec3(value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64).reshape(-1)
    if arr.shape != (3,):
        raise SceneError(f"expected a 3-vector, got shape {arr.shape}")
    return arr


@dataclass
class Primitive:
    """Base class: a blob of matter with a signed distance and an albedo.

    Parameters
    ----------
    center:
        World-space position.
    albedo:
        Base RGB color in [0, 1].
    density_scale:
        Peak volumetric density of the blob.
    softness:
        Width of the density falloff around the surface, in world units.
    checker:
        If > 0, modulates the albedo with a 3D checker pattern of that
        period — gives the texture-indexing stage something to resolve.
    sheen:
        Strength of a simple view-dependent highlight; exercises the
        spherical-harmonics / view-direction paths.
    """

    center: np.ndarray = field(default_factory=lambda: np.zeros(3))
    albedo: np.ndarray = field(default_factory=lambda: np.array([0.7, 0.7, 0.7]))
    density_scale: float = 40.0
    softness: float = 0.03
    checker: float = 0.0
    sheen: float = 0.0
    sheen_dir: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 1.0]))

    def __post_init__(self) -> None:
        self.center = _as_vec3(self.center)
        self.albedo = np.clip(_as_vec3(self.albedo), 0.0, 1.0)
        self.sheen_dir = _as_vec3(self.sheen_dir)
        norm = np.linalg.norm(self.sheen_dir)
        self.sheen_dir = self.sheen_dir / (norm if norm > 0 else 1.0)
        if self.density_scale <= 0:
            raise SceneError("density_scale must be positive")
        if self.softness <= 0:
            raise SceneError("softness must be positive")

    # -- geometry -------------------------------------------------------
    def sdf(self, points: np.ndarray) -> np.ndarray:
        """Signed distance from each point to the primitive surface."""
        raise NotImplementedError

    def density(self, points: np.ndarray) -> np.ndarray:
        """Volumetric density contribution: high inside, ~0 outside."""
        d = self.sdf(np.asarray(points, dtype=np.float64))
        # Sigmoid falloff across the surface; clip the exponent for safety.
        z = np.clip(-d / self.softness, -60.0, 60.0)
        return self.density_scale / (1.0 + np.exp(-z))

    # -- appearance ------------------------------------------------------
    def color(self, points: np.ndarray, view_dirs: np.ndarray | None = None) -> np.ndarray:
        """Albedo at each point, with optional checker and view sheen."""
        points = np.asarray(points, dtype=np.float64)
        rgb = np.broadcast_to(self.albedo, (len(points), 3)).copy()
        if self.checker > 0:
            cells = np.floor(points / self.checker).sum(axis=1).astype(np.int64)
            dim = np.where(cells % 2 == 0, 1.0, 0.55)
            rgb *= dim[:, None]
        if self.sheen > 0 and view_dirs is not None:
            view_dirs = np.asarray(view_dirs, dtype=np.float64)
            alignment = np.clip(view_dirs @ self.sheen_dir, 0.0, 1.0) ** 2
            rgb = np.clip(rgb + self.sheen * alignment[:, None], 0.0, 1.0)
        return rgb

    def bounding_radius(self) -> float:
        """Radius of a sphere around ``center`` containing the primitive."""
        raise NotImplementedError


@dataclass
class Sphere(Primitive):
    radius: float = 0.3

    def sdf(self, points: np.ndarray) -> np.ndarray:
        return np.linalg.norm(points - self.center, axis=1) - self.radius

    def bounding_radius(self) -> float:
        return self.radius


@dataclass
class Box(Primitive):
    half_extents: np.ndarray = field(default_factory=lambda: np.array([0.3, 0.3, 0.3]))

    def __post_init__(self) -> None:
        super().__post_init__()
        self.half_extents = _as_vec3(self.half_extents)
        if np.any(self.half_extents <= 0):
            raise SceneError("box half extents must be positive")

    def sdf(self, points: np.ndarray) -> np.ndarray:
        q = np.abs(points - self.center) - self.half_extents
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
        inside = np.minimum(q.max(axis=1), 0.0)
        return outside + inside

    def bounding_radius(self) -> float:
        return float(np.linalg.norm(self.half_extents))


@dataclass
class Torus(Primitive):
    major_radius: float = 0.3
    minor_radius: float = 0.08

    def sdf(self, points: np.ndarray) -> np.ndarray:
        local = points - self.center
        ring = np.sqrt(local[:, 0] ** 2 + local[:, 1] ** 2) - self.major_radius
        return np.sqrt(ring**2 + local[:, 2] ** 2) - self.minor_radius

    def bounding_radius(self) -> float:
        return self.major_radius + self.minor_radius


@dataclass
class Cylinder(Primitive):
    radius: float = 0.15
    half_height: float = 0.3

    def sdf(self, points: np.ndarray) -> np.ndarray:
        local = points - self.center
        radial = np.sqrt(local[:, 0] ** 2 + local[:, 1] ** 2) - self.radius
        axial = np.abs(local[:, 2]) - self.half_height
        outside = np.sqrt(np.maximum(radial, 0.0) ** 2 + np.maximum(axial, 0.0) ** 2)
        inside = np.minimum(np.maximum(radial, axial), 0.0)
        return outside + inside

    def bounding_radius(self) -> float:
        return float(np.hypot(self.radius, self.half_height))


@dataclass
class FloorPlane(Primitive):
    """A horizontal ground plane at ``center[2]`` (checkered by default)."""

    def __post_init__(self) -> None:
        if self.checker == 0.0:
            self.checker = 0.5
        super().__post_init__()

    def sdf(self, points: np.ndarray) -> np.ndarray:
        return points[:, 2] - self.center[2]

    def bounding_radius(self) -> float:
        return np.inf
