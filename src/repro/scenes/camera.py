"""Pinhole cameras, poses, and ray generation.

Every pipeline in the paper starts from "the camera pose corresponding to
the view that the user wants to observe" (Sec. II). This module is the
shared front end: it produces per-pixel rays for the volume pipelines and
the view/projection matrices for the raster pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import SceneError


def look_at(eye: np.ndarray, target: np.ndarray, up: np.ndarray | None = None) -> np.ndarray:
    """Build a 4x4 camera-to-world matrix looking from ``eye`` to ``target``.

    Uses the OpenGL-style convention: the camera looks down its local -z
    axis, +x is right, +y is up.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up if up is not None else (0.0, 0.0, 1.0), dtype=np.float64)

    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise SceneError("look_at: eye and target coincide")
    forward = forward / norm

    right = np.cross(forward, up)
    norm = np.linalg.norm(right)
    if norm < 1e-12:
        # up was parallel to the view direction; pick another up vector.
        up = np.array([0.0, 1.0, 0.0])
        right = np.cross(forward, up)
        norm = np.linalg.norm(right)
    right = right / norm
    true_up = np.cross(right, forward)

    c2w = np.eye(4)
    c2w[:3, 0] = right
    c2w[:3, 1] = true_up
    c2w[:3, 2] = -forward
    c2w[:3, 3] = eye
    return c2w


def orbit_poses(
    radius: float,
    n_views: int,
    elevation_deg: float = 20.0,
    target: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Camera-to-world matrices on a circular orbit — the test-view layout
    used by both NeRF-Synthetic and Unbounded-360 capture rigs."""
    if n_views < 1:
        raise SceneError("orbit_poses needs at least one view")
    target = np.asarray(target if target is not None else (0.0, 0.0, 0.0), dtype=np.float64)
    elev = np.deg2rad(elevation_deg)
    poses = []
    for i in range(n_views):
        azim = 2.0 * np.pi * i / n_views
        eye = target + radius * np.array(
            [np.cos(azim) * np.cos(elev), np.sin(azim) * np.cos(elev), np.sin(elev)]
        )
        poses.append(look_at(eye, target))
    return poses


def tiles(height: int, width: int, patch: int) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(y0, y1, x0, x1)`` patch bounds covering a ``height x width``
    image. 3DGS sorts per 16x16 patch (Sec. II-E); the accelerator maps one
    patch of pixels per PE (Sec. VI)."""
    if patch <= 0:
        raise SceneError("patch size must be positive")
    for y0 in range(0, height, patch):
        for x0 in range(0, width, patch):
            yield y0, min(y0 + patch, height), x0, min(x0 + patch, width)


@dataclass
class Camera:
    """A pinhole camera with an OpenGL-style pose.

    Parameters
    ----------
    width, height:
        Image resolution in pixels.
    fov_y_deg:
        Vertical field of view in degrees.
    pose:
        4x4 camera-to-world matrix (see :func:`look_at`).
    near, far:
        Clip-space depth range used by the raster pipelines.
    """

    width: int
    height: int
    fov_y_deg: float = 50.0
    pose: np.ndarray = field(default_factory=lambda: np.eye(4))
    near: float = 0.05
    far: float = 100.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise SceneError("camera resolution must be positive")
        if not 0.0 < self.fov_y_deg < 180.0:
            raise SceneError("fov must lie in (0, 180) degrees")
        if not 0.0 < self.near < self.far:
            raise SceneError("require 0 < near < far")
        self.pose = np.asarray(self.pose, dtype=np.float64)
        if self.pose.shape != (4, 4):
            raise SceneError("pose must be a 4x4 matrix")

    # ------------------------------------------------------------------
    # Intrinsics
    # ------------------------------------------------------------------
    @property
    def focal(self) -> float:
        """Focal length in pixels (same for x and y: square pixels)."""
        return 0.5 * self.height / np.tan(0.5 * np.deg2rad(self.fov_y_deg))

    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    @property
    def origin(self) -> np.ndarray:
        """Camera position in world space."""
        return self.pose[:3, 3].copy()

    def resized(self, width: int, height: int) -> "Camera":
        """Same camera at a different resolution (keeps the field of view)."""
        return Camera(width, height, self.fov_y_deg, self.pose.copy(), self.near, self.far)

    # ------------------------------------------------------------------
    # Rays (volume pipelines)
    # ------------------------------------------------------------------
    def rays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel rays: ``(origins, directions)`` of shape (H*W, 3).

        Directions are unit length; pixel order is row-major, matching the
        flattening of rendered images.
        """
        xs = (np.arange(self.width) + 0.5 - 0.5 * self.width) / self.focal
        ys = (0.5 * self.height - (np.arange(self.height) + 0.5)) / self.focal
        grid_x, grid_y = np.meshgrid(xs, ys)
        dirs_cam = np.stack(
            [grid_x.ravel(), grid_y.ravel(), -np.ones(self.num_pixels)], axis=1
        )
        rot = self.pose[:3, :3]
        dirs_world = dirs_cam @ rot.T
        dirs_world /= np.linalg.norm(dirs_world, axis=1, keepdims=True)
        origins = np.broadcast_to(self.origin, dirs_world.shape).copy()
        return origins, dirs_world

    # ------------------------------------------------------------------
    # Matrices (raster pipelines)
    # ------------------------------------------------------------------
    def view_matrix(self) -> np.ndarray:
        """World-to-camera 4x4 matrix (inverse of the pose)."""
        rot = self.pose[:3, :3]
        trans = self.pose[:3, 3]
        view = np.eye(4)
        view[:3, :3] = rot.T
        view[:3, 3] = -rot.T @ trans
        return view

    def projection_matrix(self) -> np.ndarray:
        """OpenGL-style perspective projection into clip space.

        This is the "Space Conversion" step shared by the mesh and 3DGS
        pipelines (Figs. 2 and 6).
        """
        f = 1.0 / np.tan(0.5 * np.deg2rad(self.fov_y_deg))
        aspect = self.width / self.height
        n, fa = self.near, self.far
        proj = np.zeros((4, 4))
        proj[0, 0] = f / aspect
        proj[1, 1] = f
        proj[2, 2] = (fa + n) / (n - fa)
        proj[2, 3] = 2.0 * fa * n / (n - fa)
        proj[3, 2] = -1.0
        return proj

    def world_to_screen(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project world points to pixel coordinates.

        Returns ``(screen_xy, depth)`` where depth is the camera-space
        distance along -z (positive in front of the camera).
        """
        points = np.asarray(points, dtype=np.float64)
        homo = np.concatenate([points, np.ones((len(points), 1))], axis=1)
        clip = homo @ (self.projection_matrix() @ self.view_matrix()).T
        w = clip[:, 3:4]
        # Guard against division by ~0 for points on the camera plane.
        w = np.where(np.abs(w) < 1e-12, 1e-12, w)
        ndc = clip[:, :3] / w
        screen_x = (ndc[:, 0] * 0.5 + 0.5) * self.width
        screen_y = (0.5 - ndc[:, 1] * 0.5) * self.height
        cam = homo @ self.view_matrix().T
        depth = -cam[:, 2]
        return np.stack([screen_x, screen_y], axis=1), depth
