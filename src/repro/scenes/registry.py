"""Named procedural scenes substituting the paper's two datasets.

* NeRF-Synthetic-like (bounded objects, white background, 800x800 in the
  paper): ``chair drums ficus hotdog lego materials mic ship``.
* Unbounded-360-like (real-world scale, 1280x720 in the paper):
  ``bicycle bonsai counter garden kitchen room stump`` — with the four
  indoor scenes (``room counter kitchen bonsai``) used by Fig. 17.

Every scene is deterministic (seeded by its name) and carries a
``complexity`` knob that the representation builders translate into
triangle / Gaussian / grid budgets, which in turn drive workload cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable

import numpy as np

from repro.errors import SceneError
from repro.scenes.fields import SceneField
from repro.scenes.primitives import Box, Cylinder, FloorPlane, Sphere, Torus

NERF_SYNTHETIC_SCENES = (
    "chair",
    "drums",
    "ficus",
    "hotdog",
    "lego",
    "materials",
    "mic",
    "ship",
)
UNBOUNDED_360_SCENES = (
    "bicycle",
    "bonsai",
    "counter",
    "garden",
    "kitchen",
    "room",
    "stump",
)
UNBOUNDED_INDOOR_SCENES = ("room", "counter", "kitchen", "bonsai")


@dataclass
class SceneSpec:
    """A named scene: metadata plus a lazily built ground-truth field."""

    name: str
    kind: str  # "synthetic" or "unbounded"
    complexity: float  # relative workload scale, 1.0 = nominal
    builder: Callable[[], SceneField]
    camera_radius: float = 3.0
    _field: SceneField | None = dataclass_field(default=None, repr=False)

    def field(self) -> SceneField:
        """Build (once) and return the ground-truth field."""
        if self._field is None:
            self._field = self.builder()
        return self._field

    @property
    def unbounded(self) -> bool:
        return self.kind == "unbounded"


def _rng(name: str) -> np.random.Generator:
    """Deterministic per-scene generator (stable across runs/processes)."""
    seed = int.from_bytes(name.encode("utf-8"), "little") % (2**32)
    return np.random.default_rng(seed)


def _palette(rng: np.random.Generator, n: int) -> np.ndarray:
    """n saturated-but-not-neon colors."""
    hues = rng.uniform(0.0, 1.0, n)
    colors = np.stack(
        [
            0.45 + 0.45 * np.cos(2 * np.pi * (hues + shift))
            for shift in (0.0, 1.0 / 3.0, 2.0 / 3.0)
        ],
        axis=1,
    )
    return np.clip(colors, 0.05, 0.95)


def _scatter_objects(
    rng: np.random.Generator,
    count: int,
    region_lo,
    region_hi,
    size_range=(0.08, 0.3),
    kinds=("sphere", "box", "cylinder", "torus"),
    sheen: float = 0.15,
) -> list:
    """Random small objects inside a box region, used by most builders."""
    colors = _palette(rng, count)
    prims = []
    lo = np.asarray(region_lo, dtype=np.float64)
    hi = np.asarray(region_hi, dtype=np.float64)
    for i in range(count):
        center = rng.uniform(lo, hi)
        size = rng.uniform(*size_range)
        kind = kinds[int(rng.integers(len(kinds)))]
        common = dict(center=center, albedo=colors[i], sheen=sheen,
                      sheen_dir=rng.normal(size=3))
        if kind == "sphere":
            prims.append(Sphere(radius=size, **common))
        elif kind == "box":
            prims.append(Box(half_extents=rng.uniform(0.5, 1.0, 3) * size, **common))
        elif kind == "cylinder":
            prims.append(Cylinder(radius=0.6 * size, half_height=size, **common))
        else:
            prims.append(Torus(major_radius=size, minor_radius=0.3 * size, **common))
    return prims


# ----------------------------------------------------------------------
# NeRF-Synthetic-like builders (bounded objects around the origin)
# ----------------------------------------------------------------------
def _auto_bounds(prims: list, margin: float = 0.3) -> tuple:
    """Tight axis-aligned bounds around finite primitives plus a halo
    margin (the density falloff extends a little beyond each surface)."""
    lo = np.full(3, np.inf)
    hi = np.full(3, -np.inf)
    for prim in prims:
        radius = prim.bounding_radius()
        if not np.isfinite(radius):
            continue
        lo = np.minimum(lo, prim.center - radius)
        hi = np.maximum(hi, prim.center + radius)
    if not np.all(np.isfinite(lo)):
        raise SceneError("scene has no finite primitives")
    return tuple(lo - margin), tuple(hi + margin)


def _build_synthetic(name: str, n_objects: int, stacked: bool = False) -> SceneField:
    rng = _rng(name)
    if stacked:
        # Tower-of-blocks object ("lego"-like): strong occlusion structure.
        prims = []
        colors = _palette(rng, n_objects)
        step = 1.3 / max(n_objects - 1, 1)
        z = -0.6
        for i in range(n_objects):
            half = np.array([rng.uniform(0.2, 0.5), rng.uniform(0.2, 0.5), 0.45 * step])
            prims.append(
                Box(
                    center=np.array([rng.uniform(-0.15, 0.15), rng.uniform(-0.15, 0.15), z]),
                    half_extents=half,
                    albedo=colors[i],
                    checker=0.15 if i % 3 == 0 else 0.0,
                )
            )
            z += step
    else:
        prims = _scatter_objects(rng, n_objects, (-0.7, -0.7, -0.6), (0.7, 0.7, 0.6))
    return SceneField(
        prims, name=name, unbounded=False, bounds=_auto_bounds(prims), background="white"
    )


# ----------------------------------------------------------------------
# Unbounded-360-like builders (cameras inside the scene)
# ----------------------------------------------------------------------
def _build_indoor(name: str, n_objects: int) -> SceneField:
    rng = _rng(name)
    prims = [FloorPlane(center=(0, 0, -0.8), albedo=(0.55, 0.5, 0.45), density_scale=60.0)]
    # Walls: large boxes at the room boundary give the mesh pipeline big
    # occluders and the volume pipelines early ray termination.
    for wx, wy in ((3.2, 0.0), (-3.2, 0.0), (0.0, 3.2), (0.0, -3.2)):
        prims.append(
            Box(
                center=(wx, wy, 0.6),
                half_extents=(0.15 + 3.0 * abs(np.sign(wy)), 0.15 + 3.0 * abs(np.sign(wx)), 1.6),
                albedo=rng.uniform(0.4, 0.7, 3),
            )
        )
    prims += _scatter_objects(
        rng, n_objects, (-2.2, -2.2, -0.7), (2.2, 2.2, 0.9), size_range=(0.15, 0.5)
    )
    return SceneField(
        prims, name=name, unbounded=True, bounds=((-3.6, -3.6, -1.1), (3.6, 3.6, 2.6)),
        background="dark",
    )


def _build_outdoor(name: str, n_objects: int) -> SceneField:
    rng = _rng(name)
    prims = [FloorPlane(center=(0, 0, -0.5), albedo=(0.35, 0.45, 0.3), density_scale=60.0)]
    prims += _scatter_objects(
        rng, n_objects, (-3.0, -3.0, -0.4), (3.0, 3.0, 1.2), size_range=(0.2, 0.7)
    )
    # A few distant landmarks that only matter through scene contraction.
    for _ in range(4):
        direction = rng.normal(size=3)
        direction[2] = abs(direction[2]) * 0.2
        direction /= np.linalg.norm(direction)
        prims.append(
            Box(center=8.0 * direction, half_extents=(1.0, 1.0, 2.0),
                albedo=rng.uniform(0.3, 0.6, 3), density_scale=30.0)
        )
    return SceneField(
        prims, name=name, unbounded=True, bounds=((-4.0, -4.0, -0.8), (4.0, 4.0, 2.5)),
        background="sky",
    )


def _make_registry() -> dict[str, SceneSpec]:
    registry: dict[str, SceneSpec] = {}

    synthetic_objects = {
        "chair": 6, "drums": 9, "ficus": 12, "hotdog": 5,
        "lego": 10, "materials": 9, "mic": 6, "ship": 14,
    }
    for name, count in synthetic_objects.items():
        stacked = name in ("lego", "chair")
        registry[name] = SceneSpec(
            name=name,
            kind="synthetic",
            complexity=count / 10.0,
            builder=(lambda n=name, c=count, s=stacked: _build_synthetic(n, c, s)),
            camera_radius=3.0,
        )

    indoor_objects = {"room": 10, "counter": 14, "kitchen": 16, "bonsai": 12}
    for name, count in indoor_objects.items():
        registry[name] = SceneSpec(
            name=name,
            kind="unbounded",
            complexity=count / 10.0,
            builder=(lambda n=name, c=count: _build_indoor(n, c)),
            camera_radius=2.0,
        )

    outdoor_objects = {"bicycle": 16, "garden": 20, "stump": 12}
    for name, count in outdoor_objects.items():
        registry[name] = SceneSpec(
            name=name,
            kind="unbounded",
            complexity=count / 10.0,
            builder=(lambda n=name, c=count: _build_outdoor(n, c)),
            camera_radius=2.5,
        )
    return registry


_REGISTRY = _make_registry()


def scene_names(kind: str | None = None) -> tuple[str, ...]:
    """All registered scene names, optionally filtered by kind."""
    if kind is None:
        return tuple(_REGISTRY)
    if kind not in ("synthetic", "unbounded"):
        raise SceneError(f"unknown scene kind {kind!r}")
    return tuple(name for name, spec in _REGISTRY.items() if spec.kind == kind)


def get_scene(name: str) -> SceneSpec:
    """Look up a scene by name; raises :class:`SceneError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SceneError(
            f"unknown scene {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
