"""Scenes: cameras, procedural ground-truth fields, and named datasets.

The paper evaluates on two public datasets we cannot ship: NeRF-Synthetic
[67] (bounded object scenes, 800x800) and Unbounded-360 [8] (large
real-world scenes, 1280x720). This package substitutes both with
procedural analytic scenes — a density+RGB field assembled from signed-
distance primitives — whose *workload statistics* (geometry counts, ray
occupancy, unboundedness) are the knobs that actually drive rendering
cost. See DESIGN.md section 3 for the substitution argument.
"""

from repro.scenes.camera import Camera, look_at, orbit_poses, tiles
from repro.scenes.fields import SceneField, contract_unbounded
from repro.scenes.primitives import (
    Box,
    Cylinder,
    FloorPlane,
    Primitive,
    Sphere,
    Torus,
)
from repro.scenes.registry import (
    SceneSpec,
    get_scene,
    scene_names,
    NERF_SYNTHETIC_SCENES,
    UNBOUNDED_360_SCENES,
    UNBOUNDED_INDOOR_SCENES,
)

__all__ = [
    "Camera",
    "look_at",
    "orbit_poses",
    "tiles",
    "SceneField",
    "contract_unbounded",
    "Primitive",
    "Sphere",
    "Box",
    "Torus",
    "Cylinder",
    "FloorPlane",
    "SceneSpec",
    "get_scene",
    "scene_names",
    "NERF_SYNTHETIC_SCENES",
    "UNBOUNDED_360_SCENES",
    "UNBOUNDED_INDOOR_SCENES",
]
