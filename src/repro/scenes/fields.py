"""Ground-truth scene fields and the reference volume renderer.

A :class:`SceneField` is the analytic stand-in for a captured scene: a
density + RGB field assembled from signed-distance primitives. Every
scene representation (mesh, tri-plane, hash grid, Gaussians, MLP) is
*built from* this field, and rendering quality (PSNR) is measured against
the reference image this field produces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SceneError
from repro.scenes.camera import Camera
from repro.scenes.primitives import Primitive

#: Density below which a point is treated as empty space.
EMPTY_DENSITY = 1e-3


def contract_unbounded(points: np.ndarray) -> np.ndarray:
    """Mip-NeRF-360 scene contraction used by unbounded pipelines [8].

    Points inside the unit ball are unchanged; points outside are mapped
    to the shell of radius 2: ``x -> (2 - 1/|x|) * x/|x|``. Grid-based
    representations sample the *contracted* space so that far-away
    content still lands inside a finite grid.
    """
    points = np.asarray(points, dtype=np.float64)
    norms = np.linalg.norm(points, axis=-1, keepdims=True)
    safe = np.maximum(norms, 1e-12)
    contracted = (2.0 - 1.0 / safe) * (points / safe)
    return np.where(norms <= 1.0, points, contracted)


class SceneField:
    """Analytic density + color field composed of primitives.

    Parameters
    ----------
    primitives:
        The matter in the scene. Densities combine by taking the maximum
        contribution (a soft union); colors blend weighted by density.
    name:
        Identifier used in reports.
    unbounded:
        True for Unbounded-360-style scenes: cameras sit inside the scene
        and content extends to infinity (handled by scene contraction).
    bounds:
        Axis-aligned box containing the *foreground* content; bounded
        pipelines sample only inside it.
    background:
        ``"white"`` (NeRF-Synthetic convention), ``"sky"`` (outdoor), or
        ``"dark"`` (indoor ambient).
    """

    def __init__(
        self,
        primitives: Sequence[Primitive],
        name: str = "scene",
        unbounded: bool = False,
        bounds: tuple = ((-1.0, -1.0, -1.0), (1.0, 1.0, 1.0)),
        background: str = "white",
    ) -> None:
        if not primitives:
            raise SceneError("a scene needs at least one primitive")
        if background not in ("white", "sky", "dark"):
            raise SceneError(f"unknown background {background!r}")
        self.primitives = list(primitives)
        self.name = name
        self.unbounded = unbounded
        self.bounds = (
            np.asarray(bounds[0], dtype=np.float64),
            np.asarray(bounds[1], dtype=np.float64),
        )
        if np.any(self.bounds[0] >= self.bounds[1]):
            raise SceneError("bounds min must be strictly below bounds max")
        self.background = background

    # ------------------------------------------------------------------
    # Field queries
    # ------------------------------------------------------------------
    def density(self, points: np.ndarray) -> np.ndarray:
        """Volumetric density at each point (soft union of primitives)."""
        points = np.asarray(points, dtype=np.float64)
        total = np.zeros(len(points))
        for prim in self.primitives:
            np.maximum(total, prim.density(points), out=total)
        return total

    def color(self, points: np.ndarray, view_dirs: np.ndarray | None = None) -> np.ndarray:
        """Density-weighted blend of primitive colors at each point."""
        points = np.asarray(points, dtype=np.float64)
        weights = np.zeros((len(points), 1))
        rgb = np.zeros((len(points), 3))
        for prim in self.primitives:
            w = prim.density(points)[:, None]
            rgb += w * prim.color(points, view_dirs)
            weights += w
        return rgb / np.maximum(weights, 1e-9)

    def density_and_color(
        self, points: np.ndarray, view_dirs: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both field quantities in one call (saves one pass over prims)."""
        points = np.asarray(points, dtype=np.float64)
        density = np.zeros(len(points))
        weights = np.zeros((len(points), 1))
        rgb = np.zeros((len(points), 3))
        for prim in self.primitives:
            w = prim.density(points)
            np.maximum(density, w, out=density)
            rgb += w[:, None] * prim.color(points, view_dirs)
            weights += w[:, None]
        return density, rgb / np.maximum(weights, 1e-9)

    # ------------------------------------------------------------------
    # Background
    # ------------------------------------------------------------------
    def background_color(self, view_dirs: np.ndarray) -> np.ndarray:
        """Color returned by rays that exit the scene."""
        view_dirs = np.asarray(view_dirs, dtype=np.float64)
        n = len(view_dirs)
        if self.background == "white":
            return np.ones((n, 3))
        if self.background == "dark":
            return np.full((n, 3), 0.05)
        # "sky": vertical gradient from horizon haze to zenith blue.
        up = np.clip(view_dirs[:, 2], 0.0, 1.0)[:, None]
        horizon = np.array([0.85, 0.87, 0.90])
        zenith = np.array([0.35, 0.55, 0.95])
        return horizon * (1.0 - up) + zenith * up

    # ------------------------------------------------------------------
    # Reference rendering (ground truth for PSNR)
    # ------------------------------------------------------------------
    def ray_t_range(self) -> tuple[float, float]:
        """Default marching interval for rays in this scene."""
        if self.unbounded:
            return 0.1, 24.0
        lo, hi = self.bounds
        diag = float(np.linalg.norm(hi - lo))
        # Orbit cameras sit ~1.5 diagonals out; march across the box.
        return 0.05, 2.5 * diag

    def render_reference(
        self,
        camera: Camera,
        n_samples: int = 128,
        chunk: int = 8192,
    ) -> np.ndarray:
        """Volume-render the analytic field: the ground-truth image.

        Uses the same emission-absorption quadrature as the NeRF pipeline
        (Sec. II-B) but queries the field directly, so representation
        error is exactly the PSNR gap each pipeline shows against it.
        """
        if n_samples < 2:
            raise SceneError("need at least two samples per ray")
        origins, dirs = camera.rays()
        t0, t1 = self.ray_t_range()
        ts = np.linspace(t0, t1, n_samples)
        dt = ts[1] - ts[0]
        image = np.zeros((camera.num_pixels, 3))
        for start in range(0, camera.num_pixels, chunk):
            sl = slice(start, min(start + chunk, camera.num_pixels))
            o, d = origins[sl], dirs[sl]
            pts = o[:, None, :] + d[:, None, :] * ts[None, :, None]
            flat = pts.reshape(-1, 3)
            flat_dirs = np.repeat(d, n_samples, axis=0)
            sigma, rgb = self.density_and_color(flat, flat_dirs)
            sigma = sigma.reshape(len(o), n_samples)
            rgb = rgb.reshape(len(o), n_samples, 3)
            image[sl] = composite_along_rays(
                sigma, rgb, dt, self.background_color(d)
            )
        return image.reshape(camera.height, camera.width, 3)

    # ------------------------------------------------------------------
    # Workload statistics (drive the performance model)
    # ------------------------------------------------------------------
    def occupancy_fraction(self, rng: np.random.Generator, n_probe: int = 8192) -> float:
        """Fraction of the bounded volume that contains matter.

        Grid pipelines skip empty space; this statistic feeds the
        sample-count estimates in :mod:`repro.compile`.
        """
        lo, hi = self.bounds
        pts = rng.uniform(lo, hi, size=(n_probe, 3))
        return float(np.mean(self.density(pts) > 0.5))

    def aabb_diagonal(self) -> float:
        lo, hi = self.bounds
        return float(np.linalg.norm(hi - lo))


def composite_along_rays(
    sigma: np.ndarray,
    rgb: np.ndarray,
    dt: float | np.ndarray,
    background: np.ndarray | None = None,
) -> np.ndarray:
    """Emission-absorption compositing (the "Blending" step, Sec. II-B).

    Parameters
    ----------
    sigma:
        Densities, shape ``(rays, samples)``.
    rgb:
        Colors, shape ``(rays, samples, 3)``.
    dt:
        Step size — scalar or per-sample array broadcastable to ``sigma``.
    background:
        Optional ``(rays, 3)`` color composited behind the volume.

    Returns the blended ``(rays, 3)`` image and is shared by every volume
    pipeline in this package, which is precisely the paper's point: the
    blending step is common across pipelines.
    """
    alpha = 1.0 - np.exp(-np.maximum(sigma, 0.0) * dt)
    transmittance = np.cumprod(1.0 - alpha + 1e-10, axis=1)
    # Shift right: transmittance *before* each sample.
    transmittance = np.concatenate(
        [np.ones_like(transmittance[:, :1]), transmittance[:, :-1]], axis=1
    )
    weights = alpha * transmittance
    out = np.einsum("rs,rsc->rc", weights, rgb)
    if background is not None:
        residual = 1.0 - weights.sum(axis=1, keepdims=True)
        out = out + residual * background
    return out
