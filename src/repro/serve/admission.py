"""Admission control and load shedding for the rendering service.

Under overload a queue-everything service answers *every* request late;
an admission policy instead decides, the moment a request arrives,
whether serving it is still worth anything. The event engine hands each
policy its live projection of the request's queue wait — time until a
chip frees plus the backlog ahead of it, scaled by the observed mean
service time, and (when compilation is modelled asynchronously) at
least the remaining compile latency of the request's own trace if it is
still being compiled — and the policy returns one of three outcomes:

* **admit** — enqueue the request unchanged;
* **shed** — reject it now (the client sees a fast failure instead of a
  blown SLO); the scheduler records a :class:`ShedRecord`;
* **degrade** — admit a rewritten request on a cheaper pipeline, trading
  rendering fidelity for latency headroom.

Policies:

* ``admit-all``  — the PR-1 behavior; every request queues.
* ``tail-drop``  — shed once the pending queue exceeds a fixed depth.
* ``slo-shed``   — shed when the projected wait plus one mean service
  time already exceeds the request's SLO budget.
* ``downgrade``  — same trigger as ``slo-shed``, but first try moving
  the request to the cheapest pipeline of a configurable ladder; shed
  only when it is already at the bottom.
* ``weighted``   — multi-tenant weighted admission: the engine budgets
  the projected queue wait *per tenant share* instead of globally. A
  tenant of weight ``w`` is entitled to ``w / total_active_weight`` of
  the fleet; only the tenant's own backlog counts against that share,
  so an economy flood cannot starve a premium tenant's budget, and the
  request is held to its *effective* (tenant-scaled) SLO.

Under a fault plan (:mod:`repro.serve.faults`) the engine's projection
is *fault-aware*: down chips contribute no capacity and each surviving
chip is weighted by its learned effective speed (an EWMA of observed
straggler dilation), so a policy sheds against the fleet that actually
exists, not the one that was provisioned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import ConfigError
from repro.serve.request import RenderRequest


@dataclass(frozen=True)
class ShedRecord:
    """One request the service refused to queue."""

    request: RenderRequest
    shed_at_s: float
    reason: str
    projected_wait_s: float

    def to_dict(self) -> dict:
        return {
            "request_id": self.request.request_id,
            "pipeline": self.request.pipeline,
            "arrival_s": self.request.arrival_s,
            "slo_s": self.request.slo_s,
            "shed_at_s": self.shed_at_s,
            "reason": self.reason,
            "projected_wait_s": self.projected_wait_s,
        }


class AdmissionPolicy:
    """Admit every request (the no-op baseline)."""

    name = "admit-all"
    #: Tenant-aware policies receive a *share-normalized* projected wait:
    #: the engine budgets the queue against the tenant's weighted share
    #: of the fleet instead of the global backlog.
    tenant_aware = False
    #: Whether :meth:`admit` may return a *rewritten* request (degrade).
    #: Contract: any policy whose ``admit`` can return something other
    #: than the request it was handed (or ``None``) MUST set this to
    #: ``True`` — the engine's columnar fast path precomputes
    #: per-request pipeline columns at ingest and only accepts policies
    #: that never rewrite. Duck-typed policy objects without the
    #: attribute conservatively run on the scalar loop.
    may_degrade = False
    #: Observability mirrors (class attributes, since several subclasses
    #: never call ``super().__init__``): resolved by :meth:`bind_metrics`,
    #: ``None`` until then so the unobserved path costs nothing.
    _m_admitted = None
    _m_shed = None
    _m_degraded = None

    def bind_metrics(self, registry) -> None:
        """Resolve this policy's verdict counters in an observability
        registry (``admission.<name>.admitted`` / ``.shed`` /
        ``.degraded``)."""
        prefix = f"admission.{self.name}"
        self._m_admitted = registry.counter(f"{prefix}.admitted")
        self._m_shed = registry.counter(f"{prefix}.shed")
        self._m_degraded = registry.counter(f"{prefix}.degraded")

    def note_verdict(self, outcome: str) -> None:
        """Count one verdict ("admitted" / "shed" / "degraded"); a
        degraded request counts as admitted too — it was queued, just
        rewritten. No-op until :meth:`bind_metrics` runs."""
        if self._m_admitted is None:
            return
        if outcome == "shed":
            self._m_shed.inc()
            return
        self._m_admitted.inc()
        if outcome == "degraded":
            self._m_degraded.inc()

    def admit(
        self,
        request: RenderRequest,
        now: float,
        projected_wait_s: float,
        est_service_s: float,
        queue_depth: int,
    ) -> RenderRequest | None:
        """Return the request to enqueue (possibly rewritten) or ``None``
        to shed it."""
        return request


class TailDrop(AdmissionPolicy):
    """Classic bounded queue: shed arrivals once the queue is full."""

    name = "tail-drop"

    def __init__(self, max_queue: int = 32) -> None:
        if max_queue < 1:
            raise ConfigError("tail-drop queue bound must be >= 1")
        self.max_queue = max_queue

    def admit(self, request, now, projected_wait_s, est_service_s, queue_depth):
        if queue_depth >= self.max_queue:
            return None
        return request


class SloShed(AdmissionPolicy):
    """Shed requests whose projected completion already blows the SLO.

    ``margin`` scales the budget: 1.0 sheds exactly at the SLO, < 1.0
    sheds earlier (conservative), > 1.0 lets borderline requests try.
    """

    name = "slo-shed"

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ConfigError("slo-shed margin must be positive")
        self.margin = margin

    def admit(self, request, now, projected_wait_s, est_service_s, queue_depth):
        # Decisions are made at the request's arrival instant (the
        # scheduler passes now == arrival_s), so the budget is the SLO
        # (tenant-scaled; identity for the default tenant).
        if projected_wait_s + est_service_s > \
                request.effective_slo_s * self.margin:
            return None
        return request


#: Default fidelity ladder, priciest first. Mesh rasterization is the
#: cheapest frame in the model, so it is the degradation target.
DOWNGRADE_LADDER = ("gaussian", "hashgrid", "mesh")


class Downgrade(SloShed):
    """Degrade-to-cheaper-pipeline before shedding.

    When a request's projected wait blows its SLO budget, rewrite it to
    the cheapest pipeline of ``ladder`` (keeping scene/resolution/SLO);
    only requests already at the bottom of the ladder are shed.
    """

    name = "downgrade"
    may_degrade = True

    def __init__(
        self, margin: float = 1.0, ladder: tuple[str, ...] = DOWNGRADE_LADDER
    ) -> None:
        super().__init__(margin)
        if len(ladder) < 2:
            raise ConfigError("downgrade ladder needs at least two rungs")
        self.ladder = tuple(ladder)

    def admit(self, request, now, projected_wait_s, est_service_s, queue_depth):
        admitted = super().admit(
            request, now, projected_wait_s, est_service_s, queue_depth
        )
        if admitted is not None:
            return admitted
        cheapest = self.ladder[-1]
        if request.pipeline == cheapest or request.pipeline not in self.ladder:
            return None
        return replace(request, pipeline=cheapest, degraded=True)


class WeightedAdmission(SloShed):
    """Per-tenant-share SLO shedding (the multi-tenant QoS policy).

    The decision rule is :class:`SloShed`'s — shed when the projected
    wait plus one mean service time blows the (effective, tenant-scaled)
    SLO budget — but because ``tenant_aware`` is set, the event engine
    hands this policy a *share-normalized* projection: time until a chip
    frees, plus the tenant's **own** queued backlog divided by the slice
    of the fleet its weight entitles it to
    (``n_active_chips * weight / total_active_weight``, where the total
    runs over tenants with work pending plus the arrival's own class).
    A premium tenant with most of the weight therefore keeps admitting
    through an economy flood — the flood inflates only economy's
    projection — while each tenant still sheds once *its own* queue
    outgrows its share.
    """

    name = "weighted"
    tenant_aware = True


#: Registry of admission-policy factories (fresh state per run).
ADMISSION_POLICIES: dict[str, Callable[[], AdmissionPolicy]] = {
    "admit-all": AdmissionPolicy,
    "tail-drop": TailDrop,
    "slo-shed": SloShed,
    "downgrade": Downgrade,
    "weighted": WeightedAdmission,
}


def make_admission_policy(name: str) -> AdmissionPolicy:
    if name not in ADMISSION_POLICIES:
        raise ConfigError(
            f"unknown admission policy {name!r}; "
            f"choose from {sorted(ADMISSION_POLICIES)}"
        )
    return ADMISSION_POLICIES[name]()
