"""Persistent trace library: compile results that outlive the process.

Compiled frame traces are pure functions of their trace key, yet until
now every service run recompiled its working set from scratch — a
restarted service pays a cold-miss storm for traces it had already
compiled yesterday. The :class:`TraceLibrary` closes that gap: at
shutdown the engine flushes each resident trace's *metadata* (pipeline,
program size, simulated compile cost, lifetime demand hits) to a
versioned JSON artifact, and a later run warm-starts its
:class:`~repro.serve.trace_cache.TraceCache` from it — recompiling the
recorded keys host-side before the simulation clock starts, so the
first request of the day hits a warm cache instead of a compile queue.

Only metadata is serialized, never programs: a
:class:`~repro.core.microops.MicroOpProgram` is deterministic per key,
so the library re-derives it through ``cache.compile_fn`` at warm-start
(host wall time, zero *simulated* time — the restart happens before the
service accepts traffic). The recorded ``compile_s`` is attached to the
warmed entry, so cache hits on warm traces keep crediting
``compile_s_saved`` exactly as if this run had compiled them.

The artifact is deliberately boring: a sorted-key, indented JSON object
with a ``version`` field, entries ordered least- to most-recently used
(the warm-start insertion order, so LRU behaviour survives a restart
bit for bit), and a byte-stable ``save -> load -> save`` round trip —
the property the regression suite pins.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.errors import ConfigError
from repro.persist import atomic_write_text, locked
from repro.serve.request import TraceKey
from repro.serve.trace_cache import TraceCache

#: Artifact schema version; bump on incompatible layout changes.
LIBRARY_VERSION = 1


@dataclass(frozen=True)
class TraceRecord:
    """One compiled trace's cross-run metadata."""

    scene: str
    pipeline: str
    width: int
    height: int
    invocations: int      # compiled program size (micro-op invocations)
    pixels: int           # program output pixels
    compile_s: float      # simulated compile latency last charged
    hits: int = 0         # lifetime demand hits across recorded runs

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigError("trace record resolution must be positive")
        if self.invocations < 0 or self.pixels < 0:
            raise ConfigError("trace record program size cannot be negative")
        if self.compile_s < 0 or self.hits < 0:
            raise ConfigError("trace record counters cannot be negative")

    @property
    def key(self) -> TraceKey:
        return (self.scene, self.pipeline, self.width, self.height)

    def to_dict(self) -> dict:
        return {
            "scene": self.scene,
            "pipeline": self.pipeline,
            "width": self.width,
            "height": self.height,
            "invocations": self.invocations,
            "pixels": self.pixels,
            "compile_s": self.compile_s,
            "hits": self.hits,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceRecord":
        try:
            return cls(
                scene=str(payload["scene"]),
                pipeline=str(payload["pipeline"]),
                width=int(payload["width"]),
                height=int(payload["height"]),
                invocations=int(payload["invocations"]),
                pixels=int(payload["pixels"]),
                compile_s=float(payload["compile_s"]),
                hits=int(payload["hits"]),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise ConfigError(f"malformed trace-library entry: {err}") from err


class TraceLibrary:
    """An ordered set of :class:`TraceRecord`, least recently used first.

    The ordering *is* the persistence of LRU state: :meth:`warm` inserts
    records in list order, so the warmed cache evicts in the same order
    the donor cache would have.
    """

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self._records: "OrderedDict[TraceKey, TraceRecord]" = OrderedDict()
        for record in records:
            if record.key in self._records:
                raise ConfigError(
                    f"trace library repeats key {record.key!r}")
            self._records[record.key] = record
        # Hit counts at construction time: everything present now is
        # treated as already persisted, so a merge-on-save adds only the
        # hits *this process* accumulated on top (see :meth:`save`).
        self._baseline_hits: dict[TraceKey, int] = {
            key: record.hits for key, record in self._records.items()}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._records

    @property
    def keys(self) -> tuple[TraceKey, ...]:
        """Recorded keys, least recently used first."""
        return tuple(self._records)

    def get(self, key: TraceKey) -> Optional[TraceRecord]:
        return self._records.get(key)

    def merge_record(self, record: TraceRecord) -> None:
        """Insert or replace one record, moving it to the most-recent
        end — the adoption step of cross-region gossip replication."""
        self._records.pop(record.key, None)
        self._records[record.key] = record

    @property
    def total_hits(self) -> int:
        return sum(record.hits for record in self._records.values())

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": LIBRARY_VERSION,
            "entries": [record.to_dict()
                        for record in self._records.values()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceLibrary":
        version = payload.get("version")
        if version != LIBRARY_VERSION:
            raise ConfigError(
                f"trace library version {version!r} is not supported "
                f"(expected {LIBRARY_VERSION})"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ConfigError("trace library has no entry list")
        return cls(TraceRecord.from_dict(entry) for entry in entries)

    def dumps(self) -> str:
        """Canonical byte-stable JSON text of the library."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path, merge: bool = False) -> None:
        """Persist the library to ``path`` — atomically, always.

        The bytes are staged and renamed over the target
        (:func:`repro.persist.atomic_write_text`), so a crash mid-save
        leaves the previous artifact intact instead of a truncated one.

        ``merge=True`` additionally makes the save safe for a *shared*
        library path: under an exclusive sidecar lock the on-disk
        library is re-read and this library's **hit deltas since it was
        constructed** are folded onto the disk counters (disk-only keys
        are kept, least-recent first), so two processes that loaded the
        same artifact and saved concurrently lose neither's hits. The
        in-memory library is brought up to date with the merged result,
        which keeps repeated merge-saves idempotent. With a
        single writer ``merge=True`` writes byte-identical output to
        ``merge=False``.
        """
        if not merge:
            atomic_write_text(path, self.dumps())
            return
        with locked(path):
            disk = TraceLibrary.load(path)
            merged: "OrderedDict[TraceKey, TraceRecord]" = OrderedDict()
            for key, record in disk._records.items():
                if key not in self._records:
                    merged[key] = record
            for key, record in self._records.items():
                disk_record = disk._records.get(key)
                if disk_record is None:
                    merged[key] = record
                else:
                    delta = max(
                        record.hits - self._baseline_hits.get(key, 0), 0)
                    merged[key] = replace(
                        record, hits=disk_record.hits + delta)
            staged = TraceLibrary(merged.values())
            atomic_write_text(path, staged.dumps())
            # Only a durable write advances the baseline: if the save
            # crashes, this library still owes its deltas and a retry
            # folds them in again.
            self._records = merged
            self._baseline_hits = {
                key: rec.hits for key, rec in merged.items()}

    @classmethod
    def load(cls, path: str | Path) -> "TraceLibrary":
        """Read a library artifact; an absent file is an empty library —
        a cold start and a first start are the same thing."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            raise ConfigError(
                f"trace library {path} is not valid JSON: {err}") from err
        if not isinstance(payload, dict):
            raise ConfigError(f"trace library {path} is not a JSON object")
        return cls.from_dict(payload)

    # -- cache interchange ----------------------------------------------
    def warm(self, cache: TraceCache) -> int:
        """Warm-start ``cache`` from the recorded traces; returns how
        many entries were installed.

        Only the most recent ``cache.capacity`` records are compiled
        (the rest would be evicted on arrival), in least- to
        most-recent order so the warmed cache's LRU order matches the
        donor's. Warm installs never touch hit/miss/compile counters —
        this run did not pay for them — but each entry carries its
        recorded simulated compile cost, so later hits credit
        ``compile_s_saved``.
        """
        if cache.capacity <= 0 or not self._records:
            return 0
        records = list(self._records.values())[-cache.capacity:]
        warmed = 0
        for record in records:
            if record.key in cache:
                # A shared cache kept the trace alive across runs: no
                # recompile, and no inflated ``warmed`` counter.
                continue
            program = cache.compile_fn(record.key)
            cache.warm_start(record.key, program, sim_cost_s=record.compile_s)
            warmed += 1
        return warmed

    def absorb(self, cache: TraceCache,
               run_hits: Optional[Mapping[TraceKey, int]] = None) -> None:
        """Fold one finished run's cache back into the library.

        Resident traces are (re)recorded with their current program
        size and compile cost and move to the recent end in the cache's
        LRU order; traces known to the library but evicted during the
        run keep their stale metadata (they may warm a future, larger
        cache); traces *unknown* to the library that were hit and then
        evicted mid-run are recorded from the cache's eviction-time
        metadata — their lifetime hits must not vanish with the entry. ``run_hits`` is *this run's* per-key demand-hit counts,
        accumulated onto the lifetime counters; it defaults to the
        cache's own ``hits_by_key``, which is only correct for a cache
        that served exactly one run — callers sharing a cache across
        runs (the engine snapshots a baseline at start-up) must pass
        the delta themselves or earlier runs' hits double-count.
        """
        if run_hits is None:
            run_hits = cache.hits_by_key
        for key, hits in run_hits.items():
            record = self._records.get(key)
            if record is not None and hits:
                self._records[key] = replace(record, hits=record.hits + hits)
            elif record is None and hits and key not in cache:
                # Hit during the run, then evicted: the program is gone,
                # but the cache kept its eviction-time metadata — record
                # the trace so the hits survive into the lifetime
                # counters (and may warm a future, larger cache).
                meta = cache.evicted_meta.get(key)
                if meta is not None:
                    invocations, pixels, compile_s = meta
                    scene, pipeline, width, height = key
                    self._records[key] = TraceRecord(
                        scene=scene,
                        pipeline=pipeline,
                        width=width,
                        height=height,
                        invocations=invocations,
                        pixels=pixels,
                        compile_s=compile_s,
                        hits=hits,
                    )
        for key in cache.keys:  # least recently used first
            program = cache.peek(key)
            prior = self._records.pop(key, None)
            hits = (prior.hits if prior is not None
                    else run_hits.get(key, 0))
            scene, pipeline, width, height = key
            self._records[key] = TraceRecord(
                scene=scene,
                pipeline=pipeline,
                width=width,
                height=height,
                invocations=len(program.invocations),
                pixels=program.pixels,
                compile_s=cache.compile_cost_s(key),
                hits=hits,
            )
