"""Fault & straggler injection and request hedging for the serve engine.

Every simulated chip so far has been perfectly reliable and uniformly
fast.  Real fleets are neither: chips crash and (sometimes) come back,
individual accelerators run slow for stretches (thermal throttling,
noisy neighbours, ECC retries), and the compile tier stalls.  This
module describes all of that as data — a :class:`FaultPlan` — so a run
stays seed-deterministic: the plan is fixed before the simulation
starts and its crash/recover points are injected as first-class events
into the :class:`~repro.serve.engine.EventEngine` heap.

The plan's vocabulary:

* :class:`ChipCrash` — chip ``chip_id`` dies at ``at_s``; with
  ``down_s`` set it recovers that many seconds later, with ``down_s``
  ``None`` the loss is permanent.  In-flight work on the chip is
  re-queued (the engine charges ``rollback_s`` checkpoint-restore time
  when a re-queued frame next executes) and the autoscaler sees the
  chip as lost capacity, not an idle candidate.
* :class:`StragglerWindow` — chip ``chip_id`` runs ``factor``× slower
  for frames *starting* inside ``[start_s, end_s)``.  Overlapping
  windows multiply.
* :class:`CompileStall` — trace compilation (sync stalls and pooled
  workers alike) takes ``factor``× longer for compiles issued inside
  the window.

The recovery lever on the serving side is **request hedging**
(:class:`HedgePolicy`): once a queued request's age exceeds a
quantile-derived threshold of recently observed queue waits, the
engine duplicates it; the two copies run on distinct chips,
first-completion-wins, and the loser is cancelled (queued) or counted
as wasted duplicate work (already executed).  The report stays
exactly-once: one response per offered request, keyed to the original
request id.

A plan with no entries (``FaultPlan().empty``) is treated by the
engine exactly like no plan at all — attaching an empty plan is
byte-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.serve.request import RenderRequest


@dataclass(frozen=True)
class ChipCrash:
    """One chip loss: ``chip_id`` dies at ``at_s``; ``down_s`` seconds
    later it recovers (``None`` == permanent loss)."""

    chip_id: int
    at_s: float
    down_s: float | None = None

    def __post_init__(self) -> None:
        if self.chip_id < 0:
            raise ConfigError("crash chip_id must be >= 0")
        if self.at_s < 0:
            raise ConfigError("crash time must be >= 0")
        if self.down_s is not None and self.down_s <= 0:
            raise ConfigError("crash down_s must be positive (or None "
                              "for a permanent loss)")

    @property
    def recover_at_s(self) -> float:
        """Instant the chip is usable again (``inf`` when permanent)."""
        if self.down_s is None:
            return float("inf")
        return self.at_s + self.down_s

    def to_dict(self) -> dict:
        return {"chip_id": self.chip_id, "at_s": self.at_s,
                "down_s": self.down_s}


@dataclass(frozen=True)
class StragglerWindow:
    """Chip ``chip_id`` is ``factor``× slower for frames starting in
    ``[start_s, end_s)``."""

    chip_id: int
    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.chip_id < 0:
            raise ConfigError("straggler chip_id must be >= 0")
        if not self.end_s > self.start_s >= 0:
            raise ConfigError("straggler window needs 0 <= start < end")
        if self.factor < 1.0:
            raise ConfigError("straggler factor must be >= 1 (a chip "
                              "cannot speed up by misbehaving)")

    def to_dict(self) -> dict:
        return {"chip_id": self.chip_id, "start_s": self.start_s,
                "end_s": self.end_s, "factor": self.factor}


@dataclass(frozen=True)
class CompileStall:
    """Trace compiles issued inside ``[start_s, end_s)`` take
    ``factor``× longer."""

    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        if not self.end_s > self.start_s >= 0:
            raise ConfigError("compile stall window needs 0 <= start < end")
        if self.factor < 1.0:
            raise ConfigError("compile stall factor must be >= 1")

    def to_dict(self) -> dict:
        return {"start_s": self.start_s, "end_s": self.end_s,
                "factor": self.factor}


@dataclass(frozen=True)
class FailedRecord:
    """One admitted request the service could never complete (every
    chip permanently down before it was served)."""

    request: RenderRequest
    failed_at_s: float
    reason: str

    def to_dict(self) -> dict:
        return {
            "request_id": self.request.request_id,
            "pipeline": self.request.pipeline,
            "tenant": self.request.tenant.name,
            "arrival_s": self.request.arrival_s,
            "failed_at_s": self.failed_at_s,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class HedgePolicy:
    """Quantile-threshold request hedging.

    Once at least ``min_samples`` queue waits have been observed, a
    queued request older than ``multiplier × Q(quantile)`` of the last
    ``window`` waits is duplicated onto a second chip; the first copy
    to finish wins and the other is cancelled.
    """

    quantile: float = 0.9
    multiplier: float = 1.0
    min_samples: int = 24
    window: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ConfigError("hedge quantile must be in (0, 1)")
        if self.multiplier <= 0:
            raise ConfigError("hedge multiplier must be positive")
        if self.min_samples < 2:
            raise ConfigError("hedge min_samples must be >= 2")
        if self.window < self.min_samples:
            raise ConfigError("hedge window must be >= min_samples")

    def to_dict(self) -> dict:
        return {"quantile": self.quantile, "multiplier": self.multiplier,
                "min_samples": self.min_samples, "window": self.window}


def _crash_sort_key(crash: ChipCrash) -> tuple:
    return (crash.at_s, crash.chip_id)


class FaultPlan:
    """A deterministic chaos schedule for one serve run.

    The plan is immutable once constructed and holds no run state, so
    one plan can drive many runs (e.g. the with/without-hedging arms
    of a comparison) and every run is bit-reproducible.
    """

    __slots__ = ("crashes", "stragglers", "compile_stalls", "rollback_s",
                 "_crashes_by_chip", "_windows_by_chip")

    def __init__(
        self,
        crashes: tuple[ChipCrash, ...] | list[ChipCrash] = (),
        stragglers: tuple[StragglerWindow, ...] | list[StragglerWindow] = (),
        compile_stalls: tuple[CompileStall, ...] | list[CompileStall] = (),
        rollback_s: float = 0.0,
    ) -> None:
        if rollback_s < 0:
            raise ConfigError("rollback_s must be >= 0")
        self.crashes = tuple(sorted(crashes, key=_crash_sort_key))
        self.stragglers = tuple(
            sorted(stragglers, key=lambda w: (w.start_s, w.chip_id)))
        self.compile_stalls = tuple(
            sorted(compile_stalls, key=lambda w: w.start_s))
        self.rollback_s = float(rollback_s)

        by_chip: dict[int, list[ChipCrash]] = {}
        for crash in self.crashes:
            by_chip.setdefault(crash.chip_id, []).append(crash)
        for chip_id, chip_crashes in by_chip.items():
            for prev, nxt in zip(chip_crashes, chip_crashes[1:]):
                if prev.recover_at_s > nxt.at_s:
                    raise ConfigError(
                        f"chip {chip_id} crash windows overlap: crash at "
                        f"{prev.at_s} is still down at {nxt.at_s}")
        self._crashes_by_chip = by_chip

        windows: dict[int, list[StragglerWindow]] = {}
        for window in self.stragglers:
            windows.setdefault(window.chip_id, []).append(window)
        self._windows_by_chip = windows

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing; the engine treats an
        empty plan exactly like ``faults=None``."""
        return not (self.crashes or self.stragglers or self.compile_stalls)

    def next_crash(self, chip_id: int, after_s: float) -> ChipCrash | None:
        """First crash of ``chip_id`` strictly after ``after_s``."""
        for crash in self._crashes_by_chip.get(chip_id, ()):
            if crash.at_s > after_s:
                return crash
        return None

    def dilation(self, chip_id: int, t_s: float) -> float:
        """Service-time multiplier for a frame starting at ``t_s`` on
        ``chip_id`` (overlapping straggler windows multiply)."""
        windows = self._windows_by_chip.get(chip_id)
        if not windows:
            return 1.0
        factor = 1.0
        for window in windows:
            if window.start_s <= t_s < window.end_s:
                factor *= window.factor
        return factor

    def compile_dilation(self, t_s: float) -> float:
        """Compile-latency multiplier for a compile issued at ``t_s``."""
        factor = 1.0
        for stall in self.compile_stalls:
            if stall.start_s <= t_s < stall.end_s:
                factor *= stall.factor
        return factor

    def to_dict(self) -> dict:
        return {
            "crashes": [c.to_dict() for c in self.crashes],
            "stragglers": [w.to_dict() for w in self.stragglers],
            "compile_stalls": [w.to_dict() for w in self.compile_stalls],
            "rollback_s": self.rollback_s,
        }

    def describe(self) -> str:
        permanent = sum(1 for c in self.crashes if c.down_s is None)
        return (f"FaultPlan({len(self.crashes)} crashes "
                f"({permanent} permanent), {len(self.stragglers)} "
                f"straggler windows, {len(self.compile_stalls)} compile "
                f"stalls, rollback {self.rollback_s * 1e3:.2f} ms)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_chips: int,
        horizon_s: float,
        *,
        n_crashes: int = 1,
        recover_fraction: float = 0.75,
        n_stragglers: int = 1,
        max_dilation: float = 4.0,
        n_stalls: int = 0,
        stall_dilation: float = 4.0,
        rollback_s: float = 0.0,
    ) -> "FaultPlan":
        """Draw a random (but seed-deterministic) plan.

        Crashes land uniformly in the middle 90% of the horizon; a
        ``recover_fraction`` share of them recover after 5–30% of the
        horizon.  Per-chip crash windows that would overlap are
        dropped rather than repaired, so the draw is always valid.
        """
        if n_chips < 1:
            raise ConfigError("seeded plan needs n_chips >= 1")
        if horizon_s <= 0:
            raise ConfigError("seeded plan needs a positive horizon")
        if not 0.0 <= recover_fraction <= 1.0:
            raise ConfigError("recover_fraction must be in [0, 1]")
        if max_dilation < 1.0 or stall_dilation < 1.0:
            raise ConfigError("dilation factors must be >= 1")
        rng = np.random.default_rng(seed)

        drawn: list[ChipCrash] = []
        for _ in range(n_crashes):
            chip = int(rng.integers(0, n_chips))
            at = float(rng.uniform(0.05, 0.95)) * horizon_s
            down: float | None = None
            if float(rng.random()) < recover_fraction:
                down = float(rng.uniform(0.05, 0.30)) * horizon_s
            drawn.append(ChipCrash(chip, at, down))
        crashes: list[ChipCrash] = []
        last_end: dict[int, float] = {}
        for crash in sorted(drawn, key=_crash_sort_key):
            if crash.at_s < last_end.get(crash.chip_id, -1.0):
                continue  # would overlap the chip's previous outage
            crashes.append(crash)
            last_end[crash.chip_id] = crash.recover_at_s

        stragglers = []
        for _ in range(n_stragglers):
            chip = int(rng.integers(0, n_chips))
            a = float(rng.uniform(0.0, 0.7)) * horizon_s
            b = a + float(rng.uniform(0.1, 0.3)) * horizon_s
            factor = float(rng.uniform(1.5, max_dilation))
            stragglers.append(StragglerWindow(chip, a, b, factor))

        stalls = []
        for _ in range(n_stalls):
            a = float(rng.uniform(0.0, 0.8)) * horizon_s
            b = a + float(rng.uniform(0.05, 0.2)) * horizon_s
            stalls.append(CompileStall(a, b, stall_dilation))

        return cls(crashes, stragglers, stalls, rollback_s=rollback_s)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec.

        Two forms::

            crash=CHIP@AT[+DOWN];slow=CHIP@A-BxF;stall=A-BxF;rollback=S
            seeded:seed=S,chips=N,horizon=H[,crashes=K][,stragglers=K]
                   [,stalls=K][,rollback=S]

        Times are seconds.  ``crash=1@0.05+0.04`` kills chip 1 at
        t=0.05 s for 40 ms; omitting ``+DOWN`` makes the loss
        permanent.  ``slow=2@0.0-0.5x4`` dilates chip 2 by 4× for
        frames starting in the first half second.
        """
        spec = spec.strip()
        if not spec:
            raise ConfigError("empty --faults spec")
        if spec.startswith("seeded:"):
            return cls._parse_seeded(spec[len("seeded:"):])

        crashes: list[ChipCrash] = []
        stragglers: list[StragglerWindow] = []
        stalls: list[CompileStall] = []
        rollback = 0.0
        for raw in spec.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            try:
                key, _, value = entry.partition("=")
                if key == "crash":
                    chip, _, when = value.partition("@")
                    at, plus, down = when.partition("+")
                    crashes.append(ChipCrash(
                        int(chip), float(at),
                        float(down) if plus else None))
                elif key == "slow":
                    chip, _, window = value.partition("@")
                    span, _, factor = window.partition("x")
                    a, _, b = span.partition("-")
                    stragglers.append(StragglerWindow(
                        int(chip), float(a), float(b), float(factor)))
                elif key == "stall":
                    span, _, factor = value.partition("x")
                    a, _, b = span.partition("-")
                    stalls.append(CompileStall(
                        float(a), float(b), float(factor)))
                elif key == "rollback":
                    rollback = float(value)
                else:
                    raise ConfigError(
                        f"unknown fault entry {key!r} (expected crash=, "
                        f"slow=, stall=, or rollback=)")
            except (ValueError, TypeError) as exc:
                raise ConfigError(
                    f"malformed fault entry {entry!r}: {exc}") from exc
        return cls(crashes, stragglers, stalls, rollback_s=rollback)

    @classmethod
    def _parse_seeded(cls, body: str) -> "FaultPlan":
        keys = {"seed": 0, "chips": None, "horizon": None, "crashes": 1,
                "stragglers": 1, "stalls": 0, "rollback": 0.0}
        for raw in body.split(","):
            entry = raw.strip()
            if not entry:
                continue
            key, eq, value = entry.partition("=")
            if not eq or key not in keys:
                raise ConfigError(
                    f"unknown seeded fault key {key!r} (expected one of "
                    f"{sorted(keys)})")
            try:
                keys[key] = float(value) if key in ("horizon", "rollback") \
                    else int(value)
            except ValueError as exc:
                raise ConfigError(
                    f"malformed seeded fault entry {entry!r}") from exc
        if keys["chips"] is None or keys["horizon"] is None:
            raise ConfigError(
                "seeded fault spec needs chips= and horizon=")
        return cls.seeded(
            keys["seed"], keys["chips"], keys["horizon"],
            n_crashes=keys["crashes"], n_stragglers=keys["stragglers"],
            n_stalls=keys["stalls"], rollback_s=keys["rollback"])


def resolve_faults(faults: "FaultPlan | None") -> "FaultPlan | None":
    """Normalize an attached-but-empty plan to ``None`` so the engine's
    fault-free fast path (and its byte-identical reports) is taken."""
    if faults is None or faults.empty:
        return None
    return faults


def resolve_hedge(hedge: "HedgePolicy | bool | None") -> "HedgePolicy | None":
    """Accept ``True`` (default policy), a policy, or falsy."""
    if hedge is None or hedge is False:
        return None
    if hedge is True:
        return HedgePolicy()
    return hedge
