"""Keyed LRU cache of compiled micro-op programs.

Compiling a frame (``compile_program``) renders probe frames to measure
scene coefficients — milliseconds to seconds of work — while the
compiled :class:`~repro.core.microops.MicroOpProgram` for a given
(scene, pipeline, width, height) never changes. The service therefore
keeps traces in an LRU cache so repeated requests skip compilation
entirely; the hit/miss/eviction counters feed the serving report.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.core.microops import MicroOpProgram
from repro.errors import ConfigError
from repro.serve.request import TraceKey


def _default_compile(key: TraceKey) -> MicroOpProgram:
    from repro.compile import compile_program

    return compile_program(*key)


@dataclass
class CacheStats:
    """Counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_s: float = 0.0        # wall time spent compiling on misses
    compile_s_saved: float = 0.0  # compile time avoided by hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "compile_s": self.compile_s,
            "compile_s_saved": self.compile_s_saved,
        }


class TraceCache:
    """LRU cache of compiled frame programs, keyed by trace key.

    ``capacity`` is the number of resident programs; 0 disables caching
    (every lookup compiles), which the policy-comparison experiments use
    as a baseline. ``compile_fn`` is injectable for tests.
    """

    def __init__(
        self,
        capacity: int = 64,
        compile_fn: Callable[[TraceKey], MicroOpProgram] = _default_compile,
    ) -> None:
        if capacity < 0:
            raise ConfigError("cache capacity cannot be negative")
        self.capacity = capacity
        self.compile_fn = compile_fn
        self.stats = CacheStats()
        self._entries: "OrderedDict[TraceKey, MicroOpProgram]" = OrderedDict()
        self._compile_cost_s: dict[TraceKey, float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._entries

    @property
    def keys(self) -> tuple[TraceKey, ...]:
        """Resident keys, least recently used first."""
        return tuple(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: TraceKey) -> tuple[MicroOpProgram, bool]:
        """Return ``(program, cache_hit)``, compiling on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.compile_s_saved += self._compile_cost_s.get(key, 0.0)
            return self._entries[key], True

        began = time.perf_counter()
        program = self.compile_fn(key)
        cost = time.perf_counter() - began
        self.stats.misses += 1
        self.stats.compile_s += cost
        self._compile_cost_s[key] = cost
        if self.capacity > 0:
            self._entries[key] = program
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._compile_cost_s.pop(evicted, None)
                self.stats.evictions += 1
        return program, False

    def clear(self) -> None:
        """Drop entries and cost records; counters are kept."""
        self._entries.clear()
        self._compile_cost_s.clear()
