"""Keyed LRU cache of compiled micro-op programs.

Compiling a frame (``compile_program``) renders probe frames to measure
scene coefficients — milliseconds to seconds of work — while the
compiled :class:`~repro.core.microops.MicroOpProgram` for a given
(scene, pipeline, width, height) never changes. The service therefore
keeps traces in an LRU cache so repeated requests skip compilation
entirely; the hit/miss/eviction counters feed the serving report.

Compile *cost* is two numbers with different jobs:

* ``compile_s`` — **simulated** compile latency, charged by a
  deterministic :class:`~repro.core.config.CompileLatencyModel` from
  the compiled program's size. This is the report-facing figure: the
  same seed always prices the same, so ServiceReports are
  byte-identical across runs.
* ``compile_wall_s`` — host wall-clock time actually spent inside
  ``compile_fn``. Pure diagnostic (how expensive was this run to
  simulate); deliberately excluded from :meth:`CacheStats.to_dict`.

The synchronous serving path compiles inside :meth:`TraceCache.get`;
the event engine (:mod:`repro.serve.engine`) instead compiles through
a worker pool and lands finished programs with :meth:`TraceCache.insert`,
using :meth:`TraceCache.lookup` for demand lookups.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.config import CompileLatencyModel
from repro.core.microops import MicroOpProgram
from repro.errors import ConfigError
from repro.serve.request import TraceKey


def _default_compile(key: TraceKey) -> MicroOpProgram:
    from repro.compile import compile_program

    return compile_program(*key)


@dataclass
class CacheStats:
    """Counters of one cache's lifetime.

    All fields in :meth:`to_dict` are deterministic (simulated-time)
    quantities; ``compile_wall_s`` is the wall-clock diagnostic and is
    kept out of the report payload on purpose.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    warmed: int = 0               # entries installed by a library warm-start
    compile_s: float = 0.0        # simulated compile latency charged
    compile_s_saved: float = 0.0  # simulated compile latency avoided by hits
    compile_wall_s: float = 0.0   # host wall time spent compiling (diagnostic)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "warmed": self.warmed,
            "hit_rate": self.hit_rate,
            "compile_s": self.compile_s,
            "compile_s_saved": self.compile_s_saved,
        }


class TraceCache:
    """LRU cache of compiled frame programs, keyed by trace key.

    ``capacity`` is the number of resident programs; 0 disables caching
    (every lookup compiles), which the policy-comparison experiments use
    as a baseline. ``compile_fn`` is injectable for tests.
    ``latency_model`` prices each compile in simulated time; ``None``
    keeps compilation invisible to the simulation clock (the legacy
    synchronous baseline) while still compiling on demand.
    """

    def __init__(
        self,
        capacity: int = 64,
        compile_fn: Callable[[TraceKey], MicroOpProgram] = _default_compile,
        latency_model: Optional[CompileLatencyModel] = None,
    ) -> None:
        if capacity < 0:
            raise ConfigError("cache capacity cannot be negative")
        self.capacity = capacity
        self.compile_fn = compile_fn
        self.latency_model = latency_model
        self.stats = CacheStats()
        self._entries: "OrderedDict[TraceKey, MicroOpProgram]" = OrderedDict()
        self._compile_cost_s: dict[TraceKey, float] = {}
        #: Demand hits per key over this cache's lifetime — the signal
        #: the persistent trace library accumulates across runs.
        self.hits_by_key: dict[TraceKey, int] = {}
        #: Metadata of evicted entries, ``key -> (invocations, pixels,
        #: compile_s)`` captured the moment the entry left the cache.
        #: Without it a trace that was hit and then evicted mid-run has
        #: no program to describe it at absorb time and its lifetime
        #: hits would vanish from the library. Overwritten on
        #: re-eviction, cleared when the key is re-admitted.
        self.evicted_meta: dict[TraceKey, tuple[int, int, float]] = {}
        # Observability mirrors, resolved once by bind_metrics(); None
        # keeps the unobserved hot path at a single pointer check.
        self._m_hits = None
        self._m_misses = None
        self._m_evictions = None
        self._m_warmed = None
        #: Optional eviction listener, called with each evicted key the
        #: moment it leaves the cache. The event engine uses it to drop
        #: per-chip price-memo rows whose trace may be recompiled later
        #: (a recompile must re-price through the cost table, never ride
        #: a row memoized for the evicted program).
        self.on_evict: Optional[Callable[[TraceKey], None]] = None

    def bind_metrics(self, registry) -> None:
        """Mirror hit/miss/eviction/warm counters into an observability
        registry (see :mod:`repro.obs.metrics`). Idempotent; binding
        must happen before any warm start so ``cache.warmed`` counts
        library installs too."""
        self._m_hits = registry.counter("cache.hits")
        self._m_misses = registry.counter("cache.misses")
        self._m_evictions = registry.counter("cache.evictions")
        self._m_warmed = registry.counter("cache.warmed")

    def unbind_metrics(self) -> None:
        """Detach the live metric mirrors (registry counters survive).

        The columnar engine defers observability to a replay pass: it
        unbinds the mirrors so the hot loop pays no per-access metric
        increments, then replays the recorded hit/miss/eviction deltas
        into the registry counters in scalar order at finalize."""
        self._m_hits = None
        self._m_misses = None
        self._m_evictions = None
        self._m_warmed = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: TraceKey) -> bool:
        return key in self._entries

    @property
    def keys(self) -> tuple[TraceKey, ...]:
        """Resident keys, least recently used first."""
        return tuple(self._entries)

    def compile_cost_s(self, key: TraceKey) -> float:
        """Simulated compile latency last charged for ``key`` (0 unknown)."""
        return self._compile_cost_s.get(key, 0.0)

    # ------------------------------------------------------------------
    def get(self, key: TraceKey) -> tuple[MicroOpProgram, bool]:
        """Return ``(program, cache_hit)``, compiling on a miss.

        The synchronous path: a miss compiles inline (wall time now,
        simulated cost per the latency model) and inserts the program.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            self.hits_by_key[key] = self.hits_by_key.get(key, 0) + 1
            self.stats.compile_s_saved += self._compile_cost_s.get(key, 0.0)
            return self._entries[key], True

        began = time.perf_counter()
        program = self.compile_fn(key)
        wall = time.perf_counter() - began
        sim = (self.latency_model.latency_s(program)
               if self.latency_model is not None else 0.0)
        self.stats.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        self._account_compile(key, sim, wall)
        self._admit(key, program)
        return program, False

    def get_many(
        self, keys: Sequence[TraceKey]
    ) -> list[tuple[MicroOpProgram, bool, float, int]]:
        """Resolve a window of keys in one pass; byte-identical to
        calling :meth:`get` for each key in order.

        Returns one ``(program, cache_hit, cost_s, n_evicted)`` tuple
        per key: ``cost_s`` is the simulated compile latency charged (on
        a miss) or credited to ``compile_s_saved`` (on a hit), and
        ``n_evicted`` the number of evictions that miss triggered — the
        columnar engine replays both into the observability registry.

        Hits defer their LRU ``move_to_end`` into a pending-touch set so
        a key hit k times in a window costs one reorder, not k. The set
        is flushed (in last-hit order) before any miss admits, which is
        exactly the LRU order repeated ``get`` calls would have produced
        at that point — so eviction victims, stats, and final cache
        order all match the looped path.
        """
        entries = self._entries
        stats = self.stats
        hits_by_key = self.hits_by_key
        cost_of = self._compile_cost_s
        pending_touch: dict[TraceKey, bool] = {}
        out: list[tuple[MicroOpProgram, bool, float, int]] = []
        for key in keys:
            if key in entries:
                if key in pending_touch:
                    del pending_touch[key]
                pending_touch[key] = True
                stats.hits += 1
                if self._m_hits is not None:
                    self._m_hits.inc()
                hits_by_key[key] = hits_by_key.get(key, 0) + 1
                cost = cost_of.get(key, 0.0)
                stats.compile_s_saved += cost
                out.append((entries[key], True, cost, 0))
                continue
            # Miss: restore true LRU order before the admit can evict.
            if pending_touch:
                for touched in pending_touch:
                    entries.move_to_end(touched)
                pending_touch.clear()
            began = time.perf_counter()
            program = self.compile_fn(key)
            wall = time.perf_counter() - began
            sim = (self.latency_model.latency_s(program)
                   if self.latency_model is not None else 0.0)
            stats.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
            self._account_compile(key, sim, wall)
            evictions_before = stats.evictions
            self._admit(key, program)
            out.append((program, False, sim, stats.evictions - evictions_before))
        if pending_touch:
            for touched in pending_touch:
                entries.move_to_end(touched)
        return out

    # -- event-engine path ---------------------------------------------
    def lookup(self, key: TraceKey) -> Optional[MicroOpProgram]:
        """Demand lookup without compiling: hit returns the program and
        refreshes LRU order; a miss only counts (the caller decides how
        the program gets compiled — worker pool, prefetch, or join)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            self.hits_by_key[key] = self.hits_by_key.get(key, 0) + 1
            self.stats.compile_s_saved += self._compile_cost_s.get(key, 0.0)
            return self._entries[key]
        self.stats.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        return None

    def insert(
        self,
        key: TraceKey,
        program: MicroOpProgram,
        sim_cost_s: float = 0.0,
        wall_cost_s: float = 0.0,
    ) -> None:
        """Land a program compiled elsewhere (worker pool or prefetch)."""
        self._account_compile(key, sim_cost_s, wall_cost_s)
        self._admit(key, program)

    def warm_start(
        self,
        key: TraceKey,
        program: MicroOpProgram,
        sim_cost_s: float = 0.0,
    ) -> None:
        """Install a trace recorded by a previous run's library.

        Unlike :meth:`insert`, nothing is charged to this run's compile
        counters — the compile was paid for in the run that recorded the
        trace — but the entry carries its recorded simulated cost so
        later hits still credit ``compile_s_saved``. Warm installs are
        tallied separately in :attr:`CacheStats.warmed`.
        """
        self._compile_cost_s[key] = sim_cost_s
        self.stats.warmed += 1
        if self._m_warmed is not None:
            self._m_warmed.inc()
        self._admit(key, program)

    def touch(self, key: TraceKey) -> None:
        """Refresh LRU order without stats (execution-time access)."""
        if key in self._entries:
            self._entries.move_to_end(key)

    def peek(self, key: TraceKey) -> Optional[MicroOpProgram]:
        """Read a resident program without stats or LRU effects."""
        return self._entries.get(key)

    # ------------------------------------------------------------------
    def _account_compile(self, key: TraceKey, sim: float, wall: float) -> None:
        self.stats.compile_s += sim
        self.stats.compile_wall_s += wall
        self._compile_cost_s[key] = sim

    def _admit(self, key: TraceKey, program: MicroOpProgram) -> None:
        if self.capacity > 0:
            self._entries[key] = program
            self.evicted_meta.pop(key, None)
            while len(self._entries) > self.capacity:
                evicted, victim = self._entries.popitem(last=False)
                cost = self._compile_cost_s.pop(evicted, 0.0)
                self.evicted_meta[evicted] = (
                    len(victim.invocations), victim.pixels, cost)
                self.stats.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
                if self.on_evict is not None:
                    self.on_evict(evicted)

    def clear(self) -> None:
        """Drop entries and cost records; counters are kept."""
        self._entries.clear()
        self._compile_cost_s.clear()
