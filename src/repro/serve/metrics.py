"""Service-level objectives and fleet metrics.

The serving counterpart of :mod:`repro.metrics`: where the paper scores
single frames (FPS, energy/frame), a service is scored on throughput,
tail latency, SLO attainment, fleet utilization, and energy per request
— the low-level + application view of RZBENCH-style benchmarking.

With elastic serving the report also carries the economics: every chip
accrues provisioned cost (chip-seconds weighted by its design point's
:attr:`~repro.core.config.AcceleratorConfig.chip_cost_rate`) from the
moment it joins the fleet to retirement, requests refused by admission
control are listed in ``shed``, and the autoscaler's actions form a
fleet-size timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.serve.admission import ShedRecord
from repro.serve.autoscaler import FleetEvent
from repro.serve.cluster import ChipState
from repro.serve.request import RenderResponse


def latency_percentile(latencies_s: list[float] | np.ndarray, q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    if len(latencies_s) == 0:
        raise SimulationError("no latencies to summarize")
    return float(np.percentile(np.asarray(latencies_s, dtype=float), q))


@dataclass
class ServiceReport:
    """Everything one service simulation produced."""

    policy: str
    responses: list[RenderResponse]
    chips: list[ChipState]
    cache_stats: dict
    batch_sizes: list[int] = field(default_factory=list)
    shed: list[ShedRecord] = field(default_factory=list)
    fleet_events: list[FleetEvent] = field(default_factory=list)
    admission_policy: str | None = None
    autoscaled: bool = False
    compile_stats: dict = field(default_factory=dict)
    prefetch_stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.responses:
            raise SimulationError("service completed no requests")

    # -- time span ------------------------------------------------------
    @property
    def first_arrival_s(self) -> float:
        return min(r.request.arrival_s for r in self.responses)

    @property
    def end_s(self) -> float:
        """Absolute time of the last completion (the cost horizon)."""
        return max(r.finish_s for r in self.responses)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        return self.end_s - self.first_arrival_s

    # -- headline service metrics --------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.responses)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.makespan_s

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.responses])

    @property
    def queue_waits_s(self) -> np.ndarray:
        """Arrival-to-chip-start wait of every completed request."""
        return np.array([r.queue_s for r in self.responses])

    @property
    def mean_queue_s(self) -> float:
        """Mean queue wait — the headline compile-overlap metric."""
        return float(np.mean(self.queue_waits_s))

    def latency_p(self, q: float) -> float:
        return latency_percentile(self.latencies_s, q)

    @property
    def slo_attainment(self) -> float:
        """Fraction of *completed* requests finishing within their SLO."""
        return sum(r.slo_met for r in self.responses) / self.n_requests

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_stats.get("hit_rate", 0.0)

    # -- admission metrics ----------------------------------------------
    @property
    def n_shed(self) -> int:
        return len(self.shed)

    @property
    def n_offered(self) -> int:
        """Requests that arrived, whether or not they were admitted."""
        return self.n_requests + self.n_shed

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_offered

    @property
    def n_degraded(self) -> int:
        return sum(1 for r in self.responses if r.request.degraded)

    @property
    def goodput_slo_attainment(self) -> float:
        """SLO attainment over *offered* traffic: sheds count as misses,
        so an admission policy cannot look good by refusing everything."""
        return sum(r.slo_met for r in self.responses) / self.n_offered

    # -- fleet metrics --------------------------------------------------
    @property
    def utilizations(self) -> dict[int, float]:
        """Per-chip busy fraction of its provisioned lifetime."""
        return {c.chip_id: c.utilization(self.end_s) for c in self.chips}

    @property
    def mean_utilization(self) -> float:
        values = list(self.utilizations.values())
        return sum(values) / len(values)

    @property
    def total_switch_cycles(self) -> float:
        return sum(c.switch_cycles for c in self.chips)

    @property
    def total_frame_reconfig_cycles(self) -> float:
        return sum(c.frame_reconfig_cycles for c in self.chips)

    @property
    def total_reconfig_cycles(self) -> float:
        return self.total_switch_cycles + self.total_frame_reconfig_cycles

    @property
    def energy_per_request_j(self) -> float:
        return sum(r.energy_j for r in self.responses) / self.n_requests

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 1.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    # -- fleet economics -------------------------------------------------
    @property
    def total_chip_seconds(self) -> float:
        """Provisioned chip-seconds: join-to-retirement per chip."""
        return sum(c.alive_s(self.end_s) for c in self.chips)

    @property
    def total_cost_units(self) -> float:
        """Provisioned cost: chip-seconds weighted by per-chip rates."""
        return sum(c.cost_units(self.end_s) for c in self.chips)

    @property
    def cost_by_config(self) -> dict[str, dict]:
        """Per-design-point breakdown of the heterogeneous fleet."""
        horizon = self.end_s
        out: dict[str, dict] = {}
        for chip in self.chips:
            entry = out.setdefault(chip.config.label, {
                "chips": 0,
                "requests_served": 0,
                "chip_seconds": 0.0,
                "cost_units": 0.0,
                "energy_j": 0.0,
            })
            entry["chips"] += 1
            entry["requests_served"] += chip.requests_served
            entry["chip_seconds"] += chip.alive_s(horizon)
            entry["cost_units"] += chip.cost_units(horizon)
            entry["energy_j"] += chip.energy_j
        return out

    @property
    def fleet_size_timeline(self) -> list[tuple[float, int]]:
        """(time, active chips) steps, starting at the initial fleet."""
        autoscaled_ids = {e.chip_id for e in self.fleet_events
                          if e.action == "add"}
        initial = sum(1 for c in self.chips if c.chip_id not in autoscaled_ids)
        timeline = [(0.0, initial)]
        for event in self.fleet_events:
            timeline.append((event.t_s, event.n_active))
        return timeline

    @property
    def peak_fleet_size(self) -> int:
        return max(n for _, n in self.fleet_size_timeline)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "admission_policy": self.admission_policy,
            "autoscaled": self.autoscaled,
            "n_requests": self.n_requests,
            "n_offered": self.n_offered,
            "n_shed": self.n_shed,
            "n_degraded": self.n_degraded,
            "shed_rate": self.shed_rate,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "mean_queue_ms": self.mean_queue_s * 1e3,
            "latency_p50_ms": self.latency_p(50) * 1e3,
            "latency_p95_ms": self.latency_p(95) * 1e3,
            "latency_p99_ms": self.latency_p(99) * 1e3,
            "slo_attainment": self.slo_attainment,
            "goodput_slo_attainment": self.goodput_slo_attainment,
            "cache": dict(self.cache_stats),
            "mean_batch_size": self.mean_batch_size,
            "mean_utilization": self.mean_utilization,
            "utilizations": self.utilizations,
            "total_switch_cycles": self.total_switch_cycles,
            "total_frame_reconfig_cycles": self.total_frame_reconfig_cycles,
            "total_reconfig_cycles": self.total_reconfig_cycles,
            "energy_per_request_j": self.energy_per_request_j,
            "total_chip_seconds": self.total_chip_seconds,
            "total_cost_units": self.total_cost_units,
            "cost_by_config": self.cost_by_config,
            "peak_fleet_size": self.peak_fleet_size,
            "fleet_size_timeline": self.fleet_size_timeline,
            "fleet_events": [e.to_dict() for e in self.fleet_events],
            "shed": [s.to_dict() for s in self.shed],
            "chips": [c.to_dict(self.end_s) for c in self.chips],
            "compile": dict(self.compile_stats),
            "prefetch": dict(self.prefetch_stats),
        }


def format_service_report(report: ServiceReport) -> str:
    """Human-readable serving summary (the `repro serve` output)."""
    from repro.analysis.tables import format_table

    admission = report.admission_policy or "admit-all"
    lines = [
        f"policy={report.policy}  admission={admission}  "
        f"chips={len(report.chips)}"
        + (f" (peak {report.peak_fleet_size} active)" if report.autoscaled else "")
        + f"  requests={report.n_requests}/{report.n_offered}"
        f"  makespan={report.makespan_s * 1e3:.1f} ms",
        "",
        f"throughput        {report.throughput_rps:10.1f} req/s",
        f"latency p50       {report.latency_p(50) * 1e3:10.2f} ms",
        f"latency p95       {report.latency_p(95) * 1e3:10.2f} ms",
        f"latency p99       {report.latency_p(99) * 1e3:10.2f} ms",
        f"SLO attainment    {report.slo_attainment * 100:10.1f} %",
        f"goodput (offered) {report.goodput_slo_attainment * 100:10.1f} %",
        f"shed / degraded   {report.n_shed:10d} / {report.n_degraded} requests",
        f"cache hit rate    {report.cache_hit_rate * 100:10.1f} %",
        f"mean queue wait   {report.mean_queue_s * 1e3:10.2f} ms",
        f"mean batch size   {report.mean_batch_size:10.2f}",
        f"energy/request    {report.energy_per_request_j * 1e3:10.2f} mJ",
        f"chip-seconds      {report.total_chip_seconds:10.3f} s "
        f"({report.total_cost_units:.3f} cost units)",
        f"reconfig cycles   {report.total_reconfig_cycles:10.0f} "
        f"(switch {report.total_switch_cycles:.0f} "
        f"+ in-frame {report.total_frame_reconfig_cycles:.0f})",
    ]
    if report.compile_stats:
        c = report.compile_stats
        lines.append(
            f"compile workers   {c.get('workers', 0):10d} "
            f"({c.get('demand_jobs', 0)} demand + "
            f"{c.get('prefetch_jobs', 0)} prefetch jobs, "
            f"{c.get('busy_s', 0.0) * 1e3:.1f} ms busy)"
        )
    if report.prefetch_stats:
        p = report.prefetch_stats
        lines.append(
            f"prefetch accuracy {p.get('accuracy', 0.0) * 100:10.1f} % "
            f"({p.get('hits', 0)} of {p.get('issued', 0)} issued, "
            f"{p.get('waste', 0)} wasted)"
        )
    lines.append("")
    rows = []
    for chip in report.chips:
        lifecycle = "active"
        if chip.retired_at_s is not None:
            lifecycle = f"retired @{chip.retired_at_s * 1e3:.0f}ms"
        elif chip.added_at_s > 0:
            lifecycle = f"added @{chip.added_at_s * 1e3:.0f}ms"
        rows.append([
            chip.chip_id,
            chip.config.label,
            chip.requests_served,
            f"{chip.utilization(report.end_s) * 100:.1f}%",
            chip.pipeline_switches,
            f"{chip.cost_units(report.end_s):.3f}",
            f"{chip.energy_j:.3f}",
            lifecycle,
        ])
    lines.append(format_table(
        ["chip", "config", "served", "util", "switches", "cost", "energy J",
         "lifecycle"],
        rows,
    ))
    if report.fleet_events:
        steps = "  ".join(
            f"{t * 1e3:.0f}ms:{n}" for t, n in report.fleet_size_timeline
        )
        lines.append("")
        lines.append(f"fleet size timeline: {steps}")
    return "\n".join(lines)
