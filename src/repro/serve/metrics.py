"""Service-level objectives and fleet metrics.

The serving counterpart of :mod:`repro.metrics`: where the paper scores
single frames (FPS, energy/frame), a service is scored on throughput,
tail latency, SLO attainment, fleet utilization, and energy per request
— the low-level + application view of RZBENCH-style benchmarking.

With elastic serving the report also carries the economics: every chip
accrues provisioned cost (chip-seconds weighted by its design point's
:attr:`~repro.core.config.AcceleratorConfig.chip_cost_rate`) from the
moment it joins the fleet to retirement, requests refused by admission
control are listed in ``shed``, and the autoscaler's actions form a
fleet-size timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.serve.admission import ShedRecord
from repro.serve.autoscaler import FleetEvent
from repro.serve.cluster import ChipState
from repro.serve.faults import FailedRecord
from repro.serve.request import RenderResponse


def latency_percentile(latencies_s: list[float] | np.ndarray, q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    if len(latencies_s) == 0:
        raise SimulationError("no latencies to summarize")
    return float(np.percentile(np.asarray(latencies_s, dtype=float), q))


@dataclass
class ServiceReport:
    """Everything one service simulation produced."""

    policy: str
    responses: list[RenderResponse]
    chips: list[ChipState]
    cache_stats: dict
    batch_sizes: list[int] = field(default_factory=list)
    shed: list[ShedRecord] = field(default_factory=list)
    fleet_events: list[FleetEvent] = field(default_factory=list)
    admission_policy: str | None = None
    autoscaled: bool = False
    compile_stats: dict = field(default_factory=dict)
    prefetch_stats: dict = field(default_factory=dict)
    preempt_enabled: bool = False
    n_preemption_events: int = 0  # displacement events (batches, not requests)
    # Chaos accounting: requests stranded by an unrecoverable fleet
    # loss, plus the engine's fault/hedging counters ({} on clean runs).
    failed: list[FailedRecord] = field(default_factory=list)
    fault_stats: dict = field(default_factory=dict)
    hedge_stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.responses:
            raise SimulationError("service completed no requests")

    # -- time span ------------------------------------------------------
    @property
    def first_arrival_s(self) -> float:
        return min(r.request.arrival_s for r in self.responses)

    @property
    def end_s(self) -> float:
        """Absolute time of the last completion (the cost horizon)."""
        return max(r.finish_s for r in self.responses)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        return self.end_s - self.first_arrival_s

    # -- headline service metrics --------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.responses)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.makespan_s

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.responses])

    @property
    def queue_waits_s(self) -> np.ndarray:
        """Arrival-to-chip-start wait of every completed request."""
        return np.array([r.queue_s for r in self.responses])

    @property
    def mean_queue_s(self) -> float:
        """Mean queue wait — the headline compile-overlap metric."""
        return float(np.mean(self.queue_waits_s))

    def latency_p(self, q: float) -> float:
        return latency_percentile(self.latencies_s, q)

    @property
    def slo_attainment(self) -> float:
        """Fraction of *completed* requests finishing within their SLO."""
        return sum(r.slo_met for r in self.responses) / self.n_requests

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_stats.get("hit_rate", 0.0)

    # -- admission metrics ----------------------------------------------
    @property
    def n_shed(self) -> int:
        return len(self.shed)

    @property
    def n_failed(self) -> int:
        """Admitted requests lost to an unrecoverable fleet failure."""
        return len(self.failed)

    @property
    def n_offered(self) -> int:
        """Requests that arrived, whether or not they were admitted.

        Conservation: ``n_offered == n_requests + n_shed + n_failed`` —
        every arrival completes, is refused at admission, or is lost to
        an unrecoverable fleet failure. Nothing else can happen to it.
        """
        return self.n_requests + self.n_shed + self.n_failed

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_offered

    @property
    def n_degraded(self) -> int:
        return sum(1 for r in self.responses if r.request.degraded)

    @property
    def goodput_slo_attainment(self) -> float:
        """SLO attainment over *offered* traffic: sheds count as misses,
        so an admission policy cannot look good by refusing everything."""
        return sum(r.slo_met for r in self.responses) / self.n_offered

    # -- multi-tenant QoS metrics ---------------------------------------
    @property
    def n_preempted(self) -> int:
        """Completed requests that were displaced at least once."""
        return sum(1 for r in self.responses if r.preemptions > 0)

    @property
    def total_preemptions(self) -> int:
        """Displacements summed over requests (one request may be
        displaced more than once)."""
        return sum(r.preemptions for r in self.responses)

    @property
    def n_migrated(self) -> int:
        """Displaced requests that completed on a different chip than
        the one they were displaced from — under an autoscaler that
        includes chips warmed after the displacement."""
        return sum(1 for r in self.responses if r.migrated)

    # -- chaos metrics ---------------------------------------------------
    @property
    def n_requeued(self) -> int:
        """Completed requests that survived at least one chip crash."""
        return sum(1 for r in self.responses if r.requeues > 0)

    @property
    def n_hedge_won(self) -> int:
        """Completed requests whose response came from the hedged
        duplicate rather than the primary dispatch."""
        return sum(1 for r in self.responses if r.hedged)

    @property
    def fleet_availability(self) -> float:
        """Mean per-chip availability (up fraction of provisioned life):
        1.0 on a fault-free run."""
        horizon = self.end_s
        values = [c.availability(horizon) for c in self.chips]
        return sum(values) / len(values)

    @property
    def mtbf_s(self) -> float | None:
        """Mean time between failures: fleet up-time per crash (None
        when nothing ever crashed)."""
        n_crashes = sum(c.n_crashes for c in self.chips)
        if n_crashes == 0:
            return None
        horizon = self.end_s
        up_s = sum(c.alive_s(horizon) - c.down_total_s(horizon)
                   for c in self.chips)
        return up_s / n_crashes

    def tenant_report(self) -> dict[str, dict]:
        """Per-tenant-class service metrics (the QoS scoreboard)."""
        by_tenant: dict[str, dict] = {}

        def entry(tenant) -> dict:
            e = by_tenant.get(tenant.name)
            if e is None:
                e = by_tenant[tenant.name] = {
                    "tier": tenant.tier,
                    "weight": tenant.weight,
                    "slo_multiplier": tenant.slo_multiplier,
                    "n_requests": 0,
                    "n_shed": 0,
                    "n_degraded": 0,
                    "n_preempted": 0,
                    "preemptions": 0,
                    "n_migrated": 0,
                    "slo_met": 0,
                    "service_s": 0.0,
                    "_latencies": [],
                }
            return e

        for r in self.responses:
            e = entry(r.request.tenant)
            e["n_requests"] += 1
            e["n_degraded"] += r.request.degraded
            e["n_preempted"] += r.preemptions > 0
            e["preemptions"] += r.preemptions
            e["n_migrated"] += r.migrated
            e["slo_met"] += r.slo_met
            e["service_s"] += r.service_s
            e["_latencies"].append(r.latency_s)
        for s in self.shed:
            entry(s.request.tenant)["n_shed"] += 1

        for e in by_tenant.values():
            latencies = e.pop("_latencies")
            n = e["n_requests"]
            e["n_offered"] = n + e["n_shed"]
            e["shed_rate"] = e["n_shed"] / e["n_offered"]
            if latencies:
                e["latency_p50_ms"] = latency_percentile(latencies, 50) * 1e3
                e["latency_p95_ms"] = latency_percentile(latencies, 95) * 1e3
                e["latency_p99_ms"] = latency_percentile(latencies, 99) * 1e3
                e["slo_attainment"] = e["slo_met"] / n
            else:
                e["latency_p50_ms"] = e["latency_p95_ms"] = \
                    e["latency_p99_ms"] = float("nan")
                e["slo_attainment"] = 0.0
            e["goodput_slo_attainment"] = e["slo_met"] / e["n_offered"]
        # Present most premium tier first, deterministic within a tier.
        return dict(sorted(by_tenant.items(),
                           key=lambda kv: (kv[1]["tier"], kv[0])))

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over weight-normalized delivered service.

        Each tenant's allocation is the chip-seconds of service it
        actually received divided by its weight; Jain's index
        ``(sum x)^2 / (n * sum x^2)`` is 1.0 when every tenant got
        service exactly proportional to its weight and approaches
        ``1/n`` as one tenant monopolizes the fleet. Shed traffic shows
        up as the shed tenant's allocation shrinking.
        """
        allocations: dict[str, float] = {}
        weights: dict[str, float] = {}
        for r in self.responses:
            t = r.request.tenant
            allocations[t.name] = allocations.get(t.name, 0.0) + r.service_s
            weights[t.name] = t.weight
        for s in self.shed:
            t = s.request.tenant
            allocations.setdefault(t.name, 0.0)
            weights.setdefault(t.name, t.weight)
        shares = [allocations[name] / weights[name] for name in allocations]
        if len(shares) <= 1:
            return 1.0
        total = sum(shares)
        square_sum = sum(x * x for x in shares)
        if square_sum == 0.0:
            return 1.0
        return total * total / (len(shares) * square_sum)

    # -- fleet metrics --------------------------------------------------
    @property
    def utilizations(self) -> dict[int, float]:
        """Per-chip busy fraction of its provisioned lifetime."""
        return {c.chip_id: c.utilization(self.end_s) for c in self.chips}

    @property
    def mean_utilization(self) -> float:
        values = list(self.utilizations.values())
        return sum(values) / len(values)

    @property
    def total_switch_cycles(self) -> float:
        return sum(c.switch_cycles for c in self.chips)

    @property
    def total_frame_reconfig_cycles(self) -> float:
        return sum(c.frame_reconfig_cycles for c in self.chips)

    @property
    def total_reconfig_cycles(self) -> float:
        return self.total_switch_cycles + self.total_frame_reconfig_cycles

    @property
    def energy_per_request_j(self) -> float:
        return sum(r.energy_j for r in self.responses) / self.n_requests

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 1.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    # -- fleet economics -------------------------------------------------
    @property
    def total_chip_seconds(self) -> float:
        """Provisioned chip-seconds: join-to-retirement per chip."""
        return sum(c.alive_s(self.end_s) for c in self.chips)

    @property
    def total_cost_units(self) -> float:
        """Provisioned cost: chip-seconds weighted by per-chip rates."""
        return sum(c.cost_units(self.end_s) for c in self.chips)

    @property
    def cost_by_config(self) -> dict[str, dict]:
        """Per-design-point breakdown of the heterogeneous fleet."""
        horizon = self.end_s
        out: dict[str, dict] = {}
        for chip in self.chips:
            entry = out.setdefault(chip.config.label, {
                "chips": 0,
                "requests_served": 0,
                "chip_seconds": 0.0,
                "cost_units": 0.0,
                "energy_j": 0.0,
            })
            entry["chips"] += 1
            entry["requests_served"] += chip.requests_served
            entry["chip_seconds"] += chip.alive_s(horizon)
            entry["cost_units"] += chip.cost_units(horizon)
            entry["energy_j"] += chip.energy_j
        return out

    @property
    def fleet_size_timeline(self) -> list[tuple[float, int]]:
        """(time, active chips) steps, starting at the initial fleet."""
        autoscaled_ids = {e.chip_id for e in self.fleet_events
                          if e.action == "add"}
        initial = sum(1 for c in self.chips if c.chip_id not in autoscaled_ids)
        timeline = [(0.0, initial)]
        for event in self.fleet_events:
            timeline.append((event.t_s, event.n_active))
        return timeline

    @property
    def peak_fleet_size(self) -> int:
        return max(n for _, n in self.fleet_size_timeline)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "admission_policy": self.admission_policy,
            "autoscaled": self.autoscaled,
            "n_requests": self.n_requests,
            "n_offered": self.n_offered,
            "n_shed": self.n_shed,
            "n_failed": self.n_failed,
            "n_degraded": self.n_degraded,
            "shed_rate": self.shed_rate,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "mean_queue_ms": self.mean_queue_s * 1e3,
            "latency_p50_ms": self.latency_p(50) * 1e3,
            "latency_p95_ms": self.latency_p(95) * 1e3,
            "latency_p99_ms": self.latency_p(99) * 1e3,
            "slo_attainment": self.slo_attainment,
            "goodput_slo_attainment": self.goodput_slo_attainment,
            "preempt_enabled": self.preempt_enabled,
            "n_preemption_events": self.n_preemption_events,
            "n_preempted": self.n_preempted,
            "total_preemptions": self.total_preemptions,
            "n_migrated": self.n_migrated,
            "fairness_index": self.fairness_index,
            "tenants": self.tenant_report(),
            "cache": dict(self.cache_stats),
            "mean_batch_size": self.mean_batch_size,
            "mean_utilization": self.mean_utilization,
            "utilizations": self.utilizations,
            "total_switch_cycles": self.total_switch_cycles,
            "total_frame_reconfig_cycles": self.total_frame_reconfig_cycles,
            "total_reconfig_cycles": self.total_reconfig_cycles,
            "energy_per_request_j": self.energy_per_request_j,
            "total_chip_seconds": self.total_chip_seconds,
            "total_cost_units": self.total_cost_units,
            "cost_by_config": self.cost_by_config,
            "peak_fleet_size": self.peak_fleet_size,
            "fleet_size_timeline": self.fleet_size_timeline,
            "fleet_events": [e.to_dict() for e in self.fleet_events],
            "shed": [s.to_dict() for s in self.shed],
            "failed": [f.to_dict() for f in self.failed],
            "chips": [c.to_dict(self.end_s) for c in self.chips],
            "compile": dict(self.compile_stats),
            "prefetch": dict(self.prefetch_stats),
            "fleet_availability": self.fleet_availability,
            "mtbf_s": self.mtbf_s,
            "n_requeued": self.n_requeued,
            "n_hedge_won": self.n_hedge_won,
            "faults": dict(self.fault_stats),
            "hedging": dict(self.hedge_stats),
        }


def publish_report(report: ServiceReport, registry) -> None:
    """Fold a finished run's headline figures into an observability
    registry (see :mod:`repro.obs.metrics`).

    Called by the event engine *after* the :class:`ServiceReport` is
    fully built, so data flows strictly report -> registry: attaching an
    observer can never change the report itself. Everything lands as a
    gauge — these are end-of-run summaries, not streaming series — plus
    the compile/prefetch stat dicts flattened under their own prefixes.
    """
    gauge = registry.gauge
    gauge("report.n_requests").set(report.n_requests)
    gauge("report.n_offered").set(report.n_offered)
    gauge("report.n_shed").set(report.n_shed)
    gauge("report.n_degraded").set(report.n_degraded)
    gauge("report.shed_rate").set(report.shed_rate)
    gauge("report.makespan_s").set(report.makespan_s)
    gauge("report.throughput_rps").set(report.throughput_rps)
    gauge("report.latency_p50_ms").set(report.latency_p(50) * 1e3)
    gauge("report.latency_p95_ms").set(report.latency_p(95) * 1e3)
    gauge("report.latency_p99_ms").set(report.latency_p(99) * 1e3)
    gauge("report.slo_attainment").set(report.slo_attainment)
    gauge("report.goodput_slo_attainment").set(report.goodput_slo_attainment)
    gauge("report.mean_batch_size").set(report.mean_batch_size)
    gauge("report.mean_utilization").set(report.mean_utilization)
    gauge("report.energy_per_request_j").set(report.energy_per_request_j)
    gauge("report.total_cost_units").set(report.total_cost_units)
    gauge("report.peak_fleet_size").set(report.peak_fleet_size)
    gauge("report.n_preemption_events").set(report.n_preemption_events)
    gauge("report.n_failed").set(report.n_failed)
    gauge("report.fleet_availability").set(report.fleet_availability)
    for name, value in report.fault_stats.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            gauge(f"fault.{name}").set(value)
    for name, value in report.hedge_stats.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            gauge(f"hedge.{name}").set(value)
    for name, value in report.compile_stats.items():
        if isinstance(value, (int, float)):
            gauge(f"compile.{name}").set(value)
    for name, value in report.prefetch_stats.items():
        if isinstance(value, (int, float)):
            gauge(f"prefetch.{name}").set(value)


def format_service_report(report: ServiceReport) -> str:
    """Human-readable serving summary (the `repro serve` output)."""
    from repro.analysis.tables import format_table

    admission = report.admission_policy or "admit-all"
    lines = [
        f"policy={report.policy}  admission={admission}  "
        f"chips={len(report.chips)}"
        + (f" (peak {report.peak_fleet_size} active)" if report.autoscaled else "")
        + f"  requests={report.n_requests}/{report.n_offered}"
        f"  makespan={report.makespan_s * 1e3:.1f} ms",
        "",
        f"throughput        {report.throughput_rps:10.1f} req/s",
        f"latency p50       {report.latency_p(50) * 1e3:10.2f} ms",
        f"latency p95       {report.latency_p(95) * 1e3:10.2f} ms",
        f"latency p99       {report.latency_p(99) * 1e3:10.2f} ms",
        f"SLO attainment    {report.slo_attainment * 100:10.1f} %",
        f"goodput (offered) {report.goodput_slo_attainment * 100:10.1f} %",
        f"shed / degraded   {report.n_shed:10d} / {report.n_degraded} requests",
        f"cache hit rate    {report.cache_hit_rate * 100:10.1f} %",
        f"mean queue wait   {report.mean_queue_s * 1e3:10.2f} ms",
        f"mean batch size   {report.mean_batch_size:10.2f}",
        f"energy/request    {report.energy_per_request_j * 1e3:10.2f} mJ",
        f"chip-seconds      {report.total_chip_seconds:10.3f} s "
        f"({report.total_cost_units:.3f} cost units)",
        f"reconfig cycles   {report.total_reconfig_cycles:10.0f} "
        f"(switch {report.total_switch_cycles:.0f} "
        f"+ in-frame {report.total_frame_reconfig_cycles:.0f})",
    ]
    if report.compile_stats:
        c = report.compile_stats
        lines.append(
            f"compile workers   {c.get('workers', 0):10d} "
            f"({c.get('demand_jobs', 0)} demand + "
            f"{c.get('prefetch_jobs', 0)} prefetch jobs, "
            f"{c.get('busy_s', 0.0) * 1e3:.1f} ms busy)"
        )
    if report.prefetch_stats:
        p = report.prefetch_stats
        lines.append(
            f"prefetch accuracy {p.get('accuracy', 0.0) * 100:10.1f} % "
            f"({p.get('hits', 0)} of {p.get('issued', 0)} issued, "
            f"{p.get('waste', 0)} wasted)"
        )
    if report.preempt_enabled:
        lines.append(
            f"preemption        {report.n_preemption_events:10d} events "
            f"({report.n_preempted} requests displaced, "
            f"{report.n_migrated} migrated to another chip)"
        )
    if report.fault_stats:
        f = report.fault_stats
        mtbf = report.mtbf_s
        lines.append(
            f"faults            {f.get('n_crashes', 0):10d} crashes "
            f"({f.get('n_recoveries', 0)} recovered, "
            f"{f.get('n_requeued', 0)} frames requeued, "
            f"{report.n_failed} requests lost)"
        )
        lines.append(
            f"availability      {report.fleet_availability * 100:10.1f} %"
            + (f"  (MTBF {mtbf * 1e3:.1f} ms)" if mtbf is not None else "")
        )
    if report.hedge_stats:
        h = report.hedge_stats
        lines.append(
            f"hedging           {h.get('n_hedged', 0):10d} hedged "
            f"({h.get('n_wins', 0)} clone wins, "
            f"{h.get('n_wasted', 0)} duplicates wasted, "
            f"{h.get('wasted_work_s', 0.0) * 1e3:.1f} ms duplicate work)"
        )
    tenant_rows = report.tenant_report()
    if len(tenant_rows) > 1:
        lines.append("")
        rows = [
            [
                name,
                e["tier"],
                f"{e['weight']:g}",
                f"{e['n_requests']}/{e['n_offered']}",
                f"{e['latency_p50_ms']:.2f}",
                f"{e['latency_p99_ms']:.2f}",
                f"{e['slo_attainment'] * 100:.1f}%",
                f"{e['goodput_slo_attainment'] * 100:.1f}%",
                e["n_shed"],
                e["n_preempted"],
                e["n_migrated"],
            ]
            for name, e in tenant_rows.items()
        ]
        lines.append(format_table(
            ["tenant", "tier", "weight", "served/offered", "p50 ms",
             "p99 ms", "SLO", "goodput", "shed", "preempted", "migrated"],
            rows,
        ))
        lines.append(
            f"fairness index (Jain, weight-normalized service) "
            f"{report.fairness_index:.3f}"
        )
    lines.append("")
    rows = []
    for chip in report.chips:
        lifecycle = "active"
        if chip.retired_at_s is not None:
            lifecycle = f"retired @{chip.retired_at_s * 1e3:.0f}ms"
        elif chip.added_at_s > 0:
            lifecycle = f"added @{chip.added_at_s * 1e3:.0f}ms"
        rows.append([
            chip.chip_id,
            chip.config.label,
            chip.requests_served,
            f"{chip.utilization(report.end_s) * 100:.1f}%",
            chip.pipeline_switches,
            f"{chip.cost_units(report.end_s):.3f}",
            f"{chip.energy_j:.3f}",
            lifecycle,
        ])
    lines.append(format_table(
        ["chip", "config", "served", "util", "switches", "cost", "energy J",
         "lifecycle"],
        rows,
    ))
    if report.fleet_events:
        steps = "  ".join(
            f"{t * 1e3:.0f}ms:{n}" for t, n in report.fleet_size_timeline
        )
        lines.append("")
        lines.append(f"fleet size timeline: {steps}")
    return "\n".join(lines)
