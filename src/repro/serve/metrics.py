"""Service-level objectives and fleet metrics.

The serving counterpart of :mod:`repro.metrics`: where the paper scores
single frames (FPS, energy/frame), a service is scored on throughput,
tail latency, SLO attainment, fleet utilization, and energy per request
— the low-level + application view of RZBENCH-style benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.serve.cluster import ChipState
from repro.serve.request import RenderResponse


def latency_percentile(latencies_s: list[float] | np.ndarray, q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    if len(latencies_s) == 0:
        raise SimulationError("no latencies to summarize")
    return float(np.percentile(np.asarray(latencies_s, dtype=float), q))


@dataclass
class ServiceReport:
    """Everything one service simulation produced."""

    policy: str
    responses: list[RenderResponse]
    chips: list[ChipState]
    cache_stats: dict
    batch_sizes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.responses:
            raise SimulationError("service completed no requests")

    # -- time span ------------------------------------------------------
    @property
    def first_arrival_s(self) -> float:
        return min(r.request.arrival_s for r in self.responses)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        return max(r.finish_s for r in self.responses) - self.first_arrival_s

    # -- headline service metrics --------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.responses)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.makespan_s

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.responses])

    def latency_p(self, q: float) -> float:
        return latency_percentile(self.latencies_s, q)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests finishing within their SLO."""
        return sum(r.slo_met for r in self.responses) / self.n_requests

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_stats.get("hit_rate", 0.0)

    # -- fleet metrics --------------------------------------------------
    @property
    def utilizations(self) -> dict[int, float]:
        return {c.chip_id: c.utilization(self.makespan_s) for c in self.chips}

    @property
    def mean_utilization(self) -> float:
        values = list(self.utilizations.values())
        return sum(values) / len(values)

    @property
    def total_switch_cycles(self) -> float:
        return sum(c.switch_cycles for c in self.chips)

    @property
    def total_frame_reconfig_cycles(self) -> float:
        return sum(c.frame_reconfig_cycles for c in self.chips)

    @property
    def total_reconfig_cycles(self) -> float:
        return self.total_switch_cycles + self.total_frame_reconfig_cycles

    @property
    def energy_per_request_j(self) -> float:
        return sum(r.energy_j for r in self.responses) / self.n_requests

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 1.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "n_requests": self.n_requests,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p(50) * 1e3,
            "latency_p95_ms": self.latency_p(95) * 1e3,
            "latency_p99_ms": self.latency_p(99) * 1e3,
            "slo_attainment": self.slo_attainment,
            "cache": dict(self.cache_stats),
            "mean_batch_size": self.mean_batch_size,
            "mean_utilization": self.mean_utilization,
            "utilizations": self.utilizations,
            "total_switch_cycles": self.total_switch_cycles,
            "total_frame_reconfig_cycles": self.total_frame_reconfig_cycles,
            "total_reconfig_cycles": self.total_reconfig_cycles,
            "energy_per_request_j": self.energy_per_request_j,
            "chips": [c.to_dict(self.makespan_s) for c in self.chips],
        }


def format_service_report(report: ServiceReport) -> str:
    """Human-readable serving summary (the `repro serve` output)."""
    from repro.analysis.tables import format_table

    lines = [
        f"policy={report.policy}  chips={len(report.chips)}  "
        f"requests={report.n_requests}  makespan={report.makespan_s * 1e3:.1f} ms",
        "",
        f"throughput        {report.throughput_rps:10.1f} req/s",
        f"latency p50       {report.latency_p(50) * 1e3:10.2f} ms",
        f"latency p95       {report.latency_p(95) * 1e3:10.2f} ms",
        f"latency p99       {report.latency_p(99) * 1e3:10.2f} ms",
        f"SLO attainment    {report.slo_attainment * 100:10.1f} %",
        f"cache hit rate    {report.cache_hit_rate * 100:10.1f} %",
        f"mean batch size   {report.mean_batch_size:10.2f}",
        f"energy/request    {report.energy_per_request_j * 1e3:10.2f} mJ",
        f"reconfig cycles   {report.total_reconfig_cycles:10.0f} "
        f"(switch {report.total_switch_cycles:.0f} "
        f"+ in-frame {report.total_frame_reconfig_cycles:.0f})",
        "",
    ]
    rows = []
    for chip in report.chips:
        rows.append([
            chip.chip_id,
            chip.requests_served,
            f"{chip.utilization(report.makespan_s) * 100:.1f}%",
            chip.pipeline_switches,
            f"{chip.switch_cycles:.0f}",
            f"{chip.energy_j:.3f}",
            chip.configured_pipeline or "-",
        ])
    lines.append(format_table(
        ["chip", "served", "util", "switches", "switch cyc", "energy J", "last pipeline"],
        rows,
    ))
    return "\n".join(lines)
