"""Deterministic, seeded workload generators for the rendering service.

Each pattern shapes *arrival times*; scenes and pipelines are drawn per
request from the provided sets. All randomness flows through one
``numpy`` generator seeded by the caller, so a (pattern, seed, n)
triple always reproduces the same trace — the property the
policy-comparison experiments and tests rely on.

Patterns (RZBENCH-style scenario diversity):

* ``steady``  — Poisson arrivals at a constant rate.
* ``bursty``  — short high-rate bursts separated by idle gaps.
* ``diurnal`` — sinusoidally modulated rate (a compressed day).
* ``mixed``   — steady arrivals, but every request draws a pipeline
  uniformly from the full set (maximum pipeline churn).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serve.request import RenderRequest, TenantClass

#: Default request mix: two scenes, three pipelines with distinct
#: PE-array configurations (so pipeline switches actually occur).
DEFAULT_SCENES = ("lego", "room")
DEFAULT_PIPELINES = ("hashgrid", "gaussian", "mesh")
DEFAULT_RESOLUTION = (640, 360)


def _steady_arrivals(n: int, rate_rps: float, rng: np.random.Generator) -> np.ndarray:
    return np.cumsum(rng.exponential(1.0 / rate_rps, n))


def _bursty_arrivals(
    n: int,
    rate_rps: float,
    rng: np.random.Generator,
    burst_size: int = 16,
    burst_rate_factor: float = 10.0,
) -> np.ndarray:
    """Bursts of ``burst_size`` requests at ``burst_rate_factor`` times
    the mean rate, spaced so the long-run rate still averages out."""
    times = []
    t = 0.0
    emitted = 0
    while emitted < n:
        size = min(burst_size, n - emitted)
        gaps = rng.exponential(1.0 / (rate_rps * burst_rate_factor), size)
        for gap in gaps:
            t += gap
            times.append(t)
        emitted += size
        # Idle gap restoring the long-run mean rate.
        t += size / rate_rps * (1.0 - 1.0 / burst_rate_factor)
    return np.array(times)


def _diurnal_arrivals(
    n: int,
    rate_rps: float,
    rng: np.random.Generator,
    period_s: float = 4.0,
    depth: float = 0.8,
) -> np.ndarray:
    """Rate swings sinusoidally between (1-depth) and (1+depth) of the
    mean over ``period_s`` — a day compressed to simulation scale."""
    times = np.empty(n)
    t = 0.0
    for k in range(n):
        local_rate = rate_rps * (1.0 + depth * np.sin(2.0 * np.pi * t / period_s))
        t += rng.exponential(1.0 / max(local_rate, 1e-6))
        times[k] = t
    return times


_ARRIVAL_SHAPES = {
    "steady": _steady_arrivals,
    "bursty": _bursty_arrivals,
    "diurnal": _diurnal_arrivals,
    "mixed": _steady_arrivals,
}

#: Public pattern names, in presentation order.
TRAFFIC_PATTERNS = tuple(_ARRIVAL_SHAPES)


def generate_traffic(
    pattern: str = "steady",
    n_requests: int = 200,
    rate_rps: float = 150.0,
    seed: int = 0,
    scenes: tuple[str, ...] = DEFAULT_SCENES,
    pipelines: tuple[str, ...] = DEFAULT_PIPELINES,
    resolution: tuple[int, int] = DEFAULT_RESOLUTION,
    slo_s: float = 0.05,
    pipeline_run_length: int = 4,
) -> list[RenderRequest]:
    """Build one reproducible request trace.

    ``pipeline_run_length`` models client-side temporal locality —
    consecutive frames of one session use one pipeline — for every
    pattern except ``mixed``, which redraws the pipeline per request
    (worst-case churn for the dispatcher).
    """
    if pattern not in _ARRIVAL_SHAPES:
        raise ConfigError(
            f"unknown traffic pattern {pattern!r}; choose from {TRAFFIC_PATTERNS}"
        )
    if n_requests < 1:
        raise ConfigError("n_requests must be >= 1")
    if rate_rps <= 0:
        raise ConfigError("rate must be positive")
    if not scenes or not pipelines:
        raise ConfigError("need at least one scene and one pipeline")

    rng = np.random.default_rng(seed)
    arrivals = _ARRIVAL_SHAPES[pattern](n_requests, rate_rps, rng)

    run_length = 1 if pattern == "mixed" else max(1, pipeline_run_length)
    requests = []
    current_pipeline = None
    for k in range(n_requests):
        if k % run_length == 0 or current_pipeline is None:
            current_pipeline = pipelines[int(rng.integers(len(pipelines)))]
        requests.append(RenderRequest(
            request_id=k,
            scene=scenes[int(rng.integers(len(scenes)))],
            pipeline=current_pipeline,
            width=resolution[0],
            height=resolution[1],
            arrival_s=float(arrivals[k]),
            slo_s=slo_s,
        ))
    return requests


# ----------------------------------------------------------------------
# Multi-tenant traffic
# ----------------------------------------------------------------------
def parse_tenant_spec(spec: str) -> list[tuple[TenantClass, float]]:
    """Parse a ``--tenants`` string into ``(TenantClass, share)`` pairs.

    Entries are separated by ``;``; each is ``name`` optionally followed
    by ``:key=value,...`` with keys ``tier`` (dispatch priority, lower =
    more premium; defaults to the entry's position), ``weight`` (fleet
    share under weighted admission, default 1), ``slo`` (SLO multiplier
    over the base SLO, default 1), and ``share`` (fraction of offered
    traffic; entries without one split the remainder evenly). Example::

        "premium:tier=0,weight=4,share=0.25;economy:tier=1,slo=2"
    """
    entries: list[tuple[TenantClass, float | None]] = []
    for index, raw in enumerate(spec.split(";")):
        entry = raw.strip()
        if not entry:
            continue
        name, _, body = entry.partition(":")
        name = name.strip()
        if not name:
            raise ConfigError(f"tenant entry {raw!r} has no name")
        fields = {"tier": float(index), "weight": 1.0, "slo": 1.0,
                  "share": None}
        if body:
            for pair in body.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or key not in fields:
                    raise ConfigError(
                        f"bad tenant field {pair!r} in {raw!r}; expected "
                        "tier=, weight=, slo=, or share="
                    )
                try:
                    fields[key] = float(value)
                except ValueError as err:
                    raise ConfigError(
                        f"tenant field {pair!r} in {raw!r} is not a number"
                    ) from err
        tier = fields["tier"]
        if tier != int(tier):
            raise ConfigError(
                f"tenant tier must be an integer in {raw!r} (got {tier:g})")
        tenant = TenantClass(
            name=name,
            slo_multiplier=fields["slo"],
            weight=fields["weight"],
            tier=int(tier),
        )
        entries.append((tenant, fields["share"]))
    if not entries:
        raise ConfigError(f"tenant spec {spec!r} describes no tenants")
    names = [tenant.name for tenant, _ in entries]
    if len(set(names)) != len(names):
        raise ConfigError(f"tenant spec {spec!r} repeats a tenant name")

    explicit = sum(share for _, share in entries if share is not None)
    free = [k for k, (_, share) in enumerate(entries) if share is None]
    if explicit > 1.0 + 1e-9 or (not free and abs(explicit - 1.0) > 1e-9):
        raise ConfigError(
            f"tenant shares in {spec!r} must sum to 1 (got {explicit:g})")
    if any(share is not None and share <= 0 for _, share in entries):
        raise ConfigError(f"tenant shares in {spec!r} must be positive")
    leftover = (1.0 - explicit) / len(free) if free else 0.0
    if free and leftover <= 0:
        raise ConfigError(
            f"tenant spec {spec!r} leaves no traffic share for "
            f"{[names[k] for k in free]}")
    return [
        (tenant, leftover if share is None else share)
        for tenant, share in entries
    ]


def generate_tenant_traffic(
    tenants: str | Sequence[tuple[TenantClass, float]],
    pattern: str = "steady",
    n_requests: int = 200,
    rate_rps: float = 150.0,
    seed: int = 0,
    overrides: dict[str, dict] | None = None,
    **shared,
) -> list[RenderRequest]:
    """One reproducible multi-tenant trace: per-tenant streams, merged.

    Every tenant gets its ``share`` of the request count and offered
    rate, generated as its own :func:`generate_traffic` stream from a
    seed derived deterministically from ``(seed, tenant index)`` and
    tagged with its :class:`TenantClass`; ``overrides`` maps a tenant
    name to per-tenant :func:`generate_traffic` keyword overrides (its
    own pattern, scenes, SLO, ...). The streams are merged by arrival
    time and re-numbered, so request ids stay globally unique and
    arrival-ordered.
    """
    mix = parse_tenant_spec(tenants) if isinstance(tenants, str) else list(tenants)
    if not mix:
        raise ConfigError("need at least one tenant class")
    total_share = sum(share for _, share in mix)
    if abs(total_share - 1.0) > 1e-9:
        raise ConfigError(
            f"tenant shares must sum to 1 (got {total_share:g})")
    overrides = overrides or {}
    unknown = set(overrides) - {tenant.name for tenant, _ in mix}
    if unknown:
        raise ConfigError(f"traffic overrides for unknown tenants {sorted(unknown)}")
    for name, extra in overrides.items():
        reserved = {"n_requests", "seed"} & set(extra)
        if reserved:
            raise ConfigError(
                f"override for tenant {name!r} may not set {sorted(reserved)}; "
                "request counts come from shares and seeds are derived"
            )

    merged: list[tuple[float, int, int, RenderRequest]] = []
    remaining = n_requests
    for index, (tenant, share) in enumerate(mix):
        if index == len(mix) - 1:
            n_tenant = remaining  # last class absorbs rounding residue
        else:
            n_tenant = min(remaining, max(1, round(n_requests * share)))
        remaining -= n_tenant
        if n_tenant < 1:
            raise ConfigError(
                f"tenant {tenant.name!r} gets no requests at share {share:g}; "
                "raise n_requests"
            )
        kwargs = dict(pattern=pattern, rate_rps=rate_rps * share, **shared)
        kwargs.update(overrides.get(tenant.name, {}))
        stream = generate_traffic(
            n_requests=n_tenant,
            seed=seed * 1_000_003 + index,
            **kwargs,
        )
        for request in stream:
            merged.append(
                (request.arrival_s, index, request.request_id,
                 replace(request, tenant=tenant)))
    merged.sort(key=lambda item: item[:3])
    return [
        replace(request, request_id=new_id)
        for new_id, (_, _, _, request) in enumerate(merged)
    ]
