"""Deterministic, seeded workload generators for the rendering service.

Each pattern shapes *arrival times*; scenes and pipelines are drawn per
request from the provided sets. All randomness flows through one
``numpy`` generator seeded by the caller, so a (pattern, seed, n)
triple always reproduces the same trace — the property the
policy-comparison experiments and tests rely on.

Patterns (RZBENCH-style scenario diversity):

* ``steady``  — Poisson arrivals at a constant rate.
* ``bursty``  — short high-rate bursts separated by idle gaps.
* ``diurnal`` — sinusoidally modulated rate (a compressed day).
* ``mixed``   — steady arrivals, but every request draws a pipeline
  uniformly from the full set (maximum pipeline churn).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.serve.request import RenderRequest

#: Default request mix: two scenes, three pipelines with distinct
#: PE-array configurations (so pipeline switches actually occur).
DEFAULT_SCENES = ("lego", "room")
DEFAULT_PIPELINES = ("hashgrid", "gaussian", "mesh")
DEFAULT_RESOLUTION = (640, 360)


def _steady_arrivals(n: int, rate_rps: float, rng: np.random.Generator) -> np.ndarray:
    return np.cumsum(rng.exponential(1.0 / rate_rps, n))


def _bursty_arrivals(
    n: int,
    rate_rps: float,
    rng: np.random.Generator,
    burst_size: int = 16,
    burst_rate_factor: float = 10.0,
) -> np.ndarray:
    """Bursts of ``burst_size`` requests at ``burst_rate_factor`` times
    the mean rate, spaced so the long-run rate still averages out."""
    times = []
    t = 0.0
    emitted = 0
    while emitted < n:
        size = min(burst_size, n - emitted)
        gaps = rng.exponential(1.0 / (rate_rps * burst_rate_factor), size)
        for gap in gaps:
            t += gap
            times.append(t)
        emitted += size
        # Idle gap restoring the long-run mean rate.
        t += size / rate_rps * (1.0 - 1.0 / burst_rate_factor)
    return np.array(times)


def _diurnal_arrivals(
    n: int,
    rate_rps: float,
    rng: np.random.Generator,
    period_s: float = 4.0,
    depth: float = 0.8,
) -> np.ndarray:
    """Rate swings sinusoidally between (1-depth) and (1+depth) of the
    mean over ``period_s`` — a day compressed to simulation scale."""
    times = np.empty(n)
    t = 0.0
    for k in range(n):
        local_rate = rate_rps * (1.0 + depth * np.sin(2.0 * np.pi * t / period_s))
        t += rng.exponential(1.0 / max(local_rate, 1e-6))
        times[k] = t
    return times


_ARRIVAL_SHAPES = {
    "steady": _steady_arrivals,
    "bursty": _bursty_arrivals,
    "diurnal": _diurnal_arrivals,
    "mixed": _steady_arrivals,
}

#: Public pattern names, in presentation order.
TRAFFIC_PATTERNS = tuple(_ARRIVAL_SHAPES)


def generate_traffic(
    pattern: str = "steady",
    n_requests: int = 200,
    rate_rps: float = 150.0,
    seed: int = 0,
    scenes: tuple[str, ...] = DEFAULT_SCENES,
    pipelines: tuple[str, ...] = DEFAULT_PIPELINES,
    resolution: tuple[int, int] = DEFAULT_RESOLUTION,
    slo_s: float = 0.05,
    pipeline_run_length: int = 4,
) -> list[RenderRequest]:
    """Build one reproducible request trace.

    ``pipeline_run_length`` models client-side temporal locality —
    consecutive frames of one session use one pipeline — for every
    pattern except ``mixed``, which redraws the pipeline per request
    (worst-case churn for the dispatcher).
    """
    if pattern not in _ARRIVAL_SHAPES:
        raise ConfigError(
            f"unknown traffic pattern {pattern!r}; choose from {TRAFFIC_PATTERNS}"
        )
    if n_requests < 1:
        raise ConfigError("n_requests must be >= 1")
    if rate_rps <= 0:
        raise ConfigError("rate must be positive")
    if not scenes or not pipelines:
        raise ConfigError("need at least one scene and one pipeline")

    rng = np.random.default_rng(seed)
    arrivals = _ARRIVAL_SHAPES[pattern](n_requests, rate_rps, rng)

    run_length = 1 if pattern == "mixed" else max(1, pipeline_run_length)
    requests = []
    current_pipeline = None
    for k in range(n_requests):
        if k % run_length == 0 or current_pipeline is None:
            current_pipeline = pipelines[int(rng.integers(len(pipelines)))]
        requests.append(RenderRequest(
            request_id=k,
            scene=scenes[int(rng.integers(len(scenes)))],
            pipeline=current_pipeline,
            width=resolution[0],
            height=resolution[1],
            arrival_s=float(arrivals[k]),
            slo_s=slo_s,
        ))
    return requests
