"""Pipeline-affinity batching of queued requests.

Switching the PE array between micro-operator pipelines costs
``reconfigure_cycles`` (Sec. VII-E), so the dispatcher coalesces queued
requests of the *same* pipeline into one batch: only the first frame of
a batch can trigger a pipeline switch on its chip, and every subsequent
frame rides the already-configured array. Batches are anchored at the
oldest queued request, so head-of-line requests are never starved by
younger traffic of a hotter pipeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.serve.request import RenderRequest


@dataclass(frozen=True)
class Batch:
    """Same-pipeline requests dispatched to one chip back to back."""

    batch_id: int
    pipeline: str
    requests: tuple[RenderRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival_s(self) -> float:
        return min(r.arrival_s for r in self.requests)


@dataclass
class BatcherStats:
    batches: int = 0
    requests: int = 0
    sizes: list[int] = field(default_factory=list)

    @property
    def mean_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class PipelineBatcher:
    """Forms batches from the pending queue at dispatch time.

    ``max_batch`` bounds how many requests one chip grabs at once, which
    caps the queueing delay a batch can inflict on other pipelines'
    traffic; ``max_batch=1`` degenerates to plain FIFO dispatch.
    """

    def __init__(self, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.stats = BatcherStats()
        self._next_batch_id = 0

    def next_batch(self, pending: "deque[RenderRequest]") -> Batch:
        """Pop the head request plus queued same-pipeline followers.

        The queue order of untaken requests is preserved.
        """
        if not pending:
            raise ConfigError("cannot batch an empty queue")
        pipeline = pending[0].pipeline
        taken: list[RenderRequest] = []
        kept: list[RenderRequest] = []
        while pending:
            request = pending.popleft()
            if request.pipeline == pipeline and len(taken) < self.max_batch:
                taken.append(request)
            else:
                kept.append(request)
        pending.extend(kept)
        return self.make_batch(pipeline, taken)

    def make_batch(self, pipeline: str,
                   taken: list[RenderRequest]) -> Batch:
        """Stamp an id onto already-selected requests and count them.

        The event engine selects batch members through its indexed
        pending lanes (same selection rule as :meth:`next_batch`:
        oldest-ready anchor plus queued same-pipeline followers, up to
        ``max_batch``) and hands them here so batch ids and statistics
        stay in one place.
        """
        if not taken:
            raise ConfigError("cannot form an empty batch")
        batch = Batch(self._next_batch_id, pipeline, tuple(taken))
        self._next_batch_id += 1
        self.stats.batches += 1
        self.stats.requests += len(taken)
        self.stats.sizes.append(len(taken))
        return batch

    def retract(self, batch: Batch) -> None:
        """Un-count a staged batch that preemption displaced.

        The members go back to the pending queue and will form a new
        batch (with a new id) later, so leaving the displaced batch in
        the statistics would double-count its requests.
        """
        self.stats.batches -= 1
        self.stats.requests -= len(batch)
        # Any equal-sized entry is interchangeable in the size histogram.
        self.stats.sizes.remove(len(batch))
