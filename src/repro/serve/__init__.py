"""``repro.serve`` — the simulated multi-accelerator rendering service.

Turns the one-shot simulator into a service model: requests arrive over
time (:mod:`~repro.serve.traffic`), compiled frame traces are reused
through an LRU cache (:mod:`~repro.serve.trace_cache`), queued requests
of one pipeline are coalesced to amortize PE-array reconfiguration
(:mod:`~repro.serve.batcher`), a fleet of chips with a pluggable
sharding policy executes them (:mod:`~repro.serve.cluster`), a
discrete-event loop drives the whole thing
(:mod:`~repro.serve.scheduler`), and the outcome is scored on
throughput, tail latency, SLO attainment, utilization, and energy
(:mod:`~repro.serve.metrics`).

Quickstart::

    from repro.serve import ServeCluster, generate_traffic, simulate_service

    trace = generate_traffic("bursty", n_requests=200, seed=0)
    report = simulate_service(trace, ServeCluster(n_chips=4))
    print(report.throughput_rps, report.latency_p(99), report.slo_attainment)
"""

from repro.serve.request import RenderRequest, RenderResponse, TraceKey
from repro.serve.trace_cache import CacheStats, TraceCache
from repro.serve.batcher import Batch, PipelineBatcher
from repro.serve.cluster import (
    ChipState,
    ServeCluster,
    SHARDING_POLICIES,
)
from repro.serve.metrics import (
    ServiceReport,
    format_service_report,
    latency_percentile,
)
from repro.serve.scheduler import simulate_service
from repro.serve.traffic import (
    DEFAULT_PIPELINES,
    DEFAULT_RESOLUTION,
    DEFAULT_SCENES,
    TRAFFIC_PATTERNS,
    generate_traffic,
)

__all__ = [
    "RenderRequest",
    "RenderResponse",
    "TraceKey",
    "TraceCache",
    "CacheStats",
    "Batch",
    "PipelineBatcher",
    "ChipState",
    "ServeCluster",
    "SHARDING_POLICIES",
    "ServiceReport",
    "format_service_report",
    "latency_percentile",
    "simulate_service",
    "generate_traffic",
    "TRAFFIC_PATTERNS",
    "DEFAULT_SCENES",
    "DEFAULT_PIPELINES",
    "DEFAULT_RESOLUTION",
]
