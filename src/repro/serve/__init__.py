"""``repro.serve`` — the simulated multi-accelerator rendering service.

Turns the one-shot simulator into a service model: requests arrive over
time (:mod:`~repro.serve.traffic`), an admission policy may shed or
degrade arrivals that cannot meet their SLO
(:mod:`~repro.serve.admission`), compiled frame traces are reused
through an LRU cache (:mod:`~repro.serve.trace_cache`), queued requests
of one pipeline are coalesced to amortize PE-array reconfiguration
(:mod:`~repro.serve.batcher`), a fleet of chips — optionally
heterogeneous (mixed PE/SRAM scales) and elastic — executes them under
a pluggable sharding policy (:mod:`~repro.serve.cluster`), an
autoscaler grows and shrinks that fleet against queue depth and SLO
attainment (:mod:`~repro.serve.autoscaler`), a unified discrete-event
engine drives the whole thing (:mod:`~repro.serve.engine`, entered via
:func:`~repro.serve.scheduler.simulate_service`) — modelling trace
compilation as a pool of compile workers that overlap chip execution
and optionally prefetching predicted traces into the cache — and the
outcome is scored on throughput, tail latency, SLO attainment,
utilization, energy, and provisioned cost (:mod:`~repro.serve.metrics`).

Quickstart::

    from repro.serve import ServeCluster, generate_traffic, simulate_service

    trace = generate_traffic("bursty", n_requests=200, seed=0)
    report = simulate_service(trace, ServeCluster(n_chips=4))
    print(report.throughput_rps, report.latency_p(99), report.slo_attainment)

Elastic serving::

    from repro.serve import Autoscaler, make_admission_policy, parse_fleet_spec

    fleet = parse_fleet_spec("2*1x1,1*2x2")     # two baseline + one big chip
    report = simulate_service(
        trace,
        ServeCluster(configs=fleet[:1], policy="cost-aware"),
        autoscaler=Autoscaler(min_chips=1, max_chips=4,
                              growth_configs=fleet),
        admission=make_admission_policy("slo-shed"),
    )
    print(report.total_cost_units, report.shed_rate, report.fleet_size_timeline)

Predictive serving::

    # Forecast-led autoscaling (provision one warm-up ahead of the
    # arrival-rate trend) + compile results persisted across restarts:
    report = simulate_service(
        generate_traffic("diurnal", n_requests=1200),
        ServeCluster(2),
        autoscaler=Autoscaler(min_chips=2, max_chips=6, mode="predictive"),
        trace_library="traces.json",   # absent file == cold start
    )
    print(report.slo_attainment, report.cache_stats["warmed"])

Chaos serving::

    # Inject chip crashes / stragglers and hedge slow requests; the
    # report stays exactly-once and conservation-closed either way:
    from repro.serve import FaultPlan

    report = simulate_service(
        trace, ServeCluster(n_chips=4),
        faults=FaultPlan.parse("crash=1@0.010+0.050;slow=2@0.0-0.1x4"),
        hedge=True,
    )
    print(report.fleet_availability, report.fault_stats, report.hedge_stats)
"""

from repro.serve.request import (
    DEFAULT_TENANT,
    RenderRequest,
    RenderResponse,
    TenantClass,
    TraceKey,
)
from repro.serve.trace_cache import CacheStats, TraceCache
from repro.serve.trace_library import (
    LIBRARY_VERSION,
    TraceLibrary,
    TraceRecord,
)
from repro.serve.batcher import Batch, PipelineBatcher
from repro.serve.cluster import (
    ChipState,
    ServeCluster,
    SHARDING_POLICIES,
    parse_fleet_spec,
)
from repro.serve.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    Downgrade,
    DOWNGRADE_LADDER,
    ShedRecord,
    SloShed,
    TailDrop,
    WeightedAdmission,
    make_admission_policy,
)
from repro.serve.autoscaler import Autoscaler, FleetEvent, make_elastic_autoscaler
from repro.serve.faults import (
    ChipCrash,
    CompileStall,
    FailedRecord,
    FaultPlan,
    HedgePolicy,
    StragglerWindow,
)
from repro.serve.engine import (
    CompileWorkerPool,
    CostTable,
    EventEngine,
    TracePrefetcher,
    response_timeline,
)
from repro.serve.metrics import (
    ServiceReport,
    format_service_report,
    latency_percentile,
    publish_report,
)
from repro.serve.scheduler import simulate_service
from repro.serve.federation import (
    ChannelPartition,
    FederatedResponse,
    FederationConfig,
    FederationPlan,
    FederationReport,
    GlobalRouter,
    Region,
    RegionOutage,
    RegionSpec,
    format_federation_report,
    generate_federation_traffic,
    parse_region_spec,
    region_rtt_s,
    simulate_federation,
)
from repro.core.config import CompileLatencyModel
from repro.serve.traffic import (
    DEFAULT_PIPELINES,
    DEFAULT_RESOLUTION,
    DEFAULT_SCENES,
    TRAFFIC_PATTERNS,
    generate_tenant_traffic,
    generate_traffic,
    parse_tenant_spec,
)

__all__ = [
    "RenderRequest",
    "RenderResponse",
    "TenantClass",
    "DEFAULT_TENANT",
    "TraceKey",
    "TraceCache",
    "CacheStats",
    "TraceLibrary",
    "TraceRecord",
    "LIBRARY_VERSION",
    "Batch",
    "PipelineBatcher",
    "ChipState",
    "ServeCluster",
    "SHARDING_POLICIES",
    "parse_fleet_spec",
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "TailDrop",
    "SloShed",
    "Downgrade",
    "DOWNGRADE_LADDER",
    "WeightedAdmission",
    "ShedRecord",
    "make_admission_policy",
    "Autoscaler",
    "FleetEvent",
    "make_elastic_autoscaler",
    "FaultPlan",
    "ChipCrash",
    "StragglerWindow",
    "CompileStall",
    "HedgePolicy",
    "FailedRecord",
    "CompileLatencyModel",
    "CompileWorkerPool",
    "CostTable",
    "EventEngine",
    "TracePrefetcher",
    "response_timeline",
    "ServiceReport",
    "format_service_report",
    "latency_percentile",
    "publish_report",
    "simulate_service",
    "RegionSpec",
    "Region",
    "GlobalRouter",
    "FederationConfig",
    "FederationPlan",
    "FederationReport",
    "FederatedResponse",
    "RegionOutage",
    "ChannelPartition",
    "parse_region_spec",
    "region_rtt_s",
    "generate_federation_traffic",
    "simulate_federation",
    "format_federation_report",
    "generate_traffic",
    "generate_tenant_traffic",
    "parse_tenant_spec",
    "TRAFFIC_PATTERNS",
    "DEFAULT_SCENES",
    "DEFAULT_PIPELINES",
    "DEFAULT_RESOLUTION",
]
