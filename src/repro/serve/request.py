"""Requests and responses of the simulated rendering service.

A :class:`RenderRequest` is one user-facing frame: which scene, which
pipeline, at what resolution, when it arrived, and how quickly it must
complete (its latency SLO). Each request belongs to a
:class:`TenantClass` — the latency contract its user bought: a name, an
SLO multiplier over the request's base SLO, a weight (its share of the
fleet under weighted admission), and a priority tier (lower is more
premium; the dispatcher serves queued tiers strictly in order and
preemption may displace queued work of a higher tier number). A
:class:`RenderResponse` records what the fleet actually did with the
request — where it ran, how long it queued, whether its compiled trace
came from the cache, how many cycles the chip spent reconfiguring for
it, and its QoS history (when its batch was formed, how often it was
preempted, whether it migrated to an autoscaled chip).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Cache/memo key of a compiled frame trace.
TraceKey = tuple[str, str, int, int]


@dataclass(frozen=True)
class TenantClass:
    """One tenant's latency contract with the service.

    ``slo_multiplier`` scales a request's base SLO (an economy tenant
    with multiplier 2 tolerates twice the latency); ``weight`` is the
    tenant's share of fleet capacity under
    :class:`~repro.serve.admission.WeightedAdmission`; ``tier`` is the
    dispatch priority (lower = more premium): queued work is served in
    strict tier order and a premium arrival may preempt a queued — not
    in-flight — batch of a higher tier number.
    """

    name: str
    slo_multiplier: float = 1.0
    weight: float = 1.0
    tier: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant class needs a name")
        if self.slo_multiplier <= 0:
            raise ConfigError("tenant SLO multiplier must be positive")
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")
        if self.tier < 0:
            raise ConfigError("tenant tier cannot be negative")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "slo_multiplier": self.slo_multiplier,
            "weight": self.weight,
            "tier": self.tier,
        }


#: The single-tenant default: neutral SLO, unit weight, top tier — all
#: pre-tenant behavior (scheduling, admission, goldens) is unchanged
#: when every request carries this class.
DEFAULT_TENANT = TenantClass("default")


@dataclass(frozen=True)
class RenderRequest:
    """One frame requested from the service."""

    request_id: int
    scene: str
    pipeline: str
    width: int
    height: int
    arrival_s: float
    slo_s: float = 0.05  # latency SLO: arrival -> completion deadline
    degraded: bool = False  # admission control moved it to a cheaper pipeline
    tenant: TenantClass = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigError("request resolution must be positive")
        if self.arrival_s < 0:
            raise ConfigError("arrival time cannot be negative")
        if self.slo_s <= 0:
            raise ConfigError("latency SLO must be positive")

    @property
    def trace_key(self) -> TraceKey:
        """Key under which the compiled program is cached."""
        return (self.scene, self.pipeline, self.width, self.height)

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def effective_slo_s(self) -> float:
        """The deadline this request is actually held to: the base SLO
        scaled by its tenant's multiplier (identity for the default)."""
        return self.slo_s * self.tenant.slo_multiplier

    @property
    def tier(self) -> int:
        return self.tenant.tier


@dataclass(slots=True)
class RenderResponse:
    """Service-side record of one completed request.

    Constructed once per served request on the engine's hot path, so it
    is a plain slots dataclass — ``frozen=True`` would route every field
    through ``object.__setattr__`` and make construction ~8x slower.
    Nothing mutates or hashes responses after the engine emits them."""

    request: RenderRequest
    chip_id: int
    batch_id: int
    start_s: float          # when the chip began this frame
    finish_s: float
    cycles: float           # frame cycles (switch cycles excluded)
    switch_cycles: float    # pipeline-switch reconfiguration on the chip
    frame_reconfig_cycles: float  # intra-frame reconfigurations (model)
    energy_j: float
    cache_hit: bool
    # Compile attribution (event engine): simulated compile latency this
    # request triggered, where it ran, and whether a prefetch warmed it.
    compile_s: float = 0.0
    compile_origin: str | None = None  # None | "sync" | "worker" | "prefetch"
    prefetched: bool = False
    # QoS history: when the request's (final) batch was formed, how many
    # times preemption displaced it back into the queue, and whether it
    # ultimately ran on a chip the autoscaler added after a displacement.
    dispatched_s: float = 0.0
    preemptions: int = 0
    migrated: bool = False
    # Chaos history: how many times a chip crash re-queued this request
    # before the attempt that completed (each retry pays the fault
    # plan's checkpoint-rollback cost), and whether this response was
    # won by a hedged duplicate rather than the primary dispatch.
    requeues: int = 0
    hedged: bool = False

    @property
    def service_s(self) -> float:
        """Time on the chip, including the pipeline switch."""
        return self.finish_s - self.start_s

    @property
    def queue_s(self) -> float:
        """Time between arrival and the chip starting the frame."""
        return self.start_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency the user observes."""
        return self.finish_s - self.request.arrival_s

    @property
    def slo_met(self) -> bool:
        return self.latency_s <= self.request.effective_slo_s

    def to_dict(self) -> dict:
        """JSON-ready summary (for logs and programmatic consumers)."""
        return {
            "request_id": self.request.request_id,
            "scene": self.request.scene,
            "pipeline": self.request.pipeline,
            "resolution": [self.request.width, self.request.height],
            "arrival_s": self.request.arrival_s,
            "slo_s": self.request.slo_s,
            "effective_slo_s": self.request.effective_slo_s,
            "tenant": self.request.tenant.name,
            "tier": self.request.tenant.tier,
            "degraded": self.request.degraded,
            "chip_id": self.chip_id,
            "batch_id": self.batch_id,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "queue_s": self.queue_s,
            "latency_s": self.latency_s,
            "cycles": self.cycles,
            "switch_cycles": self.switch_cycles,
            "frame_reconfig_cycles": self.frame_reconfig_cycles,
            "energy_j": self.energy_j,
            "cache_hit": self.cache_hit,
            "compile_s": self.compile_s,
            "compile_origin": self.compile_origin,
            "prefetched": self.prefetched,
            "dispatched_s": self.dispatched_s,
            "preemptions": self.preemptions,
            "migrated": self.migrated,
            "requeues": self.requeues,
            "hedged": self.hedged,
            "slo_met": self.slo_met,
        }
