"""Requests and responses of the simulated rendering service.

A :class:`RenderRequest` is one user-facing frame: which scene, which
pipeline, at what resolution, when it arrived, and how quickly it must
complete (its latency SLO). A :class:`RenderResponse` records what the
fleet actually did with it — where it ran, how long it queued, whether
its compiled trace came from the cache, and how many cycles the chip
spent reconfiguring for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Cache/memo key of a compiled frame trace.
TraceKey = tuple[str, str, int, int]


@dataclass(frozen=True)
class RenderRequest:
    """One frame requested from the service."""

    request_id: int
    scene: str
    pipeline: str
    width: int
    height: int
    arrival_s: float
    slo_s: float = 0.05  # latency SLO: arrival -> completion deadline
    degraded: bool = False  # admission control moved it to a cheaper pipeline

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigError("request resolution must be positive")
        if self.arrival_s < 0:
            raise ConfigError("arrival time cannot be negative")
        if self.slo_s <= 0:
            raise ConfigError("latency SLO must be positive")

    @property
    def trace_key(self) -> TraceKey:
        """Key under which the compiled program is cached."""
        return (self.scene, self.pipeline, self.width, self.height)

    @property
    def pixels(self) -> int:
        return self.width * self.height


@dataclass(frozen=True)
class RenderResponse:
    """Service-side record of one completed request."""

    request: RenderRequest
    chip_id: int
    batch_id: int
    start_s: float          # when the chip began this frame
    finish_s: float
    cycles: float           # frame cycles (switch cycles excluded)
    switch_cycles: float    # pipeline-switch reconfiguration on the chip
    frame_reconfig_cycles: float  # intra-frame reconfigurations (model)
    energy_j: float
    cache_hit: bool
    # Compile attribution (event engine): simulated compile latency this
    # request triggered, where it ran, and whether a prefetch warmed it.
    compile_s: float = 0.0
    compile_origin: str | None = None  # None | "sync" | "worker" | "prefetch"
    prefetched: bool = False

    @property
    def service_s(self) -> float:
        """Time on the chip, including the pipeline switch."""
        return self.finish_s - self.start_s

    @property
    def queue_s(self) -> float:
        """Time between arrival and the chip starting the frame."""
        return self.start_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency the user observes."""
        return self.finish_s - self.request.arrival_s

    @property
    def slo_met(self) -> bool:
        return self.latency_s <= self.request.slo_s

    def to_dict(self) -> dict:
        """JSON-ready summary (for logs and programmatic consumers)."""
        return {
            "request_id": self.request.request_id,
            "scene": self.request.scene,
            "pipeline": self.request.pipeline,
            "resolution": [self.request.width, self.request.height],
            "arrival_s": self.request.arrival_s,
            "slo_s": self.request.slo_s,
            "degraded": self.request.degraded,
            "chip_id": self.chip_id,
            "batch_id": self.batch_id,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "queue_s": self.queue_s,
            "latency_s": self.latency_s,
            "cycles": self.cycles,
            "switch_cycles": self.switch_cycles,
            "frame_reconfig_cycles": self.frame_reconfig_cycles,
            "energy_j": self.energy_j,
            "cache_hit": self.cache_hit,
            "compile_s": self.compile_s,
            "compile_origin": self.compile_origin,
            "prefetched": self.prefetched,
            "slo_met": self.slo_met,
        }
