"""Planet-scale federation: multi-region serving with trace gossip.

One :class:`~repro.serve.cluster.ServeCluster` is a region's worth of
accelerators; "millions of users" is many regions, each riding its own
time zone's diurnal wave. This module composes clusters into named
:class:`Region`\\ s behind a :class:`GlobalRouter` that places every
request by a latency-, cost-, and load-aware score (sticky per session
where stickiness pays), and replicates each region's persistent
:class:`~repro.serve.trace_library.TraceLibrary` to its peers via
asynchronous gossip — so one region's compile storm warms the planet
before the wave rolls into the next time zone.

**Execution model.** The federation advances in *sync epochs* of
``FederationConfig.sync_cadence_s`` simulated seconds. Within an epoch
each region's arrivals run through the real discrete-event engine
(:func:`~repro.serve.scheduler.simulate_service`) on a fresh fleet but
a *persistent per-region trace cache*, so compile state — the thing
federation exists to move around — carries across epochs exactly as it
does across runs of a warm service. At each epoch boundary every
region folds its newly compiled traces into its library, stamps the
changed records with its per-region version counter, and pushes the
suffix its peer has not acknowledged (classic version-vector
anti-entropy) onto the wire; the message lands ``gossip_delay_s``
later and is applied at the next boundary. A record is therefore never
staler than ``sync_cadence_s + gossip_delay_s`` on a healthy channel —
the staleness bound the config exposes.

**Breaking it on purpose.** A :class:`FederationPlan` injects region
loss (:class:`RegionOutage`) and replication-channel partitions
(:class:`ChannelPartition`), in the spirit of
:mod:`repro.serve.faults`. Under naive routing a request whose home
region is down fails outright; the federated router fails it over to
the best surviving region and charges the migration: the cross-region
RTT *plus* ``failover_cost_s`` land in the request's SLO accounting,
so failover is visible in the attainment numbers, not hidden by them.
Partitioned channels simply stop carrying gossip — version vectors
catch the receiver up after the heal, no replay log needed.

Determinism: identical specs, streams, config, and plan produce an
identical :class:`FederationReport`, byte for byte — the property the
frozen federation goldens pin.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.config import CompileLatencyModel
from repro.errors import ConfigError, SimulationError
from repro.serve.admission import ShedRecord, make_admission_policy
from repro.serve.batcher import PipelineBatcher
from repro.serve.cluster import ServeCluster
from repro.serve.faults import FailedRecord
from repro.serve.metrics import ServiceReport, latency_percentile
from repro.serve.request import RenderRequest, TraceKey
from repro.serve.scheduler import simulate_service
from repro.serve.trace_cache import TraceCache
from repro.serve.trace_library import TraceLibrary, TraceRecord
from repro.serve.traffic import generate_traffic

#: Period of the diurnal traffic pattern (`traffic._diurnal_arrivals`):
#: one compressed "day" of simulated seconds. A region at UTC+h rides
#: the same wave shifted by h/24 of this period.
DIURNAL_PERIOD_S = 4.0

#: Router arms.
ROUTERS = ("naive", "federated")


# ----------------------------------------------------------------------
# Region topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegionSpec:
    """One named region: a fleet, a time zone, and an economics tag.

    ``tz_offset_h`` shifts the region's diurnal wave and prices the
    wire: inter-region RTT grows with circular time-zone distance (a
    crude but monotone proxy for geographic distance).
    ``cost_factor`` scales the region's chip-second price — the router
    trades it off against latency and load.
    """

    name: str
    tz_offset_h: float = 0.0
    n_chips: int = 2
    policy: str = "pipeline-affinity"
    cost_factor: float = 1.0
    cache_capacity: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("region needs a name")
        if "|" in self.name or "@" in self.name or ";" in self.name:
            raise ConfigError(
                f"region name {self.name!r} may not contain '|', '@', or ';'")
        if self.n_chips < 1:
            raise ConfigError(f"region {self.name!r} needs at least one chip")
        if self.cost_factor <= 0:
            raise ConfigError(
                f"region {self.name!r} cost factor must be positive")
        if self.cache_capacity < 0:
            raise ConfigError(
                f"region {self.name!r} cache capacity cannot be negative")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tz_offset_h": self.tz_offset_h,
            "n_chips": self.n_chips,
            "policy": self.policy,
            "cost_factor": self.cost_factor,
            "cache_capacity": self.cache_capacity,
        }


def parse_region_spec(spec: str) -> tuple[RegionSpec, ...]:
    """Parse a CLI region topology.

    Format: ``name[:field=value,...]`` entries joined by ``;`` with
    fields ``tz`` (hours), ``chips``, ``cost``, ``cap`` (cache
    capacity), and ``policy`` — e.g.
    ``"us-east:tz=-5,chips=3;eu-west:tz=1,chips=3,cost=1.2;ap-tokyo:tz=9"``.
    """
    specs: list[RegionSpec] = []
    for raw in spec.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        name, _, body = entry.partition(":")
        name = name.strip()
        fields = {"tz": 0.0, "chips": 2.0, "cost": 1.0, "cap": 64.0,
                  "policy": "pipeline-affinity"}
        if body:
            for pair in body.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or key not in fields:
                    raise ConfigError(
                        f"bad region field {pair!r} in {raw!r}; expected "
                        "tz=, chips=, cost=, cap=, or policy="
                    )
                if key == "policy":
                    fields[key] = value.strip()
                    continue
                try:
                    fields[key] = float(value)
                except ValueError as err:
                    raise ConfigError(
                        f"region field {pair!r} in {raw!r} is not a number"
                    ) from err
        specs.append(RegionSpec(
            name=name,
            tz_offset_h=fields["tz"],
            n_chips=int(fields["chips"]),
            policy=str(fields["policy"]),
            cost_factor=fields["cost"],
            cache_capacity=int(fields["cap"]),
        ))
    if not specs:
        raise ConfigError(f"region spec {spec!r} describes no regions")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ConfigError(f"region spec {spec!r} repeats a region name")
    return tuple(specs)


@dataclass(frozen=True)
class FederationConfig:
    """Knobs of the router and the replication plane.

    The router score of placing a ``home``-homed request in region
    ``r`` is ``rtt(home, r) + load_weight * assigned_load_s(r)/n_chips
    + cost_weight_s * (cost_factor(r) - 1)`` — everything in seconds,
    lowest wins, ties broken by region declaration order. A sticky
    session (keyed by home region and scene) keeps its region while
    that region scores within ``sticky_margin_s`` of the winner, so
    trace locality is not squandered on marginal score noise.

    Gossip pushes version-vector deltas every ``sync_cadence_s`` and
    the wire delivers them ``gossip_delay_s`` later, so on a healthy
    channel no replicated record is staler than
    :attr:`staleness_bound_s`.
    """

    router: str = "federated"
    gossip: bool = True
    sync_cadence_s: float = 0.5
    gossip_delay_s: float = 0.25
    local_rtt_s: float = 0.002
    rtt_per_hour_s: float = 0.004
    failover_cost_s: float = 0.02
    sticky_margin_s: float = 0.005
    load_weight: float = 1.0
    cost_weight_s: float = 0.002
    default_service_s: float = 0.004
    service_ewma_alpha: float = 0.3
    max_batch: int = 8
    admission: Optional[str] = None

    def __post_init__(self) -> None:
        if self.router not in ROUTERS:
            raise ConfigError(
                f"unknown router {self.router!r}; choose from {ROUTERS}")
        if self.sync_cadence_s <= 0:
            raise ConfigError("sync cadence must be positive")
        if self.gossip_delay_s < 0:
            raise ConfigError("gossip delay cannot be negative")
        for name in ("local_rtt_s", "rtt_per_hour_s", "failover_cost_s",
                     "sticky_margin_s", "load_weight", "cost_weight_s",
                     "default_service_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"federation knob {name} is negative")
        if not 0.0 < self.service_ewma_alpha <= 1.0:
            raise ConfigError("service EWMA alpha must be in (0, 1]")

    @property
    def staleness_bound_s(self) -> float:
        """Max age of a replicated record on a healthy channel: one
        sync cadence of local accumulation plus the wire delay."""
        return self.sync_cadence_s + self.gossip_delay_s

    def to_dict(self) -> dict:
        return {
            "router": self.router,
            "gossip": self.gossip,
            "sync_cadence_s": self.sync_cadence_s,
            "gossip_delay_s": self.gossip_delay_s,
            "staleness_bound_s": self.staleness_bound_s,
            "local_rtt_s": self.local_rtt_s,
            "rtt_per_hour_s": self.rtt_per_hour_s,
            "failover_cost_s": self.failover_cost_s,
            "sticky_margin_s": self.sticky_margin_s,
            "load_weight": self.load_weight,
            "cost_weight_s": self.cost_weight_s,
            "admission": self.admission,
        }


def _ring_hours(a: float, b: float) -> float:
    """Circular time-zone distance in hours (0..12)."""
    d = abs(a - b) % 24.0
    return min(d, 24.0 - d)


def region_rtt_s(config: FederationConfig,
                 a: RegionSpec, b: RegionSpec) -> float:
    """One-way network latency a ``home``-region request pays to be
    served in region ``b`` (``local_rtt_s`` inside one region)."""
    if a.name == b.name:
        return config.local_rtt_s
    return (config.local_rtt_s
            + config.rtt_per_hour_s * _ring_hours(a.tz_offset_h,
                                                  b.tz_offset_h))


# ----------------------------------------------------------------------
# Injected federation faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegionOutage:
    """A whole region offline during ``[start_s, end_s)`` (``end_s``
    ``None`` means it never comes back)."""

    region: str
    start_s: float
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError("outage start cannot be negative")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigError("outage must end after it starts")

    def covers(self, t: float) -> bool:
        return t >= self.start_s and (self.end_s is None or t < self.end_s)

    def to_dict(self) -> dict:
        return {"region": self.region, "start_s": self.start_s,
                "end_s": self.end_s}


@dataclass(frozen=True)
class ChannelPartition:
    """The replication channel between two regions severed during
    ``[start_s, end_s)`` — request routing is unaffected, only gossip
    stops flowing (and version vectors catch up after the heal)."""

    a: str
    b: str
    start_s: float
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ConfigError("a partition needs two distinct regions")
        if self.start_s < 0:
            raise ConfigError("partition start cannot be negative")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigError("partition must end after it starts")

    def covers(self, t: float) -> bool:
        return t >= self.start_s and (self.end_s is None or t < self.end_s)

    def blocks(self, x: str, y: str, t: float) -> bool:
        return (self.covers(t)
                and {x, y} == {self.a, self.b})

    def to_dict(self) -> dict:
        return {"a": self.a, "b": self.b, "start_s": self.start_s,
                "end_s": self.end_s}


class FederationPlan:
    """Immutable schedule of region outages and channel partitions."""

    def __init__(self,
                 outages: Iterable[RegionOutage] = (),
                 partitions: Iterable[ChannelPartition] = ()) -> None:
        self.outages = tuple(outages)
        self.partitions = tuple(partitions)

    @property
    def empty(self) -> bool:
        return not self.outages and not self.partitions

    def region_down(self, name: str, t: float) -> bool:
        return any(o.region == name and o.covers(t) for o in self.outages)

    def channel_blocked(self, x: str, y: str, t: float) -> bool:
        return any(p.blocks(x, y, t) for p in self.partitions)

    def validate_regions(self, names: Iterable[str]) -> None:
        known = set(names)
        for outage in self.outages:
            if outage.region not in known:
                raise ConfigError(
                    f"outage names unknown region {outage.region!r}")
        for part in self.partitions:
            for end in (part.a, part.b):
                if end not in known:
                    raise ConfigError(
                        f"partition names unknown region {end!r}")

    @classmethod
    def parse(cls, spec: str) -> "FederationPlan":
        """Parse a CLI fault plan, :meth:`faults.FaultPlan.parse`-style.

        ``;``-joined clauses: ``outage=REGION@START[+DURATION]`` (no
        duration = permanent) and ``partition=A|B@START[+DURATION]`` —
        e.g. ``"outage=eu-west@0.8+0.6;partition=us-east|ap-tokyo@0.4+0.8"``.
        """
        outages: list[RegionOutage] = []
        partitions: list[ChannelPartition] = []
        for raw in spec.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            kind, sep, body = entry.partition("=")
            kind = kind.strip()
            if not sep or kind not in ("outage", "partition"):
                raise ConfigError(
                    f"bad federation fault {entry!r}; expected "
                    "outage=REGION@START[+DUR] or partition=A|B@START[+DUR]"
                )
            target, sep, when = body.partition("@")
            if not sep:
                raise ConfigError(
                    f"federation fault {entry!r} is missing '@start'")
            start_text, sep, duration_text = when.partition("+")
            try:
                start = float(start_text)
                end = (start + float(duration_text)) if sep else None
            except ValueError as err:
                raise ConfigError(
                    f"bad time in federation fault {entry!r}") from err
            if kind == "outage":
                outages.append(RegionOutage(
                    region=target.strip(), start_s=start, end_s=end))
            else:
                a, sep, b = target.partition("|")
                if not sep:
                    raise ConfigError(
                        f"partition {entry!r} needs two regions 'A|B'")
                partitions.append(ChannelPartition(
                    a=a.strip(), b=b.strip(), start_s=start, end_s=end))
        return cls(outages=outages, partitions=partitions)

    def to_dict(self) -> dict:
        return {
            "outages": [o.to_dict() for o in self.outages],
            "partitions": [p.to_dict() for p in self.partitions],
        }


# ----------------------------------------------------------------------
# Gossip plumbing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GossipMessage:
    """One anti-entropy push: the records of ``src`` that ``dst`` has
    not acknowledged, each stamped ``(origin, version)``."""

    src: str
    dst: str
    sent_s: float
    records: tuple[tuple[TraceRecord, str, int], ...]


class Region:
    """One region's runtime: a persistent trace cache + library, the
    per-region version counter, and the epoch-by-epoch accounting.

    The fleet itself is *not* persistent — each sync epoch runs on a
    fresh :class:`ServeCluster` (chips carry lifetime accounting and
    must not be reused), while the :class:`TraceCache` carries compiled
    state across epochs the way a warm service carries it across runs.
    """

    def __init__(
        self,
        spec: RegionSpec,
        config: FederationConfig,
        *,
        compile_fn: Optional[Callable] = None,
        latency_model: Optional[CompileLatencyModel] = None,
        library: Optional[TraceLibrary] = None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.latency_model = latency_model
        kwargs = {} if compile_fn is None else {"compile_fn": compile_fn}
        self.cache = TraceCache(capacity=spec.cache_capacity,
                                latency_model=latency_model, **kwargs)
        self.library = library if library is not None else TraceLibrary()
        if len(self.library):
            self.library.warm(self.cache)
        # Replication state: a per-region update counter, each record's
        # latest (origin, version) stamp, the version vector of stamps
        # this region has seen, and the last payload published per key
        # (so only genuinely changed records are re-stamped).
        self.clock = 0
        self.versions: dict[TraceKey, tuple[str, int]] = {}
        self.version_vector: dict[str, int] = {spec.name: 0}
        self._last_published: dict[TraceKey, TraceRecord] = {}
        # Accounting.
        self.reports: list[ServiceReport] = []
        self.epoch_timeline: list[dict] = []
        self.service_ewma_s = 0.0
        self.queue_ewma_s = 0.0
        self.gossip_records_sent = 0
        self.gossip_records_received = 0
        self.gossip_warm_installs = 0

    # -- serving -------------------------------------------------------
    def note_idle_epoch(self) -> None:
        """An epoch with nothing assigned drains the queue signal —
        an idle region must become attractive to the router again."""
        self.queue_ewma_s *= 1.0 - self.config.service_ewma_alpha

    def run_epoch(self, epoch: int, t0: float,
                  requests: Sequence[RenderRequest]) -> ServiceReport:
        """Serve one sync epoch's arrivals on a fresh fleet backed by
        the region's persistent cache; folds compiled traces and hit
        deltas into the library and returns the engine report."""
        hits_baseline = dict(self.cache.hits_by_key)
        misses_before = self.cache.stats.misses
        hits_before = self.cache.stats.hits
        admission = (make_admission_policy(self.config.admission)
                     if self.config.admission else None)
        report = simulate_service(
            requests,
            ServeCluster(self.spec.n_chips, policy=self.spec.policy),
            cache=self.cache,
            batcher=PipelineBatcher(max_batch=self.config.max_batch),
            admission=admission,
            compile_latency=self.latency_model,
        )
        run_hits = {
            key: hits - hits_baseline.get(key, 0)
            for key, hits in self.cache.hits_by_key.items()
            if hits > hits_baseline.get(key, 0)
        }
        self.library.absorb(self.cache, run_hits=run_hits)
        if report.responses:
            mean_service = float(np.mean(
                [resp.finish_s - resp.start_s for resp in report.responses]))
            alpha = self.config.service_ewma_alpha
            self.service_ewma_s = (
                mean_service if self.service_ewma_s == 0.0
                else (1.0 - alpha) * self.service_ewma_s
                + alpha * mean_service)
            self.queue_ewma_s = ((1.0 - alpha) * self.queue_ewma_s
                                 + alpha * float(report.mean_queue_s))
        self.reports.append(report)
        self.epoch_timeline.append({
            "epoch": epoch,
            "t0": t0,
            "n_assigned": len(requests),
            "misses": self.cache.stats.misses - misses_before,
            "hits": self.cache.stats.hits - hits_before,
        })
        return report

    # -- replication ---------------------------------------------------
    def publish_local(self) -> int:
        """Stamp every record whose payload changed since the last
        boundary with this region's next version; returns how many."""
        stamped = 0
        for key in self.library.keys:
            record = self.library.get(key)
            if self._last_published.get(key) == record:
                continue
            self.clock += 1
            self.versions[key] = (self.spec.name, self.clock)
            self.version_vector[self.spec.name] = self.clock
            self._last_published[key] = record
            stamped += 1
        return stamped

    def delta_for(self, acked: Mapping[str, int]) -> tuple:
        """Records stamped beyond the peer's acknowledged version
        vector, in deterministic (origin, version) order."""
        out = [
            (self.library.get(key), origin, version)
            for key, (origin, version) in self.versions.items()
            if version > acked.get(origin, 0)
        ]
        out.sort(key=lambda item: (item[1], item[2]))
        return tuple(out)

    def apply_gossip(self, message: GossipMessage) -> int:
        """Merge one peer push: adopt unseen stamps, fold the records
        into the library, and warm the cache for keys not resident —
        this is the planet-warming step. Returns warm installs."""
        installed = 0
        for record, origin, version in message.records:
            self.gossip_records_received += 1
            if version <= self.version_vector.get(origin, 0):
                continue
            self.version_vector[origin] = version
            current = self.library.get(record.key)
            if current is None or record.hits > current.hits:
                self.library.merge_record(record)
                self._last_published[record.key] = record
                self.versions[record.key] = (origin, version)
            if (record.key not in self.cache
                    and self.cache.capacity > 0):
                program = self.cache.compile_fn(record.key)
                self.cache.warm_start(record.key, program,
                                      sim_cost_s=record.compile_s)
                self.gossip_warm_installs += 1
                installed += 1
        return installed

    # -- rollups -------------------------------------------------------
    def summary(self) -> dict:
        chip_seconds = sum(r.total_chip_seconds for r in self.reports)
        cost_units = sum(r.total_cost_units for r in self.reports)
        return {
            "spec": self.spec.to_dict(),
            "n_epochs_served": len(self.reports),
            "chip_seconds": chip_seconds,
            "cost_units": cost_units * self.spec.cost_factor,
            "cache": self.cache.stats.to_dict(),
            "gossip_records_sent": self.gossip_records_sent,
            "gossip_records_received": self.gossip_records_received,
            "gossip_warm_installs": self.gossip_warm_installs,
            "library_size": len(self.library),
            "epoch_timeline": list(self.epoch_timeline),
        }


# ----------------------------------------------------------------------
# Global router
# ----------------------------------------------------------------------
class GlobalRouter:
    """Places each request in a region by score; see
    :class:`FederationConfig` for the formula. ``naive`` mode pins
    every request to its home region and fails it when that region is
    down — the control arm the federated router is judged against."""

    def __init__(self, regions: "OrderedDict[str, Region]",
                 config: FederationConfig, plan: FederationPlan) -> None:
        self._regions = regions
        self._config = config
        self._plan = plan
        self._rtt = {
            (a.spec.name, b.spec.name): region_rtt_s(config, a.spec, b.spec)
            for a in regions.values() for b in regions.values()
        }
        self._load_s: dict[str, float] = {name: 0.0 for name in regions}
        self._sticky: dict[tuple[str, str], str] = {}
        self.n_routed = 0
        self.n_remote = 0
        self.n_failovers = 0
        self.n_sticky_holds = 0
        self.n_unroutable = 0

    def begin_epoch(self) -> None:
        """Reset the per-epoch assigned-load ledger."""
        self._load_s = {name: 0.0 for name in self._regions}

    def _score(self, home: str, region: Region) -> float:
        spec = region.spec
        # Load counts only *overflow*: assigned service-seconds beyond
        # what the region's fleet can absorb within one sync epoch.
        # Under capacity a region serves at RTT, so requests stay home
        # (trace locality); past capacity the backlog-per-chip is the
        # projected extra wait, and overflow spills to the nearest
        # under-loaded region — follow-the-sun borrowing of another
        # time zone's idle night capacity.
        capacity_s = spec.n_chips * self._config.sync_cadence_s
        overflow = max(0.0, self._load_s[spec.name] - capacity_s)
        return (self._rtt[(home, spec.name)]
                + self._config.load_weight
                * (region.queue_ewma_s + overflow / spec.n_chips)
                + self._config.cost_weight_s * (spec.cost_factor - 1.0))

    def route(self, request: RenderRequest, home: str,
              now: float) -> tuple[Optional[str], float, bool]:
        """Place one request; returns ``(region | None, extra_latency_s,
        failover)``. ``extra_latency_s`` is the network RTT plus (on
        failover) the session-migration cost — it lands on the
        request's federated latency, and therefore in SLO accounting."""
        config = self._config
        plan = self._plan
        home_up = not plan.region_down(home, now)
        if config.router == "naive":
            if not home_up:
                self.n_unroutable += 1
                return None, 0.0, False
            self._note_assign(home)
            self.n_routed += 1
            return home, config.local_rtt_s, False

        best: Optional[str] = None
        best_score = float("inf")
        for name, region in self._regions.items():
            if plan.region_down(name, now):
                continue
            score = self._score(home, region)
            if score < best_score:
                best, best_score = name, score
        if best is None:
            self.n_unroutable += 1
            return None, 0.0, False

        sticky_key = (home, request.scene)
        sticky = self._sticky.get(sticky_key)
        if (sticky is not None and sticky != best
                and not plan.region_down(sticky, now)):
            if (self._score(home, self._regions[sticky])
                    <= best_score + config.sticky_margin_s):
                best = sticky
                self.n_sticky_holds += 1
        self._sticky[sticky_key] = best

        failover = (best != home) and not home_up
        if failover:
            self.n_failovers += 1
        if best != home:
            self.n_remote += 1
        extra = self._rtt[(home, best)]
        if failover:
            extra += config.failover_cost_s
        self._note_assign(best)
        self.n_routed += 1
        return best, extra, failover

    def _note_assign(self, name: str) -> None:
        region = self._regions[name]
        est = region.service_ewma_s or self._config.default_service_s
        self._load_s[name] += est

    def stats(self) -> dict:
        return {
            "n_routed": self.n_routed,
            "n_remote": self.n_remote,
            "n_failovers": self.n_failovers,
            "n_sticky_holds": self.n_sticky_holds,
            "n_unroutable": self.n_unroutable,
        }


# ----------------------------------------------------------------------
# Federated responses and report
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FederatedResponse:
    """One completed request as the *user* experienced it: the engine
    response plus where it ran and the network/migration latency the
    router charged on top."""

    response: object            # RenderResponse
    home: str
    region: str
    extra_latency_s: float      # RTT home->region (+ failover cost)
    failover: bool

    @property
    def latency_s(self) -> float:
        return self.response.latency_s + self.extra_latency_s

    @property
    def slo_met(self) -> bool:
        return self.latency_s <= self.response.request.effective_slo_s


@dataclass
class FederationReport:
    """What the federation did with one planet-wide workload."""

    config: FederationConfig
    specs: tuple[RegionSpec, ...]
    completed: list[FederatedResponse]
    shed: list[ShedRecord]
    failed: list[FailedRecord]
    n_offered: int
    n_epochs: int
    regions: dict = field(default_factory=dict)
    router_stats: dict = field(default_factory=dict)
    gossip_stats: dict = field(default_factory=dict)
    plan: Optional[FederationPlan] = None

    def __post_init__(self) -> None:
        if self.n_offered != (self.n_requests + self.n_shed
                              + self.n_failed):
            raise SimulationError(
                "federation lost requests: offered "
                f"{self.n_offered} != completed {self.n_requests} "
                f"+ shed {self.n_shed} + failed {self.n_failed}"
            )

    # -- conservation and headline metrics -----------------------------
    @property
    def n_requests(self) -> int:
        return len(self.completed)

    @property
    def n_shed(self) -> int:
        return len(self.shed)

    @property
    def n_failed(self) -> int:
        return len(self.failed)

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([f.latency_s for f in self.completed])

    def latency_p(self, q: float) -> float:
        return latency_percentile(self.latencies_s, q)

    @property
    def slo_attainment(self) -> float:
        """SLO attainment over *completed* requests, with network RTT
        and failover migration cost included in every latency."""
        if not self.completed:
            return 0.0
        return sum(f.slo_met for f in self.completed) / len(self.completed)

    @property
    def goodput_slo_attainment(self) -> float:
        """Attainment over *offered* traffic: sheds and failures count
        as misses — the honest planet-wide number (a naive router that
        fails a whole region's day cannot hide it here)."""
        if not self.n_offered:
            return 0.0
        return sum(f.slo_met for f in self.completed) / self.n_offered

    @property
    def makespan_s(self) -> float:
        if not self.completed:
            return 0.0
        start = min(f.response.request.arrival_s for f in self.completed)
        end = max(f.response.finish_s for f in self.completed)
        return max(end - start, 0.0)

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.n_requests / span if span > 0 else 0.0

    @property
    def n_failovers(self) -> int:
        return sum(f.failover for f in self.completed)

    @property
    def n_remote(self) -> int:
        return sum(f.region != f.home for f in self.completed)

    @property
    def total_chip_seconds(self) -> float:
        return sum(entry["chip_seconds"] for entry in self.regions.values())

    @property
    def total_cost_units(self) -> float:
        return sum(entry["cost_units"] for entry in self.regions.values())

    def to_dict(self) -> dict:
        return {
            "router": self.config.router,
            "gossip": self.config.gossip,
            "n_offered": self.n_offered,
            "n_requests": self.n_requests,
            "n_shed": self.n_shed,
            "n_failed": self.n_failed,
            "n_epochs": self.n_epochs,
            "n_remote": self.n_remote,
            "n_failovers": self.n_failovers,
            "slo_attainment": self.slo_attainment,
            "goodput_slo_attainment": self.goodput_slo_attainment,
            "latency_p50_ms": self.latency_p(50) * 1e3,
            "latency_p95_ms": self.latency_p(95) * 1e3,
            "latency_p99_ms": self.latency_p(99) * 1e3,
            "throughput_rps": self.throughput_rps,
            "total_chip_seconds": self.total_chip_seconds,
            "total_cost_units": self.total_cost_units,
            "config": self.config.to_dict(),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "router_stats": dict(self.router_stats),
            "gossip_stats": dict(self.gossip_stats),
            "regions": {name: dict(entry)
                        for name, entry in self.regions.items()},
        }


def format_federation_report(report: FederationReport) -> str:
    """Human-readable summary table, one row per region."""
    lines = [
        f"federation: router={report.config.router} "
        f"gossip={'on' if report.config.gossip else 'off'} "
        f"epochs={report.n_epochs} "
        f"staleness_bound={report.config.staleness_bound_s * 1e3:.0f}ms",
        f"  offered {report.n_offered}  completed {report.n_requests}  "
        f"shed {report.n_shed}  failed {report.n_failed}  "
        f"remote {report.n_remote}  failovers {report.n_failovers}",
        f"  SLO {report.slo_attainment * 100:.1f}% "
        f"(goodput {report.goodput_slo_attainment * 100:.1f}%)  "
        f"p50 {report.latency_p(50) * 1e3:.2f}ms  "
        f"p99 {report.latency_p(99) * 1e3:.2f}ms  "
        f"{report.throughput_rps:.0f} req/s  "
        f"{report.total_cost_units:.3f} cost units",
    ]
    for name, entry in report.regions.items():
        cache = entry["cache"]
        lines.append(
            f"  region {name:<12} served {entry['n_served']:>6}  "
            f"misses {cache['misses']:>5}  warmed {cache['warmed']:>5} "
            f"(gossip {entry['gossip_warm_installs']:>5})  "
            f"chip-s {entry['chip_seconds']:.3f}  "
            f"cost {entry['cost_units']:.3f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Traffic: time-zone-shifted diurnal waves
# ----------------------------------------------------------------------
def generate_federation_traffic(
    specs: Sequence[RegionSpec],
    n_requests_per_region: int = 300,
    rate_rps: float = 150.0,
    seed: int = 0,
    pattern: str = "diurnal",
    **traffic_kwargs,
) -> "OrderedDict[str, list[RenderRequest]]":
    """One seeded stream per region, phase-shifted by its time zone.

    Each region draws an independent stream from the shared generators
    (per-region seeds derived as ``seed * 1_000_003 + index``, the
    tenant-traffic idiom) and shifts every arrival by
    ``tz_offset_h / 24`` of the diurnal period — so the planet's load
    is a rolling wave, not a synchronized pulse. Request ids are
    renumbered globally in arrival order so the merged workload is one
    coherent trace.
    """
    shifted: list[tuple[float, int, int, str, RenderRequest]] = []
    for index, spec in enumerate(specs):
        stream = generate_traffic(
            pattern=pattern,
            n_requests=n_requests_per_region,
            rate_rps=rate_rps,
            seed=seed * 1_000_003 + index,
            **traffic_kwargs,
        )
        phase_s = (spec.tz_offset_h % 24.0) / 24.0 * DIURNAL_PERIOD_S
        for request in stream:
            moved = (request if phase_s == 0.0 else
                     replace(request, arrival_s=request.arrival_s + phase_s))
            shifted.append((moved.arrival_s, index, request.request_id,
                            spec.name, moved))
    shifted.sort(key=lambda item: item[:3])
    streams: "OrderedDict[str, list[RenderRequest]]" = OrderedDict(
        (spec.name, []) for spec in specs)
    for new_id, (_, _, _, home, request) in enumerate(shifted):
        streams[home].append(replace(request, request_id=new_id))
    return streams


# ----------------------------------------------------------------------
# The federation loop
# ----------------------------------------------------------------------
def simulate_federation(
    specs: Sequence[RegionSpec] | str,
    streams: Optional[Mapping[str, Sequence[RenderRequest]]] = None,
    *,
    config: Optional[FederationConfig] = None,
    plan: Optional[FederationPlan] = None,
    compile_fn: Optional[Callable] = None,
    compile_latency: Optional[CompileLatencyModel] = None,
    n_requests_per_region: int = 300,
    rate_rps: float = 150.0,
    seed: int = 0,
    pattern: str = "diurnal",
    libraries: Optional[Mapping[str, TraceLibrary]] = None,
) -> FederationReport:
    """Serve a planet-wide workload across federated regions.

    ``specs`` is a sequence of :class:`RegionSpec` or a
    :func:`parse_region_spec` string; ``streams`` maps home-region name
    to its request list (generated via
    :func:`generate_federation_traffic` when omitted).
    ``compile_latency`` defaults to a :class:`CompileLatencyModel` —
    compile-on-miss is synchronously *visible*, which is the entire
    point of gossip-warming remote caches. Deterministic: identical
    inputs produce an identical report.
    """
    if isinstance(specs, str):
        specs = parse_region_spec(specs)
    specs = tuple(specs)
    if not specs:
        raise ConfigError("federation needs at least one region")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigError("federation region names must be unique")
    config = config if config is not None else FederationConfig()
    plan = plan if plan is not None else FederationPlan()
    plan.validate_regions(names)
    latency_model = (compile_latency if compile_latency is not None
                     else CompileLatencyModel())
    if streams is None:
        streams = generate_federation_traffic(
            specs, n_requests_per_region=n_requests_per_region,
            rate_rps=rate_rps, seed=seed, pattern=pattern)
    unknown = set(streams) - set(names)
    if unknown:
        raise ConfigError(
            f"traffic streams name unknown regions {sorted(unknown)}")

    regions: "OrderedDict[str, Region]" = OrderedDict()
    for spec in specs:
        regions[spec.name] = Region(
            spec, config,
            compile_fn=compile_fn,
            latency_model=latency_model,
            library=(libraries or {}).get(spec.name),
        )
    router = GlobalRouter(regions, config, plan)

    arrivals: list[tuple[float, int, int, str, RenderRequest]] = []
    for index, name in enumerate(names):
        for request in streams.get(name, ()):
            arrivals.append((request.arrival_s, index,
                             request.request_id, name, request))
    if not arrivals:
        raise ConfigError("federation needs at least one request")
    arrivals.sort(key=lambda item: item[:3])
    n_offered = len(arrivals)

    cadence = config.sync_cadence_s
    horizon = arrivals[-1][0]
    n_epochs = int(horizon / cadence) + 1

    completed: list[FederatedResponse] = []
    shed: list[ShedRecord] = []
    failed: list[FailedRecord] = []
    pending_gossip: list[tuple[float, int, GossipMessage]] = []
    gossip_seq = 0
    n_messages = 0
    n_postponed = 0
    acked: dict[tuple[str, str], dict[str, int]] = {
        (a, b): {} for a in names for b in names if a != b}

    pointer = 0
    for epoch in range(n_epochs):
        t0 = epoch * cadence
        t1 = (epoch + 1) * cadence if epoch < n_epochs - 1 else float("inf")

        # 1) Deliver gossip that has landed by this boundary. A down
        #    receiver postpones delivery to the next boundary (its
        #    replication log buffers through the outage).
        redo: list[tuple[float, int, GossipMessage]] = []
        while pending_gossip and pending_gossip[0][0] <= t0 + 1e-12:
            _, seq, message = heapq.heappop(pending_gossip)
            if plan.region_down(message.dst, t0):
                redo.append((t0 + cadence, seq, message))
                n_postponed += 1
            else:
                regions[message.dst].apply_gossip(message)
        for item in redo:
            heapq.heappush(pending_gossip, item)

        # 2) Route this epoch's arrivals.
        router.begin_epoch()
        assigned: dict[str, list[RenderRequest]] = {}
        meta: dict[int, tuple[str, float, bool]] = {}
        while pointer < len(arrivals) and arrivals[pointer][0] < t1:
            _, _, _, home, request = arrivals[pointer]
            pointer += 1
            target, extra, failover = router.route(
                request, home, now=request.arrival_s)
            if target is None:
                failed.append(FailedRecord(
                    request=request,
                    failed_at_s=request.arrival_s,
                    reason=(f"home region {home} down"
                            if config.router == "naive"
                            else "no region available"),
                ))
                continue
            assigned.setdefault(target, []).append(request)
            meta[request.request_id] = (home, extra, failover)

        # 3) Run each serving region's epoch on the shared engine.
        for name, region in regions.items():
            batch = assigned.get(name)
            if not batch:
                region.note_idle_epoch()
                continue
            report = region.run_epoch(epoch, t0, batch)
            for response in report.responses:
                home, extra, failover = meta[response.request.request_id]
                completed.append(FederatedResponse(
                    response=response,
                    home=home,
                    region=name,
                    extra_latency_s=extra,
                    failover=failover,
                ))
            shed.extend(report.shed)
            failed.extend(report.failed)

        # 4) Publish + gossip at the boundary. Down or partitioned
        #    endpoints skip the push; the version vectors make the
        #    catch-up automatic after a heal.
        if not config.gossip or epoch == n_epochs - 1:
            continue
        boundary = (epoch + 1) * cadence
        for region in regions.values():
            region.publish_local()
        for src_name, src in regions.items():
            if plan.region_down(src_name, boundary):
                continue
            for dst_name in regions:
                if dst_name == src_name:
                    continue
                if plan.channel_blocked(src_name, dst_name, boundary):
                    continue
                delta = src.delta_for(acked[(src_name, dst_name)])
                if not delta:
                    continue
                acked[(src_name, dst_name)] = dict(src.version_vector)
                src.gossip_records_sent += len(delta)
                n_messages += 1
                gossip_seq += 1
                heapq.heappush(pending_gossip, (
                    boundary + config.gossip_delay_s,
                    gossip_seq,
                    GossipMessage(src=src_name, dst=dst_name,
                                  sent_s=boundary, records=delta),
                ))

    region_summaries: "OrderedDict[str, dict]" = OrderedDict()
    served_by_region: dict[str, int] = {}
    for item in completed:
        served_by_region[item.region] = served_by_region.get(item.region, 0) + 1
    for name, region in regions.items():
        entry = region.summary()
        entry["n_served"] = served_by_region.get(name, 0)
        region_summaries[name] = entry

    return FederationReport(
        config=config,
        specs=specs,
        completed=completed,
        shed=shed,
        failed=failed,
        n_offered=n_offered,
        n_epochs=n_epochs,
        regions=region_summaries,
        router_stats=router.stats(),
        gossip_stats={
            "messages": n_messages,
            "postponed_deliveries": n_postponed,
            "records_sent": sum(r.gossip_records_sent
                                for r in regions.values()),
            "records_received": sum(r.gossip_records_received
                                    for r in regions.values()),
            "warm_installs": sum(r.gossip_warm_installs
                                 for r in regions.values()),
            "sync_cadence_s": config.sync_cadence_s,
            "gossip_delay_s": config.gossip_delay_s,
            "staleness_bound_s": config.staleness_bound_s,
        },
        plan=plan,
    )
