"""A fleet of Uni-Render chips with pluggable sharding policies.

The cluster tracks, per chip, when it frees up, which pipeline its PE
array is currently configured for, and lifetime accounting (busy time,
cycles, energy, reconfigurations). A sharding policy picks the chip a
batch runs on:

* ``round-robin`` — rotate through chips regardless of state.
* ``least-loaded`` — the chip that frees up earliest.
* ``pipeline-affinity`` — prefer a chip already configured for the
  batch's pipeline when waiting for it costs less than reconfiguring a
  cold one; fall back to least-loaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import AcceleratorConfig
from repro.core.simulator import UniRenderAccelerator
from repro.errors import ConfigError
from repro.serve.batcher import Batch


@dataclass
class ChipState:
    """One accelerator of the fleet plus its serving state."""

    chip_id: int
    accelerator: UniRenderAccelerator
    free_at_s: float = 0.0
    configured_pipeline: str | None = None

    # Lifetime accounting.
    busy_s: float = 0.0
    requests_served: int = 0
    frame_cycles: float = 0.0
    switch_cycles: float = 0.0          # service-level pipeline switches
    frame_reconfig_cycles: float = 0.0  # intra-frame reconfigurations
    pipeline_switches: int = 0
    energy_j: float = 0.0

    @property
    def config(self) -> AcceleratorConfig:
        return self.accelerator.config

    @property
    def switch_s(self) -> float:
        """Wall time of one pipeline switch on this chip."""
        return self.config.reconfigure_cycles / self.config.clock_hz

    def utilization(self, horizon_s: float) -> float:
        return self.busy_s / horizon_s if horizon_s > 0 else 0.0

    def to_dict(self, horizon_s: float) -> dict:
        return {
            "chip_id": self.chip_id,
            "requests_served": self.requests_served,
            "busy_s": self.busy_s,
            "utilization": self.utilization(horizon_s),
            "pipeline_switches": self.pipeline_switches,
            "switch_cycles": self.switch_cycles,
            "frame_reconfig_cycles": self.frame_reconfig_cycles,
            "energy_j": self.energy_j,
            "configured_pipeline": self.configured_pipeline,
        }


#: A policy maps (chips, batch, now) -> the chip to run the batch on.
ShardingPolicy = Callable[[list[ChipState], Batch, float], ChipState]


def _round_robin() -> ShardingPolicy:
    state = {"next": 0}

    def pick(chips: list[ChipState], batch: Batch, now: float) -> ChipState:
        chip = chips[state["next"] % len(chips)]
        state["next"] += 1
        return chip

    return pick


def _least_loaded(chips: list[ChipState], batch: Batch, now: float) -> ChipState:
    return min(chips, key=lambda c: (c.free_at_s, c.chip_id))


def _pipeline_affinity(chips: list[ChipState], batch: Batch, now: float) -> ChipState:
    coldest = _least_loaded(chips, batch, now)
    warm = [c for c in chips if c.configured_pipeline == batch.pipeline]
    if not warm:
        return coldest
    warmest = min(warm, key=lambda c: (c.free_at_s, c.chip_id))
    # Waiting for the warm chip is worth at most one avoided switch.
    cold_start = max(now, coldest.free_at_s)
    warm_start = max(now, warmest.free_at_s)
    if warm_start <= cold_start + coldest.switch_s:
        return warmest
    return coldest


#: Registry of policy factories (fresh state per cluster).
SHARDING_POLICIES: dict[str, Callable[[], ShardingPolicy]] = {
    "round-robin": _round_robin,
    "least-loaded": lambda: _least_loaded,
    "pipeline-affinity": lambda: _pipeline_affinity,
}


class ServeCluster:
    """N identical (by default) Uni-Render chips behind one dispatcher."""

    def __init__(
        self,
        n_chips: int = 4,
        config: AcceleratorConfig | None = None,
        policy: str = "pipeline-affinity",
    ) -> None:
        if n_chips < 1:
            raise ConfigError("cluster needs at least one chip")
        if policy not in SHARDING_POLICIES:
            raise ConfigError(
                f"unknown sharding policy {policy!r}; "
                f"choose from {sorted(SHARDING_POLICIES)}"
            )
        self.policy_name = policy
        self._policy = SHARDING_POLICIES[policy]()
        self.chips = [
            ChipState(i, UniRenderAccelerator(config)) for i in range(n_chips)
        ]

    def __len__(self) -> int:
        return len(self.chips)

    # ------------------------------------------------------------------
    def select_chip(self, batch: Batch, now: float) -> ChipState:
        return self._policy(self.chips, batch, now)

    @property
    def earliest_free_s(self) -> float:
        return min(chip.free_at_s for chip in self.chips)
