"""A fleet of Uni-Render chips with pluggable sharding policies.

The cluster tracks, per chip, when it frees up, which pipeline its PE
array is currently configured for, and lifetime accounting (busy time,
cycles, energy, reconfigurations, provisioned cost). Fleets may be
*heterogeneous* — each chip its own :class:`AcceleratorConfig` (mixed
PE/SRAM scales) — and *elastic*: the autoscaler adds chips (with a
warm-up delay) and retires them mid-run; retired chips stop receiving
work but keep their accounting for the final report.

A sharding policy picks the chip a batch runs on:

* ``round-robin`` — rotate through chips, skipping busy chips whenever
  an idle one exists at dispatch time.
* ``least-loaded`` — the chip that frees up earliest.
* ``pipeline-affinity`` — prefer a chip already configured for the
  batch's pipeline when waiting for it costs less than reconfiguring a
  cold one; fall back to least-loaded.
* ``cost-aware`` — the cheapest chip (by provisioned cost rate) that
  can still start the batch within its SLO deadline; ties break to the
  earliest-free chip, and when no chip makes the deadline the policy
  degrades to least-loaded to limit the damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Container, Mapping, Sequence

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.core.simulator import UniRenderAccelerator
from repro.errors import ConfigError
from repro.serve.batcher import Batch


@dataclass
class ChipState:
    """One accelerator of the fleet plus its serving state."""

    chip_id: int
    accelerator: UniRenderAccelerator
    free_at_s: float = 0.0
    configured_pipeline: str | None = None

    # Elastic lifecycle: when the chip joined the fleet and (if the
    # autoscaler retired it) when it stopped accruing provisioned cost.
    added_at_s: float = 0.0
    retired_at_s: float | None = None

    # Lifetime accounting.
    busy_s: float = 0.0
    requests_served: int = 0
    frame_cycles: float = 0.0
    switch_cycles: float = 0.0          # service-level pipeline switches
    frame_reconfig_cycles: float = 0.0  # intra-frame reconfigurations
    pipeline_switches: int = 0
    energy_j: float = 0.0

    # Fault lifecycle (driven by a FaultPlan; all zero on healthy runs).
    down_since_s: float | None = None   # open outage start, None == up
    down_s: float = 0.0                 # closed-outage downtime total
    n_crashes: int = 0
    lost_work_s: float = 0.0            # chip time burned on aborted frames

    @property
    def config(self) -> AcceleratorConfig:
        return self.accelerator.config

    @property
    def active(self) -> bool:
        return self.retired_at_s is None

    @property
    def available(self) -> bool:
        """Active and not currently crashed — the dispatcher's and the
        autoscaler's notion of real capacity."""
        return self.retired_at_s is None and self.down_since_s is None

    @property
    def switch_s(self) -> float:
        """Wall time of one pipeline switch on this chip."""
        return self.config.reconfigure_cycles / self.config.clock_hz

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction of this chip's *provisioned* lifetime up to the
        absolute time ``horizon_s`` — a chip added late or retired early
        is scored over the span it was actually paid for."""
        alive = self.alive_s(horizon_s)
        return self.busy_s / alive if alive > 0 else 0.0

    def alive_s(self, horizon_s: float) -> float:
        """Provisioned wall time: join to retirement (or the horizon)."""
        end = self.retired_at_s if self.retired_at_s is not None else horizon_s
        return max(0.0, end - self.added_at_s)

    def cost_units(self, horizon_s: float) -> float:
        """Provisioned cost: chip-seconds weighted by the chip's rate."""
        return self.alive_s(horizon_s) * self.config.chip_cost_rate

    def down_total_s(self, horizon_s: float) -> float:
        """Total downtime up to ``horizon_s``, including an outage that
        is still open at the horizon (a permanent crash)."""
        down = self.down_s
        if self.down_since_s is not None:
            down += max(0.0, horizon_s - self.down_since_s)
        return down

    def availability(self, horizon_s: float) -> float:
        """Up fraction of the chip's provisioned lifetime (1.0 when the
        chip never crashed)."""
        alive = self.alive_s(horizon_s)
        if alive <= 0:
            return 1.0
        return max(0.0, 1.0 - self.down_total_s(horizon_s) / alive)

    def to_dict(self, horizon_s: float) -> dict:
        """JSON summary; ``horizon_s`` is the absolute end time both
        utilization and provisioned cost are scored against."""
        return {
            "chip_id": self.chip_id,
            "config": self.config.label,
            "requests_served": self.requests_served,
            "busy_s": self.busy_s,
            "utilization": self.utilization(horizon_s),
            "pipeline_switches": self.pipeline_switches,
            "switch_cycles": self.switch_cycles,
            "frame_reconfig_cycles": self.frame_reconfig_cycles,
            "energy_j": self.energy_j,
            "configured_pipeline": self.configured_pipeline,
            "added_at_s": self.added_at_s,
            "retired_at_s": self.retired_at_s,
            "alive_s": self.alive_s(horizon_s),
            "cost_units": self.cost_units(horizon_s),
            "n_crashes": self.n_crashes,
            "down_s": self.down_total_s(horizon_s),
            "lost_work_s": self.lost_work_s,
            "availability": self.availability(horizon_s),
        }


#: A policy maps (active chips, batch, now, est_service_s) -> the chip
#: to run the batch on. ``est_service_s`` is the dispatcher's current
#: estimate of one frame's service time (0.0 while the service is cold);
#: only deadline-aware policies use it.
ShardingPolicy = Callable[[list[ChipState], Batch, float, float], ChipState]


def _round_robin() -> ShardingPolicy:
    state = {"next": 0}

    def pick(chips: list[ChipState], batch: Batch, now: float,
             est_service_s: float = 0.0) -> ChipState:
        # Rotate, but never queue behind a busy chip while another sits
        # idle: scan forward from the pointer for an idle chip first.
        n = len(chips)
        for k in range(n):
            chip = chips[(state["next"] + k) % n]
            if chip.free_at_s <= now:
                state["next"] = (state["next"] + k + 1) % n
                return chip
        chip = chips[state["next"] % n]
        state["next"] = (state["next"] + 1) % n
        return chip

    return pick


def _least_loaded(chips: list[ChipState], batch: Batch, now: float,
                  est_service_s: float = 0.0) -> ChipState:
    return min(chips, key=lambda c: (c.free_at_s, c.chip_id))


def _pipeline_affinity(chips: list[ChipState], batch: Batch, now: float,
                       est_service_s: float = 0.0) -> ChipState:
    coldest = _least_loaded(chips, batch, now)
    warm = [c for c in chips if c.configured_pipeline == batch.pipeline]
    if not warm:
        return coldest
    warmest = min(warm, key=lambda c: (c.free_at_s, c.chip_id))
    # Waiting for the warm chip is worth at most one avoided switch.
    cold_start = max(now, coldest.free_at_s)
    warm_start = max(now, warmest.free_at_s)
    if warm_start <= cold_start + coldest.switch_s:
        return warmest
    return coldest


def _cost_aware(chips: list[ChipState], batch: Batch, now: float,
                est_service_s: float = 0.0) -> ChipState:
    """Cheapest chip that can still finish the batch head within its SLO.

    Feasibility projects the first frame's *completion*: queue wait,
    plus a pipeline switch if the chip is cold, plus the dispatcher's
    fleet-wide service-time estimate (an approximation — frames run
    faster on scaled-up chips than the blended estimate says). Packs
    work onto the cheapest feasible chips (letting pricier ones drain,
    which is what allows the autoscaler to retire them); when no chip
    makes the deadline, degrades to least-loaded.
    """
    deadline = min(
        (r.arrival_s + r.effective_slo_s for r in batch.requests),
        default=float("inf")
    )
    feasible = []
    for chip in chips:
        start = max(now, chip.free_at_s)
        if chip.configured_pipeline != batch.pipeline:
            start += chip.switch_s
        if start + est_service_s <= deadline:
            feasible.append(chip)
    if not feasible:
        return _least_loaded(chips, batch, now)
    return min(
        feasible,
        key=lambda c: (c.config.chip_cost_rate, c.free_at_s, c.chip_id),
    )


#: Registry of policy factories (fresh state per cluster).
SHARDING_POLICIES: dict[str, Callable[[], ShardingPolicy]] = {
    "round-robin": _round_robin,
    "least-loaded": lambda: _least_loaded,
    "pipeline-affinity": lambda: _pipeline_affinity,
    "cost-aware": lambda: _cost_aware,
}


class ChipScoreLanes:
    """Vectorized chip scoring over a static fleet.

    The columnar engine mirrors the fleet into NumPy columns once
    (free-at, cost-rate, switch-time, configured-pipeline code) and
    scores each dispatch against the columns instead of re-walking
    :class:`ChipState` objects and policy closures. Pipelines are
    addressed by the engine's integer vocabulary codes; a chip whose
    PE array is unconfigured (or configured for a pipeline outside the
    vocabulary) carries code ``-1``, which no batch ever matches.

    Every policy reproduces the scalar tie-break contract exactly
    (``TestTieBreakContract``): ``argmin`` returns the *first* minimal
    index, i.e. the lowest chip id among ties, which is precisely what
    the scalar ``min(..., key=(score, chip_id))`` scans produce. The
    stateful ``round-robin`` policy is deliberately unsupported — its
    rotation pointer lives in the cluster's closure, and bypassing it
    would fork the state; the engine falls back to
    :meth:`ServeCluster.select_chip` for it.

    Only valid while the fleet is static and healthy; the engine's
    columnar eligibility gate guarantees no autoscaling, crashes, or
    retirements for the lifetime of a lanes object.
    """

    #: Policies with a pure (stateless) columnar scorer.
    SUPPORTED = frozenset({"least-loaded", "pipeline-affinity", "cost-aware"})

    def __init__(
        self,
        chips: Sequence[ChipState],
        policy: str,
        pipeline_codes: Mapping[str, int],
    ) -> None:
        if policy not in self.SUPPORTED:
            raise ConfigError(
                f"policy {policy!r} has no columnar score lanes"
            )
        self.policy = policy
        self.free_at = np.array(
            [chip.free_at_s for chip in chips], dtype=np.float64
        )
        self.cost_rate = np.array(
            [chip.config.chip_cost_rate for chip in chips], dtype=np.float64
        )
        self.switch_s = np.array(
            [chip.switch_s for chip in chips], dtype=np.float64
        )
        self.pipe_code = np.array(
            [
                pipeline_codes.get(chip.configured_pipeline, -1)
                if chip.configured_pipeline is not None else -1
                for chip in chips
            ],
            dtype=np.int64,
        )

    def select(
        self,
        code: int,
        now: float,
        est_service_s: float = 0.0,
        deadline: float = float("inf"),
    ) -> int:
        """Chip id for a batch of pipeline ``code`` dispatched at ``now``.

        ``deadline`` is the batch head's SLO deadline and only read by
        the cost-aware policy (pass the default for the others).
        """
        if self.policy == "least-loaded":
            return int(self.free_at.argmin())
        if self.policy == "pipeline-affinity":
            return self._affinity(code, now)
        return self._cost_aware(code, now, est_service_s, deadline)

    def _affinity(self, code: int, now: float) -> int:
        free = self.free_at
        coldest = int(free.argmin())
        warm = self.pipe_code == code
        if not warm.any():
            return coldest
        warmest = int(np.where(warm, free, np.inf).argmin())
        # Same float ops as the scalar policy: waiting for the warm chip
        # is worth at most one avoided switch.
        cold_free = float(free[coldest])
        warm_free = float(free[warmest])
        cold_start = now if now > cold_free else cold_free
        warm_start = now if now > warm_free else warm_free
        if warm_start <= cold_start + float(self.switch_s[coldest]):
            return warmest
        return coldest

    def _cost_aware(
        self, code: int, now: float, est_service_s: float, deadline: float
    ) -> int:
        free = self.free_at
        start = np.maximum(free, now) + self.switch_s * (self.pipe_code != code)
        feasible = start + est_service_s <= deadline
        if not feasible.any():
            return int(free.argmin())
        rate = np.where(feasible, self.cost_rate, np.inf)
        best_rate = rate.min()
        return int(np.where(rate == best_rate, free, np.inf).argmin())

    def note_dispatch(self, chip_id: int, code: int, free_at_s: float) -> None:
        """Record a dispatch outcome back into the columns."""
        self.free_at[chip_id] = free_at_s
        self.pipe_code[chip_id] = code


def parse_fleet_spec(
    spec: str, base: AcceleratorConfig | None = None
) -> list[AcceleratorConfig]:
    """Parse a ``--fleet-spec`` string into per-chip configs.

    Each comma-separated entry is ``[count*]PExSRAM`` where PE and SRAM
    are power-of-two scale factors applied to ``base`` via
    :meth:`AcceleratorConfig.scaled`. Examples::

        "1x1,1x1,2x2"   -> two baseline chips and one 2x-PE/2x-SRAM chip
        "3*1x1,1*4x2"   -> three baseline chips and one 4x-PE/2x-SRAM chip
    """
    base = base if base is not None else AcceleratorConfig()
    configs: list[AcceleratorConfig] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        count = 1
        if "*" in entry:
            head, _, entry = entry.partition("*")
            try:
                count = int(head)
            except ValueError as err:
                raise ConfigError(
                    f"bad fleet-spec count in {raw!r}") from err
            if count < 1:
                raise ConfigError(f"fleet-spec count must be >= 1 in {raw!r}")
        try:
            pe_s, sram_s = (int(part) for part in entry.split("x"))
        except ValueError as err:
            raise ConfigError(
                f"bad fleet-spec entry {raw!r}; expected [count*]PExSRAM"
            ) from err
        configs.extend([base.scaled(pe_s, sram_s)] * count)
    if not configs:
        raise ConfigError(f"fleet spec {spec!r} describes no chips")
    return configs


class ServeCluster:
    """A fleet of Uni-Render chips behind one dispatcher.

    ``n_chips`` identical chips by default; pass ``configs`` (a list of
    per-chip :class:`AcceleratorConfig`) for a heterogeneous fleet. The
    fleet is elastic: :meth:`add_chip` / :meth:`retire_chip` are the
    autoscaler's actuators, and only :attr:`active_chips` receive new
    batches.
    """

    def __init__(
        self,
        n_chips: int = 4,
        config: AcceleratorConfig | None = None,
        policy: str = "pipeline-affinity",
        configs: Sequence[AcceleratorConfig] | None = None,
        trace_library: object | None = None,
        observer: object | None = None,
    ) -> None:
        if configs is not None and config is not None:
            raise ConfigError("pass either config (homogeneous) or configs")
        if policy not in SHARDING_POLICIES:
            raise ConfigError(
                f"unknown sharding policy {policy!r}; "
                f"choose from {sorted(SHARDING_POLICIES)}"
            )
        if configs is not None:
            chip_configs = list(configs)
        else:
            if n_chips < 1:
                raise ConfigError("cluster needs at least one chip")
            chip_configs = [config] * n_chips
        if not chip_configs:
            raise ConfigError("cluster needs at least one chip")
        self.policy_name = policy
        self._policy = SHARDING_POLICIES[policy]()
        #: Optional persistent trace library (a TraceLibrary or a path
        #: to its JSON artifact): the engine warm-starts the trace
        #: cache from it and flushes updated metadata on shutdown.
        self.trace_library = trace_library
        #: Optional :class:`repro.obs.observer.Observer`: the engine
        #: picks it up (unless one is passed to it directly) and threads
        #: tracing/metrics/flight recording through the run. ``None``
        #: (or an observer with no sinks) records nothing.
        self.observer = observer
        self.chips = [
            ChipState(i, UniRenderAccelerator(cfg))
            for i, cfg in enumerate(chip_configs)
        ]

    def __len__(self) -> int:
        return len(self.chips)

    # ------------------------------------------------------------------
    @property
    def active_chips(self) -> list[ChipState]:
        return [chip for chip in self.chips if chip.active]

    @property
    def n_active(self) -> int:
        return sum(1 for chip in self.chips if chip.active)

    @property
    def n_available(self) -> int:
        """Active chips that are actually up — provisioned capacity
        minus crashed chips. Equals :attr:`n_active` on healthy runs."""
        return sum(1 for chip in self.chips if chip.available)

    @property
    def lifetime_dirty(self) -> bool:
        """True once any chip has served work or the fleet has flexed —
        the state that makes reuse across runs unsound."""
        return any(
            chip.requests_served > 0
            or chip.busy_s > 0
            or chip.retired_at_s is not None
            or chip.added_at_s > 0
            or chip.n_crashes > 0
            or chip.down_since_s is not None
            for chip in self.chips
        )

    # ------------------------------------------------------------------
    def select_chip(self, batch: Batch, now: float,
                    est_service_s: float = 0.0,
                    exclude: "Container[int] | None" = None) -> ChipState:
        """Policy pick over active chips; ``exclude`` masks chip ids the
        engine has reserved (a staged, not-yet-started batch owns them)."""
        chips = self.active_chips
        if exclude:
            chips = [chip for chip in chips if chip.chip_id not in exclude]
        return self._policy(chips, batch, now, est_service_s)

    @property
    def earliest_free_s(self) -> float:
        return min(chip.free_at_s for chip in self.active_chips)

    def has_idle_chip(self, now: float) -> bool:
        """True when some active chip could start a batch right now —
        the event engine's dispatch gate (dispatch never queues work
        while every chip is busy; the queue builds so batches coalesce)."""
        return any(
            chip.free_at_s <= now for chip in self.chips if chip.active
        )

    # -- elastic actuators ---------------------------------------------
    def add_chip(
        self,
        config: AcceleratorConfig | None = None,
        now: float = 0.0,
        warmup_s: float = 0.0,
    ) -> ChipState:
        """Provision one more chip; it accepts work after ``warmup_s``.

        ``config=None`` clones the fleet's first chip's design point, so
        a scaled homogeneous cluster grows with more of the same chips
        rather than silently reverting to the paper's baseline.
        """
        if config is None:
            config = self.chips[0].config
        chip = ChipState(
            chip_id=len(self.chips),
            accelerator=UniRenderAccelerator(config),
            free_at_s=now + warmup_s,
            added_at_s=now,
        )
        self.chips.append(chip)
        return chip

    def retire_chip(self, chip: ChipState, now: float) -> None:
        """Stop routing to ``chip``; it finishes in-flight work first."""
        if not chip.active:
            raise ConfigError(f"chip {chip.chip_id} is already retired")
        if self.n_active <= 1:
            raise ConfigError("cannot retire the last active chip")
        chip.retired_at_s = max(now, chip.free_at_s)
