"""Feedback- and forecast-controlled fleet sizing for the service.

The autoscaler watches two signals over a sliding window — pending
queue depth per active chip and SLO attainment of recently finished
requests — and actuates the cluster at the event engine's decision
points (arrival, chip-free, and the dedicated *scale-tick* event the
engine schedules when the service goes idle):

* **scale up** when the windowed queue depth per chip exceeds
  ``target_queue_per_chip`` or windowed SLO attainment drops below
  ``slo_target``. New chips take ``warmup_s`` to come online (boot,
  load firmware, fill the trace cache's working set) and draw their
  config from ``growth_configs`` round-robin, so a heterogeneous fleet
  can grow with whatever mix the operator provisioned.
* **scale down** when the queue has drained, at least two active chips
  sit idle *right now*, and the window shows no SLO pressure; the most
  expensive idle chip is retired first (pairs with the ``cost-aware``
  sharding policy, which packs work onto cheap chips and lets pricey
  ones drain).

That default ``reactive`` mode only ever trails the load: by the time
the queue window shows pressure, the wave has already arrived, and a
chip added now still spends ``warmup_s`` booting while SLOs burn. The
``predictive`` mode leads instead of chasing: the engine feeds it every
*offered* arrival, it fits a windowed arrival-rate trend (EWMA over
rate samples and over the rate's slope), projects demand ``warmup_s``
(plus ``lead_s``) ahead, converts that to a fleet size through the
dispatcher's observed service-time estimate and a ``target_utilization``
headroom, and provisions toward the projection *before* the queue
feels it — and, on the downslope, retires surplus chips the projection
says the trough will not need. The reactive queue/SLO triggers stay
armed underneath as a backstop, so a forecast miss degrades to exactly
the old behaviour rather than to an outage.

Every action is appended to :attr:`Autoscaler.events`, which becomes
the fleet-size timeline in the :class:`~repro.serve.metrics.ServiceReport`.
``cooldown_s`` rate-limits actions so one burst cannot thrash the fleet
and bounds either mode to one action per cooldown window. All state is
deterministic: same trace, same decisions.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Container, Sequence

from repro.core.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve.cluster import ServeCluster


@dataclass(frozen=True)
class FleetEvent:
    """One autoscaling action (the fleet-size timeline's unit)."""

    t_s: float
    action: str      # "add" | "retire"
    chip_id: int
    config: str      # AcceleratorConfig.label of the chip
    n_active: int    # fleet size *after* the action

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "action": self.action,
            "chip_id": self.chip_id,
            "config": self.config,
            "n_active": self.n_active,
        }


class Autoscaler:
    """Grow/shrink a :class:`ServeCluster` against queue and SLO signals."""

    #: Recognized controller modes.
    MODES = ("reactive", "predictive")

    #: Optional :class:`repro.obs.observer.Observer` the engine attaches
    #: when a run is instrumented; ``None`` keeps every action unobserved
    #: at the cost of one pointer check per fleet flex (not per tick).
    observer = None

    def __init__(
        self,
        min_chips: int = 1,
        max_chips: int = 8,
        *,
        target_queue_per_chip: float = 4.0,
        slo_target: float = 0.99,
        window_s: float = 0.25,
        warmup_s: float = 0.02,
        cooldown_s: float = 0.05,
        growth_configs: Sequence[AcceleratorConfig | None] | None = None,
        mode: str = "reactive",
        lead_s: float | None = None,
        target_utilization: float = 0.75,
        trend_alpha: float = 0.3,
        min_forecast_samples: int = 8,
        shrink_margin: float = 1.25,
    ) -> None:
        if min_chips < 1:
            raise ConfigError("autoscaler floor must be >= 1 chip")
        if max_chips < min_chips:
            raise ConfigError("autoscaler ceiling must be >= its floor")
        if target_queue_per_chip <= 0:
            raise ConfigError("target queue depth must be positive")
        if not 0.0 < slo_target <= 1.0:
            raise ConfigError("SLO target must be in (0, 1]")
        if window_s <= 0 or warmup_s < 0 or cooldown_s < 0:
            raise ConfigError("autoscaler time constants cannot be negative")
        if mode not in self.MODES:
            raise ConfigError(
                f"unknown autoscaler mode {mode!r}; choose from {self.MODES}")
        if lead_s is not None and lead_s < 0:
            raise ConfigError("forecast lead time cannot be negative")
        if not 0.0 < target_utilization <= 1.0:
            raise ConfigError("target utilization must be in (0, 1]")
        if not 0.0 < trend_alpha <= 1.0:
            raise ConfigError("trend EWMA alpha must be in (0, 1]")
        if min_forecast_samples < 2:
            raise ConfigError("forecaster needs at least 2 arrival samples")
        if shrink_margin < 1.0:
            raise ConfigError("shrink margin must be >= 1 (hysteresis band)")
        self.min_chips = min_chips
        self.max_chips = max_chips
        self.target_queue_per_chip = target_queue_per_chip
        self.slo_target = slo_target
        self.window_s = window_s
        self.warmup_s = warmup_s
        self.cooldown_s = cooldown_s
        self.growth_configs = list(growth_configs) if growth_configs else [None]
        self.mode = mode
        self.predictive = mode == "predictive"
        #: Projection horizon beyond the warm-up: demand is forecast at
        #: ``now + warmup_s + lead_s`` so a chip added on this tick is
        #: *serving* when the projected load lands, not still booting.
        self.lead_s = warmup_s if lead_s is None else lead_s
        self.target_utilization = target_utilization
        self.trend_alpha = trend_alpha
        self.min_forecast_samples = min_forecast_samples
        #: Demand safety factor of the forecast *shrink* path (see
        #: :meth:`desired_fleet`); > 1 opens the hysteresis band.
        self.shrink_margin = shrink_margin
        self._next_growth = 0
        self._last_action_s = float("-inf")
        # Sliding windows with running sums: the event engine observes
        # the controller at every decision point, so window maintenance
        # must be O(1) amortized, not a per-tick rebuild.
        self._queue_samples: deque[tuple[float, int]] = deque()
        self._queue_sum = 0
        self._slo_samples: deque[tuple[float, bool]] = deque()
        self._slo_met = 0
        # Forecast state (predictive mode only): offered-arrival window,
        # EWMA-smoothed rate, and EWMA-smoothed rate slope.
        self._arrivals: deque[float] = deque()
        self._n_arrivals = 0          # lifetime, for the warm-up gate
        self._rate_ewma = 0.0
        self._slope_ewma = 0.0
        self._trend_at: float | None = None   # t of the last trend update
        self._est_service_ewma = 0.0
        self.events: list[FleetEvent] = []

    # -- signal intake --------------------------------------------------
    def record_response(self, finish_s: float, slo_met: bool) -> None:
        """Feed one completed request into the SLO window."""
        self._slo_samples.append((finish_s, slo_met))
        self._slo_met += slo_met

    def record_shed(self, shed_at_s: float) -> None:
        """Feed one admission refusal into the SLO window.

        A shed is an SLO failure the queue never sees, and it enters the
        window **immediately at its arrival stamp** — unlike served
        requests, which the engine reveals only once their finish time
        has passed (no clairvoyance). This asymmetry is deliberate: the
        refusal itself is the controller's earliest evidence of
        overload, and it happened *now*, so suppressing it until some
        later completion would hide exactly the pressure that should
        grow the fleet. Exactly one window sample per shed.
        """
        self.record_response(shed_at_s, slo_met=False)

    def record_arrival(self, arrival_s: float) -> None:
        """Feed one *offered* arrival into the forecast window (the
        engine only feeds this in predictive mode)."""
        if not self.predictive:
            return
        self._arrivals.append(arrival_s)
        self._n_arrivals += 1

    def _prune(self, now: float) -> None:
        # Samples are only approximately time-ordered (shed events carry
        # arrival stamps that can interleave with completion stamps); a
        # stale sample that landed behind a fresher one simply survives
        # until it reaches the head — at most one window late, an
        # acceptable smear for a sliding-window controller.
        horizon = now - self.window_s
        queue = self._queue_samples
        while queue and queue[0][0] < horizon:
            _, depth = queue.popleft()
            self._queue_sum -= depth
        slo = self._slo_samples
        while slo and slo[0][0] < horizon:
            _, met = slo.popleft()
            self._slo_met -= met
        arrivals = self._arrivals
        while arrivals and arrivals[0] < horizon:
            arrivals.popleft()

    def mean_queue_depth(self) -> float:
        if not self._queue_samples:
            return 0.0
        return self._queue_sum / len(self._queue_samples)

    def window_slo_attainment(self) -> float:
        """SLO attainment over the window; 1.0 when nothing finished."""
        if not self._slo_samples:
            return 1.0
        return self._slo_met / len(self._slo_samples)

    # -- forecasting (predictive mode) ----------------------------------
    def arrival_rate(self) -> float:
        """Offered arrivals per second over the sliding window."""
        return len(self._arrivals) / self.window_s

    def _update_trend(self, now: float, est_service_s: float) -> None:
        """One EWMA step of the rate and of the rate's slope.

        Trend samples are taken on a fixed cadence (an eighth of the
        window) rather than at every engine tick: decision points
        cluster microseconds apart under load, and a finite difference
        over a near-zero ``dt`` is pure noise with unbounded magnitude
        — no amount of EWMA smoothing recovers from feeding it that.
        """
        if est_service_s > 0.0:
            self._est_service_ewma = est_service_s
        if self._trend_at is None:
            self._rate_ewma = self.arrival_rate()
            self._trend_at = now
            return
        dt = now - self._trend_at
        if dt < self.window_s / 8.0:
            return
        previous = self._rate_ewma
        self._rate_ewma = previous + self.trend_alpha * (
            self.arrival_rate() - previous)
        slope_sample = (self._rate_ewma - previous) / dt
        self._slope_ewma += self.trend_alpha * (
            slope_sample - self._slope_ewma)
        self._trend_at = now

    def projected_rate(self) -> float:
        """Arrival rate projected one warm-up plus one lead ahead — the
        demand a chip added *now* would actually meet. The trend term
        is clamped to at most one doubling (or one halving) per
        horizon: a linear fit extrapolated through a wave's crest would
        otherwise project demand the trace never carries."""
        horizon = self.warmup_s + self.lead_s
        trend = self._slope_ewma * horizon
        bound = self._rate_ewma
        trend = max(-bound, min(bound, trend))
        return max(0.0, self._rate_ewma + trend)

    def desired_fleet(self, margin: float = 1.0) -> int | None:
        """Projected fleet size, clamped to [min_chips, max_chips];
        ``None`` while the forecaster lacks signal (too few arrivals
        seen, or no service-time estimate yet) — callers then fall back
        to the reactive triggers alone. ``margin`` scales the projected
        demand: the shrink path evaluates it with a safety factor > 1,
        so grow-at-N / shrink-at-N decisions sit on different
        thresholds and a projection wobbling around a fleet-size
        boundary cannot retire into a crest it will re-buy one warm-up
        later (hysteresis)."""
        if (self._n_arrivals < self.min_forecast_samples
                or self._est_service_ewma <= 0.0
                or self._trend_at is None):
            return None
        # Provision for the projection, but never below what the window
        # is measuring *right now*: the smoothed rate lags a fast
        # upswing, and trusting it alone lets the shrink path retire
        # into a wave that has already arrived.
        rate = max(self.projected_rate(), self.arrival_rate())
        demand = margin * rate * self._est_service_ewma
        needed = math.ceil(demand / self.target_utilization - 1e-9)
        return max(self.min_chips, min(self.max_chips, needed))

    # -- control loop ---------------------------------------------------
    def observe(self, now: float, cluster: ServeCluster, queue_depth: int,
                reserved: Container[int] = (),
                est_service_s: float = 0.0) -> None:
        """One control-loop tick at an event-engine decision point.

        ``reserved`` masks chip ids that look idle but already own a
        staged (dispatch-ahead) batch — retiring one would strand queued
        work on a chip that no longer serves. ``est_service_s`` is the
        dispatcher's current per-request service-time estimate; only
        the predictive mode consumes it (capacity = chips / service
        time), so reactive callers may leave it 0.
        """
        self._prune(now)
        self._queue_samples.append((now, queue_depth))
        self._queue_sum += queue_depth
        if self.predictive:
            self._update_trend(now, est_service_s)
        if now - self._last_action_s < self.cooldown_s:
            return

        # Capacity is the chips that are actually *up*: a crashed chip
        # is a capacity loss, not an idle retire candidate, so every
        # grow/shrink comparison runs against n_available. On healthy
        # runs n_available == n_active and the decisions are unchanged.
        n_live = max(1, cluster.n_available)
        desired = self.desired_fleet() if self.predictive else None
        pressure = (
            self.mean_queue_depth() / n_live > self.target_queue_per_chip
            or self.window_slo_attainment() < self.slo_target
        )
        lead = desired is not None and desired > n_live
        if (pressure or lead) and n_live < self.max_chips:
            config = self.growth_configs[self._next_growth % len(self.growth_configs)]
            self._next_growth += 1
            chip = cluster.add_chip(config, now=now, warmup_s=self.warmup_s)
            self._last_action_s = now
            self.events.append(FleetEvent(
                now, "add", chip.chip_id, chip.config.label, cluster.n_active
            ))
            if self.observer is not None:
                self.observer.on_scale(now, "scale_up", 1, cluster.n_active)
            return

        idle = [c for c in cluster.active_chips
                if c.available and c.free_at_s <= now
                and c.chip_id not in reserved]
        calm = (
            queue_depth == 0
            and self.mean_queue_depth() < 1.0
            and self.window_slo_attainment() >= self.slo_target
        )
        # Shrink symmetrically with how the mode grew. The reactive
        # rule waits for full calm — a whole window of near-empty queue
        # plus a two-idle hedge — because it cannot see the trough
        # coming, so it must *observe* one. A forecast surplus instead
        # mirrors the forecast add: the queue must be drained right now
        # and the window free of SLO pressure, but one idle chip and
        # the projection saying the coming horizon needs fewer chips
        # are enough — without this, a predictive fleet leads the wave
        # up but trails it down, and the early chip-seconds are never
        # won back.
        if desired is not None:
            surplus = self.desired_fleet(margin=self.shrink_margin)
            may_shrink = (surplus is not None and surplus < n_live
                          and self._slope_ewma <= 0.0
                          and queue_depth == 0
                          and len(idle) >= 1
                          and self.window_slo_attainment() >= self.slo_target)
        else:
            may_shrink = calm and len(idle) >= 2
        if may_shrink and n_live > self.min_chips:
            victim = max(
                idle, key=lambda c: (c.config.chip_cost_rate, c.added_at_s, c.chip_id)
            )
            cluster.retire_chip(victim, now)
            self._last_action_s = now
            self.events.append(FleetEvent(
                now, "retire", victim.chip_id, victim.config.label,
                cluster.n_active,
            ))
            if self.observer is not None:
                self.observer.on_scale(now, "scale_down", -1, cluster.n_active)


def make_elastic_autoscaler(
    min_chips: int = 3,
    max_chips: int = 6,
    warmup_s: float = 0.005,
    growth_configs: Sequence[AcceleratorConfig | None] | None = None,
    mode: str = "reactive",
) -> Autoscaler:
    """The tuned controller shared by ``repro serve --autoscale``, the
    ``ext_elastic``/``ext_predictive`` experiments, and the examples: by
    default grow with a mix of 2x-PE/2x-SRAM and baseline chips and
    drain between bursts. Defaults are tuned for the elastic evaluation
    workload (bursts at ~10x a 150 req/s mean against a 50 ms SLO);
    ``mode="predictive"`` arms the forecast path on the same constants."""
    if growth_configs is None:
        growth_configs = [AcceleratorConfig().scaled(2, 2), None]
    return Autoscaler(
        min_chips=min_chips,
        max_chips=max_chips,
        target_queue_per_chip=1.0,
        slo_target=0.95,
        window_s=0.1,
        warmup_s=warmup_s,
        cooldown_s=0.02,
        growth_configs=growth_configs,
        mode=mode,
    )
