"""Feedback-controlled fleet sizing for the rendering service.

The autoscaler watches two signals over a sliding window — pending
queue depth per active chip and SLO attainment of recently finished
requests — and actuates the cluster at the event engine's decision
points (arrival, chip-free, and the dedicated *scale-tick* event the
engine schedules when the service goes idle):

* **scale up** when the windowed queue depth per chip exceeds
  ``target_queue_per_chip`` or windowed SLO attainment drops below
  ``slo_target``. New chips take ``warmup_s`` to come online (boot,
  load firmware, fill the trace cache's working set) and draw their
  config from ``growth_configs`` round-robin, so a heterogeneous fleet
  can grow with whatever mix the operator provisioned.
* **scale down** when the queue has drained, at least two active chips
  sit idle *right now*, and the window shows no SLO pressure; the most
  expensive idle chip is retired first (pairs with the ``cost-aware``
  sharding policy, which packs work onto cheap chips and lets pricey
  ones drain).

Every action is appended to :attr:`Autoscaler.events`, which becomes
the fleet-size timeline in the :class:`~repro.serve.metrics.ServiceReport`.
``cooldown_s`` rate-limits actions so one burst cannot thrash the fleet.
All state is deterministic: same trace, same decisions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Container, Sequence

from repro.core.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve.cluster import ServeCluster


@dataclass(frozen=True)
class FleetEvent:
    """One autoscaling action (the fleet-size timeline's unit)."""

    t_s: float
    action: str      # "add" | "retire"
    chip_id: int
    config: str      # AcceleratorConfig.label of the chip
    n_active: int    # fleet size *after* the action

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "action": self.action,
            "chip_id": self.chip_id,
            "config": self.config,
            "n_active": self.n_active,
        }


class Autoscaler:
    """Grow/shrink a :class:`ServeCluster` against queue and SLO signals."""

    def __init__(
        self,
        min_chips: int = 1,
        max_chips: int = 8,
        *,
        target_queue_per_chip: float = 4.0,
        slo_target: float = 0.99,
        window_s: float = 0.25,
        warmup_s: float = 0.02,
        cooldown_s: float = 0.05,
        growth_configs: Sequence[AcceleratorConfig | None] | None = None,
    ) -> None:
        if min_chips < 1:
            raise ConfigError("autoscaler floor must be >= 1 chip")
        if max_chips < min_chips:
            raise ConfigError("autoscaler ceiling must be >= its floor")
        if target_queue_per_chip <= 0:
            raise ConfigError("target queue depth must be positive")
        if not 0.0 < slo_target <= 1.0:
            raise ConfigError("SLO target must be in (0, 1]")
        if window_s <= 0 or warmup_s < 0 or cooldown_s < 0:
            raise ConfigError("autoscaler time constants cannot be negative")
        self.min_chips = min_chips
        self.max_chips = max_chips
        self.target_queue_per_chip = target_queue_per_chip
        self.slo_target = slo_target
        self.window_s = window_s
        self.warmup_s = warmup_s
        self.cooldown_s = cooldown_s
        self.growth_configs = list(growth_configs) if growth_configs else [None]
        self._next_growth = 0
        self._last_action_s = float("-inf")
        # Sliding windows with running sums: the event engine observes
        # the controller at every decision point, so window maintenance
        # must be O(1) amortized, not a per-tick rebuild.
        self._queue_samples: deque[tuple[float, int]] = deque()
        self._queue_sum = 0
        self._slo_samples: deque[tuple[float, bool]] = deque()
        self._slo_met = 0
        self.events: list[FleetEvent] = []

    # -- signal intake --------------------------------------------------
    def record_response(self, finish_s: float, slo_met: bool) -> None:
        """Feed one completed request into the SLO window."""
        self._slo_samples.append((finish_s, slo_met))
        self._slo_met += slo_met

    def _prune(self, now: float) -> None:
        # Samples are only approximately time-ordered (shed events carry
        # arrival stamps that can interleave with completion stamps); a
        # stale sample that landed behind a fresher one simply survives
        # until it reaches the head — at most one window late, an
        # acceptable smear for a sliding-window controller.
        horizon = now - self.window_s
        queue = self._queue_samples
        while queue and queue[0][0] < horizon:
            _, depth = queue.popleft()
            self._queue_sum -= depth
        slo = self._slo_samples
        while slo and slo[0][0] < horizon:
            _, met = slo.popleft()
            self._slo_met -= met

    def mean_queue_depth(self) -> float:
        if not self._queue_samples:
            return 0.0
        return self._queue_sum / len(self._queue_samples)

    def window_slo_attainment(self) -> float:
        """SLO attainment over the window; 1.0 when nothing finished."""
        if not self._slo_samples:
            return 1.0
        return self._slo_met / len(self._slo_samples)

    # -- control loop ---------------------------------------------------
    def observe(self, now: float, cluster: ServeCluster, queue_depth: int,
                reserved: Container[int] = ()) -> None:
        """One control-loop tick at an event-engine decision point.

        ``reserved`` masks chip ids that look idle but already own a
        staged (dispatch-ahead) batch — retiring one would strand queued
        work on a chip that no longer serves.
        """
        self._prune(now)
        self._queue_samples.append((now, queue_depth))
        self._queue_sum += queue_depth
        if now - self._last_action_s < self.cooldown_s:
            return

        n_active = cluster.n_active
        pressure = (
            self.mean_queue_depth() / n_active > self.target_queue_per_chip
            or self.window_slo_attainment() < self.slo_target
        )
        if pressure and n_active < self.max_chips:
            config = self.growth_configs[self._next_growth % len(self.growth_configs)]
            self._next_growth += 1
            chip = cluster.add_chip(config, now=now, warmup_s=self.warmup_s)
            self._last_action_s = now
            self.events.append(FleetEvent(
                now, "add", chip.chip_id, chip.config.label, cluster.n_active
            ))
            return

        idle = [c for c in cluster.active_chips
                if c.free_at_s <= now and c.chip_id not in reserved]
        calm = (
            queue_depth == 0
            and self.mean_queue_depth() < 1.0
            and self.window_slo_attainment() >= self.slo_target
        )
        if calm and n_active > self.min_chips and len(idle) >= 2:
            victim = max(
                idle, key=lambda c: (c.config.chip_cost_rate, c.added_at_s, c.chip_id)
            )
            cluster.retire_chip(victim, now)
            self._last_action_s = now
            self.events.append(FleetEvent(
                now, "retire", victim.chip_id, victim.config.label,
                cluster.n_active,
            ))


def make_elastic_autoscaler(
    min_chips: int = 3,
    max_chips: int = 6,
    warmup_s: float = 0.005,
    growth_configs: Sequence[AcceleratorConfig | None] | None = None,
) -> Autoscaler:
    """The tuned controller shared by ``repro serve --autoscale``, the
    ``ext_elastic`` experiment, and the elastic example: by default grow
    with a mix of 2x-PE/2x-SRAM and baseline chips and drain between
    bursts. Defaults are tuned for the elastic evaluation workload
    (bursts at ~10x a 150 req/s mean against a 50 ms SLO)."""
    if growth_configs is None:
        growth_configs = [AcceleratorConfig().scaled(2, 2), None]
    return Autoscaler(
        min_chips=min_chips,
        max_chips=max_chips,
        target_queue_per_chip=1.0,
        slo_target=0.95,
        window_s=0.1,
        warmup_s=warmup_s,
        cooldown_s=0.02,
        growth_configs=growth_configs,
    )
