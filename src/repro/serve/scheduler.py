"""Discrete-event loop of the rendering service.

Drives arrivals -> admission -> pending queue -> batch formation ->
chip dispatch -> completion, with an optional autoscaler flexing the
fleet between events. Time advances to the next decision point (a
request arrives or a chip frees up); at each point the admission policy
rules on new arrivals, the autoscaler observes queue depth and SLO
attainment and may add or retire chips, the batcher coalesces queued
same-pipeline requests, and the cluster's sharding policy places the
batch. A frame's service time is its simulated ``FrameResult.cycles``
at the chip's clock, plus one ``reconfigure_cycles`` pipeline switch
whenever the chip's PE array was configured for a different pipeline.

Admission projections use live per-pipeline estimates of the mean
service time (exponentially weighted moving averages over completed
requests — frame cost differs by an order of magnitude between
pipelines): a new arrival's projected queue wait is the time until the
earliest chip frees plus the estimated backlog already queued ahead of
it, spread over the active fleet.

Simulation results are memoized per (trace key, chip config): chips at
the same design point render identical frames in identical cycles, so
the fleet only pays the performance model once per distinct frame.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.core.config import AcceleratorConfig
from repro.core.simulator import FrameResult
from repro.errors import SimulationError
from repro.serve.admission import AdmissionPolicy, ShedRecord
from repro.serve.autoscaler import Autoscaler
from repro.serve.batcher import Batch, PipelineBatcher
from repro.serve.cluster import ChipState, ServeCluster
from repro.serve.metrics import ServiceReport
from repro.serve.request import RenderRequest, RenderResponse, TraceKey
from repro.serve.trace_cache import TraceCache

#: EWMA smoothing for the observed mean service time (admission input).
_SERVICE_EWMA_ALPHA = 0.2


def _execute_batch(
    chip: ChipState,
    batch: Batch,
    start_s: float,
    cache: TraceCache,
    result_memo: dict[tuple[TraceKey, AcceleratorConfig], FrameResult],
) -> list[RenderResponse]:
    """Run a batch back to back on one chip; returns its responses."""
    clock = chip.config.clock_hz
    responses = []
    t = start_s
    for request in batch.requests:
        program, cache_hit = cache.get(request.trace_key)
        memo_key = (request.trace_key, chip.config)
        result = result_memo.get(memo_key)
        if result is None:
            result = chip.accelerator.simulate(program)
            result_memo[memo_key] = result

        switch = 0.0
        if chip.configured_pipeline != request.pipeline:
            switch = float(chip.config.reconfigure_cycles)
            chip.pipeline_switches += 1
            chip.configured_pipeline = request.pipeline
        finish = t + (result.cycles + switch) / clock

        responses.append(RenderResponse(
            request=request,
            chip_id=chip.chip_id,
            batch_id=batch.batch_id,
            start_s=t,
            finish_s=finish,
            cycles=result.cycles,
            switch_cycles=switch,
            frame_reconfig_cycles=result.reconfig_cycles,
            energy_j=result.energy_per_frame_j,
            cache_hit=cache_hit,
        ))
        chip.requests_served += 1
        chip.frame_cycles += result.cycles
        chip.switch_cycles += switch
        chip.frame_reconfig_cycles += result.reconfig_cycles
        chip.energy_j += result.energy_per_frame_j
        t = finish

    chip.busy_s += t - start_s
    chip.free_at_s = t
    return responses


def simulate_service(
    requests: Iterable[RenderRequest] | Sequence[RenderRequest],
    cluster: ServeCluster | None = None,
    cache: TraceCache | None = None,
    batcher: PipelineBatcher | None = None,
    autoscaler: Autoscaler | None = None,
    admission: AdmissionPolicy | None = None,
) -> ServiceReport:
    """Serve every admitted request on the fleet; returns the report.

    Deterministic: identical inputs produce identical schedules. The
    same ``cluster`` must not be reused across runs — its chips carry
    lifetime accounting, so a dirty cluster raises
    :class:`SimulationError` (``cache`` may be shared to model a warm
    service). ``autoscaler`` flexes the fleet between events;
    ``admission`` may shed or degrade arrivals, in which case the
    report's ``shed`` list records every refused request.
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    if not ordered:
        raise SimulationError("cannot simulate a service with no requests")
    cluster = cluster if cluster is not None else ServeCluster()
    if cluster.lifetime_dirty:
        raise SimulationError(
            "ServeCluster has nonzero lifetime accounting; build a fresh "
            "cluster per simulate_service run (chips carry busy time, "
            "served counts, and autoscaling history)"
        )
    cache = cache if cache is not None else TraceCache()
    batcher = batcher if batcher is not None else PipelineBatcher()

    result_memo: dict[tuple[TraceKey, AcceleratorConfig], FrameResult] = {}
    responses: list[RenderResponse] = []
    shed: list[ShedRecord] = []
    pending: deque[RenderRequest] = deque()
    est_by_pipeline: dict[str, float] = {}
    # Completions scheduled but not yet visible to the controller: the
    # autoscaler's SLO window may only see responses once simulated time
    # has passed their finish instant (no clairvoyance).
    inflight: list[RenderResponse] = []

    def feed_autoscaler(now: float) -> None:
        due = [r for r in inflight if r.finish_s <= now]
        if not due:
            return
        inflight[:] = [r for r in inflight if r.finish_s > now]
        for response in sorted(due, key=lambda r: r.finish_s):
            autoscaler.record_response(response.finish_s, response.slo_met)

    def estimate(pipeline: str) -> float:
        """EWMA service time of one request; 0 until anything finished
        (optimistic: admit freely while the service is cold)."""
        if pipeline in est_by_pipeline:
            return est_by_pipeline[pipeline]
        if est_by_pipeline:
            return sum(est_by_pipeline.values()) / len(est_by_pipeline)
        return 0.0

    def ingest(request: RenderRequest) -> None:
        """Admission decision, made at the request's arrival instant."""
        if admission is None:
            pending.append(request)
            return
        at = request.arrival_s
        wait_for_chip = max(0.0, cluster.earliest_free_s - at)
        # Queued same-pipeline requests serialize on one chip (they will
        # coalesce into this request's batch); the rest of the backlog
        # spreads over the active fleet.
        same = other = 0.0
        for queued in pending:
            if queued.pipeline == request.pipeline:
                same += estimate(queued.pipeline)
            else:
                other += estimate(queued.pipeline)
        projected_wait = wait_for_chip + same + other / max(1, cluster.n_active)
        verdict = admission.admit(
            request, at, projected_wait, estimate(request.pipeline),
            len(pending),
        )
        if verdict is None:
            shed.append(ShedRecord(request, at, admission.name, projected_wait))
            if autoscaler is not None:
                # A shed is an SLO failure the queue never sees; feed it
                # to the controller's window or admission control would
                # suppress exactly the pressure that should grow the
                # fleet (admitted requests mostly meet their SLO, and
                # shed ones never inflate the queue depth).
                autoscaler.record_response(at, slo_met=False)
        else:
            pending.append(verdict)

    now = 0.0
    i = 0
    n = len(ordered)
    while i < n or pending:
        if not pending:
            # Idle service: tick the controller once at the start of the
            # gap (the one point it observes an empty queue, where it
            # can drain surplus chips), then jump to the next arrival.
            if autoscaler is not None and ordered[i].arrival_s > now:
                feed_autoscaler(now)
                autoscaler.observe(now, cluster, 0)
            now = max(now, ordered[i].arrival_s)
            while i < n and ordered[i].arrival_s <= now:
                ingest(ordered[i])
                i += 1
        if pending and cluster.earliest_free_s > now:
            # Whole fleet busy: let the queue build until a chip frees,
            # so batches can coalesce more same-pipeline requests.
            now = cluster.earliest_free_s
            while i < n and ordered[i].arrival_s <= now:
                ingest(ordered[i])
                i += 1
        if autoscaler is not None:
            feed_autoscaler(now)
            autoscaler.observe(now, cluster, len(pending))
        if not pending:
            continue  # everything at this decision point was shed

        batch = batcher.next_batch(pending)
        chip = cluster.select_chip(batch, now, estimate(batch.pipeline))
        start = max(now, chip.free_at_s)
        new = _execute_batch(chip, batch, start, cache, result_memo)
        responses.extend(new)
        for response in new:
            pipeline = response.request.pipeline
            prior = est_by_pipeline.get(pipeline)
            if prior is None:
                est_by_pipeline[pipeline] = response.service_s
            else:
                est_by_pipeline[pipeline] = prior + _SERVICE_EWMA_ALPHA * (
                    response.service_s - prior
                )
            if autoscaler is not None:
                inflight.append(response)

    if not responses:
        raise SimulationError(
            f"admission policy {admission.name!r} shed all {len(shed)} requests"
        )
    return ServiceReport(
        policy=cluster.policy_name,
        responses=responses,
        chips=cluster.chips,
        cache_stats=cache.stats.to_dict(),
        batch_sizes=list(batcher.stats.sizes),
        shed=shed,
        fleet_events=list(autoscaler.events) if autoscaler is not None else [],
        admission_policy=admission.name if admission is not None else None,
        autoscaled=autoscaler is not None,
    )
