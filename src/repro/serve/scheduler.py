"""Discrete-event loop of the rendering service.

Drives arrivals -> pending queue -> batch formation -> chip dispatch ->
completion. Time advances to the next decision point (a request arrives
or a chip frees up); at each point the batcher coalesces queued
same-pipeline requests and the cluster's sharding policy places the
batch. A frame's service time is its simulated ``FrameResult.cycles``
at the chip's clock, plus one ``reconfigure_cycles`` pipeline switch
whenever the chip's PE array was configured for a different pipeline.

Simulation results are memoized per (trace key, chip config): chips at
the same design point render identical frames in identical cycles, so
the fleet only pays the performance model once per distinct frame.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.core.config import AcceleratorConfig
from repro.core.simulator import FrameResult
from repro.errors import SimulationError
from repro.serve.batcher import Batch, PipelineBatcher
from repro.serve.cluster import ChipState, ServeCluster
from repro.serve.metrics import ServiceReport
from repro.serve.request import RenderRequest, RenderResponse, TraceKey
from repro.serve.trace_cache import TraceCache


def _execute_batch(
    chip: ChipState,
    batch: Batch,
    start_s: float,
    cache: TraceCache,
    result_memo: dict[tuple[TraceKey, AcceleratorConfig], FrameResult],
) -> list[RenderResponse]:
    """Run a batch back to back on one chip; returns its responses."""
    clock = chip.config.clock_hz
    responses = []
    t = start_s
    for request in batch.requests:
        program, cache_hit = cache.get(request.trace_key)
        memo_key = (request.trace_key, chip.config)
        result = result_memo.get(memo_key)
        if result is None:
            result = chip.accelerator.simulate(program)
            result_memo[memo_key] = result

        switch = 0.0
        if chip.configured_pipeline != request.pipeline:
            switch = float(chip.config.reconfigure_cycles)
            chip.pipeline_switches += 1
            chip.configured_pipeline = request.pipeline
        finish = t + (result.cycles + switch) / clock

        responses.append(RenderResponse(
            request=request,
            chip_id=chip.chip_id,
            batch_id=batch.batch_id,
            start_s=t,
            finish_s=finish,
            cycles=result.cycles,
            switch_cycles=switch,
            frame_reconfig_cycles=result.reconfig_cycles,
            energy_j=result.energy_per_frame_j,
            cache_hit=cache_hit,
        ))
        chip.requests_served += 1
        chip.frame_cycles += result.cycles
        chip.switch_cycles += switch
        chip.frame_reconfig_cycles += result.reconfig_cycles
        chip.energy_j += result.energy_per_frame_j
        t = finish

    chip.busy_s += t - start_s
    chip.free_at_s = t
    return responses


def simulate_service(
    requests: Iterable[RenderRequest] | Sequence[RenderRequest],
    cluster: ServeCluster | None = None,
    cache: TraceCache | None = None,
    batcher: PipelineBatcher | None = None,
) -> ServiceReport:
    """Serve every request on the fleet; returns the full report.

    Deterministic: identical inputs produce identical schedules. The
    same ``cluster`` must not be reused across runs (its chips carry
    lifetime accounting); ``cache`` may be shared to model a warm
    service.
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    if not ordered:
        raise SimulationError("cannot simulate a service with no requests")
    cluster = cluster if cluster is not None else ServeCluster()
    cache = cache if cache is not None else TraceCache()
    batcher = batcher if batcher is not None else PipelineBatcher()

    result_memo: dict[tuple[TraceKey, AcceleratorConfig], FrameResult] = {}
    responses: list[RenderResponse] = []
    pending: deque[RenderRequest] = deque()
    now = 0.0
    i = 0
    n = len(ordered)
    while i < n or pending:
        if not pending:
            # Idle service: jump to the next arrival.
            now = max(now, ordered[i].arrival_s)
            while i < n and ordered[i].arrival_s <= now:
                pending.append(ordered[i])
                i += 1
        if cluster.earliest_free_s > now:
            # Whole fleet busy: let the queue build until a chip frees,
            # so batches can coalesce more same-pipeline requests.
            now = cluster.earliest_free_s
            while i < n and ordered[i].arrival_s <= now:
                pending.append(ordered[i])
                i += 1

        batch = batcher.next_batch(pending)
        chip = cluster.select_chip(batch, now)
        start = max(now, chip.free_at_s)
        responses.extend(_execute_batch(chip, batch, start, cache, result_memo))

    return ServiceReport(
        policy=cluster.policy_name,
        responses=responses,
        chips=cluster.chips,
        cache_stats=cache.stats.to_dict(),
        batch_sizes=list(batcher.stats.sizes),
    )
