"""Entry point of the service simulation: :func:`simulate_service`.

The discrete-event loop itself lives in :mod:`repro.serve.engine` — one
event queue (arrival / compile-done / chip-free / scale-tick) that the
cluster, autoscaler, admission policy, and batcher all plug into. This
module keeps the stable public API and maps its arguments onto the
engine:

* ``compile_workers=0`` and no ``compile_latency`` (the default) is the
  synchronous baseline: compilation is invisible to simulated time,
  reproducing the original scheduler event-for-event and bit-for-bit.
* ``compile_workers=0`` with a :class:`CompileLatencyModel` makes
  compile-on-miss *synchronously visible*: the dispatch path stalls on
  the chip for the simulated compile latency.
* ``compile_workers >= 1`` makes compilation a first-class resource: a
  miss enqueues compile work on a deterministic worker pool that
  overlaps chip execution in simulated time, and ``prefetch=True``
  additionally warms the trace cache with predicted keys during idle
  compile capacity.

A frame's service time is its simulated ``FrameResult.cycles`` at the
chip's clock, plus one ``reconfigure_cycles`` pipeline switch whenever
the chip's PE array was configured for a different pipeline; every
distinct (trace, chip config) pair is priced exactly once through the
engine's :class:`~repro.serve.engine.CostTable`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import CompileLatencyModel
from repro.serve.admission import AdmissionPolicy
from repro.serve.autoscaler import Autoscaler
from repro.serve.batcher import PipelineBatcher
from repro.serve.cluster import ServeCluster
from repro.serve.engine import EventEngine, TracePrefetcher
from repro.serve.faults import FaultPlan, HedgePolicy
from repro.serve.metrics import ServiceReport
from repro.serve.request import RenderRequest
from repro.serve.trace_cache import TraceCache
from repro.serve.trace_library import TraceLibrary


def simulate_service(
    requests: Iterable[RenderRequest] | Sequence[RenderRequest],
    cluster: ServeCluster | None = None,
    cache: TraceCache | None = None,
    batcher: PipelineBatcher | None = None,
    autoscaler: Autoscaler | None = None,
    admission: AdmissionPolicy | None = None,
    *,
    compile_workers: int = 0,
    compile_latency: CompileLatencyModel | None = None,
    prefetch: bool | TracePrefetcher = False,
    preempt: bool = False,
    trace_library: TraceLibrary | str | None = None,
    observer: object | None = None,
    faults: "FaultPlan | None" = None,
    hedge: "HedgePolicy | bool | None" = None,
    columnar: bool = True,
) -> ServiceReport:
    """Serve every admitted request on the fleet; returns the report.

    Deterministic: identical inputs produce identical schedules *and*
    identical reports (compile costs are simulated, never wall time).
    The same ``cluster`` must not be reused across runs — its chips
    carry lifetime accounting, so a dirty cluster raises
    :class:`~repro.errors.SimulationError` (``cache`` may be shared to
    model a warm service). ``autoscaler`` flexes the fleet between
    events; ``admission`` may shed or degrade arrivals, in which case
    the report's ``shed`` list records every refused request.

    ``compile_workers``/``compile_latency``/``prefetch`` select the
    compilation model (see the module docstring); ``prefetch`` accepts
    ``True`` for a default :class:`TracePrefetcher` or a configured one.

    ``preempt=True`` arms multi-tenant batch preemption: batches the
    sharding policy places on a busy chip stay *queued* (staged) until
    the chip frees, and a premium arrival may displace a staged batch of
    a more economical tier back into the queue (it later re-dispatches,
    possibly migrating to a chip the autoscaler warmed in the
    meantime). At the default ``preempt=False`` none of this machinery
    runs: requests tagged with the default tenant class produce reports
    byte-identical to the pre-tenant engine's.

    ``trace_library`` (a :class:`TraceLibrary` or a path to its JSON
    artifact) makes compile results persistent across runs: the cache is
    warm-started from the recorded traces before the first arrival and
    the engine flushes updated metadata back on shutdown (saving to the
    path, when one was given). ``ServeCluster(trace_library=...)`` is an
    equivalent spelling. An empty or absent library is exactly a cold
    start.

    ``observer`` (a :class:`repro.obs.Observer`) threads structured
    tracing, live metrics, and flight recording through the run —
    ``ServeCluster(observer=...)`` is an equivalent spelling. ``None``
    (the default) or an observer with no sinks records nothing and costs
    one pointer check per instrumentation site; either way the returned
    report is byte-identical.

    ``faults`` (a :class:`repro.serve.faults.FaultPlan`) injects chip
    crashes, straggler windows, and compile-worker stalls as first-class
    events: in-flight work on a crashed chip re-queues (paying the
    plan's checkpoint-rollback cost on retry), the autoscaler sees dead
    chips as lost capacity, and admission's projected-wait model learns
    per-chip effective speed. An empty plan is byte-identical to none.
    ``hedge`` (``True`` or a :class:`~repro.serve.faults.HedgePolicy`)
    duplicates requests whose queue age crosses a quantile-derived
    threshold onto a second chip; the first copy to finish wins and the
    report stays exactly-once.

    ``columnar`` (default ``True``) lets eligible configurations — a
    static fleet with synchronous compile and a non-rewriting admission
    policy, including strict-tier multi-tenant traffic (tiers without
    weighted budgets or preemption) and fully observed runs (events are
    buffered and replayed into the sinks at finalize) — take the
    engine's columnar fast loop. Autoscaling, faults, hedging,
    weighted admission, preemption, and async compile/prefetch still
    force the scalar reference loop. The report is byte-identical
    either way (pinned by the equivalence suite); ``columnar=False``
    is the explicit escape hatch forcing the scalar event loop.
    """
    prefetcher = None
    if prefetch:
        prefetcher = (prefetch if isinstance(prefetch, TracePrefetcher)
                      else TracePrefetcher())
    engine = EventEngine(
        requests,
        cluster=cluster,
        cache=cache,
        batcher=batcher,
        autoscaler=autoscaler,
        admission=admission,
        compile_workers=compile_workers,
        compile_latency=compile_latency,
        prefetcher=prefetcher,
        preempt=preempt,
        trace_library=trace_library,
        observer=observer,
        faults=faults,
        hedge=hedge,
        columnar=columnar,
    )
    return engine.run()
