"""The unified discrete-event engine of the rendering service.

One event queue drives the whole serving stack — *arrival*,
*compile-done*, *chip-free*, and *scale-tick* events — replacing the
seed's ad-hoc two-clock loop. :class:`ServeCluster`,
:class:`Autoscaler`, :class:`AdmissionPolicy`, and
:class:`PipelineBatcher` all plug into the same loop:

* **arrival** — the admission policy rules on the request at its
  arrival instant (projections now include any compile backlog its
  trace would wait on); admitted requests join an indexed pending
  structure (per-pipeline lanes plus an arrival-ordered anchor queue,
  so batch formation is O(batch), not O(queue)).
* **compile-done** — compilation is a first-class resource: a cache
  miss enqueues work on a pool of compile workers whose deterministic,
  program-size-derived latency (:class:`CompileLatencyModel`) overlaps
  chip execution in simulated time. Requests whose trace is still
  compiling simply aren't dispatchable yet; everything else flows
  around them.
* **chip-free** — a chip finishing its batch wakes the dispatcher,
  which coalesces queued same-pipeline *ready* requests and places the
  batch through the cluster's sharding policy.
* **scale-tick** — the autoscaler observes queue depth and windowed SLO
  attainment at event boundaries and when the service goes idle, and
  may flex the fleet (new chips schedule their own warm-up-complete
  chip-free event).

Cross-request **trace prefetch** rides the same machinery: a
per-session first-order Markov model over pipeline transitions (with a
recency-cross-product fallback while it is still cold) predicts each
live session's next trace keys, and idle compile workers warm the cache
with them so a future miss becomes a hit. Accuracy counters (issued /
hits / waste, plus the model's own forecast score) land in the serving
report.

The **predictive serving layer** plugs in at two more points: a
persistent :class:`~repro.serve.trace_library.TraceLibrary` warm-starts
the trace cache from a previous run's compiled-trace metadata before
the first arrival and absorbs updated stats at shutdown (a restarted
service skips the cold-miss storm), and a ``mode="predictive"``
:class:`~repro.serve.autoscaler.Autoscaler` is fed every offered
arrival plus a traffic-weighted service-time EWMA so it can provision
the fleet one warm-up ahead of the arrival-rate trend instead of
trailing it.

The pricing hot path is vectorized: every distinct (trace, chip config)
pair is simulated exactly once into a :class:`CostTable` — plain-float
rows for the scalar event loop, NumPy columns for analysis — so a
100k-request fleet simulation prices frames in O(distinct traces).

Multi-tenant QoS rides the same loop: the pending index keeps one
master queue *per priority tier* (queued premium work always anchors
before economy; batches never mix tiers), weighted admission budgets
each arrival's projected wait against its tenant's share of the fleet,
and ``preempt=True`` adds dispatch-ahead staging — the next batch is
pre-assigned to each busy chip but stays *queued* until the chip frees,
so a premium arrival can displace a staged economy batch back into its
pipeline lane (and displaced work may migrate to a chip the autoscaler
warmed in the meantime).

With ``compile_workers=0`` and no latency model the engine reproduces
the synchronous baseline event-for-event and bit-for-bit: the golden
percentile tables in ``tests/test_serve_golden.py`` pin that
equivalence — and with a single (default) tenant class the QoS
structures degenerate to the old global FIFO, event for event.
"""

from __future__ import annotations

import heapq
import math
import operator
import time
import zlib
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Container, Iterable, Optional, Sequence

import numpy as np

from repro.core.config import AcceleratorConfig, CompileLatencyModel
from repro.core.simulator import FrameResult, UniRenderAccelerator
from repro.errors import ConfigError, SimulationError
from repro.obs.observer import Observer, resolve_observer
from repro.serve.admission import AdmissionPolicy, ShedRecord
from repro.serve.autoscaler import Autoscaler
from repro.serve.batcher import Batch, PipelineBatcher
from repro.serve.cluster import ChipScoreLanes, ChipState, ServeCluster
from repro.serve.faults import (FailedRecord, FaultPlan, HedgePolicy,
                                resolve_faults, resolve_hedge)
from repro.serve.metrics import ServiceReport, publish_report
from repro.serve.request import RenderRequest, RenderResponse, TraceKey
from repro.serve.trace_cache import TraceCache
from repro.serve.trace_library import TraceLibrary

#: EWMA smoothing for the observed mean service time (admission input).
_SERVICE_EWMA_ALPHA = 0.2

#: Slower EWMA for the forecast capacity model: per-response service
#: times swing by the pipeline cost ratio (~8x on the default mix), and
#: a capacity estimate that rides those swings makes the predictive
#: autoscaler's desired fleet flap between its bounds.
_FORECAST_EWMA_ALPHA = 0.05

#: Event kinds, in same-timestamp processing order: arrivals ingest
#: before compile completions land, before freed chips trigger dispatch,
#: before the autoscaler's idle tick.
#:
#: **Tie-break contract** (pinned in ``tests/test_serve_engine.py``):
#: events sort by the full heap tuple ``(t, kind, seq)``. At one
#: instant, *kind* decides first — every arrival precedes every
#: compile-done, which precedes every chip-free, and so on down this
#: list — and within one kind, ``_event_seq`` issue order decides.
#: Arrivals take seqs ``0..n-1`` from their ``(arrival_s, request_id)``
#: sort, so same-instant arrivals always ingest in request-id order;
#: every dynamically pushed event takes the next monotonic seq. Any
#: coalescing of same-timestamp work (the batched-arrival loops below)
#: must preserve exactly this order or the frozen goldens shift.
_ARRIVAL = 0
_COMPILE_DONE = 1
_CHIP_FREE = 2
_SCALE_TICK = 3
# Chaos events (fault injection & hedging): crash/recover points of an
# attached FaultPlan enter the heap at init; a hedge-settle event fires
# at each hedged copy's finish so first-completion-wins resolves in
# event order, never by peeking ahead.
_CHIP_CRASH = 4
_CHIP_RECOVER = 5
_HEDGE_SETTLE = 6

#: EWMA smoothing for the per-chip effective-speed model (fault mode
#: only): admission's projected-wait capacity tracks observed straggler
#: dilation with this gain instead of reading the plan like an oracle.
_SPEED_EWMA_ALPHA = 0.3


#: The canonical arrival sort key (and arrival-seq assignment) —
#: ``(arrival_s, request_id)`` as a C-implemented attrgetter.
_arrival_order = operator.attrgetter("arrival_s", "request_id")


# ----------------------------------------------------------------------
# Compile workers
# ----------------------------------------------------------------------
@dataclass
class CompileWorkerStats:
    """Lifetime counters of one worker pool."""

    demand_jobs: int = 0
    prefetch_jobs: int = 0
    busy_s: float = 0.0          # simulated worker-seconds spent compiling
    demand_wait_s: float = 0.0   # simulated queueing before a demand compile

    @property
    def jobs(self) -> int:
        return self.demand_jobs + self.prefetch_jobs

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "demand_jobs": self.demand_jobs,
            "prefetch_jobs": self.prefetch_jobs,
            "busy_s": self.busy_s,
            "demand_wait_s": self.demand_wait_s,
        }


class CompileWorkerPool:
    """A fixed pool of compile workers with deterministic placement.

    Jobs go to the worker that frees earliest (ties to the lowest
    index); each occupies its worker for the model's simulated latency.
    Prefetch jobs are only submitted when a worker is idle *right now*
    (see :meth:`idle_worker`), so warming the cache never delays demand
    compiles that are already queued.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ConfigError("compile pool needs at least one worker")
        self.n_workers = n_workers
        self._free_at = [0.0] * n_workers
        self.stats = CompileWorkerStats()
        # Placement of the most recent submit (worker index and start
        # instant) — read by the engine's compile-span instrumentation.
        self.last_worker = 0
        self.last_start = 0.0

    def submit(self, now: float, latency_s: float, demand: bool) -> float:
        """Assign a compile job; returns its completion time."""
        worker = min(range(self.n_workers), key=lambda w: (self._free_at[w], w))
        start = max(now, self._free_at[worker])
        done = start + latency_s
        self._free_at[worker] = done
        self.last_worker = worker
        self.last_start = start
        self.stats.busy_s += latency_s
        if demand:
            self.stats.demand_jobs += 1
            self.stats.demand_wait_s += start - now
        else:
            self.stats.prefetch_jobs += 1
        return done

    def idle_worker(self, now: float) -> bool:
        """True when at least one worker could start a job immediately."""
        return any(free <= now for free in self._free_at)

    def idle_count(self, now: float) -> int:
        return sum(1 for free in self._free_at if free <= now)

    def utilization(self, horizon_s: float) -> float:
        total = self.n_workers * horizon_s
        return self.stats.busy_s / total if total > 0 else 0.0


# ----------------------------------------------------------------------
# Cross-request trace prefetch
# ----------------------------------------------------------------------
class _KeyUnion:
    """Membership over two containers (the prefetcher's skip set)."""

    __slots__ = ("first", "second")

    def __init__(self, first, second) -> None:
        self.first = first
        self.second = second

    def __contains__(self, key) -> bool:
        return key in self.first or key in self.second


class TracePrefetcher:
    """Predicts upcoming trace keys from recent traffic.

    The predictor is a per-session first-order Markov model over
    pipeline transitions: each (scene, resolution) pair is one client
    session, and every demanded key updates the transition count from
    the session's previous pipeline to its current one. Candidates are
    each live session's likeliest *next* pipelines, sessions most
    recently active first — a client that keeps flipping *hashgrid* to
    *gaussian* mid-session will get its gaussian trace warmed the
    moment it touches hashgrid again. Ties between equally likely
    transitions break through a ``seed``-keyed deterministic hash, so a
    seed pins the full prediction order.

    Below ``min_observations`` recorded transitions the model has no
    statistics worth trusting and falls back to the recency
    cross-product predictor (distinct recent scenes x pipelines x
    resolutions, most recent first).

    Candidates already resident or in flight are skipped — by the
    engine *and* by :meth:`candidates` itself when given the cache
    (``resident=``): a prefetch recorded for an already-cached trace
    would count that trace's next demand hit as prefetcher skill, which
    a warm-started cache would turn into systematic accuracy inflation.
    Everything issued, later used, or never used is counted
    (accuracy = hits / issued), and the model additionally scores its
    own per-session forecasts (predictor_accuracy = correct /
    predictions) so the report separates prediction quality from
    prefetch-pipeline plumbing.
    """

    def __init__(
        self,
        history: int = 32,
        max_candidates: int = 8,
        min_observations: int = 8,
        seed: int = 0,
    ) -> None:
        if history < 1 or max_candidates < 1:
            raise ConfigError("prefetcher history/candidates must be >= 1")
        if min_observations < 1:
            raise ConfigError("prefetcher min_observations must be >= 1")
        self.history = history
        self.max_candidates = max_candidates
        self.min_observations = min_observations
        self.seed = seed
        self._recent: deque[TraceKey] = deque(maxlen=history)
        # Markov state: one current pipeline per live session and the
        # global first-order transition counts between pipelines.
        self._session_pipeline: dict[tuple[str, int, int], str] = {}
        self._transitions: dict[str, dict[str, int]] = {}
        self._n_transitions = 0
        self.issued = 0
        self.hits = 0            # issued keys later demanded at least once
        self.predictions = 0     # transitions the model forecast in advance
        self.correct = 0         # ... whose top guess matched the demand
        self._unused: set[TraceKey] = set()

    # -- signal intake --------------------------------------------------
    def observe(self, key: TraceKey) -> None:
        """Record one demanded trace key (one step of its session)."""
        scene, pipeline, width, height = key
        session = (scene, width, height)
        previous = self._session_pipeline.get(session)
        if previous is not None:
            # Score the forecast this transition just resolved, then
            # learn from it — the model never grades itself on a
            # transition it has already seen.
            guess = self._predict(previous)
            if guess is not None:
                self.predictions += 1
                self.correct += guess == pipeline
            row = self._transitions.setdefault(previous, {})
            row[pipeline] = row.get(pipeline, 0) + 1
            self._n_transitions += 1
        self._session_pipeline[session] = pipeline
        self._recent.append(key)

    def is_unused(self, key: TraceKey) -> bool:
        """True while a prefetched ``key`` has not served a demand yet."""
        return key in self._unused

    def note_use(self, key: TraceKey) -> None:
        """A demand request reached a prefetched trace (first use only)."""
        if key in self._unused:
            self._unused.discard(key)
            self.hits += 1

    def note_issue(self, key: TraceKey) -> None:
        self.issued += 1
        self._unused.add(key)

    def note_demand_compile(self, key: TraceKey) -> None:
        """A demand miss had to compile ``key`` from scratch: any
        prefetched copy was evicted unused, so a later hit on the
        demand-compiled entry must not be credited to the prefetcher."""
        self._unused.discard(key)

    # -- prediction -----------------------------------------------------
    def _tiebreak(self, pipeline: str) -> int:
        """Seed-keyed deterministic rank for equally weighted choices."""
        return zlib.crc32(f"{self.seed}:{pipeline}".encode())

    def _ranked(self, pipeline: str) -> list[str]:
        """Next pipelines after ``pipeline``, likeliest first."""
        row = self._transitions.get(pipeline)
        if not row:
            return []
        return sorted(row, key=lambda nxt: (-row[nxt], self._tiebreak(nxt)))

    def _predict(self, pipeline: str) -> Optional[str]:
        """The model's single best next-pipeline guess (None when the
        model is still below its observation threshold or has never
        seen ``pipeline`` lead anywhere)."""
        if self._n_transitions < self.min_observations:
            return None
        ranked = self._ranked(pipeline)
        return ranked[0] if ranked else None

    def transition_weights(self, pipeline: str) -> dict[str, int]:
        """Observed transition counts out of ``pipeline`` (a copy)."""
        return dict(self._transitions.get(pipeline, {}))

    def candidates(
        self, resident: Optional[Container[TraceKey]] = None
    ) -> list[TraceKey]:
        """Predicted keys, most promising first (deterministic).

        ``resident`` filters out keys that are already cached *before*
        they consume candidate slots — prefetching them would be free
        accuracy (see the class docstring), and on a warm-started cache
        a post-hoc filter would return an empty list while genuinely
        missing, deeper predictions still exist.
        """
        if self._n_transitions < self.min_observations:
            return self._recency_candidates(resident)
        return self._markov_candidates(resident)

    def _markov_candidates(
        self, resident: Optional[Container[TraceKey]]
    ) -> list[TraceKey]:
        """Each live session's ranked next keys, breadth-first: every
        session's best guess before any session's second guess,
        sessions most recently active first."""
        ranked_by_session: list[tuple[tuple[str, int, int], list[str]]] = []
        seen: set[tuple[str, int, int]] = set()
        for scene, _pipeline, width, height in reversed(self._recent):
            session = (scene, width, height)
            if session in seen:
                continue
            seen.add(session)
            ranked = self._ranked(self._session_pipeline[session])
            if ranked:
                ranked_by_session.append((session, ranked))
        out: list[TraceKey] = []
        emitted: set[TraceKey] = set()
        depth = 0
        while len(out) < self.max_candidates:
            any_left = False
            for (scene, width, height), ranked in ranked_by_session:
                if depth >= len(ranked):
                    continue
                any_left = True
                key = (scene, ranked[depth], width, height)
                if key in emitted or (resident is not None
                                      and key in resident):
                    continue
                emitted.add(key)
                out.append(key)
                if len(out) >= self.max_candidates:
                    return out
            if not any_left:
                break
            depth += 1
        return out

    def _recency_candidates(
        self, resident: Optional[Container[TraceKey]] = None
    ) -> list[TraceKey]:
        """Cold-start fallback: cross distinct recent scenes, pipelines,
        and resolutions, most recent first."""
        scenes: list[str] = []
        pipelines: list[str] = []
        resolutions: list[tuple[int, int]] = []
        for scene, pipeline, width, height in reversed(self._recent):
            if scene not in scenes:
                scenes.append(scene)
            if pipeline not in pipelines:
                pipelines.append(pipeline)
            if (width, height) not in resolutions:
                resolutions.append((width, height))
        out: list[TraceKey] = []
        for pipeline in pipelines:
            for scene in scenes:
                for width, height in resolutions:
                    key = (scene, pipeline, width, height)
                    if resident is not None and key in resident:
                        continue
                    out.append(key)
                    if len(out) >= self.max_candidates:
                        return out
        return out

    # -- reporting ------------------------------------------------------
    @property
    def waste(self) -> int:
        """Prefetches that never served a demand request."""
        return self.issued - self.hits

    @property
    def accuracy(self) -> float:
        return self.hits / self.issued if self.issued else 0.0

    @property
    def predictor_accuracy(self) -> float:
        """Fraction of scored session transitions whose top guess was
        right — the Markov model's quality, independent of whether the
        compile pool had idle capacity to act on it."""
        return self.correct / self.predictions if self.predictions else 0.0

    def to_dict(self) -> dict:
        return {
            "issued": self.issued,
            "hits": self.hits,
            "waste": self.waste,
            "accuracy": self.accuracy,
            "predictions": self.predictions,
            "correct": self.correct,
            "predictor_accuracy": self.predictor_accuracy,
        }


# ----------------------------------------------------------------------
# Vectorized frame pricing
# ----------------------------------------------------------------------
class CostTable:
    """Per-(trace, chip config) frame costs, priced exactly once.

    Chips at the same design point render identical frames in identical
    cycles, so the fleet pays the performance model once per distinct
    (trace key, config) pair — O(distinct traces), however many requests
    replay them. Rows are plain float tuples for the scalar event loop;
    :meth:`as_arrays` exposes the same table as NumPy columns for
    analysis and bulk pricing.
    """

    def __init__(self) -> None:
        self._index: dict[tuple[TraceKey, AcceleratorConfig], int] = {}
        self._rows: list[tuple[float, float, float]] = []
        self._results: list[FrameResult] = []

    def __len__(self) -> int:
        return len(self._rows)

    def has(self, key: TraceKey, config: AcceleratorConfig) -> bool:
        return (key, config) in self._index

    def price(
        self,
        key: TraceKey,
        accelerator: UniRenderAccelerator,
        program,
    ) -> tuple[float, float, float]:
        """``(cycles, frame_reconfig_cycles, energy_j)`` for this pair."""
        memo_key = (key, accelerator.config)
        idx = self._index.get(memo_key)
        if idx is None:
            result = accelerator.simulate(program)
            idx = len(self._rows)
            self._index[memo_key] = idx
            self._rows.append(
                (result.cycles, result.reconfig_cycles, result.energy_per_frame_j)
            )
            self._results.append(result)
        return self._rows[idx]

    def result_for(
        self, key: TraceKey, config: AcceleratorConfig
    ) -> Optional[FrameResult]:
        """The full FrameResult behind a priced row (timeline rendering)."""
        idx = self._index.get((key, config))
        return self._results[idx] if idx is not None else None

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The table as NumPy columns: cycles, reconfig, energy."""
        rows = np.asarray(self._rows, dtype=float).reshape(-1, 3)
        return {
            "cycles": rows[:, 0],
            "reconfig_cycles": rows[:, 1],
            "energy_j": rows[:, 2],
        }


def response_timeline(
    response: RenderResponse,
    result: FrameResult,
    width: int = 60,
) -> str:
    """Per-phase timeline of one served frame, compile phase included.

    Wraps :meth:`FrameResult.timeline` with the serving-side context:
    when the request triggered (or waited on) a compile, that phase
    appears as its own labelled bar ahead of the frame's phases — tagged
    ``sync``, ``worker``, or ``prefetch`` by where the compile ran.
    """
    clock_hz = result.fps * result.cycles  # fps == clock / cycles
    if not (clock_hz > 0.0 and math.isfinite(clock_hz)):
        clock_hz = 1e9  # zero-cycle hand-built frame: assume 1 GHz
    compile_cycles = response.compile_s * clock_hz
    return result.timeline(
        width=width,
        compile_cycles=compile_cycles,
        compile_label=response.compile_origin or "compile",
    )


# ----------------------------------------------------------------------
# Pending-queue index
# ----------------------------------------------------------------------
class _PendingIndex:
    """Arrival-ordered queue with per-pipeline lanes and O(1) counters.

    Per-tier ``masters`` preserve the head-of-line anchor *within each
    priority tier* — the anchor scan walks tiers most-premium first, so
    queued premium work always dispatches ahead of queued economy work
    (with a single tenant class every request lands in one tier and the
    structure degenerates to the old global FIFO, event for event).
    Per-pipeline lanes give batch formation its same-pipeline followers
    without scanning the whole queue; the pipeline counters give
    admission its backlog projection without iterating pending requests.
    Dispatched requests are removed lazily — each structure consumes its
    own tombstone set, so a request dropped from one is still recognized
    by the other. :meth:`restore` is the preemption path's inverse of
    :meth:`take`: displaced (never-started) batch members re-enter every
    structure in original arrival order.
    """

    def __init__(self) -> None:
        self.masters: dict[int, deque[RenderRequest]] = {}
        self._tiers: list[int] = []       # sorted keys of ``masters``
        self.lanes: dict[str, deque[RenderRequest]] = {}
        self.counts: dict[str, int] = {}
        self.n_pending = 0
        self._gone_master: set[int] = set()
        self._gone_lane: set[int] = set()

    def push(self, request: RenderRequest) -> None:
        tier = request.tenant.tier
        master = self.masters.get(tier)
        if master is None:
            master = self.masters[tier] = deque()
            self._tiers = sorted(self.masters)
        master.append(request)
        lane = self.lanes.get(request.pipeline)
        if lane is None:
            lane = self.lanes[request.pipeline] = deque()
        lane.append(request)
        self.counts[request.pipeline] = self.counts.get(request.pipeline, 0) + 1
        self.n_pending += 1

    def anchor(self, is_ready) -> Optional[RenderRequest]:
        """Oldest pending *ready* request of the most premium tier that
        has one (the batch anchor)."""
        gone = self._gone_master
        for tier in self._tiers:
            master = self.masters[tier]
            while master and master[0].request_id in gone:
                gone.discard(master.popleft().request_id)
            for request in master:
                if request.request_id in gone:
                    continue
                if is_ready(request):
                    return request
        return None

    def take(self, pipeline: str, limit: int, is_ready,
             tier: Optional[int] = None) -> list[RenderRequest]:
        """Up to ``limit`` ready requests of ``pipeline``, in queue order.

        Unready requests keep their place in the lane (skipped, never
        reordered); previously dispatched ones are lazily dropped. With
        ``tier`` set, only requests of that priority tier are taken —
        QoS batches never carry economy passengers ahead of queued
        premium work of another pipeline.
        """
        lane = self.lanes[pipeline]
        gone = self._gone_lane
        while lane and lane[0].request_id in gone:
            gone.discard(lane.popleft().request_id)
        taken: list[RenderRequest] = []
        contiguous = True
        for request in lane:
            if request.request_id in gone:
                contiguous = False
                continue
            if tier is not None and request.tenant.tier != tier:
                contiguous = False
                continue
            if not is_ready(request):
                contiguous = False
                continue
            taken.append(request)
            if len(taken) >= limit:
                break
        if taken:
            n = len(taken)
            self.counts[pipeline] -= n
            self.n_pending -= n
            if contiguous:
                for _ in range(n):  # fast path: drop the prefix outright
                    lane.popleft()
            else:
                for request in taken:
                    gone.add(request.request_id)
            for request in taken:
                self._gone_master.add(request.request_id)
        return taken

    def restore(self, requests: Sequence[RenderRequest]) -> None:
        """Re-queue displaced (never-started) batch members.

        Inverse of :meth:`take` for the preemption path. Members that
        are still physically resident (they were only tombstoned) just
        lose their tombstones and keep their original slots; members the
        fast paths removed outright are merged back in
        ``(arrival_s, request_id)`` order, so queue fairness survives a
        displacement bit for bit.
        """
        if not requests:
            return
        for request in requests:
            self._gone_master.discard(request.request_id)
            self._gone_lane.discard(request.request_id)

        pipeline = requests[0].pipeline
        lane = self.lanes[pipeline]
        self._merge_missing(lane, requests)
        for tier in {r.tenant.tier for r in requests}:
            master = self.masters.get(tier)
            if master is None:
                master = self.masters[tier] = deque()
                self._tiers = sorted(self.masters)
            self._merge_missing(
                master, [r for r in requests if r.tenant.tier == tier])
        self.counts[pipeline] += len(requests)
        self.n_pending += len(requests)

    def cancel(self, request: RenderRequest) -> None:
        """Remove a still-queued request outright (hedge cancellation:
        its sibling copy won). The caller guarantees the request is
        physically pending — it was pushed/restored and never taken —
        so both structures get a tombstone and the counters drop."""
        self._gone_master.add(request.request_id)
        self._gone_lane.add(request.request_id)
        self.counts[request.pipeline] -= 1
        self.n_pending -= 1

    @staticmethod
    def _merge_missing(queue: deque, requests: Sequence[RenderRequest]) -> None:
        resident = {r.request_id for r in queue}
        missing = [r for r in requests if r.request_id not in resident]
        if not missing:
            return
        merged = sorted(
            list(queue) + missing, key=lambda r: (r.arrival_s, r.request_id))
        queue.clear()
        queue.extend(merged)


# ----------------------------------------------------------------------
# Deferred observability (the columnar loop's event buffer)
# ----------------------------------------------------------------------
class _ColumnarObsLog:
    """Event buffer the columnar loop records into instead of calling
    the observer per event.

    Rows live in preallocated (kind, t, int, float) columns that double
    on demand, plus one aligned object slot (request / response /
    pipeline name) — the hot loop pays a handful of array stores per
    event instead of a Python observer dispatch. :meth:`replay` then
    drives the real :class:`~repro.obs.observer.Observer` at the end of
    the run, firing every hook in exactly the scalar loop's call order.

    Why replay is exact: each row is stamped with the scalar iteration
    instant it would have fired at (the arrival instant for ingest
    hooks, the dispatch instant for batch/frame hooks), and rows are
    appended in non-decreasing stamp order with ingest-before-dispatch
    at equal stamps — the scalar order. The scalar loop additionally
    calls ``maybe_snapshot(now)`` once per event-loop instant; for a
    columnar-eligible run those instants are exactly the distinct
    arrival timestamps plus the batch-finish (chip-free) instants, both
    of which the buffer has, so the replay interleaves snapshot calls
    at every recorded instant strictly below the next row's stamp.
    Duplicate snapshot calls are no-ops (the cadence gate), so the
    dedup changes nothing. Cache hit/miss/eviction counters — live
    mirrors on the scalar path — are unbound during the run and
    replayed here per frame from the recorded deltas, so a mid-run
    flight-recorder capture sees the same registry state either way.
    """

    _ARRIVE = 0
    _ADMIT = 1
    _SHED = 2
    _CACHE = 3
    _COMPILE = 4
    _RESPONSE = 5
    _BATCH = 6

    __slots__ = ("kind", "t", "i0", "i1", "i2", "i3", "f0", "f1",
                 "obj", "n", "finishes", "record_cache")

    def __init__(self, capacity: int, record_cache: bool) -> None:
        capacity = max(capacity, 64)
        self.kind = np.empty(capacity, dtype=np.int8)
        self.t = np.empty(capacity, dtype=np.float64)
        self.i0 = np.zeros(capacity, dtype=np.int64)
        self.i1 = np.zeros(capacity, dtype=np.int64)
        self.i2 = np.zeros(capacity, dtype=np.int64)
        self.i3 = np.zeros(capacity, dtype=np.int64)
        self.f0 = np.zeros(capacity, dtype=np.float64)
        self.f1 = np.zeros(capacity, dtype=np.float64)
        self.obj: list[object] = []
        self.n = 0
        #: Batch-finish instants (the chip-free events the columnar loop
        #: never pushes) — with the arrival column, the snapshot grid.
        self.finishes: list[float] = []
        self.record_cache = record_cache

    def _grow(self, need: int) -> None:
        cap = len(self.kind)
        while cap < need:
            cap *= 2
        for field in ("kind", "t", "i0", "i1", "i2", "i3", "f0", "f1"):
            old = getattr(self, field)
            new = np.zeros(cap, dtype=old.dtype)
            new[:self.n] = old[:self.n]
            setattr(self, field, new)

    def append(self, kind: int, t: float, obj: object = None,
               i0: int = 0, i1: int = 0, i2: int = 0, i3: int = 0,
               f0: float = 0.0, f1: float = 0.0) -> None:
        n = self.n
        if n == len(self.kind):
            self._grow(n + 1)
        self.kind[n] = kind
        self.t[n] = t
        self.i0[n] = i0
        self.i1[n] = i1
        self.i2[n] = i2
        self.i3[n] = i3
        self.f0[n] = f0
        self.f1[n] = f1
        self.obj.append(obj)
        self.n = n + 1

    def append_arrivals(self, arr_np: np.ndarray, lo: int, hi: int,
                        requests: Sequence) -> None:
        """Bulk-record on_arrival rows for one ingest window (the
        vectorized no-admission path)."""
        w = hi - lo
        n = self.n
        if n + w > len(self.kind):
            self._grow(n + w)
        self.kind[n:n + w] = self._ARRIVE
        self.t[n:n + w] = arr_np[lo:hi]
        self.obj.extend(requests[lo:hi])
        self.n = n + w

    def replay(self, engine, arr_np: np.ndarray) -> None:
        """Fire the recorded run into the observer, scalar order."""
        obs = engine._obs
        admission = engine.admission
        metrics = obs.metrics
        m_hits = m_misses = m_evictions = None
        if metrics is not None:
            m_hits = metrics.counter("cache.hits")
            m_misses = metrics.counter("cache.misses")
            m_evictions = metrics.counter("cache.evictions")
        if self.finishes:
            snap_ts = np.union1d(arr_np, np.asarray(self.finishes))
        else:
            snap_ts = np.unique(arr_np)
        si = 0
        ns = len(snap_ts)
        kinds = self.kind
        ts = self.t
        objs = self.obj
        wants = obs.wants
        snapshot = obs.maybe_snapshot
        for r in range(self.n):
            t_row = ts[r]
            while si < ns and snap_ts[si] < t_row:
                snapshot(float(snap_ts[si]))
                si += 1
            kind = kinds[r]
            if kind == self._CACHE:
                if self.i0[r]:
                    m_hits.inc()
                else:
                    m_misses.inc()
                    if self.i1[r]:
                        m_evictions.inc(int(self.i1[r]))
            elif kind == self._RESPONSE:
                resp = objs[r]
                obs.on_response(resp, wants(resp.request.request_id))
            elif kind == self._ARRIVE:
                req = objs[r]
                obs.on_arrival(float(t_row), req, wants(req.request_id))
            elif kind == self._BATCH:
                obs.on_batch(float(self.f0[r]), float(self.f1[r]),
                             int(self.i0[r]), int(self.i1[r]),
                             int(self.i2[r]), objs[r], int(self.i3[r]))
            elif kind == self._COMPILE:
                obs.on_compile_sync(float(self.f0[r]), float(self.f1[r]),
                                    int(self.i0[r]), objs[r])
            elif kind == self._ADMIT:
                req = objs[r]
                admission.note_verdict("admitted")
                obs.on_admit(float(t_row), req, "admit",
                             wants(req.request_id))
            else:  # _SHED
                req = objs[r]
                admission.note_verdict("shed")
                obs.on_shed(float(t_row), req, wants(req.request_id))
        while si < ns:
            snapshot(float(snap_ts[si]))
            si += 1


# ----------------------------------------------------------------------
# Batch staging (the preemption unit)
# ----------------------------------------------------------------------
@dataclass
class _StagedBatch:
    """A batch placed on a busy chip but not yet started.

    Only staged batches are preemptible: once a chip begins executing,
    its work is in flight and runs to completion. Staging happens only
    in preempt mode, when the sharding policy places a batch on a chip
    that frees in the future (e.g. a warm pipeline-affinity pick);
    otherwise placement executes immediately, exactly as before.
    """

    batch: Batch
    chip: ChipState
    start_s: float
    dispatched_s: float   # when the batch was formed (priority records)

    @property
    def tier(self) -> int:
        # QoS batches are single-tier (tier-filtered take), so the
        # first member speaks for the batch.
        return self.batch.requests[0].tenant.tier


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class EventEngine:
    """One service simulation, driven end to end by an event queue."""

    def __init__(
        self,
        requests: Iterable[RenderRequest] | Sequence[RenderRequest],
        cluster: Optional[ServeCluster] = None,
        cache: Optional[TraceCache] = None,
        batcher: Optional[PipelineBatcher] = None,
        autoscaler: Optional[Autoscaler] = None,
        admission: Optional[AdmissionPolicy] = None,
        compile_workers: int = 0,
        compile_latency: Optional[CompileLatencyModel] = None,
        prefetcher: Optional[TracePrefetcher] = None,
        preempt: bool = False,
        trace_library: "TraceLibrary | str | Path | None" = None,
        observer: Optional[Observer] = None,
        faults: Optional[FaultPlan] = None,
        hedge: "HedgePolicy | bool | None" = None,
        columnar: bool = True,
    ) -> None:
        ordered = sorted(requests, key=_arrival_order)
        if not ordered:
            raise SimulationError("cannot simulate a service with no requests")
        if compile_workers < 0:
            raise ConfigError("compile_workers cannot be negative")
        if prefetcher is not None and compile_workers < 1:
            raise ConfigError(
                "trace prefetch needs at least one compile worker "
                "(pass compile_workers >= 1)"
            )
        cluster = cluster if cluster is not None else ServeCluster()
        if cluster.lifetime_dirty:
            raise SimulationError(
                "ServeCluster has nonzero lifetime accounting; build a fresh "
                "cluster per simulate_service run (chips carry busy time, "
                "served counts, and autoscaling history)"
            )
        self.cluster = cluster
        self.cache = cache if cache is not None else TraceCache()
        self.batcher = batcher if batcher is not None else PipelineBatcher()
        self.autoscaler = autoscaler
        # A predictive autoscaler additionally consumes the arrival
        # stream and a traffic-weighted service-time EWMA (the per-
        # pipeline estimates would overweight rare, expensive pipelines
        # in the capacity model); the reactive controller's hot path
        # must not pay for either.
        self._feed_forecast = autoscaler is not None and getattr(
            autoscaler, "predictive", False)
        self._svc_ewma: Optional[float] = None
        self.admission = admission
        self.async_compile = compile_workers >= 1
        if self.async_compile and compile_latency is None:
            compile_latency = self.cache.latency_model or CompileLatencyModel()
        self.latency_model = compile_latency
        if compile_latency is not None:
            # The synchronous path charges compile latency inside the
            # cache, so the two views must be one model — a warm cache
            # priced under a different model would silently misprice
            # recompiles.
            if self.cache.latency_model is None:
                self.cache.latency_model = compile_latency
            elif self.cache.latency_model != compile_latency:
                raise ConfigError(
                    "cache.latency_model differs from compile_latency; "
                    "a shared warm cache must keep one compile-latency "
                    "model across runs"
                )
        self.pool = (
            CompileWorkerPool(compile_workers) if self.async_compile else None
        )
        self.prefetcher = prefetcher

        # -- observability (off by default) -----------------------------
        # Disabled observers normalize to None, so every instrumentation
        # site below costs exactly one pointer check when unobserved.
        # Metric instruments bind *now* — before the library warm start,
        # so cache.warmed counts warm installs too — and scale actions
        # report through the autoscaler's own observer handle.
        if observer is None:
            observer = cluster.observer
        self._obs = resolve_observer(observer)
        if self._obs is not None:
            metrics = self._obs.metrics
            if metrics is not None:
                self.cache.bind_metrics(metrics)
                if admission is not None:
                    admission.bind_metrics(metrics)
                metrics.gauge("fleet.n_chips").set(len(cluster.chips))
            if autoscaler is not None:
                autoscaler.observer = self._obs

        # -- persistent trace library (warm start + shutdown flush) -----
        if trace_library is None:
            trace_library = cluster.trace_library
        self._library_path: Optional[Path] = None
        if isinstance(trace_library, (str, Path)):
            self._library_path = Path(trace_library)
            trace_library = TraceLibrary.load(self._library_path)
        self.trace_library = trace_library
        self._hits_baseline: dict[TraceKey, int] = {}
        if self.trace_library is not None:
            self.trace_library.warm(self.cache)
            # The cache's hit counters are lifetime figures and the
            # cache may be shared across runs; the shutdown flush must
            # credit the library with this run's hits only.
            self._hits_baseline = dict(self.cache.hits_by_key)

        # -- multi-tenant QoS state -------------------------------------
        # Tier-filtered batching switches on when the trace actually
        # carries more than one priority tier (or preemption is armed);
        # a single-class trace takes the exact pre-tenant code paths.
        self.preempt = preempt
        self._qos = preempt or len({r.tenant.tier for r in ordered}) > 1
        self._staged: dict[int, _StagedBatch] = {}   # chip_id -> batch
        self._preempt_count: dict[int, int] = {}     # request_id -> times
        self._displaced_from: dict[int, int] = {}    # request_id -> chip_id
        self.n_preemptions = 0                       # displacement events
        # Weighted admission budgets the queue per tenant share, which
        # needs per-tenant backlog counters the single-tenant hot path
        # should not pay for.
        self._tenant_aware = admission is not None and getattr(
            admission, "tenant_aware", False)
        self._tenant_pending: dict[str, dict[str, int]] = {}
        self._tenant_weight: dict[str, float] = {}

        self._pending = _PendingIndex()
        self._cost = CostTable()
        self._responses: list[RenderResponse] = []
        self._shed: list[ShedRecord] = []
        self._est_by_pipeline: dict[str, float] = {}
        # Async-compile state: keys in flight, their completion instants,
        # how many pending requests wait on each, and programs pinned
        # for the duration of their compile (the cache owns them after).
        self._waiting_done_s: dict[TraceKey, float] = {}
        self._waiting_requests: dict[TraceKey, int] = {}
        self._n_waiting = 0
        self._programs: dict[TraceKey, object] = {}
        self._ingest_hit: dict[int, bool] = {}
        self._ingest_prefetched: dict[int, bool] = {}
        self._compile_charge: dict[int, float] = {}
        # Completions not yet visible to the autoscaler's SLO window
        # (no clairvoyance): a finish-ordered heap.
        self._inflight: list[tuple[float, int, bool]] = []
        self._inflight_seq = 0
        self._known_chips = len(cluster.chips)
        self._tick_pushed_at = -1.0

        # Arrivals are the overwhelming majority of events, and they are
        # already sorted — so they stay in their list (plus a parallel
        # timestamp column for windowed scans) instead of paying one
        # heap entry each. The heap carries only dynamic events. The run
        # loops merge the two streams in exactly the old single-heap
        # ``(t, kind, seq)`` order: arrivals are kind ``_ARRIVAL`` (0)
        # with seqs ``0..n-1`` from the sort, so at any instant they
        # ingest — in arrival order — before every dynamic event.
        self._arrivals = ordered
        self._arrival_t = [request.arrival_s for request in ordered]
        self._events: list[tuple[float, int, int, object]] = []
        self._event_seq = len(ordered)

        # -- chaos: fault injection & request hedging --------------------
        # An attached-but-empty plan normalizes to None, so fault-free
        # runs (reports included) stay byte-identical whether or not a
        # FaultPlan object was passed.
        self._faults = resolve_faults(faults)
        self._hedge = resolve_hedge(hedge)
        self._down_chips: set[int] = set()
        # Work truncated off a crashing chip waits here until the crash
        # instant actually arrives (the engine executes batches eagerly;
        # re-queueing at dispatch time would let the scheduler react to
        # a failure before it happened).
        self._crash_limbo: dict[int, list[RenderRequest]] = {}
        self._requeue_count: dict[int, int] = {}
        self._chip_speed: dict[int, float] = {}
        self._failed: list[FailedRecord] = []
        self._fault_counts = {"crashes": 0, "permanent": 0,
                              "recoveries": 0, "requeued": 0}
        self._rollback_charged_s = 0.0
        self._recovery_total_s = 0.0
        if self._hedge is not None:
            self._hedge_waits: deque[float] = deque(
                maxlen=self._hedge.window)
            self._n_wait_samples = 0
            self._hedge_threshold_cache: Optional[float] = None
            self._hedge_cached_at = -1
            # Pair state, keyed by the *original* request id; a clone's
            # id is the bitwise complement (~id < 0 never collides with
            # a real request id, and ~~id round-trips).
            self._hedge_state: dict[int, dict] = {}
            self._hedge_of: dict[int, int] = {}      # clone id -> original
            self._hedge_queued: dict[int, RenderRequest] = {}
            self.n_hedges = 0
            self.n_hedge_wins = 0
            self.n_hedge_wasted = 0
            self.n_hedge_cancelled = 0
            self._hedge_wasted_s = 0.0
        if self._faults is not None:
            for crash in self._faults.crashes:
                self._push(crash.at_s, _CHIP_CRASH, crash)
                if crash.down_s is not None:
                    self._push(crash.recover_at_s, _CHIP_RECOVER, crash)

        # -- columnar fast path eligibility ------------------------------
        # The de-interpreted run loop (:meth:`_run_columnar`) holds the
        # pending set as per-(tier, pipeline) index lanes over NumPy
        # arrival columns and skips the event heap entirely. It is taken
        # only for configurations whose scalar schedule it reproduces
        # bit for bit: a static fleet (no autoscaler, no faults, no
        # hedging — chaos must stay on the reference loop), synchronous
        # compile (no worker pool, no prefetch), no preemption (staging
        # reorders dispatch mid-flight), no weighted admission (its
        # per-tenant budgets rewrite the backlog projection), and an
        # admission policy that never rewrites requests (an unknown
        # policy subclass conservatively falls back to scalar). Strict-
        # tier multi-tenant traffic and an attached observer *are*
        # eligible: tiers get their own lanes, and observability is
        # recorded into a :class:`_ColumnarObsLog` and replayed at
        # finalize. ``columnar=False`` is the explicit escape hatch.
        self._price_memo: dict[int, dict[TraceKey,
                                         tuple[float, float, float]]] = {}
        self._columnar = bool(
            columnar
            and self.autoscaler is None
            and not self.async_compile
            and self.prefetcher is None
            and not self.preempt
            and self._faults is None
            and self._hedge is None
            and not self._tenant_aware
            and (admission is None
                 or not getattr(admission, "may_degrade", True))
        )
        # Price-memo hygiene (both loops): an eviction may force a later
        # recompile of the same key, and the memoized price row must not
        # outlive the program it was priced for.
        self.cache.on_evict = self._note_evicted
        if self._columnar:
            if self._obs is not None and self._obs.metrics is not None:
                # Observability defers to the replay pass; detach the
                # cache's live metric mirrors so the hot loop pays no
                # per-access increments (the warm-start counts above
                # landed live, before this point, in both run modes).
                self.cache.unbind_metrics()

    def _note_evicted(self, key: TraceKey) -> None:
        """Cache eviction listener (columnar runs): drop the evicted
        trace's price row from every chip's memo. A later recompile of
        the key re-prices through the cost table instead of riding a
        row memoized for the evicted program."""
        for memo in self._price_memo.values():
            memo.pop(key, None)

    # -- service-time estimation ---------------------------------------
    def _estimate(self, pipeline: str) -> float:
        """EWMA service time of one request; 0 until anything finished
        (optimistic: admit freely while the service is cold)."""
        est = self._est_by_pipeline
        if pipeline in est:
            return est[pipeline]
        if est:
            return sum(est.values()) / len(est)
        return 0.0

    # -- event plumbing -------------------------------------------------
    def _push(self, t: float, kind: int, payload: object = None) -> None:
        heapq.heappush(self._events, (t, kind, self._event_seq, payload))
        self._event_seq += 1

    def _watch_new_chips(self) -> None:
        """Autoscaled chips wake the dispatcher when their warm-up ends."""
        chips = self.cluster.chips
        while self._known_chips < len(chips):
            chip = chips[self._known_chips]
            self._push(chip.free_at_s, _CHIP_FREE, chip.chip_id)
            self._known_chips += 1

    def _controller_tick(self, now: float, queue_depth: int) -> None:
        scaler = self.autoscaler
        inflight = self._inflight
        while inflight and inflight[0][0] <= now:
            finish_s, _seq, slo_met = heapq.heappop(inflight)
            scaler.record_response(finish_s, slo_met)
        scaler.observe(now, self.cluster, queue_depth, reserved=self._staged,
                       est_service_s=self._svc_ewma or 0.0)
        self._watch_new_chips()
        if self._obs is not None:
            self._obs.maybe_snapshot(now)

    # -- readiness ------------------------------------------------------
    def _is_ready(self, request: RenderRequest) -> bool:
        return request.trace_key not in self._waiting_done_s

    @property
    def _n_ready(self) -> int:
        return self._pending.n_pending - self._n_waiting

    # -- compile submission ---------------------------------------------
    def _submit_compile(self, key: TraceKey, now: float, demand: bool) -> float:
        """Compile ``key`` on the worker pool; returns its sim latency."""
        began = time.perf_counter()
        program = self.cache.compile_fn(key)
        wall = time.perf_counter() - began
        self._programs[key] = program
        latency = self.latency_model.latency_s(program)
        if self._faults is not None:
            # A compile stall dilates jobs *issued* inside its window
            # (the stalled latency is what the pool occupies a worker
            # for, what demand requests wait on, and what the cache
            # records as this trace's compile cost).
            latency *= self._faults.compile_dilation(now)
        pool = self.pool
        done = pool.submit(now, latency, demand=demand)
        self._waiting_done_s[key] = done
        self._push(done, _COMPILE_DONE, (key, latency, wall))
        if self._obs is not None:
            self._obs.on_compile(pool.last_start, done, pool.last_worker,
                                 key[1], "worker" if demand else "prefetch")
        return latency

    def _issue_prefetches(self, now: float) -> None:
        prefetcher = self.prefetcher
        if prefetcher is None:
            return
        # Keep one worker free for the next demand miss whenever the
        # pool has more than one: prefetch must never be the reason a
        # cold request waits a full compile latency extra. A singleton
        # pool has no worker to reserve, so it may prefetch when idle.
        reserve = 1 if self.pool.n_workers > 1 else 0
        # Resident *and* in-flight keys are filtered inside the
        # predictor, before its candidate cap — either kind occupying
        # a slot could starve deeper, genuinely missing predictions.
        skip = _KeyUnion(self.cache, self._waiting_done_s)
        while self.pool.idle_count(now) > reserve:
            candidates = prefetcher.candidates(resident=skip)
            if not candidates:
                return
            key = candidates[0]
            self._submit_compile(key, now, demand=False)
            prefetcher.note_issue(key)
            if self._obs is not None:
                self._obs.on_prefetch_issue(now, key)

    # -- fleet capacity (fault-aware) -----------------------------------
    def _fleet_capacity(self) -> float:
        """Effective parallel capacity the admission projection divides
        by. Fault-free: exactly ``max(1, n_active)`` (the historical
        model, bit for bit). Under a fault plan: the sum of learned
        per-chip speeds over chips that are actually *up* — a crashed
        chip contributes nothing and a straggling chip contributes
        ``1/dilation``, so projected waits stretch and slo-shed starts
        refusing work the degraded fleet could never serve in time."""
        cluster = self.cluster
        if self._faults is None:
            return float(max(1, cluster.n_active))
        speed = self._chip_speed
        capacity = 0.0
        for chip in cluster.chips:
            if chip.available:
                capacity += 1.0 / speed.get(chip.chip_id, 1.0)
        # A fully-down fleet still projects against half a chip rather
        # than dividing by zero; the wait is enormous either way.
        return max(capacity, 0.5)

    # -- arrival ingestion ----------------------------------------------
    def _project_wait(self, request: RenderRequest, at: float) -> float:
        """Projected queue wait at the arrival instant: time until a chip
        frees, plus the backlog ahead (queued same-pipeline requests
        serialize into this request's batch; the rest spreads over the
        fleet), plus any compile backlog the trace itself would wait on."""
        cluster = self.cluster
        wait = max(0.0, cluster.earliest_free_s - at)
        counts = self._pending.counts
        pipeline = request.pipeline
        same = counts.get(pipeline, 0) * self._estimate(pipeline)
        other = 0.0
        for queued_pipeline, count in counts.items():
            if queued_pipeline != pipeline and count:
                other += count * self._estimate(queued_pipeline)
        wait = wait + same + other / self._fleet_capacity()
        if self.async_compile:
            done = self._waiting_done_s.get(request.trace_key)
            if done is not None:
                wait = max(wait, done - at)
            elif request.trace_key not in self.cache:
                wait = max(wait, self.latency_model.base_s)
        return wait

    def _project_wait_weighted(self, request: RenderRequest,
                               at: float) -> float:
        """Tenant-share projection for weighted admission: time until a
        chip frees, plus the tenant's **own** queued backlog spread over
        the slice of the fleet its weight entitles it to. Another
        tenant's flood inflates only that tenant's projection."""
        cluster = self.cluster
        wait = max(0.0, cluster.earliest_free_s - at)
        tenant = request.tenant
        est = self._estimate
        own_backlog = 0.0
        own_pending = False
        per = self._tenant_pending.get(tenant.name)
        if per:
            for pipeline, count in per.items():
                if count:
                    own_backlog += count * est(pipeline)
                    own_pending = True
        total_weight = 0.0 if own_pending else tenant.weight
        for name, weight in self._tenant_weight.items():
            counts = self._tenant_pending.get(name)
            if counts and any(counts.values()):
                total_weight += weight
        share = tenant.weight / total_weight
        capacity = self._fleet_capacity() * share
        wait = wait + own_backlog / capacity
        if self.async_compile:
            done = self._waiting_done_s.get(request.trace_key)
            if done is not None:
                wait = max(wait, done - at)
            elif request.trace_key not in self.cache:
                wait = max(wait, self.latency_model.base_s)
        return wait

    # -- tenant backlog counters (weighted admission's signal) ----------
    def _tenant_add(self, request: RenderRequest) -> None:
        tenant = request.tenant
        per = self._tenant_pending.get(tenant.name)
        if per is None:
            per = self._tenant_pending[tenant.name] = {}
            self._tenant_weight[tenant.name] = tenant.weight
        per[request.pipeline] = per.get(request.pipeline, 0) + 1

    def _tenant_remove(self, taken: Sequence[RenderRequest]) -> None:
        for request in taken:
            self._tenant_pending[request.tenant.name][request.pipeline] -= 1

    def _ingest(self, request: RenderRequest, now: float) -> None:
        """Admission decision, made at the request's arrival instant."""
        if self._feed_forecast:
            # Offered demand, pre-admission: the forecaster must see the
            # wave the admission policy is about to clip.
            self.autoscaler.record_arrival(request.arrival_s)
        obs = self._obs
        at = request.arrival_s
        if obs is not None:
            obs.on_arrival(at, request, obs.wants(request.request_id))
        admission = self.admission
        if admission is None:
            verdict = request
        else:
            if self._tenant_aware:
                projected = self._project_wait_weighted(request, at)
            else:
                projected = self._project_wait(request, at)
            verdict = admission.admit(
                request, at, projected, self._estimate(request.pipeline),
                self._pending.n_pending,
            )
            if verdict is None:
                self._shed.append(
                    ShedRecord(request, at, admission.name, projected)
                )
                if obs is not None:
                    admission.note_verdict("shed")
                    obs.on_shed(at, request, obs.wants(request.request_id))
                if self.autoscaler is not None:
                    # A shed is an SLO failure the queue never sees; feed
                    # it to the controller's window or admission control
                    # would suppress exactly the pressure that should
                    # grow the fleet.
                    self.autoscaler.record_shed(at)
                return
        if obs is not None and admission is not None:
            degraded = verdict is not request
            admission.note_verdict("degraded" if degraded else "admitted")
            obs.on_admit(at, verdict, "degrade" if degraded else "admit",
                         obs.wants(verdict.request_id))

        if self.async_compile:
            self._ingest_async(verdict, now)
        self._pending.push(verdict)
        if self._tenant_aware:
            self._tenant_add(verdict)
        if self.preempt and self._staged:
            self._maybe_preempt(verdict, now)

    def _maybe_preempt(self, request: RenderRequest, now: float) -> None:
        """A premium arrival may displace one queued — not in-flight —
        batch of a more economical tier back into its pipeline lane.

        Displacement only helps when the arrival cannot dispatch right
        now, and only staged batches that have not reached their start
        instant are eligible. The victim is the most economical staged
        batch, latest planned start first (it has waited the least);
        its members re-enter the pending index in arrival order and its
        chip reservation is cancelled, so the freed slot goes to the
        most premium queued work when the chip frees.
        """
        if self.cluster.has_idle_chip(now):
            return
        tier = request.tenant.tier
        victim: Optional[_StagedBatch] = None
        for staged in self._staged.values():
            if staged.tier <= tier or staged.start_s <= now:
                continue
            if victim is None or (staged.tier, staged.start_s,
                                  staged.chip.chip_id) > (
                    victim.tier, victim.start_s, victim.chip.chip_id):
                victim = staged
        if victim is None:
            return
        del self._staged[victim.chip.chip_id]
        members = victim.batch.requests
        self.batcher.retract(victim.batch)
        self._pending.restore(members)
        if self._tenant_aware:
            for member in members:
                self._tenant_add(member)
        if self._hedge is not None:
            self._note_restored(members)
        for member in members:
            rid = member.request_id
            self._preempt_count[rid] = self._preempt_count.get(rid, 0) + 1
            self._displaced_from[rid] = victim.chip.chip_id
        self.n_preemptions += 1
        if self._obs is not None:
            self._obs.on_preempt(now, victim.chip.chip_id,
                                 victim.batch.batch_id, len(members),
                                 request.tenant.tier)

    def _ingest_async(self, verdict: RenderRequest, now: float) -> None:
        """Demand-side cache traffic: hit, join an in-flight compile, or
        trigger a new compile job on the worker pool."""
        key = verdict.trace_key
        prefetcher = self.prefetcher
        if prefetcher is not None:
            prefetcher.observe(key)
        program = self.cache.lookup(key)
        if program is not None:
            self._ingest_hit[verdict.request_id] = True
            if prefetcher is not None and prefetcher.is_unused(key):
                prefetcher.note_use(key)
                self._ingest_prefetched[verdict.request_id] = True
                if self._obs is not None:
                    self._obs.on_prefetch_hit(now, key)
            return
        self._ingest_hit[verdict.request_id] = False
        if key in self._waiting_done_s:
            # Join the in-flight compile (demand- or prefetch-triggered).
            if prefetcher is not None and prefetcher.is_unused(key):
                prefetcher.note_use(key)
                self._ingest_prefetched[verdict.request_id] = True
                if self._obs is not None:
                    self._obs.on_prefetch_hit(now, key)
        else:
            if prefetcher is not None:
                prefetcher.note_demand_compile(key)
            latency = self._submit_compile(key, now, demand=True)
            self._compile_charge[verdict.request_id] = latency
        self._waiting_requests[key] = self._waiting_requests.get(key, 0) + 1
        self._n_waiting += 1

    # -- batch execution -------------------------------------------------
    def _execute_batch(self, chip: ChipState, batch: Batch,
                       start_s: float, dispatched_s: float) -> None:
        """Run a batch back to back on one chip (the pricing hot path).

        Under a fault plan the batch may not survive whole: any frame
        whose finish would cross the chip's next crash instant aborts
        the rest of the batch — completed frames stand (results are
        checkpointed off-chip), the partial frame's chip time becomes
        lost work, and the un-run tail sits in crash limbo until the
        crash event re-queues it. Hedged copies execute physically here
        but defer their logical completion to the settle event, where
        first-completion-wins picks exactly one response per pair.
        """
        cache = self.cache
        cost = self._cost
        accelerator = chip.accelerator
        clock = chip.config.clock_hz
        async_mode = self.async_compile
        preempt_mode = self.preempt
        responses = self._responses
        feed = self.autoscaler is not None
        est = self._est_by_pipeline
        obs = self._obs
        faults = self._faults
        hedge_mode = self._hedge is not None
        crash = None
        if faults is not None:
            crash = faults.next_crash(chip.chip_id, dispatched_s)
        t = start_s
        aborted = False
        for index, request in enumerate(batch.requests):
            key = request.trace_key
            rid = request.request_id
            compile_wait = 0.0
            compile_s = 0.0
            origin = None
            prefetched = False
            if async_mode:
                cache_hit = self._ingest_hit.get(rid, False)
                prefetched = self._ingest_prefetched.get(rid, False)
                charge = self._compile_charge.get(rid)
                if charge is not None:
                    compile_s = charge
                    origin = "worker"
                elif prefetched:
                    origin = "prefetch"
                program = self._programs.get(key) or cache.peek(key)
                if program is None and not cost.has(key, accelerator.config):
                    # Evicted before this design point priced it (the
                    # program is in neither the cache nor the pin set):
                    # recompile just for pricing, without re-pinning.
                    began = time.perf_counter()
                    program = cache.compile_fn(key)
                    cache.stats.compile_wall_s += time.perf_counter() - began
            else:
                program, cache_hit = cache.get(key)
                if not cache_hit and self.latency_model is not None:
                    # Synchronous visible compile: the dispatch path
                    # stalls on the chip for the simulated compile time.
                    compile_wait = cache.compile_cost_s(key)
                    if faults is not None:
                        compile_wait *= faults.compile_dilation(t)
                    compile_s = compile_wait
                    origin = "sync"
            cycles, reconfig_cycles, energy_j = cost.price(
                key, accelerator, program)

            switch = 0.0
            if chip.configured_pipeline != request.pipeline:
                switch = float(chip.config.reconfigure_cycles)
                chip.pipeline_switches += 1
                chip.configured_pipeline = request.pipeline
            service = (cycles + switch) / clock
            requeues = 0
            rollback = 0.0
            if faults is not None:
                dilation = faults.dilation(chip.chip_id, t)
                if dilation != 1.0:
                    service *= dilation
                requeues = self._requeue_count.get(rid, 0)
                if requeues:
                    # A crash already ate one attempt: this retry first
                    # restores the frame's last checkpoint.
                    rollback = faults.rollback_s
                speed = self._chip_speed
                prior_speed = speed.get(chip.chip_id, 1.0)
                speed[chip.chip_id] = prior_speed + _SPEED_EWMA_ALPHA * (
                    dilation - prior_speed)
            finish = t + compile_wait + rollback + service

            if crash is not None and finish > crash.at_s:
                self._abort_crash(chip, batch.requests[index:], crash,
                                  t, start_s)
                aborted = True
                break
            # -- the frame commits: settle its dispatch bookkeeping.
            if rollback:
                self._rollback_charged_s += rollback
                self._requeue_count.pop(rid, None)
            if async_mode:
                self._ingest_hit.pop(rid, None)
                self._ingest_prefetched.pop(rid, None)
                self._compile_charge.pop(rid, None)
                cache.touch(key)

            preemptions = 0
            migrated = False
            if preempt_mode:
                preemptions = self._preempt_count.pop(rid, 0)
                displaced_from = self._displaced_from.pop(rid, None)
                # Displaced work that completes on a different chip than
                # the one it was displaced from has migrated — under an
                # autoscaler this is how it reaches newly warmed chips.
                migrated = (displaced_from is not None
                            and chip.chip_id != displaced_from)

            hstate = None
            orig_id = rid
            if hedge_mode:
                orig_id = self._hedge_of.get(rid, rid)
                hstate = self._hedge_state.get(orig_id)
            if hstate is not None:
                # One copy of a hedged pair: the chip really spends the
                # cycles, but the response waits for the settle event.
                span = finish - t
                chip.frame_cycles += cycles
                chip.switch_cycles += switch
                chip.frame_reconfig_cycles += reconfig_cycles
                chip.energy_j += energy_j
                if hstate["settled"]:
                    # Late duplicate: it sat staged while its sibling
                    # settled. Pure wasted work, no second response.
                    self.n_hedge_wasted += 1
                    self._hedge_wasted_s += span
                    chip.lost_work_s += span
                else:
                    original = hstate["requests"][orig_id]
                    response = RenderResponse(
                        request=original,
                        chip_id=chip.chip_id,
                        batch_id=batch.batch_id,
                        start_s=t,
                        finish_s=finish,
                        cycles=cycles,
                        switch_cycles=switch,
                        frame_reconfig_cycles=reconfig_cycles,
                        energy_j=energy_j,
                        cache_hit=cache_hit,
                        compile_s=compile_s,
                        compile_origin=origin,
                        prefetched=prefetched,
                        dispatched_s=dispatched_s,
                        preemptions=preemptions,
                        migrated=migrated,
                        requeues=requeues,
                        hedged=rid != orig_id,
                    )
                    hstate["chips"][rid] = chip.chip_id
                    hstate["candidates"].append((rid, response, chip))
                    self._push(finish, _HEDGE_SETTLE, orig_id)
                t = finish
                continue
            response = RenderResponse(
                request=request,
                chip_id=chip.chip_id,
                batch_id=batch.batch_id,
                start_s=t,
                finish_s=finish,
                cycles=cycles,
                switch_cycles=switch,
                frame_reconfig_cycles=reconfig_cycles,
                energy_j=energy_j,
                cache_hit=cache_hit,
                compile_s=compile_s,
                compile_origin=origin,
                prefetched=prefetched,
                dispatched_s=dispatched_s,
                preemptions=preemptions,
                migrated=migrated,
                requeues=requeues,
            )
            responses.append(response)
            if obs is not None:
                if origin == "sync" and compile_wait > 0.0:
                    obs.on_compile_sync(t, t + compile_wait, chip.chip_id,
                                        request.pipeline)
                obs.on_response(response, obs.wants(request.request_id))
            chip.requests_served += 1
            chip.frame_cycles += cycles
            chip.switch_cycles += switch
            chip.frame_reconfig_cycles += reconfig_cycles
            chip.energy_j += energy_j
            t = finish

            pipeline = request.pipeline
            prior = est.get(pipeline)
            if prior is None:
                est[pipeline] = response.service_s
            else:
                est[pipeline] = prior + _SERVICE_EWMA_ALPHA * (
                    response.service_s - prior
                )
            if self._feed_forecast:
                mean = self._svc_ewma
                self._svc_ewma = (
                    response.service_s if mean is None
                    else mean + _FORECAST_EWMA_ALPHA * (
                        response.service_s - mean)
                )
            if feed:
                heapq.heappush(
                    self._inflight,
                    (finish, self._inflight_seq, response.slo_met),
                )
                self._inflight_seq += 1
            if hedge_mode:
                self._note_wait(response.queue_s)

        if aborted:
            if obs is not None:
                obs.on_batch(start_s, max(start_s, crash.at_s), chip.chip_id,
                             batch.batch_id, len(batch.requests),
                             batch.pipeline, batch.requests[0].tenant.tier)
            return
        if obs is not None:
            obs.on_batch(start_s, t, chip.chip_id, batch.batch_id,
                         len(batch.requests), batch.pipeline,
                         batch.requests[0].tenant.tier)
        chip.busy_s += t - start_s
        chip.free_at_s = t
        self._push(t, _CHIP_FREE, chip.chip_id)

    # -- chaos: crash handling -------------------------------------------
    def _abort_crash(self, chip: ChipState, members: Sequence[RenderRequest],
                     crash, frame_start_s: float, batch_start_s: float) -> None:
        """The chip dies mid-batch: charge the truncated timeline.

        Chip time up to the crash instant counts as busy; the partial
        frame's share of it is lost work. The un-run members (partial
        frame included) go to crash limbo — the crash *event* re-queues
        them, so the scheduler cannot clairvoyantly react before the
        failure actually happens. The chip stays unselectable until its
        recovery (``free_at_s`` = recover instant, or forever).
        """
        chip.busy_s += max(0.0, crash.at_s - batch_start_s)
        chip.lost_work_s += max(0.0, crash.at_s - frame_start_s)
        chip.free_at_s = max(chip.free_at_s, crash.recover_at_s)
        self._crash_limbo.setdefault(chip.chip_id, []).extend(members)

    def _restore_members(self, members: Sequence[RenderRequest]) -> None:
        """Put one batch's members (single pipeline) back in pending."""
        self._pending.restore(members)
        if self._tenant_aware:
            for member in members:
                self._tenant_add(member)
        if self._hedge is not None:
            self._note_restored(members)

    def _on_crash(self, now: float, crash) -> None:
        """A chip fails: mark it down and re-queue whatever it held."""
        chips = self.cluster.chips
        if crash.chip_id >= len(chips):
            return  # the plan names a chip this fleet never had
        chip = chips[crash.chip_id]
        if not chip.active or chip.down_since_s is not None:
            return  # retired or already down: the crash is a no-op
        chip.down_since_s = now
        chip.n_crashes += 1
        chip.free_at_s = max(chip.free_at_s, crash.recover_at_s)
        self._down_chips.add(chip.chip_id)
        self._fault_counts["crashes"] += 1
        if crash.down_s is None:
            self._fault_counts["permanent"] += 1
        n_requeued = 0
        staged = self._staged.pop(chip.chip_id, None)
        if staged is not None:
            # A staged reservation on the dead chip never started: it
            # re-queues without a rollback charge (nothing ran yet).
            self.batcher.retract(staged.batch)
            self._restore_members(staged.batch.requests)
            n_requeued += len(staged.batch.requests)
        limbo = self._crash_limbo.pop(chip.chip_id, None)
        if limbo:
            for member in limbo:
                rid = member.request_id
                self._requeue_count[rid] = self._requeue_count.get(rid, 0) + 1
            self._restore_members(limbo)
            self._fault_counts["requeued"] += len(limbo)
            n_requeued += len(limbo)
        if self._obs is not None:
            self._obs.on_crash(now, chip.chip_id, crash.down_s, n_requeued)

    def _on_recover(self, now: float, crash) -> None:
        chips = self.cluster.chips
        if crash.chip_id >= len(chips):
            return
        chip = chips[crash.chip_id]
        if chip.down_since_s is None:
            return  # the matching crash never took effect
        chip.down_s += now - chip.down_since_s
        chip.down_since_s = None
        self._down_chips.discard(chip.chip_id)
        self._fault_counts["recoveries"] += 1
        self._recovery_total_s += now - crash.at_s
        if self._obs is not None:
            self._obs.on_recover(now, chip.chip_id, now - crash.at_s)

    def _fail_pending(self, now: float) -> None:
        """Every chip is gone for good and admitted work remains: drain
        it into failed-unrecoverable records (a hedged pair fails once,
        as its original), keeping the conservation ledger closed."""
        pending = self._pending
        gone = pending._gone_master
        seen: set[int] = set()
        stranded: list[RenderRequest] = []
        for tier in pending._tiers:
            for request in pending.masters[tier]:
                rid = request.request_id
                if rid in gone:
                    continue
                orig_id = self._hedge_of.get(rid, rid) if (
                    self._hedge is not None) else rid
                if orig_id in seen:
                    continue
                seen.add(orig_id)
                original = request
                if orig_id != rid:
                    original = self._hedge_state[orig_id]["requests"][orig_id]
                stranded.append(original)
        stranded.sort(key=lambda r: (r.arrival_s, r.request_id))
        for request in stranded:
            self._failed.append(FailedRecord(request, now, "fleet-lost"))

    # -- chaos: request hedging ------------------------------------------
    def _note_wait(self, wait_s: float) -> None:
        self._hedge_waits.append(wait_s)
        self._n_wait_samples += 1

    def _hedge_threshold(self) -> Optional[float]:
        """Quantile-derived queue-age threshold (None while warming up).

        Recomputed lazily from the sliding sample window — at most once
        per 8 new samples, so the sort stays off the hot path.
        """
        policy = self._hedge
        n = self._n_wait_samples
        if n < policy.min_samples:
            return None
        if (self._hedge_threshold_cache is None
                or n - self._hedge_cached_at >= 8):
            ordered = sorted(self._hedge_waits)
            idx = min(len(ordered) - 1, int(policy.quantile * len(ordered)))
            self._hedge_threshold_cache = policy.multiplier * ordered[idx]
            self._hedge_cached_at = n
        return self._hedge_threshold_cache

    def _maybe_hedge(self, now: float) -> None:
        """Duplicate queued requests whose age crossed the threshold.

        The clone goes back through the pending index (so dispatch
        places it like any other request, on a *different* chip via the
        selection mask); whichever copy finishes first wins at settle.
        """
        threshold = self._hedge_threshold()
        if threshold is None:
            return
        if sum(1 for chip in self.cluster.chips if chip.available) < 2:
            return  # a duplicate on the same chip helps nobody
        pending = self._pending
        gone = pending._gone_master
        victims: list[RenderRequest] = []
        for tier in pending._tiers:
            for request in pending.masters[tier]:
                rid = request.request_id
                if rid in gone:
                    continue
                if now - request.arrival_s <= threshold:
                    break  # master lanes are arrival-ordered
                if rid < 0 or rid in self._hedge_state:
                    continue  # a clone, or already hedged
                if not self._is_ready(request):
                    continue
                victims.append(request)
        # Issue after the walk: restore() rebuilds the deque under us.
        for request in victims:
            self._issue_hedge(request, now)

    def _issue_hedge(self, request: RenderRequest, now: float) -> None:
        orig_id = request.request_id
        clone = replace(request, request_id=~orig_id)
        self._hedge_state[orig_id] = {
            "requests": {orig_id: request, clone.request_id: clone},
            "chips": {},
            "candidates": [],
            "settled": False,
        }
        self._hedge_of[clone.request_id] = orig_id
        self._pending.restore([clone])
        if self._tenant_aware:
            self._tenant_add(clone)
        self._hedge_queued[orig_id] = request
        self._hedge_queued[clone.request_id] = clone
        self.n_hedges += 1
        if self._obs is not None:
            self._obs.on_hedge(now, orig_id, now - request.arrival_s)

    def _note_taken(self, taken: Sequence[RenderRequest]) -> None:
        queued = self._hedge_queued
        for request in taken:
            queued.pop(request.request_id, None)

    def _note_restored(self, members: Sequence[RenderRequest]) -> None:
        """Re-queued members re-register as queued hedge copies — except
        a copy whose pair already settled, which is cancelled on the
        spot (its sibling's response is final; letting it re-queue
        would strand a tombstone-less duplicate in pending)."""
        for member in members:
            rid = member.request_id
            orig_id = self._hedge_of.get(rid, rid)
            state = self._hedge_state.get(orig_id)
            if state is None:
                continue
            if state["settled"]:
                self._pending.cancel(member)
                if self._tenant_aware:
                    self._tenant_pending[member.tenant.name][
                        member.pipeline] -= 1
                self.n_hedge_cancelled += 1
            else:
                self._hedge_queued[rid] = member

    def _split_hedge_pairs(
            self, taken: list[RenderRequest]) -> list[RenderRequest]:
        """Both copies of a pair in one batch defeats the hedge: keep
        the first copy of each pair, put the rest straight back."""
        seen: set[int] = set()
        keep: list[RenderRequest] = []
        put_back: list[RenderRequest] = []
        for request in taken:
            rid = request.request_id
            orig_id = self._hedge_of.get(rid, rid)
            if orig_id in self._hedge_state and orig_id in seen:
                put_back.append(request)
            else:
                seen.add(orig_id)
                keep.append(request)
        if put_back:
            self._restore_members(put_back)
        return keep

    def _feed_completion(self, response: RenderResponse) -> None:
        """Logical-completion feeds for a settled hedge winner (the
        mirror of the inline feeds on the unhedged path)."""
        est = self._est_by_pipeline
        pipeline = response.request.pipeline
        prior = est.get(pipeline)
        if prior is None:
            est[pipeline] = response.service_s
        else:
            est[pipeline] = prior + _SERVICE_EWMA_ALPHA * (
                response.service_s - prior)
        if self._feed_forecast:
            mean = self._svc_ewma
            self._svc_ewma = (
                response.service_s if mean is None
                else mean + _FORECAST_EWMA_ALPHA * (
                    response.service_s - mean))
        if self.autoscaler is not None:
            heapq.heappush(
                self._inflight,
                (response.finish_s, self._inflight_seq, response.slo_met))
            self._inflight_seq += 1
        self._note_wait(response.queue_s)

    def _on_settle(self, now: float, orig_id: int) -> None:
        """First-completion-wins: the earliest-finishing copy becomes
        the pair's one response; every other copy is wasted work and
        any still-queued copy is cancelled."""
        state = self._hedge_state.get(orig_id)
        if state is None or state["settled"]:
            return  # already resolved at the first copy's finish
        state["settled"] = True
        candidates = state["candidates"]
        winner = min(
            candidates,
            key=lambda entry: (entry[1].finish_s,
                               0 if entry[0] == orig_id else 1))
        rid_w, response, chip = winner
        self._responses.append(response)
        chip.requests_served += 1
        self._feed_completion(response)
        if rid_w != orig_id:
            self.n_hedge_wins += 1
        for rid_l, loser, chip_l in candidates:
            if rid_l == rid_w:
                continue
            self.n_hedge_wasted += 1
            self._hedge_wasted_s += loser.service_s
            chip_l.lost_work_s += loser.service_s
        for copy_id in (orig_id, ~orig_id):
            queued = self._hedge_queued.pop(copy_id, None)
            if queued is not None:
                self._pending.cancel(queued)
                if self._tenant_aware:
                    self._tenant_pending[queued.tenant.name][
                        queued.pipeline] -= 1
                self.n_hedge_cancelled += 1
        if self._obs is not None:
            self._obs.on_hedge_settle(
                now, orig_id, "clone" if rid_w != orig_id else "primary")
            self._obs.on_response(
                response, self._obs.wants(response.request.request_id))

    def _dispatch_exclude(self, members=None):
        """Chip-id mask for selection: staged reservations (preempt),
        down chips (faults), and — best effort — chips where a member's
        hedge sibling ran, so the duplicate lands somewhere else."""
        base = self._staged if self.preempt else None
        if self._faults is None and self._hedge is None:
            return base
        merged: set[int] = set()
        if base:
            merged.update(base)
        if self._down_chips:
            merged.update(self._down_chips)
        if self._hedge is not None and members:
            avoid: set[int] = set()
            for request in members:
                rid = request.request_id
                state = self._hedge_state.get(self._hedge_of.get(rid, rid))
                if state is not None:
                    sibling_chip = state["chips"].get(~rid)
                    if sibling_chip is not None:
                        avoid.add(sibling_chip)
            if avoid:
                widened = merged | avoid
                if any(chip.active and chip.chip_id not in widened
                       for chip in self.cluster.chips):
                    merged = widened  # only avoid siblings if a chip is left
        if not merged:
            return base
        if not any(chip.active and chip.chip_id not in merged
                   for chip in self.cluster.chips):
            return base  # never mask the whole fleet
        return merged

    def _fault_stats_dict(self) -> dict:
        counts = self._fault_counts
        recoveries = counts["recoveries"]
        return {
            "n_crashes": counts["crashes"],
            "n_permanent": counts["permanent"],
            "n_recoveries": recoveries,
            "n_requeued": counts["requeued"],
            "n_failed": len(self._failed),
            "lost_work_s": sum(c.lost_work_s for c in self.cluster.chips),
            "rollback_s": self._rollback_charged_s,
            "mean_recovery_s": (self._recovery_total_s / recoveries
                                if recoveries else None),
        }

    def _hedge_stats_dict(self) -> dict:
        return {
            "policy": self._hedge.to_dict(),
            "n_hedged": self.n_hedges,
            "n_wins": self.n_hedge_wins,
            "n_wasted": self.n_hedge_wasted,
            "n_cancelled": self.n_hedge_cancelled,
            "wasted_work_s": self._hedge_wasted_s,
        }

    # -- dispatch --------------------------------------------------------
    def _flush_staged(self, now: float) -> None:
        """Start every staged batch whose planned instant has come.

        The chip's own chip-free event (pushed when its previous batch
        finished, or at an autoscaled chip's warm-up end) wakes the
        dispatcher at exactly the staged start, so no extra event kind
        is needed; a displaced batch simply is not here any more.
        """
        due = [s for s in self._staged.values() if s.start_s <= now]
        due.sort(key=lambda s: (s.start_s, s.chip.chip_id))
        for staged in due:
            del self._staged[staged.chip.chip_id]
            chip = staged.chip
            self._execute_batch(chip, staged.batch,
                                max(now, chip.free_at_s),
                                staged.dispatched_s)

    def _dispatch_all(self, now: float) -> None:
        """Place batches while ready work and an idle chip coexist."""
        pending = self._pending
        cluster = self.cluster
        batcher = self.batcher
        preempt = self.preempt
        if self._staged:
            self._flush_staged(now)
        qos_tier = self._qos
        tenant_aware = self._tenant_aware
        while self._n_ready > 0 and cluster.has_idle_chip(now):
            if self.autoscaler is not None:
                self._controller_tick(now, pending.n_pending)
            anchor = pending.anchor(self._is_ready)
            if anchor is None:
                break
            taken = pending.take(
                anchor.pipeline, batcher.max_batch, self._is_ready,
                tier=anchor.tenant.tier if qos_tier else None)
            if tenant_aware:
                self._tenant_remove(taken)
            if self._hedge is not None:
                self._note_taken(taken)
                if len(taken) > 1:
                    taken = self._split_hedge_pairs(taken)
            batch = batcher.make_batch(anchor.pipeline, taken)
            chip = cluster.select_chip(
                batch, now, self._estimate(batch.pipeline),
                exclude=self._dispatch_exclude(taken))
            start = max(now, chip.free_at_s)
            if preempt and start > now:
                # The policy picked a busy chip (e.g. a warm
                # pipeline-affinity hit): park the batch as *queued*
                # work — preemptible until the chip actually starts it.
                self._staged[chip.chip_id] = _StagedBatch(
                    batch, chip, start, now)
                continue
            self._execute_batch(chip, batch, start, now)
        if preempt:
            self._stage_ahead(now)

    def _stage_ahead(self, now: float) -> None:
        """Dispatch-ahead (preempt mode): pre-assign the next batch to
        each busy chip, one batch deep.

        A chip with a staged batch hands off with zero dispatch gap when
        it frees — and because staged work has not started, it remains
        *queued*: a premium arrival can still displace an economy batch
        from its slot (see :meth:`_maybe_preempt`). Chips still warming
        up after an autoscale-up count as busy, which is exactly how
        displaced work migrates onto a newly grown chip.
        """
        pending = self._pending
        cluster = self.cluster
        batcher = self.batcher
        staged = self._staged
        down = self._down_chips
        while self._n_ready > 0:
            if not any(chip.chip_id not in staged
                       and chip.chip_id not in down
                       and chip.free_at_s > now
                       for chip in cluster.active_chips):
                return
            anchor = pending.anchor(self._is_ready)
            if anchor is None:
                return
            taken = pending.take(
                anchor.pipeline, batcher.max_batch, self._is_ready,
                tier=anchor.tenant.tier)
            if self._tenant_aware:
                self._tenant_remove(taken)
            if self._hedge is not None:
                self._note_taken(taken)
                if len(taken) > 1:
                    taken = self._split_hedge_pairs(taken)
            batch = batcher.make_batch(anchor.pipeline, taken)
            chip = cluster.select_chip(
                batch, now, self._estimate(batch.pipeline),
                exclude=self._dispatch_exclude(taken))
            staged[chip.chip_id] = _StagedBatch(
                batch, chip, max(now, chip.free_at_s), now)

    # -- main loop -------------------------------------------------------
    def run(self) -> ServiceReport:
        try:
            if self._columnar:
                now = self._run_columnar()
            else:
                now = self._run_scalar()
        finally:
            # A shared cache outlives this engine; don't leave the
            # eviction listener pointing at a finished run's memo.
            self.cache.on_evict = None
        return self._finalize(now)

    def _run_scalar(self) -> float:
        """The general event loop, every feature armed.

        Arrivals are consumed from their sorted list in timestamp
        batches and merged with the dynamic-event heap at each instant.
        Because arrivals are kind ``_ARRIVAL`` (0) with seqs assigned in
        sorted order, draining *all* same-instant arrivals before any
        heap event reproduces the old single-heap ``(t, kind, seq)``
        schedule event for event (see the tie-break contract at the
        event-kind constants).
        """
        events = self._events
        pending = self._pending
        arrivals = self._arrivals
        arrival_t = self._arrival_t
        n = len(arrivals)
        i = 0
        now = 0.0
        while i < n or events:
            if i < n:
                t_arr = arrival_t[i]
                now = (t_arr if not events or t_arr <= events[0][0]
                       else events[0][0])
            else:
                now = events[0][0]
            # Drain every event at this instant before dispatching:
            # arrivals ingest, compiles land, chips free, ticks tick.
            ingested = False
            while i < n and arrival_t[i] == now:
                self._ingest(arrivals[i], now)
                i += 1
                ingested = True
            while events and events[0][0] == now:
                _t, kind, _seq, payload = heapq.heappop(events)
                if kind == _COMPILE_DONE:
                    self._finish_compile(now, payload)
                elif kind == _SCALE_TICK:
                    if self.autoscaler is not None and pending.n_pending == 0:
                        self._controller_tick(now, 0)
                elif kind == _CHIP_CRASH:
                    self._on_crash(now, payload)
                elif kind == _CHIP_RECOVER:
                    self._on_recover(now, payload)
                elif kind == _HEDGE_SETTLE:
                    self._on_settle(now, payload)
                # _CHIP_FREE carries no state change — the chip already
                # knows its free_at_s; the pop just wakes the dispatcher.
            if ingested:
                if self.autoscaler is not None and (
                        self._n_ready == 0
                        or not self.cluster.has_idle_chip(now)):
                    # Arrival decision point with nothing dispatchable:
                    # the controller still observes the queue building.
                    self._controller_tick(now, pending.n_pending)
                self._issue_prefetches(now)
            if self._hedge is not None and pending.n_pending > 0:
                self._maybe_hedge(now)
            self._dispatch_all(now)
            if self._obs is not None:
                self._obs.maybe_snapshot(now)
            if (self.autoscaler is not None and pending.n_pending == 0
                    and self._tick_pushed_at != now):
                next_t = events[0][0] if events else None
                if i < n and (next_t is None or arrival_t[i] < next_t):
                    next_t = arrival_t[i]
                if next_t is not None and next_t > now:
                    # Idle service: one scale tick at the start of the
                    # gap, where the controller can drain surplus chips.
                    self._tick_pushed_at = now
                    self._push(now, _SCALE_TICK)
        return now

    def _run_columnar(self) -> float:
        """The de-interpreted hot loop for gated configurations.

        Arrivals live in NumPy columns (timestamps and pipeline codes);
        each step either jumps to the earliest chip-free instant —
        ingesting the whole arrival window it skips over with one
        ``searchsorted`` and a vectorized per-pipeline group scan — or
        to the next arrival batch. The pending set is per-pipeline
        *index lanes* (positions into the sorted arrival columns) with
        head cursors, so anchor selection and batch formation are a
        handful of integer compares instead of deque walks, and the
        event heap is never touched: the only dynamic event this
        configuration can produce is chip-free, which the loop replaces
        by recomputing ``min(free_at_s)`` over a static fleet.

        Equivalence to :meth:`_run_scalar` (pinned by the goldens and
        ``tests/test_serve_columnar.py``): while every chip is busy, a
        scalar dispatch round is a no-op, so arrivals strictly before
        the earliest free instant only ingest — batching them changes
        nothing; arrivals *at* that instant ingest before the chip-free
        wake (kind 0 < kind 2), which ``side="right"`` reproduces; and
        within one instant arrivals ingest in sorted order, exactly the
        arrival-seq order. Float order inside a batch is preserved
        operation for operation in :meth:`_execute_columnar`.

        Three extensions keep heavier configurations on this loop:

        * **Per-tier lanes** — strict-tier multi-tenant traffic gets one
          lane per (tier, pipeline); the anchor scan walks tiers most
          premium first, so QoS dispatch order (premium drains first,
          batches never mix tiers) is reproduced without the deque walk.
          With one tier the addressing degenerates to the flat lanes.
        * **Vectorized chip scoring** — stateless sharding policies
          score over :class:`ChipScoreLanes` NumPy columns instead of
          re-walking chip objects (round-robin keeps its stateful
          cluster closure).
        * **Deferred observability** — with an observer attached, every
          would-be hook is recorded into a :class:`_ColumnarObsLog` and
          replayed in scalar call order after the loop drains.
        """
        ordered = self._arrivals
        arrival_t = self._arrival_t
        arr_np = np.asarray(arrival_t)
        n = len(ordered)
        pipes = [request.pipeline for request in ordered]
        # Pipeline-id column: vocabulary in first-appearance order.
        vocab: dict[str, int] = {}
        codes = np.empty(n, dtype=np.int64)
        for j, name in enumerate(pipes):
            code = vocab.get(name)
            if code is None:
                code = vocab[name] = len(vocab)
            codes[j] = code
        names = list(vocab)
        n_codes = len(names)
        # Per-(tier, pipeline) index lanes over the columns + head
        # cursors; lane ``tier_rank * n_codes + code``. A single tenant
        # class collapses to the flat per-pipeline addressing.
        tiers = sorted({request.tenant.tier for request in ordered})
        n_tiers = len(tiers)
        multi_tier = n_tiers > 1
        if multi_tier:
            tier_rank = {tier: k for k, tier in enumerate(tiers)}
            tier_of = np.empty(n, dtype=np.int64)
            for j, request in enumerate(ordered):
                tier_of[j] = tier_rank[request.tenant.tier]
            lane_code = tier_of * n_codes + codes
            tier_pending = [0] * n_tiers
        else:
            lane_code = codes
            tier_pending = None
        n_lanes = n_tiers * n_codes
        lanes: list[list[int]] = [[] for _ in range(n_lanes)]
        heads = [0] * n_lanes
        pending = self._pending
        counts = pending.counts
        admission = self.admission
        batcher = self.batcher
        cluster = self.cluster
        chips = cluster.chips
        max_batch = batcher.max_batch
        estimate = self._estimate
        shed = self._shed
        # Stateless policies score over NumPy chip columns; round-robin
        # (stateful rotation pointer) keeps the cluster's closure.
        policy = cluster.policy_name
        score = (ChipScoreLanes(chips, policy, vocab)
                 if policy in ChipScoreLanes.SUPPORTED else None)
        cost_aware = policy == "cost-aware"
        obs = self._obs
        log = (_ColumnarObsLog(2 * n, obs.metrics is not None)
               if obs is not None else None)

        i = 0
        now = 0.0
        while True:
            ef = chips[0].free_at_s
            for chip in chips:
                if chip.free_at_s < ef:
                    ef = chip.free_at_s
            if i < n:
                t_arr = arrival_t[i]
                if pending.n_pending and ef < t_arr:
                    now = ef        # pure dispatch round at a chip-free
                else:
                    bound = ef if ef > t_arr else t_arr
                    now = bound
                    hi = int(arr_np.searchsorted(bound, side="right"))
                    # -- ingest the arrival window [i, hi) --------------
                    if admission is None:
                        if log is not None:
                            log.append_arrivals(arr_np, i, hi, ordered)
                        if hi - i >= 64:
                            window = lane_code[i:hi]
                            for code in np.unique(window):
                                idx = np.nonzero(window == code)[0]
                                lanes[code].extend((idx + i).tolist())
                                if multi_tier:
                                    tier_pending[int(code) // n_codes] += \
                                        len(idx)
                        else:
                            if multi_tier:
                                for j in range(i, hi):
                                    lanes[lane_code[j]].append(j)
                                    tier_pending[tier_of[j]] += 1
                            else:
                                for j in range(i, hi):
                                    lanes[lane_code[j]].append(j)
                        pending.n_pending += hi - i
                    else:
                        for j in range(i, hi):
                            request = ordered[j]
                            at = arrival_t[j]
                            if log is not None:
                                log.append(log._ARRIVE, at, request)
                            projected = self._project_wait(request, at)
                            verdict = admission.admit(
                                request, at, projected,
                                estimate(request.pipeline),
                                pending.n_pending,
                            )
                            if verdict is None:
                                shed.append(ShedRecord(
                                    request, at, admission.name, projected))
                                if log is not None:
                                    log.append(log._SHED, at, request)
                                continue
                            if log is not None:
                                log.append(log._ADMIT, at, request)
                            name = pipes[j]
                            lanes[lane_code[j]].append(j)
                            if multi_tier:
                                tier_pending[tier_of[j]] += 1
                            counts[name] = counts.get(name, 0) + 1
                            pending.n_pending += 1
                    i = hi
            else:
                if pending.n_pending == 0:
                    break
                now = ef
            # -- dispatch: place batches while work and idle coexist ----
            while pending.n_pending > 0:
                free = chips[0].free_at_s
                for chip in chips:
                    if chip.free_at_s < free:
                        free = chip.free_at_s
                if free > now:
                    break
                anchor = -1
                anchor_lane = -1
                if multi_tier:
                    # Most premium tier with pending work anchors; its
                    # oldest request picks the (tier, pipeline) lane.
                    for k in range(n_tiers):
                        if tier_pending[k] == 0:
                            continue
                        base = k * n_codes
                        for code in range(base, base + n_codes):
                            lane = lanes[code]
                            head = heads[code]
                            if head < len(lane) and (
                                    anchor < 0 or lane[head] < anchor):
                                anchor = lane[head]
                                anchor_lane = code
                        break
                else:
                    for code in range(n_lanes):
                        lane = lanes[code]
                        head = heads[code]
                        if head < len(lane) and (
                                anchor < 0 or lane[head] < anchor):
                            anchor = lane[head]
                            anchor_lane = code
                lane = lanes[anchor_lane]
                head = heads[anchor_lane]
                take = head + max_batch
                idx = lane[head:take]
                heads[anchor_lane] = head + len(idx)
                pending.n_pending -= len(idx)
                if multi_tier:
                    tier_pending[anchor_lane // n_codes] -= len(idx)
                    pipe_code = anchor_lane % n_codes
                else:
                    pipe_code = anchor_lane
                name = names[pipe_code]
                if admission is not None:
                    counts[name] -= len(idx)
                taken = [ordered[j] for j in idx]
                batch = batcher.make_batch(name, taken)
                est_s = estimate(name)
                if score is not None:
                    if cost_aware:
                        deadline = min(
                            r.arrival_s + r.effective_slo_s for r in taken)
                        chip = chips[score.select(
                            pipe_code, now, est_s, deadline)]
                    else:
                        chip = chips[score.select(pipe_code, now, est_s)]
                else:
                    chip = cluster.select_chip(batch, now, est_s)
                start = now if now >= chip.free_at_s else chip.free_at_s
                self._execute_columnar(chip, batch, start, now, log)
                if score is not None:
                    score.note_dispatch(chip.chip_id, pipe_code,
                                        chip.free_at_s)
        if log is not None:
            log.replay(self, arr_np)
        return now

    def _execute_columnar(self, chip: ChipState, batch: Batch,
                          start_s: float, dispatched_s: float,
                          log: "Optional[_ColumnarObsLog]" = None) -> None:
        """Batch execution for the columnar path — the scalar pricing
        loop with every disarmed feature's branches deleted, float
        operation order intact. The batch's trace keys resolve through
        one :meth:`TraceCache.get_many` pass (byte-identical ordering
        to per-frame ``get`` calls, which run strictly back to back in
        the scalar loop anyway), the pipeline switch is hoisted (only a
        batch's first frame can switch; ``cycles + 0.0`` is bitwise
        ``cycles``), per-chip counters accumulate through locals seeded
        from — and written back to — the chip fields in the same order,
        and priced rows memoize per chip so repeat frames skip the
        cost table's config hashing. No chip-free event is pushed: the
        columnar loop recomputes the fleet's earliest free instant.
        With ``log`` attached, every would-be observer hook lands in
        the buffer for the deferred replay instead of firing here."""
        cache = self.cache
        cost = self._cost
        accelerator = chip.accelerator
        clock = chip.config.clock_hz
        latency_model = self.latency_model
        responses = self._responses
        est = self._est_by_pipeline
        memo = self._price_memo.get(chip.chip_id)
        if memo is None:
            memo = self._price_memo[chip.chip_id] = {}
        chip_id = chip.chip_id
        batch_id = batch.batch_id
        requests = batch.requests
        pipeline = requests[0].pipeline
        accesses = cache.get_many([r.trace_key for r in requests])
        record_cache = log is not None and log.record_cache
        switch = 0.0
        if chip.configured_pipeline != pipeline:
            switch = float(chip.config.reconfigure_cycles)
            chip.pipeline_switches += 1
            chip.configured_pipeline = pipeline
        served = chip.requests_served
        frame_cycles = chip.frame_cycles
        switch_cycles = chip.switch_cycles
        reconfig_total = chip.frame_reconfig_cycles
        energy_total = chip.energy_j
        t = start_s
        for request, access in zip(requests, accesses):
            program, cache_hit, cost_s, n_evicted = access
            compile_wait = 0.0
            origin = None
            if not cache_hit and latency_model is not None:
                # Synchronous visible compile: ``cost_s`` is the sim
                # latency this miss just charged — the value the scalar
                # loop reads back via ``cache.compile_cost_s``.
                compile_wait = cost_s
                origin = "sync"
            if record_cache:
                log.append(log._CACHE, dispatched_s,
                           i0=cache_hit, i1=n_evicted)
            key = request.trace_key
            row = memo.get(key)
            if row is None:
                row = memo[key] = cost.price(key, accelerator, program)
            cycles, reconfig_cycles, energy_j = row
            service = (cycles + switch) / clock
            finish = t + compile_wait + service
            response = RenderResponse(
                request=request,
                chip_id=chip_id,
                batch_id=batch_id,
                start_s=t,
                finish_s=finish,
                cycles=cycles,
                switch_cycles=switch,
                frame_reconfig_cycles=reconfig_cycles,
                energy_j=energy_j,
                cache_hit=cache_hit,
                compile_s=compile_wait,
                compile_origin=origin,
                dispatched_s=dispatched_s,
            )
            responses.append(response)
            if log is not None:
                if origin == "sync" and compile_wait > 0.0:
                    log.append(log._COMPILE, dispatched_s, pipeline,
                               i0=chip_id, f0=t, f1=t + compile_wait)
                log.append(log._RESPONSE, dispatched_s, response)
            served += 1
            frame_cycles += cycles
            switch_cycles += switch
            reconfig_total += reconfig_cycles
            energy_total += energy_j
            span = finish - t
            t = finish
            prior = est.get(pipeline)
            if prior is None:
                est[pipeline] = span
            else:
                est[pipeline] = prior + _SERVICE_EWMA_ALPHA * (span - prior)
            switch = 0.0
        chip.requests_served = served
        chip.frame_cycles = frame_cycles
        chip.switch_cycles = switch_cycles
        chip.frame_reconfig_cycles = reconfig_total
        chip.energy_j = energy_total
        chip.busy_s += t - start_s
        chip.free_at_s = t
        if log is not None:
            log.append(log._BATCH, dispatched_s, pipeline,
                       i0=chip_id, i1=batch_id, i2=len(requests),
                       i3=requests[0].tenant.tier, f0=start_s, f1=t)
            log.finishes.append(t)

    def _finalize(self, now: float) -> ServiceReport:
        pending = self._pending
        if pending.n_pending > 0:
            if self._faults is not None and self.cluster.n_available == 0:
                # Not a bug: the whole fleet died for good with admitted
                # work still queued. Close the ledger as failures.
                self._fail_pending(now)
            else:
                raise SimulationError(
                    f"event queue drained with {pending.n_pending} requests "
                    "still pending (engine bug)"
                )
        if self._staged:
            raise SimulationError(
                f"event queue drained with {len(self._staged)} staged "
                "batches never started (engine bug)"
            )
        if self.autoscaler is not None:
            # Drain completions that finished after the last controller
            # tick so the window's accounting closes at exactly one
            # sample per offered request. No scaling decision follows,
            # so this never changes a schedule.
            for finish_s, _seq, slo_met in sorted(self._inflight):
                self.autoscaler.record_response(finish_s, slo_met)
            self._inflight.clear()
        if not self._responses:
            if self._failed:
                raise SimulationError(
                    "no request ever completed: the whole fleet went down "
                    f"and {len(self._failed)} admitted requests failed"
                )
            raise SimulationError(
                f"admission policy {self.admission.name!r} shed all "
                f"{len(self._shed)} requests"
            )
        if self.trace_library is not None:
            # Shutdown flush: fold this run's compiled traces and hit
            # counters back into the library so the next start is warm.
            baseline = self._hits_baseline
            run_hits = {
                key: hits - baseline.get(key, 0)
                for key, hits in self.cache.hits_by_key.items()
                if hits > baseline.get(key, 0)
            }
            self.trace_library.absorb(self.cache, run_hits=run_hits)
            if self._library_path is not None:
                # Merge-on-save: another process sharing the library
                # path must not lose its hits to ours.
                self.trace_library.save(self._library_path, merge=True)
        report = ServiceReport(
            policy=self.cluster.policy_name,
            responses=self._responses,
            chips=self.cluster.chips,
            cache_stats=self.cache.stats.to_dict(),
            batch_sizes=list(self.batcher.stats.sizes),
            shed=self._shed,
            fleet_events=(list(self.autoscaler.events)
                          if self.autoscaler is not None else []),
            admission_policy=(self.admission.name
                              if self.admission is not None else None),
            autoscaled=self.autoscaler is not None,
            compile_stats=(self._compile_stats_dict()
                           if self.pool is not None else {}),
            prefetch_stats=(self.prefetcher.to_dict()
                            if self.prefetcher is not None else {}),
            preempt_enabled=self.preempt,
            n_preemption_events=self.n_preemptions,
            failed=list(self._failed),
            fault_stats=(self._fault_stats_dict()
                         if self._faults is not None else {}),
            hedge_stats=(self._hedge_stats_dict()
                         if self._hedge is not None else {}),
        )
        obs = self._obs
        if obs is not None:
            # Publish flows strictly report -> registry, never back:
            # the report is built first and is byte-identical with or
            # without an observer attached (pinned in the test suite).
            if obs.metrics is not None:
                publish_report(report, obs.metrics)
            obs.finalize(report.end_s)
        return report

    def _finish_compile(self, now: float, payload) -> None:
        key, latency, wall = payload
        # The pin exists so pricing survives the compile window; once
        # the program lands in the cache, the cache's LRU bound owns it
        # (memory stays O(capacity), not O(distinct traces)).
        program = self._programs.pop(key)
        self.cache.insert(key, program, sim_cost_s=latency, wall_cost_s=wall)
        self._waiting_done_s.pop(key, None)
        waiting = self._waiting_requests.pop(key, 0)
        self._n_waiting -= waiting
        self._issue_prefetches(now)

    def _compile_stats_dict(self) -> dict:
        out = self.pool.stats.to_dict()
        out["workers"] = self.pool.n_workers
        return out
