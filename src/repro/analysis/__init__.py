"""Experiment harness: regenerates every table and figure of the paper.

Each ``table*`` / ``figure*`` function returns structured data (rows,
dicts) and has a matching ``format_*`` printer producing the paper-style
text the benchmarks and EXPERIMENTS.md embed.
"""

from repro.analysis.runner import (
    uni_result,
    uni_fps,
    clear_result_cache,
    UNBOUNDED_EVAL_SCENES,
    SYNTHETIC_EVAL_SCENES,
)
from repro.analysis.tables import (
    table1_overview,
    table2_microops,
    table3_module_status,
    table4_realtime,
    table5_scaling,
    table6_support,
    format_table,
)
from repro.analysis.figures import (
    figure7_motivating,
    figure15_breakdowns,
    figure16_speedup_energy,
    figure17_hybrid,
)
from repro.analysis.ablations import (
    reconfiguration_overhead,
    gating_ablation,
    related_work_comparisons,
)
from repro.analysis.trajectory import trajectory_study
from repro.analysis.scaling_scenes import scale_scene_workload, scene_scaling_study
from repro.analysis.sensitivity import (
    bandwidth_boundness,
    bandwidth_sensitivity,
    efficiency_sensitivity,
)
from repro.analysis.profile_sweeps import hashgrid_deployment_sweep
from repro.analysis.serving import (
    elastic_summary,
    engine_summary,
    predictive_summary,
    serving_summary,
    tenant_summary,
)
from repro.analysis.chaos import chaos_summary
from repro.analysis.federation import federation_summary
from repro.analysis.observability import observability_summary
from repro.analysis.report import ALL_EXPERIMENTS, full_report, run_all

__all__ = [
    "uni_result",
    "uni_fps",
    "clear_result_cache",
    "UNBOUNDED_EVAL_SCENES",
    "SYNTHETIC_EVAL_SCENES",
    "table1_overview",
    "table2_microops",
    "table3_module_status",
    "table4_realtime",
    "table5_scaling",
    "table6_support",
    "format_table",
    "figure7_motivating",
    "figure15_breakdowns",
    "figure16_speedup_energy",
    "figure17_hybrid",
    "reconfiguration_overhead",
    "gating_ablation",
    "related_work_comparisons",
    "trajectory_study",
    "scene_scaling_study",
    "scale_scene_workload",
    "bandwidth_sensitivity",
    "bandwidth_boundness",
    "efficiency_sensitivity",
    "hashgrid_deployment_sweep",
    "serving_summary",
    "elastic_summary",
    "engine_summary",
    "predictive_summary",
    "tenant_summary",
    "observability_summary",
    "chaos_summary",
    "federation_summary",
    "ALL_EXPERIMENTS",
    "run_all",
    "full_report",
]
