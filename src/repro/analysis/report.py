"""One-call full evaluation report (all tables, figures, ablations)."""

from __future__ import annotations

from repro.analysis.ablations import (
    gating_ablation,
    reconfiguration_overhead,
    related_work_comparisons,
)
from repro.analysis.figures import (
    figure7_motivating,
    figure15_breakdowns,
    figure16_speedup_energy,
    figure17_hybrid,
)
from repro.analysis.chaos import chaos_summary
from repro.analysis.federation import federation_summary
from repro.analysis.observability import observability_summary
from repro.analysis.scaling_scenes import scene_scaling_study
from repro.analysis.serving import (elastic_summary, engine_summary,
                                    predictive_summary, serving_summary,
                                    tenant_summary)
from repro.analysis.tables import (
    table1_overview,
    table2_microops,
    table3_module_status,
    table4_realtime,
    table5_scaling,
    table6_support,
)
from repro.analysis.trajectory import trajectory_study

#: Experiment id -> (title, callable) in paper order.
ALL_EXPERIMENTS = {
    "table1": ("Table I — pipeline overview", table1_overview),
    "table2": ("Table II — micro-operator clustering", table2_microops),
    "table3": ("Table III — module status", table3_module_status),
    "fig7": ("Fig. 7 — motivating benchmark", figure7_motivating),
    "fig15": ("Fig. 15 — area & power breakdown", figure15_breakdowns),
    "table4": ("Table IV — real-time rendering", table4_realtime),
    "fig16": ("Fig. 16 — speedup & energy efficiency", figure16_speedup_energy),
    "fig17": ("Fig. 17 — hybrid pipeline", figure17_hybrid),
    "table5": ("Table V — PE/SRAM scaling", table5_scaling),
    "table6": ("Table VI — supported pipelines", table6_support),
    "ablation_reconfig": ("Sec. VII-E — reconfiguration overhead",
                          reconfiguration_overhead),
    "ablation_gating": ("Sec. VII-E — power/clock gating", gating_ablation),
    "related_work": ("Sec. VIII — related-work comparisons",
                     related_work_comparisons),
    "ext_trajectory": ("Extension — FPS along a camera trajectory",
                       trajectory_study),
    "ext_scene_scaling": ("Extension — scaling to larger scenes",
                          scene_scaling_study),
    "ext_serving": ("Extension — fleet serving under synthetic load",
                    serving_summary),
    "ext_elastic": ("Extension — elastic fleets: autoscaling, admission, "
                    "heterogeneous chips", elastic_summary),
    "ext_engine": ("Extension — event engine: compile workers and trace "
                   "prefetch", engine_summary),
    "ext_tenants": ("Extension — multi-tenant QoS: SLO classes, weighted "
                    "admission, batch preemption", tenant_summary),
    "ext_predictive": ("Extension — predictive serving: forecast-led "
                       "autoscaling and trace-library warm starts",
                       predictive_summary),
    "ext_obs": ("Extension — flight recorder & fleet telemetry",
                observability_summary),
    "ext_chaos": ("Extension — chaos serving: faults, stragglers, hedging",
                  chaos_summary),
    "ext_federation": ("Extension — planet-scale federation: multi-region "
                       "serving with trace-library gossip",
                       federation_summary),
}


def run_all(experiment_ids: tuple[str, ...] | None = None) -> dict[str, dict]:
    """Run every (or the selected) experiment; returns id -> result."""
    ids = experiment_ids if experiment_ids is not None else tuple(ALL_EXPERIMENTS)
    results = {}
    for exp_id in ids:
        _title, fn = ALL_EXPERIMENTS[exp_id]
        results[exp_id] = fn()
    return results


def full_report(experiment_ids: tuple[str, ...] | None = None) -> str:
    """Formatted text of the whole evaluation."""
    sections = []
    for exp_id, result in run_all(experiment_ids).items():
        title, _fn = ALL_EXPERIMENTS[exp_id]
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{result['text']}")
    return "\n\n".join(sections)
