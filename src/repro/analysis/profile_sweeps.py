"""Deployment-parameter sweeps: how model size moves the bottleneck.

The paper fixes one deployment per pipeline; an architect adopting the
accelerator wants the neighbourhood too. This study sweeps the
Instant-NGP deployment (hash-table size, level count) through the
simulator and exposes the spill crossover: small tables are
compute-bound and scale freely, large ones thrash the on-chip capacity
and collapse onto the DRAM roofline — the same mechanism behind
Table V and the CICERO/Instant-3D comparisons.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.compile import compile_program, profile_for
from repro.compile.profiles import FULL_SCALE_PROFILES
from repro.core import UniRenderAccelerator
from repro.errors import ConfigError


def _with_profile(pipeline: str, kind: str, **changes):
    """Context-style helper: temporarily replace one profile entry."""
    key = (pipeline, kind)
    original = FULL_SCALE_PROFILES[key]
    FULL_SCALE_PROFILES[key] = replace(original, **changes)
    return original


def hashgrid_deployment_sweep(
    scene: str = "room",
    log2_table_sizes: tuple[int, ...] = (17, 19, 21, 23),
    level_counts: tuple[int, ...] = (8, 16, 24),
) -> dict:
    """FPS over (table size, level count) for the hash-grid pipeline.

    Table bytes scale with both knobs; lookups scale with levels only.
    """
    if not log2_table_sizes or not level_counts:
        raise ConfigError("sweep needs at least one point per axis")
    kind = "unbounded"
    base = profile_for("hashgrid", kind)
    base_entry_bytes = base.table_bytes // (16 * (1 << 21))  # per entry
    accel = UniRenderAccelerator()

    data: dict[tuple[int, int], dict] = {}
    for levels in level_counts:
        for log2_t in log2_table_sizes:
            original = _with_profile(
                "hashgrid",
                kind,
                lookups_per_sample=levels * 8,
                table_bytes=levels * (1 << log2_t) * base_entry_bytes,
            )
            try:
                result = accel.simulate(
                    compile_program(scene, "hashgrid", 1280, 720)
                )
                memory_share = sum(
                    p.phase_cycles
                    for p in result.schedule.phases
                    if p.bound == "memory"
                ) / result.cycles
                data[(levels, log2_t)] = {
                    "fps": result.fps,
                    "memory_share": memory_share,
                }
            finally:
                FULL_SCALE_PROFILES[("hashgrid", kind)] = original

    rows = []
    for levels in level_counts:
        rows.append(
            [f"{levels} levels"]
            + [f"{data[(levels, t)]['fps']:.1f}" for t in log2_table_sizes]
        )
    text = format_table(
        ["deployment"] + [f"T=2^{t}" for t in log2_table_sizes], rows
    )
    return {"data": data, "text": text, "scene": scene}
