"""Extension experiment: flight recorder & fleet telemetry.

``observability_summary`` replays one deterministic bursty trace
through the serve engine twice — bare, then with every observability
sink attached (ring-buffer tracer, metrics registry, flight recorder) —
and shows three things:

* **Neutrality**: the two runs produce *identical* service reports.
  Instrumentation is read-only; attaching an observer never perturbs
  the simulated schedule.
* **Telemetry**: the per-event rollup of the Chrome trace the traced
  run exported (the same summary ``repro trace`` prints), plus the
  headline counters the metrics registry accumulated.
* **Post-mortems**: the flight dumps the shed storm triggered — frozen
  windows of recent events a production operator would pull after an
  SLO breach.
"""

from __future__ import annotations

import json

from repro.analysis.tables import format_table
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Observer,
    Tracer,
    chrome_trace,
    summarize_chrome_trace,
)
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)

#: A burst hot enough to trip the flight recorder's shed trigger on a
#: small fleet, but small enough to stay interactive.
OBS_WORKLOAD = dict(
    pattern="bursty",
    n_requests=120,
    rate_rps=400.0,
    seed=0,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)


def _run(workload: dict, observer: Observer | None):
    return simulate_service(
        generate_traffic(**workload),
        ServeCluster(2),
        cache=TraceCache(capacity=64),
        batcher=PipelineBatcher(max_batch=8),
        admission=make_admission_policy("slo-shed"),
        observer=observer,
    )


def observability_summary(workload: dict | None = None) -> dict:
    """Bare vs observed run, trace rollup, metrics, flight dumps."""
    workload = dict(OBS_WORKLOAD, **(workload or {}))

    bare = _run(workload, None)
    observer = Observer(
        tracer=Tracer(capacity=65536, sample=1.0),
        metrics=MetricsRegistry(),
        flight=FlightRecorder(),
    )
    observed = _run(workload, observer)

    identical = (json.dumps(bare.to_dict(), sort_keys=True)
                 == json.dumps(observed.to_dict(), sort_keys=True))
    flat = observer.metrics.flatten()
    counter_rows = [
        [name, f"{flat[name]:g}"]
        for name in ("engine.arrivals", "engine.responses", "engine.slo_met",
                     "engine.batches", "engine.compiles",
                     "admission.slo-shed.admitted", "admission.slo-shed.shed",
                     "cache.hits", "cache.misses")
        if name in flat
    ]
    dump_rows = [
        [f"{dump['t_s'] * 1e3:.2f}", dump["reason"], str(dump["n_events"])]
        for dump in observer.flight.dumps
    ]

    lines = [
        f"neutrality: observed report identical to bare report: "
        f"{'yes' if identical else 'NO — BUG'}",
        f"shed storm: {observed.n_shed}/{observed.n_offered} refused, "
        f"SLO attainment {observed.slo_attainment * 100:.1f}%",
        "",
        summarize_chrome_trace(chrome_trace(observer.tracer,
                                            metrics=observer.metrics)),
        "",
        format_table(["metric", "value"], counter_rows),
    ]
    if dump_rows:
        lines += ["",
                  "flight dumps (frozen post-mortem windows):",
                  format_table(["t (ms)", "trigger", "events"], dump_rows)]
    return {
        "identical": identical,
        "report": observed.to_dict(),
        "metrics": flat,
        "n_dumps": len(observer.flight.dumps),
        "text": "\n".join(lines),
    }
