"""Extension experiment: chaos serving — faults, stragglers, hedging.

``chaos_summary`` replays one deterministic bursty trace through the
serve engine three times against the same fault plan — a permanent
mid-run chip loss plus a long straggler window on a second chip:

* **clean** — no faults, the reference schedule;
* **naive** — the fault plan against a static fleet with no hedging:
  the dead chip's capacity is simply gone and every frame routed to the
  straggler pays its dilation;
* **chaos-hardened** — the same plan with request hedging (queue-age
  quantile threshold, first-completion-wins) and a fault-aware
  autoscaler that treats down chips as lost capacity and replaces them.

The summary pins the headline claim of the chaos PR: hardened serving
recovers the bulk of the SLO attainment the naive engine loses, while
the report stays exactly-once (no hedge duplicate is ever double
counted) and conservation-closed (offered == completed + shed +
failed-unrecoverable).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.errors import ConfigError
from repro.serve import (
    Autoscaler,
    ChipCrash,
    FaultPlan,
    HedgePolicy,
    PipelineBatcher,
    ServeCluster,
    StragglerWindow,
    TraceCache,
    generate_traffic,
    simulate_service,
)

#: Load high enough that losing a chip hurts, low enough that the
#: surviving fleet (plus autoscaled replacements) can still win.
CHAOS_WORKLOAD = dict(
    pattern="bursty",
    n_requests=240,
    rate_rps=200.0,
    seed=11,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)

#: Hedge aggressively at the median recent wait: the experiment's
#: traffic drowns the p90 threshold in backlog growth, while the median
#: still separates stragglers from the pack.
CHAOS_HEDGE = HedgePolicy(quantile=0.5, multiplier=1.0, min_samples=16)


def chaos_plan(horizon_s: float) -> FaultPlan:
    """The storm: chip 0 dies for good a quarter in; chip 1 straggles
    at 8x for most of the rest; every crash retry pays 2 ms rollback."""
    return FaultPlan(
        crashes=[ChipCrash(0, horizon_s * 0.25, None)],
        stragglers=[StragglerWindow(1, horizon_s * 0.3,
                                    horizon_s * 0.9, 8.0)],
        rollback_s=0.002,
    )


def _autoscaler() -> Autoscaler:
    return Autoscaler(min_chips=3, max_chips=8, target_queue_per_chip=2.0,
                      window_s=0.01, warmup_s=0.002, cooldown_s=0.005)


def _run(trace, faults=None, hedge=None, autoscaler=None):
    return simulate_service(
        trace,
        ServeCluster(3),
        cache=TraceCache(capacity=64),
        batcher=PipelineBatcher(max_batch=8),
        autoscaler=autoscaler,
        faults=faults,
        hedge=hedge,
    )


#: The experiment's independent arms, in presentation order.
CHAOS_ARMS = ("clean", "naive", "hardened")


def chaos_arm(name: str, workload: dict | None = None):
    """Run one chaos arm as a self-contained unit of work.

    Each arm regenerates its trace and fault plan deterministically
    from the workload (``generate_traffic`` is seeded), so arms can run
    in separate worker processes — the sweep runner's unit of
    parallelism — and still produce reports byte-identical to the
    sequential :func:`chaos_summary` path.
    """
    workload = dict(CHAOS_WORKLOAD, **(workload or {}))
    trace = generate_traffic(**workload)
    if name == "clean":
        return _run(trace)
    horizon_s = max(r.arrival_s for r in trace)
    plan = chaos_plan(horizon_s)
    if name == "naive":
        return _run(trace, faults=plan)
    if name == "hardened":
        return _run(trace, faults=plan, hedge=CHAOS_HEDGE,
                    autoscaler=_autoscaler())
    raise ConfigError(
        f"unknown chaos arm {name!r}; choose from {CHAOS_ARMS}")


def chaos_summary(workload: dict | None = None) -> dict:
    """Clean vs naive-chaos vs chaos-hardened serving, one fault plan."""
    workload = dict(CHAOS_WORKLOAD, **(workload or {}))
    trace = generate_traffic(**workload)
    horizon_s = max(r.arrival_s for r in trace)
    plan = chaos_plan(horizon_s)

    clean = chaos_arm("clean", workload)
    naive = chaos_arm("naive", workload)
    hardened = chaos_arm("hardened", workload)

    recovery_pts = (hardened.slo_attainment - naive.slo_attainment) * 100

    def conserved(report) -> bool:
        return (report.n_offered
                == report.n_requests + report.n_shed + report.n_failed
                == len(trace))

    def exactly_once(report) -> bool:
        ids = [r.request.request_id for r in report.responses]
        return len(ids) == len(set(ids)) and all(i >= 0 for i in ids)

    arm_rows = [
        [name,
         f"{rep.slo_attainment * 100:.1f}%",
         f"{rep.latency_p(99) * 1e3:.1f}",
         f"{rep.fleet_availability * 100:.1f}%",
         str(rep.n_requeued),
         str(rep.n_hedge_won),
         str(rep.peak_fleet_size),
         "yes" if conserved(rep) and exactly_once(rep) else "NO — BUG"]
        for name, rep in (("clean", clean), ("naive chaos", naive),
                          ("chaos-hardened", hardened))
    ]

    fault = hardened.fault_stats
    hedge = hardened.hedge_stats
    lines = [
        f"fault plan: chip 0 lost for good at {plan.crashes[0].at_s * 1e3:.1f} ms, "
        f"chip 1 straggling x{plan.stragglers[0].factor:g} for "
        f"{(plan.stragglers[0].end_s - plan.stragglers[0].start_s) * 1e3:.0f} ms, "
        f"rollback {plan.rollback_s * 1e3:.1f} ms/retry",
        "",
        format_table(
            ["arm", "SLO", "p99 ms", "avail", "requeued", "hedge wins",
             "peak fleet", "ledger ok"],
            arm_rows),
        "",
        f"SLO recovery: hedging + fault-aware autoscaling wins back "
        f"{recovery_pts:.1f} points over the naive engine "
        f"({naive.slo_attainment * 100:.1f}% -> "
        f"{hardened.slo_attainment * 100:.1f}%)",
        f"chaos cost: {fault['n_requeued']} frames requeued "
        f"({fault['rollback_s'] * 1e3:.1f} ms rollback), "
        f"{hedge['n_hedged']} hedged / {hedge['n_wins']} clone wins / "
        f"{hedge['n_wasted']} duplicates wasted "
        f"({hedge['wasted_work_s'] * 1e3:.1f} ms duplicate work)",
    ]

    return {
        "clean": clean.to_dict(),
        "naive": naive.to_dict(),
        "hardened": hardened.to_dict(),
        "recovery_pts": recovery_pts,
        "conserved": all(conserved(r) for r in (clean, naive, hardened)),
        "exactly_once": all(exactly_once(r) for r in (clean, naive, hardened)),
        "text": "\n".join(lines),
    }
