"""Robustness studies: do the headline conclusions survive perturbation?

A calibrated model's conclusions are only as good as their stability.
Two studies:

* :func:`bandwidth_sensitivity` — sweep DRAM bandwidth around the
  59.7 GB/s LPDDR4 design point and report per-pipeline FPS. The grid
  pipelines must respond strongly (their irregular accesses are the
  bottleneck Sec. VIII-A highlights), GEMM-dominated ones weakly.
* :func:`efficiency_sensitivity` — perturb every dataflow's lane
  efficiency by +/-20% and check the qualitative Fig. 16 conclusions
  (real-time set, mesh crossover) are unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from unittest import mock

from repro.analysis.tables import format_table
from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.core.config import AcceleratorConfig
from repro.core.dataflow import EFFICIENCY, DataflowEfficiency

PIPELINES = ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")


def bandwidth_sensitivity(
    scene: str = "room",
    bandwidths_gbs: tuple[float, ...] = (30.0, 59.7, 90.0, 120.0),
) -> dict:
    """FPS per pipeline across DRAM-bandwidth design points (1280x720)."""
    data: dict[str, dict[float, float]] = {p: {} for p in PIPELINES}
    for pipeline in PIPELINES:
        program = compile_program(scene, pipeline, 1280, 720)
        for bw in bandwidths_gbs:
            config = AcceleratorConfig(dram_bandwidth=bw * 1e9)
            data[pipeline][bw] = UniRenderAccelerator(config).simulate(program).fps

    rows = []
    for pipeline in PIPELINES:
        base = data[pipeline][59.7]
        rows.append(
            [pipeline]
            + [f"{data[pipeline][bw]:.1f}" for bw in bandwidths_gbs]
            + [f"{data[pipeline][max(bandwidths_gbs)] / data[pipeline][min(bandwidths_gbs)]:.2f}x"]
        )
        del base
    text = format_table(
        ["pipeline"] + [f"{bw:g} GB/s" for bw in bandwidths_gbs] + ["span"],
        rows,
    )
    return {"data": data, "text": text, "scene": scene}


def _scaled_efficiency(factor: float) -> dict:
    scaled = {}
    for op, eff in EFFICIENCY.items():
        scaled[op] = DataflowEfficiency(
            int16=min(eff.int16 * factor, 1.0),
            bf16=min(eff.bf16 * factor, 1.0),
            sfu=min(eff.sfu * factor, 1.0),
        )
    return scaled


def efficiency_sensitivity(
    scene: str = "room", factors: tuple[float, ...] = (0.8, 1.0, 1.2)
) -> dict:
    """Perturb all dataflow efficiencies and re-check key conclusions.

    Returns, per factor: Uni-Render FPS per pipeline, whether the
    volume pipelines stay (near-)real-time, and whether the mesh
    crossover (slower than 8Gen2's mesh-optimized GPU) persists.
    """
    from repro.devices import get_device

    gen2_mesh = get_device("8Gen2").fps(scene, "mesh", 1280, 720)
    data: dict[float, dict] = {}
    for factor in factors:
        with mock.patch.dict(EFFICIENCY, _scaled_efficiency(factor)):
            fps = {
                p: UniRenderAccelerator().simulate(
                    compile_program(scene, p, 1280, 720)
                ).fps
                for p in PIPELINES
            }
        data[factor] = {
            "fps": fps,
            "volume_real_time": all(fps[p] > 25.0 for p in ("lowrank", "hashgrid")),
            "mesh_crossover": fps["mesh"] < gen2_mesh,
        }

    rows = []
    for factor, row in data.items():
        rows.append(
            [f"{factor:.1f}x eff."]
            + [f"{row['fps'][p]:.1f}" for p in PIPELINES]
            + ["yes" if row["volume_real_time"] else "no",
               "yes" if row["mesh_crossover"] else "no"]
        )
    text = format_table(
        ["setting"] + list(PIPELINES) + ["volume real-time", "mesh crossover"],
        rows,
    )
    return {"data": data, "text": text, "scene": scene}


def bandwidth_boundness(scene: str = "room") -> dict:
    """Which pipelines are memory-bound at the design point?

    Classifies each pipeline by the fraction of frame cycles spent in
    memory-bound phases — quantifying the paper's claim that irregular
    grid accesses, not MACs, limit neural rendering (Sec. VIII).
    """
    accel = UniRenderAccelerator()
    data = {}
    for pipeline in PIPELINES:
        result = accel.simulate(compile_program(scene, pipeline, 1280, 720))
        memory_cycles = sum(
            phase.phase_cycles
            for phase in result.schedule.phases
            if phase.bound == "memory"
        )
        data[pipeline] = memory_cycles / result.cycles
    text = format_table(
        ["pipeline", "memory-bound cycle share"],
        [[p, f"{v * 100:.0f}%"] for p, v in data.items()],
    )
    return {"data": data, "text": text, "scene": scene}
