"""Ablations (Sec. VII-E) and related-work comparisons (Sec. VIII)."""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.runner import uni_result
from repro.analysis.tables import format_table
from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.core.config import AcceleratorConfig
from repro.devices import get_device
from repro.metrics import energy_efficiency_ratio, speedup


def reconfiguration_overhead(scene: str = "room") -> dict:
    """Efficiency impact of reconfigurability (Sec. VII-E).

    Compares the default accelerator against idealized variants without
    (a) reconfiguration cycles between micro-operators and (b) the GEMM
    buffer stage, plus the MetaVRain energy-per-pixel comparison
    ("MetaVRain is 2.8x more energy efficient ... per pixel").
    """
    base_cfg = AcceleratorConfig()
    no_reconf = replace(base_cfg, reconfigure_cycles=0)
    no_buffer = replace(base_cfg, gemm_buffer_stage_overhead=0.0)

    rows = []
    data: dict[str, dict[str, float]] = {}
    for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian", "mixrt"):
        program = compile_program(scene, pipeline, 1280, 720)
        fps_base = UniRenderAccelerator(base_cfg).simulate(program).fps
        fps_nr = UniRenderAccelerator(no_reconf).simulate(program).fps
        fps_nb = UniRenderAccelerator(no_buffer).simulate(program).fps
        data[pipeline] = {
            "fps": fps_base,
            "no_reconfig_gain": fps_nr / fps_base,
            "no_buffer_stage_gain": fps_nb / fps_base,
        }
        rows.append(
            [pipeline, f"{fps_base:.1f}", f"{fps_nr / fps_base:.3f}x",
             f"{fps_nb / fps_base:.3f}x"]
        )

    # MetaVRain energy-per-pixel on the MLP pipeline. The paper isolates
    # the architectural gap from the Pixel-Reuse algorithmic gap
    # (Sec. VII-B lists them as two separate contributions), so the
    # iso-work comparison divides out Pixel-Reuse's ~20x computation
    # reduction before quoting 2.8x.
    pixel_reuse_factor = 20.0
    ours = uni_result(scene, "mlp")
    metavrain = get_device("MetaVRain")
    mv_fps = metavrain.fps(scene, "mlp", 1280, 720)
    ours_j_per_pixel = ours.power_w / ours.fps / (1280 * 720)
    mv_j_per_pixel = metavrain.power_w / mv_fps / (1280 * 720)
    ratio = ours_j_per_pixel / mv_j_per_pixel / pixel_reuse_factor
    data["metavrain_energy_per_pixel_ratio"] = {"ratio": ratio}

    text = format_table(
        ["pipeline", "fps", "gain w/o reconfig", "gain w/o GEMM buffer stage"], rows
    )
    text += (
        f"\nMetaVRain energy/pixel advantage on MLP: {ratio:.1f}x (paper 2.8x)"
    )
    return {"data": data, "text": text, "scene": scene}


def gating_ablation(scene: str = "room") -> dict:
    """Module-utilization ablation (Sec. VII-E): power and clock gating
    of idle modules vs leaving them ungated."""
    accel = UniRenderAccelerator()
    rows = []
    data = {}
    for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian"):
        program = compile_program(scene, pipeline, 1280, 720)
        gated = accel.simulate(program, gated=True)
        ungated = accel.simulate(program, gated=False)
        saving = 1.0 - gated.energy_per_frame_j / ungated.energy_per_frame_j
        data[pipeline] = {
            "gated_j": gated.energy_per_frame_j,
            "ungated_j": ungated.energy_per_frame_j,
            "saving": saving,
        }
        rows.append(
            [pipeline, f"{gated.energy_per_frame_j * 1e3:.2f} mJ",
             f"{ungated.energy_per_frame_j * 1e3:.2f} mJ", f"{saving * 100:.1f}%"]
        )
    text = format_table(["pipeline", "gated", "ungated", "energy saved"], rows)
    return {"data": data, "text": text, "scene": scene}


#: Paper anchors for Sec. VIII comparisons (ratios vs Uni-Render).
RELATED_WORK_ANCHORS = {
    "GSCore": ("gaussian", "speedup_vs_xavier", 15.0, 12.0),
    "CICERO": ("hashgrid", "relative_fps", 1.0 / 0.86, None),
    "TRAM": ("mlp", "uni_speedup", 25.0, None),
    "FPGA-NVR": ("hashgrid", "uni_speedup", 15.0, None),
}


def related_work_comparisons(scene: str = "room") -> dict:
    """GSCore / CICERO / TRAM / FPGA-NVR comparisons (Sec. VIII)."""
    xavier = get_device("Xavier NX")
    rows = []
    data = {}

    # GSCore: both measured as speedup over Xavier NX on 3DGS.
    ours = uni_result(scene, "gaussian")
    xavier_fps = xavier.fps(scene, "gaussian", 1280, 720)
    gscore = get_device("GSCore").fps(scene, "gaussian", 1280, 720)
    data["GSCore"] = {
        "gscore_vs_xavier": speedup(gscore, xavier_fps),
        "ours_vs_xavier": speedup(ours.fps, xavier_fps),
    }
    rows.append(
        ["GSCore (3DGS)", f"{data['GSCore']['gscore_vs_xavier']:.1f}x vs XNX (paper 15x)",
         f"ours {data['GSCore']['ours_vs_xavier']:.1f}x (paper 12x)"]
    )

    # CICERO: ours is ~14% slower at iso-MACs on hash-grid.
    ours_hash = uni_result(scene, "hashgrid")
    cicero = get_device("CICERO").fps(scene, "hashgrid", 1280, 720)
    data["CICERO"] = {"ours_over_cicero": ours_hash.fps / cicero}
    rows.append(
        ["CICERO (hash)", f"ours/CICERO = {ours_hash.fps / cicero:.2f}",
         "paper: ours 14% slower"]
    )

    # TRAM: 25x speedup on MLP pipelines.
    ours_mlp = uni_result(scene, "mlp")
    tram = get_device("TRAM").fps(scene, "mlp", 1280, 720)
    data["TRAM"] = {"uni_speedup": speedup(ours_mlp.fps, tram)}
    rows.append(
        ["TRAM (MLP)", f"{data['TRAM']['uni_speedup']:.0f}x speedup", "paper: 25x"]
    )

    # FPGA-NVR: 15x speedup, 10x energy efficiency on hash-grid.
    fpga = get_device("FPGA-NVR")
    fpga_fps = fpga.fps(scene, "hashgrid", 1280, 720)
    data["FPGA-NVR"] = {
        "uni_speedup": speedup(ours_hash.fps, fpga_fps),
        "energy_ratio": energy_efficiency_ratio(
            ours_hash.fps, ours_hash.power_w, fpga_fps, fpga.power_w
        ),
    }
    rows.append(
        ["FPGA-NVR (hash)",
         f"{data['FPGA-NVR']['uni_speedup']:.0f}x speedup (paper 15x)",
         f"{data['FPGA-NVR']['energy_ratio']:.0f}x energy (paper 10x)"]
    )
    text = format_table(["comparison", "result", "reference"], rows)
    return {"data": data, "text": text, "scene": scene}
