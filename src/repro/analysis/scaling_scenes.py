"""Larger-scene scaling study (the Sec. VII-D outlook).

"This finding can guide us in scaling up the proposed accelerator to
handle even larger 3D scenes [99]." Here we make that concrete: scale
the hash-grid workload the way a Block-NeRF-style scene grows (more
content per ray *and* a bigger feature table), then find the smallest
balanced design point that restores real-time rendering.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.core.microops import MicroOpProgram, Workload
from repro.errors import ConfigError


def scale_scene_workload(program: MicroOpProgram, factor: float) -> MicroOpProgram:
    """A scene ``factor`` times larger: all work scales, and — unlike
    :meth:`Workload.scaled` — so do the working sets (bigger tables)."""
    if factor <= 0:
        raise ConfigError("scene scale factor must be positive")
    scaled = MicroOpProgram(pipeline=program.pipeline, pixels=program.pixels)
    for inv in program.invocations:
        w = inv.workload
        scaled.append(
            inv.op,
            inv.name,
            Workload(
                int_ops=w.int_ops * factor,
                bf16_ops=w.bf16_ops * factor,
                sfu_ops=w.sfu_ops * factor,
                sram_accesses=w.sram_accesses * factor,
                dram_unique_bytes=w.dram_unique_bytes * factor,
                working_set_bytes=w.working_set_bytes * factor,
                streaming_bytes=w.streaming_bytes * factor,
                items=w.items * factor,
            ),
        )
    return scaled


def scene_scaling_study(
    scene: str = "room",
    pipeline: str = "hashgrid",
    scene_factors: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    design_scales: tuple[int, ...] = (1, 2, 4, 8),
    target_fps: float = 30.0,
) -> dict:
    """For each scene-growth factor, the smallest balanced (n x PE,
    n x SRAM) design point that stays above ``target_fps``."""
    base_program = compile_program(scene, pipeline, 1280, 720)
    base_config = UniRenderAccelerator().config

    rows = []
    data: dict[float, dict] = {}
    for factor in scene_factors:
        program = scale_scene_workload(base_program, factor)
        chosen = None
        fps_at = {}
        for scale in design_scales:
            accel = UniRenderAccelerator(base_config.scaled(scale, scale))
            fps = accel.simulate(program).fps
            fps_at[scale] = fps
            if chosen is None and fps > target_fps:
                chosen = scale
        data[factor] = {"fps_at_scale": fps_at, "required_scale": chosen}
        rows.append(
            [f"{factor:.0f}x scene"]
            + [f"{fps_at[s]:.1f}" for s in design_scales]
            + [f"{chosen}x" if chosen else "> max"]
        )
    text = format_table(
        ["scene size"] + [f"{s}x design" for s in design_scales] + ["needed"],
        rows,
    )
    return {"data": data, "text": text, "scene": scene, "pipeline": pipeline}
