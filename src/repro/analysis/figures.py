"""Regenerate the paper's figures (7, 15, 16, 17) as data + text."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.runner import UNBOUNDED_EVAL_SCENES, uni_result
from repro.analysis.tables import PIPELINES, format_table
from repro.core import UniRenderAccelerator
from repro.core.energy import nameplate_power
from repro.devices import DEVICES, get_device
from repro.errors import UnsupportedPipelineError
from repro.metrics import energy_efficiency_ratio, geometric_mean, speedup
from repro.scenes import UNBOUNDED_INDOOR_SCENES

#: Fig. 7 / Fig. 16 device order (commercial first, then dedicated).
FIGURE_DEVICES = (
    "Orin NX",
    "Xavier NX",
    "8Gen2",
    "AMD 780M",
    "Instant-3D",
    "RT-NeRF",
    "MetaVRain",
)


# ----------------------------------------------------------------------
# Fig. 7 — motivating benchmark (devices only, no Uni-Render)
# ----------------------------------------------------------------------
def figure7_motivating(scenes: Sequence[str] | None = None) -> dict:
    """FPS of every device on every pipeline; None marks unsupported.

    The paper's observation: across all settings only three reach the
    30 FPS real-time bar.
    """
    scenes = tuple(scenes) if scenes is not None else UNBOUNDED_EVAL_SCENES
    grid: dict[str, dict[str, float | None]] = {}
    for device_name in FIGURE_DEVICES:
        device = get_device(device_name)
        grid[device_name] = {}
        for pipeline in PIPELINES:
            try:
                fps = geometric_mean(
                    [device.fps(s, pipeline, 1280, 720) for s in scenes]
                )
            except UnsupportedPipelineError:
                fps = None
            grid[device_name][pipeline] = fps

    real_time = [
        (d, p)
        for d, row in grid.items()
        for p, fps in row.items()
        if fps is not None and fps > 30.0
    ]
    rows = []
    for device_name, row in grid.items():
        rows.append(
            [device_name]
            + [("x" if row[p] is None else f"{row[p]:.2f}") for p in PIPELINES]
        )
    text = format_table(["device"] + list(PIPELINES), rows)
    text += f"\nreal-time (>30 FPS) settings: {len(real_time)}: {real_time}"
    return {"data": grid, "real_time": real_time, "text": text, "scenes": scenes}


# ----------------------------------------------------------------------
# Fig. 15 — area and power breakdowns
# ----------------------------------------------------------------------
PAPER_FIG15 = {
    "area": {
        "computing_and_control_logic": 0.54,
        "sram_inside_pe_array": 0.31,
        "sram_outside_pe_array": 0.15,
    },
    "power": {
        "computing_and_control_logic": 0.75,
        "sram_inside_pe_array": 0.10,
        "sram_outside_pe_array": 0.15,
    },
    "total_area_mm2": 14.96,
    "typical_power_w": 5.78,
}


def figure15_breakdowns() -> dict:
    accel = UniRenderAccelerator()
    area = accel.area()
    power = nameplate_power(accel.config)
    rows = []
    for key in PAPER_FIG15["area"]:
        rows.append(
            [
                key,
                f"{area.breakdown()[key] * 100:.1f}%",
                f"{PAPER_FIG15['area'][key] * 100:.0f}%",
                f"{power.fractions()[key] * 100:.1f}%",
                f"{PAPER_FIG15['power'][key] * 100:.0f}%",
            ]
        )
    text = format_table(
        ["component", "area (ours)", "area (paper)", "power (ours)", "power (paper)"],
        rows,
    )
    text += (
        f"\ntotal area {area.total:.2f} mm^2 (paper {PAPER_FIG15['total_area_mm2']}),"
        f" typical power {power.chip_total:.2f} W (paper {PAPER_FIG15['typical_power_w']})"
    )
    return {
        "area": area,
        "power": power,
        "paper": PAPER_FIG15,
        "text": text,
    }


# ----------------------------------------------------------------------
# Fig. 16 — speedup and energy efficiency over the baselines
# ----------------------------------------------------------------------
def figure16_speedup_energy(scenes: Sequence[str] | None = None) -> dict:
    """Uni-Render vs the seven baselines on the five pipelines.

    Returns per (device, pipeline): speedup and energy-efficiency ratio
    (geomean across scenes; None where the baseline lacks support), plus
    each device's geomean across its supported pipelines.
    """
    scenes = tuple(scenes) if scenes is not None else UNBOUNDED_EVAL_SCENES
    speedups: dict[str, dict[str, float | None]] = {}
    energy: dict[str, dict[str, float | None]] = {}

    for device_name in FIGURE_DEVICES:
        device = get_device(device_name)
        speedups[device_name] = {}
        energy[device_name] = {}
        for pipeline in PIPELINES:
            per_scene_speed = []
            per_scene_energy = []
            for scene in scenes:
                ours = uni_result(scene, pipeline)
                try:
                    base_fps = device.fps(scene, pipeline, 1280, 720)
                except UnsupportedPipelineError:
                    per_scene_speed = []
                    break
                per_scene_speed.append(speedup(ours.fps, base_fps))
                per_scene_energy.append(
                    energy_efficiency_ratio(
                        ours.fps, ours.power_w, base_fps, device.power_w
                    )
                )
            if per_scene_speed:
                speedups[device_name][pipeline] = geometric_mean(per_scene_speed)
                energy[device_name][pipeline] = geometric_mean(per_scene_energy)
            else:
                speedups[device_name][pipeline] = None
                energy[device_name][pipeline] = None

    geomeans = {
        d: geometric_mean([v for v in row.values() if v is not None])
        for d, row in speedups.items()
    }
    energy_geomeans = {
        d: geometric_mean([v for v in row.values() if v is not None])
        for d, row in energy.items()
    }

    def _rows(table):
        out = []
        for device_name, row in table.items():
            out.append(
                [device_name]
                + [("x" if row[p] is None else f"{row[p]:.2f}") for p in PIPELINES]
            )
        return out

    text = "(a) speedup of Uni-Render over baselines\n"
    text += format_table(["device"] + list(PIPELINES), _rows(speedups))
    text += "\ngeomean: " + ", ".join(f"{d}: {g:.1f}x" for d, g in geomeans.items())
    text += "\n\n(b) energy-efficiency improvement\n"
    text += format_table(["device"] + list(PIPELINES), _rows(energy))
    text += "\ngeomean: " + ", ".join(
        f"{d}: {g:.1f}x" for d, g in energy_geomeans.items()
    )
    return {
        "speedup": speedups,
        "energy": energy,
        "speedup_geomean": geomeans,
        "energy_geomean": energy_geomeans,
        "text": text,
        "scenes": scenes,
    }


# ----------------------------------------------------------------------
# Fig. 17 — hybrid MixRT speedups on the four indoor scenes
# ----------------------------------------------------------------------
FIG17_DEVICES = ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M")


def figure17_hybrid(scenes: Sequence[str] | None = None) -> dict:
    scenes = tuple(scenes) if scenes is not None else UNBOUNDED_INDOOR_SCENES
    table: dict[str, dict[str, float]] = {}
    for device_name in FIG17_DEVICES:
        device = get_device(device_name)
        table[device_name] = {}
        for scene in scenes:
            ours = uni_result(scene, "mixrt")
            base = device.fps(scene, "mixrt", 1280, 720)
            table[device_name][scene] = speedup(ours.fps, base)
    geomeans = {d: geometric_mean(list(row.values())) for d, row in table.items()}
    rows = [
        [d] + [f"{table[d][s]:.2f}" for s in scenes] + [f"{geomeans[d]:.2f}"]
        for d in FIG17_DEVICES
    ]
    text = format_table(["device"] + list(scenes) + ["geomean"], rows)
    return {"data": table, "geomean": geomeans, "text": text, "scenes": scenes}
