"""Frame-sequence study: FPS stability along a camera trajectory.

Real-time means *every* frame under 33 ms, not the average — and the
paper's Pixel-Reuse discussion (Sec. VII-B) hinges on camera motion.
This study compiles one program per viewpoint of an orbit (per-view
workload statistics measured from the field) and reports the FPS
distribution over the trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.compile.compilers import COMPILERS
from repro.compile.measure import PROBE_SAMPLES, PROBE_SIZE
from repro.core import UniRenderAccelerator
from repro.renderers.nerf.sampling import OccupancyGrid, sample_along_rays
from repro.scenes import Camera, get_scene, orbit_poses


def _view_live_fraction(field, occupancy, pose) -> float:
    """Per-view ray statistic (occupancy skip + early termination)."""
    camera = Camera(PROBE_SIZE, PROBE_SIZE, pose=pose)
    origins, dirs = camera.rays()
    points, dt = sample_along_rays(origins, dirs, field.ray_t_range(), PROBE_SAMPLES)
    flat = points.reshape(-1, 3)
    live = occupancy.query(flat).reshape(len(origins), PROBE_SAMPLES)
    sigma = field.density(flat).reshape(len(origins), PROBE_SAMPLES)
    alpha = 1.0 - np.exp(-np.maximum(sigma, 0.0) * dt)
    transmittance = np.cumprod(1.0 - alpha + 1e-10, axis=1)
    before = np.concatenate(
        [np.ones_like(transmittance[:, :1], dtype=bool), transmittance[:, :-1] > 1e-2],
        axis=1,
    )
    return float((live & before).mean())


def trajectory_study(
    scene: str = "room",
    pipeline: str = "hashgrid",
    n_frames: int = 12,
    resolution: tuple[int, int] = (1280, 720),
) -> dict:
    """Per-frame FPS along an orbit; returns distribution statistics.

    The frame programs share the scene's average statistics but are
    re-scaled by each view's measured ray occupancy, so frames looking
    into cluttered directions cost more.
    """
    spec = get_scene(scene)
    field = spec.field()
    occupancy = OccupancyGrid(field, resolution=32)
    poses = orbit_poses(spec.camera_radius, n_frames)

    base_program = COMPILERS[pipeline](scene, *resolution)
    base_live = np.mean(
        [_view_live_fraction(field, occupancy, pose) for pose in poses[:3]]
    )

    accel = UniRenderAccelerator()
    fps = []
    for pose in poses:
        live = _view_live_fraction(field, occupancy, pose)
        factor = live / max(base_live, 1e-9)
        program = type(base_program)(pipeline=pipeline, pixels=base_program.pixels)
        for inv in base_program.invocations:
            program.append(inv.op, inv.name, inv.workload.scaled(factor))
        fps.append(accel.simulate(program).fps)

    fps_arr = np.asarray(fps)
    data = {
        "fps": fps,
        "mean": float(fps_arr.mean()),
        "min": float(fps_arr.min()),
        "max": float(fps_arr.max()),
        "all_real_time": bool(np.all(fps_arr > 30.0)),
    }
    rows = [[f"frame {i}", f"{value:.1f}"] for i, value in enumerate(fps)]
    rows.append(["mean", f"{data['mean']:.1f}"])
    rows.append(["min", f"{data['min']:.1f}"])
    text = format_table(["view", "FPS"], rows)
    text += f"\nreal-time on every frame: {'yes' if data['all_real_time'] else 'no'}"
    return {"data": data, "text": text, "scene": scene, "pipeline": pipeline}
