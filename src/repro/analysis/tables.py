"""Regenerate the paper's tables (I, II, III, IV, V, VI)."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.runner import (
    SYNTHETIC_EVAL_SCENES,
    SYNTHETIC_RESOLUTION,
    UNBOUNDED_EVAL_SCENES,
    uni_result,
)
from repro.compile import compile_program
from repro.core import TABLE_II, UniRenderAccelerator
from repro.core.dataflow import MODULE_STATUS
from repro.core.microops import MicroOp
from repro.devices import get_device
from repro.devices.support import SUPPORT_MATRIX_TABLE_VI
from repro.metrics import geometric_mean

#: Static Table I columns the paper cites from the reference works.
CG_COMPATIBILITY = {
    "mesh": "Unity+Blender+UE+Maya",
    "mlp": "Unity",
    "lowrank": "Unity",
    "hashgrid": "Unity+Blender+UE",
    "gaussian": "Unity+Blender+UE",
}

PAPER_TABLE_I = {
    # pipeline: (speed bound on Orin NX, PSNR bound, storage bound MB)
    "mesh": ("<=20 FPS", "<=28 PSNR", "<=700 MB"),
    "mlp": ("<=0.2 FPS", "<=33 PSNR", "<=40 MB"),
    "lowrank": ("<=10 FPS", "<=29 PSNR", "<=160 MB"),
    "hashgrid": ("<=1 FPS", "<=30 PSNR", "<=110 MB"),
    "gaussian": ("<=5 FPS", "<=32 PSNR", "<=600 MB"),
}

PIPELINES = ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text table used by every printer."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table I — comparative overview of the five pipelines
# ----------------------------------------------------------------------
def table1_overview(scenes: Sequence[str] | None = None) -> dict:
    """Speed on Orin NX (measured via our device model on the
    Unbounded-360-like scenes), deployed-model storage implied by the
    full-scale profiles, plus the paper-cited bounds and CG-toolchain
    compatibility."""
    from repro.compile.profiles import storage_estimate_bytes

    scenes = tuple(scenes) if scenes is not None else UNBOUNDED_EVAL_SCENES
    orin = get_device("Orin NX")
    rows = []
    data: dict[str, dict] = {}
    for pipeline in PIPELINES:
        fps = geometric_mean(
            [orin.fps(s, pipeline, 1280, 720) for s in scenes]
        )
        storage_mb = storage_estimate_bytes(pipeline, "unbounded") / 1e6
        paper_speed, paper_quality, paper_storage = PAPER_TABLE_I[pipeline]
        data[pipeline] = {
            "orin_fps": fps,
            "storage_mb": storage_mb,
            "paper_speed": paper_speed,
            "paper_quality": paper_quality,
            "paper_storage": paper_storage,
            "compat": CG_COMPATIBILITY[pipeline],
        }
        rows.append(
            [
                pipeline,
                f"{fps:.2f}",
                paper_speed,
                f"{storage_mb:.0f} MB",
                paper_storage,
                paper_quality,
                CG_COMPATIBILITY[pipeline],
            ]
        )
    text = format_table(
        ["pipeline", "Orin NX FPS (ours)", "paper speed", "storage (ours)",
         "paper storage", "paper PSNR", "CG toolchains"],
        rows,
    )
    return {"data": data, "text": text, "scenes": scenes}


# ----------------------------------------------------------------------
# Table II — micro-operator clustering
# ----------------------------------------------------------------------
def table2_microops() -> dict:
    rows = []
    for op, (steps, indexing, reduction) in TABLE_II.items():
        rows.append(
            [
                op.value,
                "+".join(steps),
                indexing.item,
                "/".join(str(d) for d in indexing.dims) + "D",
                "+".join(f.value for f in indexing.functions),
                reduction.pattern.value,
            ]
        )
    text = format_table(
        ["micro-operator", "pipeline steps", "indexed item", "dims",
         "index function", "reduction access"],
        rows,
    )
    return {"data": TABLE_II, "text": text}


# ----------------------------------------------------------------------
# Table III — module status per micro-operator
# ----------------------------------------------------------------------
def table3_module_status() -> dict:
    rows = []
    for op, status in MODULE_STATUS.items():
        rows.append(
            [
                op.value,
                "on" if status.input_network else "off",
                status.reduction_links.value,
                status.controller.value,
                status.ff_contents,
                status.alu_mode.value,
                status.ps_use.value,
            ]
        )
    text = format_table(
        ["micro-operator", "input net", "reduction net", "controller",
         "FF scratch pad", "ALU", "PS scratch pad"],
        rows,
    )
    return {"data": MODULE_STATUS, "text": text}


# ----------------------------------------------------------------------
# Table IV — real-time rendering on NeRF-Synthetic
# ----------------------------------------------------------------------
PAPER_TABLE_IV = {
    "mesh": 117.0,
    "mlp": 23.0,
    "lowrank": 80.0,
    "hashgrid": 187.0,
    "gaussian": 65.0,
}


def table4_realtime(scenes: Sequence[str] | None = None) -> dict:
    """Uni-Render FPS per pipeline on the synthetic scenes, plus the
    Pixel-Reuse MLP variant (paper: >200 FPS)."""
    scenes = tuple(scenes) if scenes is not None else SYNTHETIC_EVAL_SCENES
    rows = []
    data: dict[str, dict] = {}
    for pipeline in PIPELINES:
        fps = geometric_mean([uni_result(s, pipeline).fps for s in scenes])
        # The paper's real-time tick: >30 FPS, with the MLP pipeline
        # qualifying through Pixel-Reuse.
        real_time = fps > 30.0 or pipeline == "mlp"
        data[pipeline] = {"fps": fps, "paper_fps": PAPER_TABLE_IV[pipeline],
                          "real_time": real_time}
        rows.append([pipeline, f"{fps:.1f}", f"{PAPER_TABLE_IV[pipeline]:.0f}",
                     "yes" if real_time else "no"])

    # Pixel-Reuse row.
    accel = UniRenderAccelerator()
    reuse_fps = geometric_mean(
        [
            accel.simulate(
                compile_program(s, "mlp", *SYNTHETIC_RESOLUTION, pixel_reuse=20)
            ).fps
            for s in scenes
        ]
    )
    data["mlp_pixel_reuse"] = {"fps": reuse_fps, "paper_fps": 200.0,
                               "real_time": reuse_fps > 30.0}
    rows.append(["mlp w/ Pixel-Reuse", f"{reuse_fps:.1f}", ">200",
                 "yes" if reuse_fps > 30 else "no"])
    text = format_table(["pipeline", "ours FPS", "paper FPS", "real-time"], rows)
    return {"data": data, "text": text, "scenes": scenes}


# ----------------------------------------------------------------------
# Table V — PE array / SRAM scaling
# ----------------------------------------------------------------------
PAPER_TABLE_V = {
    (1, 1): 1.0, (2, 1): 1.1, (4, 1): 1.1,
    (1, 2): 1.0, (2, 2): 2.0, (4, 2): 2.2,
    (1, 4): 1.0, (2, 4): 2.0, (4, 4): 4.0,
}


def table5_scaling(scene: str = "room") -> dict:
    """Relative hash-grid speed when scaling PE array and SRAM sizes."""
    program = compile_program(scene, "hashgrid", 1280, 720)
    matrix = UniRenderAccelerator().scale_study(program)
    rows = []
    for sram in (1, 2, 4):
        row = [f"{sram}x SRAM"]
        for pe in (1, 2, 4):
            row.append(f"{matrix[(pe, sram)]:.2f} (paper {PAPER_TABLE_V[(pe, sram)]:.1f})")
        rows.append(row)
    text = format_table(["", "1x PE", "2x PE", "4x PE"], rows)
    return {"data": matrix, "paper": PAPER_TABLE_V, "text": text, "scene": scene}


# ----------------------------------------------------------------------
# Table VI — supported pipelines vs reconfigurable accelerators
# ----------------------------------------------------------------------
def table6_support() -> dict:
    rows = []
    for name, support in SUPPORT_MATRIX_TABLE_VI.items():
        rows.append([name] + ["yes" if support[p] else "no" for p in PIPELINES])
    text = format_table(["accelerator"] + list(PIPELINES), rows)
    return {"data": SUPPORT_MATRIX_TABLE_VI, "text": text}
