"""Extension experiment: planet-scale federation under region chaos.

``federation_summary`` drives one deterministic planet-wide workload —
three regions, three time zones, each riding its own phase of the
diurnal wave — through the federation layer three times:

* **healthy** — the federated router with gossip replication and no
  faults: the reference numbers, including the warm-start claim (a
  remote region's cold misses driven to zero before its wave arrives);
* **naive** — naive home-region routing with gossip off, against the
  chaos plan: a region outage strands its whole wave (hard failures)
  and a replication partition goes unnoticed because nothing
  replicates anyway;
* **federated** — the scored router plus gossip against the same plan:
  the outage's traffic fails over cross-region (paying RTT + migration
  cost in SLO accounting) and the partition only delays trace warmth.

The summary pins the headline claim: federated goodput SLO materially
above the naive arm under region loss, with the request ledger
conserved (offered == completed + shed + failed) in every arm.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.errors import ConfigError
from repro.serve import (
    FederationConfig,
    FederationPlan,
    format_federation_report,
    generate_federation_traffic,
    parse_region_spec,
    simulate_federation,
)

#: Three regions spread across the planet; the 120 ms SLO is the
#: planetary latency budget — enough slack that a cross-region failover
#: (RTT + migration cost) can still meet it, which is what separates
#: "failed over" from "failed" in the goodput numbers.
FEDERATION_REGIONS = ("us-east:tz=-5,chips=3;"
                      "eu-west:tz=1,chips=3,cost=1.2;"
                      "ap-tokyo:tz=9,chips=3")

FEDERATION_WORKLOAD = dict(
    n_requests_per_region=150,
    rate_rps=150.0,
    seed=3,
    pattern="diurnal",
    slo_s=0.12,
)

#: The storm: eu-west offline through the heart of its wave, and the
#: us-east <-> ap-tokyo replication channel partitioned early on.
FEDERATION_FAULTS = ("outage=eu-west@0.6+1.2;"
                     "partition=us-east|ap-tokyo@0.4+0.8")

#: The experiment's independent arms, in presentation order.
FEDERATION_ARMS = ("healthy", "naive", "federated")


def _workload_streams(workload: dict):
    specs = parse_region_spec(FEDERATION_REGIONS)
    streams = generate_federation_traffic(
        specs,
        n_requests_per_region=workload["n_requests_per_region"],
        rate_rps=workload["rate_rps"],
        seed=workload["seed"],
        pattern=workload["pattern"],
        slo_s=workload["slo_s"],
    )
    return specs, streams


def federation_arm(name: str, workload: dict | None = None):
    """Run one federation arm as a self-contained unit of work.

    Each arm regenerates its streams and fault plan deterministically
    from the workload, so arms can run in separate worker processes —
    the sweep runner's unit of parallelism — and still produce reports
    byte-identical to the sequential :func:`federation_summary` path.
    """
    workload = dict(FEDERATION_WORKLOAD, **(workload or {}))
    specs, streams = _workload_streams(workload)
    if name == "healthy":
        return simulate_federation(specs, streams,
                                   config=FederationConfig())
    plan = FederationPlan.parse(FEDERATION_FAULTS)
    if name == "naive":
        return simulate_federation(
            specs, streams,
            config=FederationConfig(router="naive", gossip=False),
            plan=plan)
    if name == "federated":
        return simulate_federation(specs, streams,
                                   config=FederationConfig(), plan=plan)
    raise ConfigError(
        f"unknown federation arm {name!r}; choose from {FEDERATION_ARMS}")


def federation_summary(workload: dict | None = None) -> dict:
    """Healthy vs naive-routing vs federated serving, one chaos plan."""
    healthy = federation_arm("healthy", workload)
    naive = federation_arm("naive", workload)
    federated = federation_arm("federated", workload)

    recovery_pts = (federated.goodput_slo_attainment
                    - naive.goodput_slo_attainment) * 100

    def conserved(report) -> bool:
        return (report.n_offered
                == report.n_requests + report.n_shed + report.n_failed)

    arm_rows = [
        [name,
         f"{rep.goodput_slo_attainment * 100:.1f}%",
         f"{rep.slo_attainment * 100:.1f}%",
         f"{rep.latency_p(99) * 1e3:.1f}",
         str(rep.n_failed),
         str(rep.n_failovers),
         str(rep.gossip_stats["warm_installs"]),
         "yes" if conserved(rep) else "NO — BUG"]
        for name, rep in (("healthy", healthy), ("naive chaos", naive),
                          ("federated chaos", federated))
    ]

    remote = [name for name, entry in healthy.regions.items()
              if entry["cache"]["misses"] == 0
              and entry["gossip_warm_installs"] > 0]
    lines = [
        f"regions: {FEDERATION_REGIONS}",
        f"fault plan: {FEDERATION_FAULTS}",
        "",
        format_table(
            ["arm", "goodput SLO", "SLO", "p99 ms", "failed", "failovers",
             "gossip warms", "ledger ok"],
            arm_rows),
        "",
        f"region loss: naive routing strands {naive.n_failed} requests "
        f"outright; the federated router fails all of them over "
        f"({federated.n_failovers} failovers, migration cost in the SLO "
        f"ledger) and wins back {recovery_pts:.1f} goodput points "
        f"({naive.goodput_slo_attainment * 100:.1f}% -> "
        f"{federated.goodput_slo_attainment * 100:.1f}%)",
        f"gossip warm-start: regions {', '.join(remote) or '(none)'} "
        f"served their whole wave without a single cold miss — warmed "
        f"entirely by peers within the "
        f"{healthy.config.staleness_bound_s * 1e3:.0f} ms staleness bound",
        "",
        format_federation_report(federated),
    ]

    return {
        "healthy": healthy.to_dict(),
        "naive": naive.to_dict(),
        "federated": federated.to_dict(),
        "recovery_pts": recovery_pts,
        "conserved": all(conserved(r) for r in (healthy, naive, federated)),
        "text": "\n".join(lines),
    }
