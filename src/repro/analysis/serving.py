"""Extension experiment: the rendering service under synthetic load.

Replays one deterministic mixed-pipeline trace through the
``repro.serve`` fleet once per sharding policy (fresh chips and a fresh
trace cache each run, so the comparison is apples-to-apples) and
tabulates the service-level metrics. The headline result mirrors the
paper's Sec. VII-E reconfiguration story at fleet scale: scheduling by
pipeline affinity avoids most PE-array switches that oblivious
round-robin sharding incurs.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    SHARDING_POLICIES,
    TraceCache,
    generate_traffic,
    simulate_service,
)

#: Evaluation workload: every policy sees this exact trace. Resolution
#: and request count are sized so the experiment stays interactive.
SERVING_WORKLOAD = dict(
    pattern="mixed",
    n_requests=120,
    rate_rps=150.0,
    seed=0,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)


def serving_summary(
    n_chips: int = 4,
    policies: tuple[str, ...] | None = None,
    workload: dict | None = None,
) -> dict:
    """Per-policy serving metrics on one shared mixed-pipeline trace."""
    policies = policies if policies is not None else tuple(sorted(SHARDING_POLICIES))
    trace = generate_traffic(**(workload or SERVING_WORKLOAD))

    reports = {}
    for policy in policies:
        reports[policy] = simulate_service(
            trace,
            ServeCluster(n_chips, policy=policy),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
        )

    rows = []
    for policy in policies:
        report = reports[policy]
        rows.append([
            policy,
            f"{report.throughput_rps:.0f}",
            f"{report.latency_p(50) * 1e3:.2f}",
            f"{report.latency_p(95) * 1e3:.2f}",
            f"{report.latency_p(99) * 1e3:.2f}",
            f"{report.slo_attainment * 100:.1f}%",
            f"{report.cache_hit_rate * 100:.1f}%",
            f"{report.mean_utilization * 100:.1f}%",
            f"{report.total_switch_cycles:.0f}",
            f"{report.total_reconfig_cycles:.0f}",
        ])
    text = format_table(
        ["policy", "req/s", "p50 ms", "p95 ms", "p99 ms", "SLO",
         "cache hits", "util", "switch cyc", "reconfig cyc"],
        rows,
    )
    return {
        "rows": rows,
        "reports": {p: r.to_dict() for p, r in reports.items()},
        "text": text,
    }
