"""Extension experiments: the rendering service under synthetic load.

``serving_summary`` replays one deterministic mixed-pipeline trace
through the ``repro.serve`` fleet once per sharding policy (fresh chips
and a fresh trace cache each run, so the comparison is
apples-to-apples) and tabulates the service-level metrics. The headline
result mirrors the paper's Sec. VII-E reconfiguration story at fleet
scale: scheduling by pipeline affinity avoids most PE-array switches
that oblivious round-robin sharding incurs.

``elastic_summary`` compares a *static* fleet (max chips provisioned
for the whole run) against an *autoscaled heterogeneous* fleet (a small
baseline floor that grows with mixed 2x-PE and baseline chips under
cost-aware placement, and drains between bursts) on bursty and diurnal
traffic, with and without SLO-aware admission control. The headline:
the elastic fleet matches or beats the static fleet's SLO attainment
while provisioning fewer chip-seconds (lower cost).

``engine_summary`` exercises the event engine's compilation model on a
cold-cache bursty trace over four scenes and all three pipelines:
synchronous visible compile (the chip stalls on every miss) against
compile worker pools of growing size, with and without cross-request
trace prefetch. With real compiled programs the frame costs dominate,
so the effect here is measured but modest — workers shave the queue
wait and the p99 tail where compiles collide with bursts, and prefetch
recovers part of the cold-cache hit rate. The dramatic version of the
same mechanism (compile latency >> frame time, 2x mean queue wait, SLO
37.5% -> 91.7%) is frozen with stub frame costs in
``tests/test_serve_golden.py``.

``predictive_summary`` closes the reactive gap from both ends: a
diurnal wave replayed through a static fleet, the reactive controller,
and the forecast-led ``predictive`` controller (same constants plus the
arrival-rate trend), followed by a warm-vs-cold restart of the same
service from the trace library the first run flushed. Headlines:
predictive autoscaling lifts SLO attainment over reactive at equal or
lower chip-seconds by provisioning one warm-up ahead of the wave, and
the warm restart eliminates the cold compile misses outright. The
dramatic stub-cost version of both is frozen in
``tests/test_serve_golden.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import CompileLatencyModel
from repro.analysis.tables import format_table
from repro.errors import ConfigError
from repro.serve import (
    Autoscaler,
    DEFAULT_TENANT,
    latency_percentile,
    PipelineBatcher,
    ServeCluster,
    SHARDING_POLICIES,
    TenantClass,
    TraceCache,
    TraceLibrary,
    generate_tenant_traffic,
    generate_traffic,
    make_admission_policy,
    make_elastic_autoscaler,
    simulate_service,
)

#: Evaluation workload: every policy sees this exact trace. Resolution
#: and request count are sized so the experiment stays interactive.
SERVING_WORKLOAD = dict(
    pattern="mixed",
    n_requests=120,
    rate_rps=150.0,
    seed=0,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)


def serving_summary(
    n_chips: int = 4,
    policies: tuple[str, ...] | None = None,
    workload: dict | None = None,
) -> dict:
    """Per-policy serving metrics on one shared mixed-pipeline trace."""
    policies = policies if policies is not None else tuple(sorted(SHARDING_POLICIES))
    trace = generate_traffic(**(workload or SERVING_WORKLOAD))

    reports = {}
    for policy in policies:
        reports[policy] = simulate_service(
            trace,
            ServeCluster(n_chips, policy=policy),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
        )

    rows = []
    for policy in policies:
        report = reports[policy]
        rows.append([
            policy,
            f"{report.throughput_rps:.0f}",
            f"{report.latency_p(50) * 1e3:.2f}",
            f"{report.latency_p(95) * 1e3:.2f}",
            f"{report.latency_p(99) * 1e3:.2f}",
            f"{report.slo_attainment * 100:.1f}%",
            f"{report.cache_hit_rate * 100:.1f}%",
            f"{report.mean_utilization * 100:.1f}%",
            f"{report.total_switch_cycles:.0f}",
            f"{report.total_reconfig_cycles:.0f}",
        ])
    text = format_table(
        ["policy", "req/s", "p50 ms", "p95 ms", "p99 ms", "SLO",
         "cache hits", "util", "switch cyc", "reconfig cyc"],
        rows,
    )
    return {
        "rows": rows,
        "reports": {p: r.to_dict() for p, r in reports.items()},
        "text": text,
    }


#: Elastic-serving evaluation workload: bursts that overwhelm the
#: autoscaler's floor but leave long drain gaps, so fleet size actually
#: matters. Shared by the experiment, the example, and the benchmark.
ELASTIC_WORKLOAD = dict(
    n_requests=160,
    rate_rps=150.0,
    seed=0,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)

#: The static baseline provisions this many chips for the whole run;
#: the autoscaler may grow to the same ceiling but starts at its floor.
ELASTIC_MAX_CHIPS = 6
ELASTIC_MIN_CHIPS = 3


def elastic_summary(
    patterns: tuple[str, ...] = ("bursty", "diurnal"),
    workload: dict | None = None,
) -> dict:
    """Static vs autoscaled (vs autoscaled + admission) per pattern."""
    workload = dict(workload or ELASTIC_WORKLOAD)

    rows = []
    reports: dict[str, dict] = {}
    for pattern in patterns:
        trace = generate_traffic(pattern=pattern, **workload)

        variants = {
            "static": dict(
                cluster=ServeCluster(ELASTIC_MAX_CHIPS,
                                     policy="pipeline-affinity"),
            ),
            "autoscaled": dict(
                cluster=ServeCluster(ELASTIC_MIN_CHIPS, policy="cost-aware"),
                autoscaler=make_elastic_autoscaler(),
            ),
            "autoscaled+shed": dict(
                cluster=ServeCluster(ELASTIC_MIN_CHIPS, policy="cost-aware"),
                autoscaler=make_elastic_autoscaler(),
                admission=make_admission_policy("slo-shed"),
            ),
        }
        for name, kwargs in variants.items():
            report = simulate_service(
                trace,
                cache=TraceCache(),
                batcher=PipelineBatcher(),
                **kwargs,
            )
            reports[f"{pattern}/{name}"] = report.to_dict()
            rows.append([
                pattern,
                name,
                f"{report.slo_attainment * 100:.1f}%",
                f"{report.goodput_slo_attainment * 100:.1f}%",
                f"{report.latency_p(99) * 1e3:.1f}",
                f"{report.n_shed}",
                f"{report.peak_fleet_size}",
                f"{report.total_chip_seconds:.2f}",
                f"{report.total_cost_units:.2f}",
            ])
    text = format_table(
        ["traffic", "fleet", "SLO", "goodput", "p99 ms", "shed",
         "peak chips", "chip-s", "cost"],
        rows,
    )
    return {"rows": rows, "reports": reports, "text": text}


#: Multi-tenant QoS evaluation workload: a two-class bursty mix hot
#: enough that the single-class fleet blows premium SLOs. Premium buys
#: a tight SLO with most of the weight; economy tolerates 2x latency
#: and brings 3x the traffic.
TENANT_MIX = (
    (TenantClass("premium", slo_multiplier=1.0, weight=4.0, tier=0), 0.25),
    (TenantClass("economy", slo_multiplier=2.0, weight=1.0, tier=1), 0.75),
)

TENANT_WORKLOAD = dict(
    pattern="bursty",
    n_requests=160,
    rate_rps=400.0,
    seed=0,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)

TENANT_CHIPS = 3

#: The experiment's independent arms, in presentation order.
TENANT_ARMS = ("single-class", "tiered", "weighted+preempt",
               "weighted+preempt+autoscale")


def _tenant_run(requests, admission=None, preempt=False, autoscaler=None):
    return simulate_service(
        requests,
        ServeCluster(TENANT_CHIPS, policy="pipeline-affinity"),
        cache=TraceCache(),
        batcher=PipelineBatcher(),
        admission=make_admission_policy(admission) if admission else None,
        autoscaler=autoscaler,
        preempt=preempt,
    )


def tenant_arm(name: str, workload: dict | None = None):
    """Run one multi-tenant arm as a self-contained unit of work.

    Regenerates the tenant-tagged trace deterministically in-process
    (``generate_tenant_traffic`` is seeded), so each arm can run in its
    own worker process under the sweep runner and still produce a
    report byte-identical to the sequential :func:`tenant_summary`.
    """
    workload = dict(TENANT_WORKLOAD, **(workload or {}))
    trace = generate_tenant_traffic(list(TENANT_MIX), **workload)
    if name == "single-class":
        return _tenant_run([replace(r, tenant=DEFAULT_TENANT) for r in trace])
    if name == "tiered":
        return _tenant_run(trace)
    if name == "weighted+preempt":
        return _tenant_run(trace, admission="weighted", preempt=True)
    if name == "weighted+preempt+autoscale":
        return _tenant_run(
            trace, admission="weighted", preempt=True,
            autoscaler=make_elastic_autoscaler(
                min_chips=TENANT_CHIPS, max_chips=TENANT_CHIPS + 3))
    raise ConfigError(
        f"unknown tenant arm {name!r}; choose from {TENANT_ARMS}")


def tenant_summary(workload: dict | None = None) -> dict:
    """Multi-tenant QoS ladder on one two-class overload trace.

    Replays the same tenant-tagged trace through four service
    configurations: *single-class* strips the tenant tags (one FIFO
    queue, admit everything — per-class numbers are recovered by
    request id and judged against each class's real SLO), *tiered* only
    tags the traffic (strict tier dispatch, no admission control),
    *weighted+preempt* adds per-share admission and batch preemption,
    and *weighted+preempt+autoscale* lets the fleet grow under the
    burst, which is where displaced economy batches migrate to newly
    warmed chips.
    """
    workload = dict(workload or TENANT_WORKLOAD)
    trace = generate_tenant_traffic(list(TENANT_MIX), **workload)
    effective_slo = {r.request_id: r.effective_slo_s for r in trace}
    tenant_of = {r.request_id: r.tenant.name for r in trace}

    reports = {}
    rows = []

    # Single-class baseline: the fleet cannot tell the tenants apart.
    baseline = tenant_arm("single-class", workload)
    reports["single-class"] = baseline.to_dict()
    per_class: dict[str, list] = {}
    for response in baseline.responses:
        rid = response.request.request_id
        entry = per_class.setdefault(tenant_of[rid], [0, 0, []])
        entry[0] += response.latency_s <= effective_slo[rid]
        entry[1] += 1
        entry[2].append(response.latency_s)
    for tenant, _share in TENANT_MIX:
        met, n, latencies = per_class[tenant.name]
        p99 = latency_percentile(latencies, 99)
        rows.append([
            "single-class", tenant.name, f"{met / n * 100:.1f}%",
            f"{p99 * 1e3:.1f}", 0, 0, 0, "-",
        ])

    for name in TENANT_ARMS[1:]:
        report = tenant_arm(name, workload)
        reports[name] = report.to_dict()
        tenants = report.tenant_report()
        for tenant_name, e in tenants.items():
            rows.append([
                name, tenant_name,
                f"{e['slo_attainment'] * 100:.1f}%",
                f"{e['latency_p99_ms']:.1f}",
                e["n_shed"], e["n_preempted"], e["n_migrated"],
                f"{report.fairness_index:.3f}",
            ])

    text = format_table(
        ["service", "tenant", "SLO", "p99 ms", "shed", "preempted",
         "migrated", "fairness"],
        rows,
    )
    return {"rows": rows, "reports": reports, "text": text}


#: Compile-overlap evaluation workload: a cold cache against bursty
#: traffic over both scenes and all three pipelines, with request rate
#: high enough that stalling a chip on a compile blows queue waits.
ENGINE_WORKLOAD = dict(
    pattern="bursty",
    n_requests=120,
    rate_rps=200.0,
    seed=0,
    scenes=("lego", "chair", "materials", "ship"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(96, 54),
    slo_s=0.05,
)


def engine_summary(workload: dict | None = None) -> dict:
    """Sync compile vs compile-worker pools vs prefetch, one trace.

    Cache-hit columns are not directly comparable across modes: the
    synchronous path counts at dispatch time (batch followers of a
    just-compiled key register as hits), while worker modes count at
    arrival (requests joining an in-flight compile register as misses
    — the trace was not resident when they asked).
    """
    trace = generate_traffic(**(workload or ENGINE_WORKLOAD))
    model = CompileLatencyModel()

    variants = {
        "sync-compile": dict(compile_workers=0, compile_latency=model),
        "1 worker": dict(compile_workers=1, compile_latency=model),
        "2 workers": dict(compile_workers=2, compile_latency=model),
        "2 workers+prefetch": dict(compile_workers=2, compile_latency=model,
                                   prefetch=True),
    }
    rows = []
    reports: dict[str, dict] = {}
    for name, kwargs in variants.items():
        report = simulate_service(
            trace,
            ServeCluster(2),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
            **kwargs,
        )
        reports[name] = report.to_dict()
        prefetch = report.prefetch_stats
        rows.append([
            name,
            f"{report.mean_queue_s * 1e3:.2f}",
            f"{report.latency_p(50) * 1e3:.2f}",
            f"{report.latency_p(99) * 1e3:.2f}",
            f"{report.slo_attainment * 100:.1f}%",
            f"{report.cache_hit_rate * 100:.1f}%",
            f"{report.cache_stats['compile_s'] * 1e3:.1f}",
            (f"{prefetch['accuracy'] * 100:.0f}%"
             if prefetch.get("issued") else "-"),
        ])
    text = format_table(
        ["compile model", "queue ms", "p50 ms", "p99 ms", "SLO",
         "cache hits", "compile ms", "prefetch acc"],
        rows,
    )
    return {"rows": rows, "reports": reports, "text": text}


#: Predictive-serving evaluation workload: a two-period diurnal wave at
#: ~2x the floor fleet's capacity, long enough (n / rate ~ 8 s against
#: the generator's 4 s period) that the autoscaler sees full crests and
#: troughs rather than one partial upswing.
PREDICTIVE_WORKLOAD = dict(
    pattern="diurnal",
    n_requests=1200,
    rate_rps=150.0,
    seed=0,
    scenes=("lego", "room"),
    pipelines=("hashgrid", "gaussian", "mesh"),
    resolution=(320, 180),
    slo_s=0.05,
)

PREDICTIVE_MIN_CHIPS = 2
PREDICTIVE_MAX_CHIPS = 6
#: Warm-up long enough that a reactively added chip spends the SLO-
#: critical part of the upswing still booting — the regime forecasting
#: is for.
PREDICTIVE_WARMUP_S = 0.15


def make_wave_autoscaler(mode: str) -> Autoscaler:
    """Reactive and predictive controller at identical constants; only
    the mode differs, so the comparison isolates forecasting itself."""
    return Autoscaler(
        min_chips=PREDICTIVE_MIN_CHIPS,
        max_chips=PREDICTIVE_MAX_CHIPS,
        target_queue_per_chip=1.0,
        slo_target=0.95,
        window_s=0.25,
        warmup_s=PREDICTIVE_WARMUP_S,
        cooldown_s=0.15,
        mode=mode,
        target_utilization=1.0,
        lead_s=0.0,
        shrink_margin=1.1,
    )


#: The experiment's independent fleet arms, in presentation order. The
#: warm/cold restart phases are deliberately *not* arms: they share one
#: TraceLibrary sequentially (warm depends on cold's flush), so they
#: cannot be fanned out.
PREDICTIVE_ARMS = ("static", "reactive", "predictive")


def predictive_arm(name: str, workload: dict | None = None):
    """Run one predictive-serving fleet arm as a self-contained unit.

    Regenerates the diurnal trace deterministically in-process, so each
    arm can run in its own worker process under the sweep runner and
    still produce a report byte-identical to the sequential
    :func:`predictive_summary` fleet table.
    """
    workload = dict(PREDICTIVE_WORKLOAD, **(workload or {}))
    trace = generate_traffic(**workload)
    if name == "static":
        kwargs = dict(
            cluster=ServeCluster(PREDICTIVE_MAX_CHIPS,
                                 policy="pipeline-affinity"),
        )
    elif name in ("reactive", "predictive"):
        kwargs = dict(
            cluster=ServeCluster(PREDICTIVE_MIN_CHIPS,
                                 policy="pipeline-affinity"),
            autoscaler=make_wave_autoscaler(name),
        )
    else:
        raise ConfigError(
            f"unknown predictive arm {name!r}; choose from {PREDICTIVE_ARMS}")
    return simulate_service(
        trace,
        cache=TraceCache(),
        batcher=PipelineBatcher(),
        **kwargs,
    )


def predictive_summary(workload: dict | None = None) -> dict:
    """Reactive vs forecast-led autoscaling on a diurnal wave, plus the
    trace library's warm-vs-cold restart.

    One diurnal trace is replayed through a *static* fleet (the ceiling
    provisioned for the whole run), the *reactive* sliding-window
    controller, and the *predictive* controller (same constants, plus
    the arrival-rate forecast) — the headline is the predictive fleet
    leading the wave: higher SLO attainment than reactive at equal or
    lower chip-seconds. A second table restarts the same service from
    the trace library the first run flushed: the warm start removes the
    cold compile misses entirely.
    """
    workload = dict(workload or PREDICTIVE_WORKLOAD)
    trace = generate_traffic(**workload)

    rows = []
    reports: dict[str, dict] = {}
    for name in PREDICTIVE_ARMS:
        report = predictive_arm(name, workload)
        reports[name] = report.to_dict()
        rows.append([
            name,
            f"{report.slo_attainment * 100:.1f}%",
            f"{report.latency_p(95) * 1e3:.1f}",
            f"{report.latency_p(99) * 1e3:.1f}",
            f"{report.peak_fleet_size}",
            f"{len(report.fleet_events)}",
            f"{report.total_chip_seconds:.2f}",
            f"{report.total_cost_units:.2f}",
        ])
    fleet_text = format_table(
        ["fleet", "SLO", "p95 ms", "p99 ms", "peak chips", "flex events",
         "chip-s", "cost"],
        rows,
    )

    # Warm-vs-cold restart: flush a library from one run, then restart
    # the same service from it (fresh cluster and cache; only the
    # library persists, exactly like a process restart).
    library = TraceLibrary()
    restart_rows = []
    for phase in ("cold start", "warm restart"):
        report = simulate_service(
            trace,
            ServeCluster(PREDICTIVE_MAX_CHIPS, policy="pipeline-affinity"),
            cache=TraceCache(),
            batcher=PipelineBatcher(),
            compile_workers=2,
            trace_library=library,
        )
        reports[phase] = report.to_dict()
        cache = report.cache_stats
        restart_rows.append([
            phase,
            cache["misses"],
            cache["warmed"],
            f"{cache['hit_rate'] * 100:.1f}%",
            f"{cache['compile_s'] * 1e3:.1f}",
            f"{report.mean_queue_s * 1e3:.2f}",
            f"{report.slo_attainment * 100:.1f}%",
        ])
    restart_text = format_table(
        ["restart", "compile misses", "warmed", "hit rate", "compile ms",
         "queue ms", "SLO"],
        rows=restart_rows,
    )
    text = fleet_text + "\n\n" + restart_text
    return {
        "rows": rows,
        "restart_rows": restart_rows,
        "reports": reports,
        "text": text,
    }
