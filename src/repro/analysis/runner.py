"""Shared evaluation plumbing: resolutions, scene sets, result caching."""

from __future__ import annotations

from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.core.config import AcceleratorConfig
from repro.core.simulator import FrameResult
from repro.scenes import NERF_SYNTHETIC_SCENES, UNBOUNDED_360_SCENES

#: Evaluation resolutions, following the paper's settings.
UNBOUNDED_RESOLUTION = (1280, 720)   # [51], [88]
SYNTHETIC_RESOLUTION = (800, 800)    # [48], [50]

#: Scene sets used by the harness. The full sets match the datasets'
#: seven/eight scenes; benchmarks can pass reduced sets for speed.
UNBOUNDED_EVAL_SCENES = tuple(UNBOUNDED_360_SCENES)
SYNTHETIC_EVAL_SCENES = tuple(NERF_SYNTHETIC_SCENES)

_RESULT_CACHE: dict[tuple, FrameResult] = {}


def clear_result_cache() -> None:
    _RESULT_CACHE.clear()


def resolution_for(scene_name: str) -> tuple[int, int]:
    """The paper's evaluation resolution for a scene's dataset kind."""
    from repro.scenes import get_scene

    if get_scene(scene_name).kind == "synthetic":
        return SYNTHETIC_RESOLUTION
    return UNBOUNDED_RESOLUTION


def uni_result(
    scene_name: str,
    pipeline: str,
    resolution: tuple[int, int] | None = None,
    config: AcceleratorConfig | None = None,
) -> FrameResult:
    """Simulate Uni-Render on one (scene, pipeline), cached."""
    if resolution is None:
        resolution = resolution_for(scene_name)
    key = (scene_name, pipeline, resolution, config)
    if key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    program = compile_program(scene_name, pipeline, *resolution)
    result = UniRenderAccelerator(config).simulate(program)
    _RESULT_CACHE[key] = result
    return result


def uni_fps(scene_name: str, pipeline: str, **kwargs) -> float:
    """FPS convenience wrapper over :func:`uni_result`."""
    return uni_result(scene_name, pipeline, **kwargs).fps
