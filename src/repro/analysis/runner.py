"""Shared evaluation plumbing — and the parallel sweep runner.

The first half of this module is the per-(scene, pipeline) result cache
the table experiments share. The second half is the **sweep runner**:
``run_sweep`` fans a list of independent point specs across worker
processes and merges the results order-independently.

A sweep *point* is a plain dict (picklable, JSON-able) describing one
self-contained ``simulate_service`` configuration. Two kinds exist:

* **experiment points** name one arm of a registered ``analysis/``
  experiment (``ext_chaos``, ``ext_tenants``, ``ext_predictive``,
``ext_federation``).
  Each arm function regenerates its trace deterministically in-process,
  so an arm is a unit of work with no shared state — exactly what a
  worker process needs.
* **scenario points** describe an ad-hoc service configuration
  (traffic pattern, fleet size, admission policy, ...); the ``repro
  sweep --vary KEY=V1,V2`` cross-product produces them.

Determinism contract: a point's result depends only on its spec (every
trace generator is seeded), results carry no wall-clock or worker
metadata, and the merge sorts by point name — so ``run_sweep(points,
workers=8)`` emits output byte-identical to ``workers=1``.
"""

from __future__ import annotations

import importlib
import itertools
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.core.config import AcceleratorConfig
from repro.core.simulator import FrameResult
from repro.errors import ConfigError
from repro.scenes import NERF_SYNTHETIC_SCENES, UNBOUNDED_360_SCENES

#: Evaluation resolutions, following the paper's settings.
UNBOUNDED_RESOLUTION = (1280, 720)   # [51], [88]
SYNTHETIC_RESOLUTION = (800, 800)    # [48], [50]

#: Scene sets used by the harness. The full sets match the datasets'
#: seven/eight scenes; benchmarks can pass reduced sets for speed.
UNBOUNDED_EVAL_SCENES = tuple(UNBOUNDED_360_SCENES)
SYNTHETIC_EVAL_SCENES = tuple(NERF_SYNTHETIC_SCENES)

_RESULT_CACHE: dict[tuple, FrameResult] = {}


def clear_result_cache() -> None:
    _RESULT_CACHE.clear()


def resolution_for(scene_name: str) -> tuple[int, int]:
    """The paper's evaluation resolution for a scene's dataset kind."""
    from repro.scenes import get_scene

    if get_scene(scene_name).kind == "synthetic":
        return SYNTHETIC_RESOLUTION
    return UNBOUNDED_RESOLUTION


def uni_result(
    scene_name: str,
    pipeline: str,
    resolution: tuple[int, int] | None = None,
    config: AcceleratorConfig | None = None,
) -> FrameResult:
    """Simulate Uni-Render on one (scene, pipeline), cached."""
    if resolution is None:
        resolution = resolution_for(scene_name)
    key = (scene_name, pipeline, resolution, config)
    if key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    program = compile_program(scene_name, pipeline, *resolution)
    result = UniRenderAccelerator(config).simulate(program)
    _RESULT_CACHE[key] = result
    return result


def uni_fps(scene_name: str, pipeline: str, **kwargs) -> float:
    """FPS convenience wrapper over :func:`uni_result`."""
    return uni_result(scene_name, pipeline, **kwargs).fps


# ---------------------------------------------------------------------------
# Sweep runner
# ---------------------------------------------------------------------------

#: Sweepable experiments: id -> (module, arm function, arms constant).
#: The module is imported lazily *inside the worker process*, so the
#: registry itself stays picklable and import-light.
SWEEP_EXPERIMENTS: dict[str, tuple[str, str, str]] = {
    "ext_chaos": ("repro.analysis.chaos", "chaos_arm", "CHAOS_ARMS"),
    "ext_federation": ("repro.analysis.federation", "federation_arm",
                       "FEDERATION_ARMS"),
    "ext_tenants": ("repro.analysis.serving", "tenant_arm", "TENANT_ARMS"),
    "ext_predictive": ("repro.analysis.serving", "predictive_arm",
                       "PREDICTIVE_ARMS"),
}

#: Scenario-point spec keys and their defaults. ``None`` policy means
#: the cluster's own default; everything else maps 1:1 onto
#: ``generate_traffic`` / ``simulate_service`` arguments.
SCENARIO_DEFAULTS: dict[str, object] = {
    "traffic": "bursty",
    "requests": 400,
    "rate": 300.0,
    "seed": 0,
    "scenes": "lego,room",
    "pipelines": "hashgrid,gaussian,mesh",
    "width": 160,
    "height": 90,
    "slo_ms": 50.0,
    "chips": 2,
    "policy": "pipeline-affinity",
    "cache_size": 64,
    "max_batch": 8,
    "admission": "admit-all",
    "columnar": True,
}


def experiment_points(experiment: str,
                      arms: tuple[str, ...] | None = None) -> list[dict]:
    """One sweep point per arm of a registered experiment."""
    if experiment not in SWEEP_EXPERIMENTS:
        raise ConfigError(
            f"unknown sweep experiment {experiment!r}; "
            f"choose from {sorted(SWEEP_EXPERIMENTS)}")
    module_name, _fn, arms_name = SWEEP_EXPERIMENTS[experiment]
    known = getattr(importlib.import_module(module_name), arms_name)
    arms = tuple(arms) if arms is not None else tuple(known)
    for arm in arms:
        if arm not in known:
            raise ConfigError(
                f"unknown arm {arm!r} for {experiment}; choose from {known}")
    return [
        {"kind": "experiment", "name": f"{experiment}/{arm}",
         "experiment": experiment, "arm": arm}
        for arm in arms
    ]


def scenario_points(base: dict | None = None,
                    vary: dict[str, list] | None = None) -> list[dict]:
    """Cross-product of ``vary`` axes over the scenario defaults.

    ``base`` overrides individual defaults; ``vary`` maps spec keys to
    value lists. Point names encode the varied coordinates
    (``"rate=200,chips=4"``) so merged results are self-describing; the
    degenerate no-``vary`` sweep yields one point named ``"base"``.
    """
    spec = dict(SCENARIO_DEFAULTS)
    for source in (base or {}), (vary or {}):
        unknown = set(source) - set(SCENARIO_DEFAULTS)
        if unknown:
            raise ConfigError(
                f"unknown scenario keys {sorted(unknown)}; "
                f"choose from {sorted(SCENARIO_DEFAULTS)}")
    spec.update(base or {})
    if not vary:
        return [dict(spec, kind="scenario", name="base")]
    axes = sorted(vary)
    # Point names encode parsed values, so equal values ("0.50" and
    # "0.5" both coerce to 0.5) would mint two points under one merge
    # key; collapse duplicates per axis, first occurrence wins.
    vary = {axis: list(dict.fromkeys(vary[axis])) for axis in axes}
    points = []
    for values in itertools.product(*(vary[axis] for axis in axes)):
        point = dict(spec)
        point.update(zip(axes, values))
        name = ",".join(f"{axis}={value}"
                        for axis, value in zip(axes, values))
        points.append(dict(point, kind="scenario", name=name))
    return points


def _run_scenario(spec: dict):
    from repro.serve import (
        PipelineBatcher,
        ServeCluster,
        TraceCache,
        generate_traffic,
        make_admission_policy,
        simulate_service,
    )

    trace = generate_traffic(
        pattern=spec["traffic"],
        n_requests=int(spec["requests"]),
        rate_rps=float(spec["rate"]),
        seed=int(spec["seed"]),
        scenes=tuple(str(spec["scenes"]).split(",")),
        pipelines=tuple(str(spec["pipelines"]).split(",")),
        resolution=(int(spec["width"]), int(spec["height"])),
        slo_s=float(spec["slo_ms"]) / 1e3,
    )
    admission = (None if spec["admission"] in (None, "admit-all")
                 else make_admission_policy(str(spec["admission"])))
    return simulate_service(
        trace,
        ServeCluster(int(spec["chips"]), policy=str(spec["policy"])),
        cache=TraceCache(capacity=int(spec["cache_size"])),
        batcher=PipelineBatcher(max_batch=int(spec["max_batch"])),
        admission=admission,
        columnar=bool(spec["columnar"]),
    )


def run_sweep_point(spec: dict) -> dict:
    """Run one sweep point; module-level so worker processes can pickle
    a reference to it. Returns only deterministic content."""
    if spec.get("kind") == "experiment":
        module_name, fn_name, _arms = SWEEP_EXPERIMENTS[spec["experiment"]]
        arm_fn = getattr(importlib.import_module(module_name), fn_name)
        report = arm_fn(spec["arm"])
    elif spec.get("kind") == "scenario":
        report = _run_scenario(spec)
    else:
        raise ConfigError(f"sweep point needs kind= in {sorted(spec)}")
    return {
        "name": spec["name"],
        "spec": {k: v for k, v in spec.items() if k != "kind"},
        "report": report.to_dict(),
    }


def run_sweep(points: list[dict], workers: int = 1) -> dict:
    """Fan independent sweep points across worker processes.

    ``workers <= 1`` runs serially in-process (no executor, easiest to
    debug); otherwise a :class:`ProcessPoolExecutor` runs up to
    ``workers`` points concurrently. Completion order is irrelevant:
    results merge sorted by point name, and each point regenerates its
    own seeded trace, so the merged document is byte-identical to the
    serial run's.
    """
    names = [point["name"] for point in points]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ConfigError(f"duplicate sweep point names: {duplicates}")
    if workers <= 1 or len(points) <= 1:
        results = [run_sweep_point(point) for point in points]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_sweep_point, point)
                       for point in points]
            results = [future.result() for future in as_completed(futures)]
    results.sort(key=lambda result: result["name"])
    return {"n_points": len(results), "points": results}


def sweep_table(sweep: dict) -> str:
    """Headline metrics of a sweep result, one row per point."""
    from repro.analysis.tables import format_table

    rows = []
    for result in sweep["points"]:
        report = result["report"]
        rows.append([
            result["name"],
            str(report["n_requests"]),
            f"{report['slo_attainment'] * 100:.1f}%",
            f"{report['latency_p99_ms']:.1f}",
            f"{report['throughput_rps']:.0f}",
            str(report["n_shed"]),
            f"{report['total_chip_seconds']:.2f}",
        ])
    return format_table(
        ["point", "served", "SLO", "p99 ms", "req/s", "shed", "chip-s"],
        rows,
    )
