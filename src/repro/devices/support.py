"""Pipeline-support matrices (Fig. 7 x-marks and Table VI).

Dedicated neural-rendering accelerators execute one pipeline each;
generic NPUs execute the MLP but no graphics operators; CGRAs add the
grid-style gather. Uni-Render supports all five — the paper's central
claim.
"""

from __future__ import annotations

from repro.devices.registry import DEVICES

PIPELINE_ORDER = ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")

#: Table VI verbatim: accelerator -> supported pipelines.
SUPPORT_MATRIX_TABLE_VI: dict[str, dict[str, bool]] = {
    "Flexagon (NPU)": dict(mesh=False, mlp=True, lowrank=False, hashgrid=False, gaussian=False),
    "STIFT (NPU)": dict(mesh=False, mlp=True, lowrank=False, hashgrid=False, gaussian=False),
    "SIGMA (NPU)": dict(mesh=False, mlp=True, lowrank=False, hashgrid=False, gaussian=False),
    "Eyeriss (NPU)": dict(mesh=False, mlp=True, lowrank=False, hashgrid=False, gaussian=False),
    "Plasticine (CGRA)": dict(mesh=False, mlp=True, lowrank=True, hashgrid=False, gaussian=False),
    "Uni-Render (ours)": dict(mesh=True, mlp=True, lowrank=True, hashgrid=True, gaussian=True),
}


def supported_pipelines(device_name: str) -> tuple[str, ...]:
    """Pipelines a registered device model can execute (Fig. 7 rows)."""
    device = DEVICES[device_name]
    return tuple(p for p in PIPELINE_ORDER if device.supports(p))
