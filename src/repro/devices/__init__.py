"""Baseline device and accelerator models (Sec. III, VII, VIII).

Four commercial devices (Qualcomm 8Gen2, NVIDIA Xavier NX / Orin NX,
AMD 780M), three dedicated neural-rendering accelerators (Instant-3D,
RT-NeRF, MetaVRain), and the related-work comparators (GSCore, CICERO,
TRAM, FPGA-NVR). We cannot measure the physical hardware, so each model
carries calibrated per-pipeline FPS constants anchored to sentences of
the paper — see :mod:`repro.devices.calibration` for the anchor of every
number.
"""

from repro.devices.base import DeviceModel
from repro.devices.registry import (
    DEVICES,
    COMMERCIAL_DEVICES,
    DEDICATED_ACCELERATORS,
    RELATED_WORK_ACCELERATORS,
    get_device,
    device_names,
)
from repro.devices.support import SUPPORT_MATRIX_TABLE_VI, supported_pipelines

__all__ = [
    "DeviceModel",
    "DEVICES",
    "COMMERCIAL_DEVICES",
    "DEDICATED_ACCELERATORS",
    "RELATED_WORK_ACCELERATORS",
    "get_device",
    "device_names",
    "SUPPORT_MATRIX_TABLE_VI",
    "supported_pipelines",
]
