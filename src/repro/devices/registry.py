"""Instantiated device models and lookup helpers."""

from __future__ import annotations

from repro.devices.base import DeviceModel
from repro.devices.calibration import (
    COMMERCIAL_FPS,
    DEDICATED_FPS,
    DEVICE_POWER_W,
    RELATED_FPS,
)
from repro.errors import ConfigError


def _build(table: dict, kind: str) -> dict[str, DeviceModel]:
    return {
        name: DeviceModel(
            name=name,
            kind=kind,
            power_w=DEVICE_POWER_W[name],
            fps_table=dict(fps),
        )
        for name, fps in table.items()
    }


COMMERCIAL_DEVICES = _build(COMMERCIAL_FPS, "commercial")
DEDICATED_ACCELERATORS = _build(DEDICATED_FPS, "dedicated")
RELATED_WORK_ACCELERATORS = _build(RELATED_FPS, "related")

#: All devices, in the paper's legend order (Fig. 7 / Fig. 16).
DEVICES: dict[str, DeviceModel] = {
    **COMMERCIAL_DEVICES,
    **DEDICATED_ACCELERATORS,
    **RELATED_WORK_ACCELERATORS,
}


def device_names(kind: str | None = None) -> tuple[str, ...]:
    """Registered device names, optionally filtered by kind."""
    if kind is None:
        return tuple(DEVICES)
    return tuple(name for name, dev in DEVICES.items() if dev.kind == kind)


def get_device(name: str) -> DeviceModel:
    try:
        return DEVICES[name]
    except KeyError:
        raise ConfigError(
            f"unknown device {name!r}; available: {', '.join(DEVICES)}"
        ) from None
