"""Calibrated device constants, one paper anchor per number.

We cannot run the authors' hardware, so baseline devices are modeled by
their rendering FPS at the paper's reference setting (Unbounded-360-like
scenes, 1280x720, complexity-1.0 scene) and a rendering power. Every
constant below is derived from a specific sentence of the paper combined
with Uni-Render's own simulated performance at the same setting
(room @1280x720: mesh 17.0, mlp 9.0, lowrank 33.2, hashgrid 35.3,
gaussian 31.2 FPS; power 0.92 / 3.49 / 1.00 / 3.94 / 1.12 W):

* Orin NX mesh 20.6     <- "0.9x rendering speed vs Orin NX on mesh"
  (Sec. VII-B) and Table I "<= 20 FPS on [76]".
* 8Gen2 mesh 29.5       <- "0.7x vs 8Gen2 on mesh" (Sec. VII-B).
* Xavier mesh 12.3      <- "8Gen2 achieves 2.4x over Xavier NX for
  mesh-based pipelines" (Sec. I).
* Xavier mlp 0.0756     <- "up to 119x speedups" (abstract), realized on
  the MLP pipeline against the weakest device.
* Orin mlp 0.19         <- Table I "<= 0.2 FPS on [76]".
* 8Gen2 lowrank 3.1     <- "[8Gen2] 1.75x slower [than Xavier] for
  low-rank-decomposed-grid pipelines" (Sec. I) with Xavier at 5.4.
* Orin lowrank 9.5      <- Table I "<= 10 FPS".
* Orin hashgrid 0.95    <- Table I "<= 1 FPS".
* Orin gaussian 4.8     <- Table I "<= 5 FPS".
* Xavier gaussian 2.6   <- "GSCore achieves a 15x speedup over XNX,
  while we achieve a 12x speedup" (Sec. VIII-A): 31.2 / 12.
* RT-NeRF lowrank 11.1  <- "3x speedup ... over RT-NeRF" (Sec. VII-B).
* Instant-3D hashgrid 5.9 <- "6x speedup ... over Instant-3D".
* MetaVRain mlp 90.0    <- "10% FPS [of MetaVRain]" (Sec. VII-B).
* GSCore gaussian 39.0  <- 15x over Xavier NX's 2.6 (Sec. VIII-A).
* CICERO hashgrid 41.0  <- "our approach is 14% slower" at iso-MACs
  (Sec. VIII-A): 35.3 / 0.86.
* TRAM mlp 0.36         <- "25x speedup over [82] on MLP" (Sec. VIII-B).
* FPGA-NVR hashgrid 2.35 <- "15x speedup ... over [114]" (Sec. VIII-B).
* MixRT rows            <- Fig. 17: "2.0x-2.6x compared to ... Xavier NX
  and Orin NX" and "2.0x to 3.7x across all evaluated baselines".

Powers:

* Orin NX 2.32 W        <- "4x energy efficiency on mesh" at 0.9x speed.
* 8Gen2 1.25 W          <- "1.5x energy efficiency on mesh" at 0.7x.
* Xavier 8.2 W         <- "up to 354x energy efficiency" at 119x on MLP.
* AMD 780M 6.0 W        <- no anchor; desktop iGPU render-rail estimate.
* MetaVRain 0.70 W      <- "10% FPS with 5x more power consumption":
  Uni-Render's MLP-pipeline power divided by 5.
* RT-NeRF 1.74 W         <- "6x energy efficiency improvement" at 3x.
* Instant-3D 1.16 W     <- "2.2x energy efficiency improvement" at 6x.
* FPGA-NVR 2.6 W        <- "10x improvement in energy efficiency" at 15x.
* GSCore / CICERO / TRAM 1.0 W <- no energy anchor in the paper.

The remaining unanchored FPS values (AMD 780M rows; 8Gen2/Xavier rows
without a quoted ratio) were chosen to preserve Fig. 7's qualitative
story: no commercial device is real-time anywhere except the AMD 780M
on the two rasterization-friendly splat/plane pipelines, and exactly
three settings in Fig. 7 exceed 30 FPS (MetaVRain-mlp, AMD-lowrank,
AMD-gaussian).
"""

from __future__ import annotations

#: (pipeline, "unbounded") -> FPS at 1280x720 on a complexity-1.0 scene.
COMMERCIAL_FPS: dict[str, dict[tuple[str, str], float]] = {
    "8Gen2": {
        ("mesh", "unbounded"): 29.5,
        ("mlp", "unbounded"): 0.12,
        ("lowrank", "unbounded"): 3.1,
        ("hashgrid", "unbounded"): 0.6,
        ("gaussian", "unbounded"): 3.4,
        ("mixrt", "unbounded"): 8.2,
    },
    "Xavier NX": {
        ("mesh", "unbounded"): 12.3,
        ("mlp", "unbounded"): 0.0756,
        ("lowrank", "unbounded"): 5.4,
        ("hashgrid", "unbounded"): 0.4,
        ("gaussian", "unbounded"): 2.6,
        ("mixrt", "unbounded"): 11.4,
    },
    "Orin NX": {
        ("mesh", "unbounded"): 20.6,
        ("mlp", "unbounded"): 0.19,
        ("lowrank", "unbounded"): 9.5,
        ("hashgrid", "unbounded"): 0.95,
        ("gaussian", "unbounded"): 4.8,
        ("mixrt", "unbounded"): 12.6,
    },
    "AMD 780M": {
        ("mesh", "unbounded"): 26.0,
        ("mlp", "unbounded"): 0.25,
        ("lowrank", "unbounded"): 34.0,
        ("hashgrid", "unbounded"): 1.3,
        ("gaussian", "unbounded"): 34.0,
        ("mixrt", "unbounded"): 8.8,
    },
}

DEDICATED_FPS: dict[str, dict[tuple[str, str], float]] = {
    "Instant-3D": {("hashgrid", "unbounded"): 5.9},
    "RT-NeRF": {("lowrank", "unbounded"): 11.1},
    "MetaVRain": {("mlp", "unbounded"): 90.0},
}

RELATED_FPS: dict[str, dict[tuple[str, str], float]] = {
    "GSCore": {("gaussian", "unbounded"): 39.0},
    "CICERO": {("hashgrid", "unbounded"): 41.0},
    "TRAM": {("mlp", "unbounded"): 0.36},
    "FPGA-NVR": {("hashgrid", "unbounded"): 2.35},
}

DEVICE_POWER_W: dict[str, float] = {
    "8Gen2": 1.25,
    "Xavier NX": 8.2,
    "Orin NX": 2.32,
    "AMD 780M": 6.0,
    "Instant-3D": 1.16,
    "RT-NeRF": 1.74,
    "MetaVRain": 0.70,
    "GSCore": 1.0,
    "CICERO": 1.0,
    "TRAM": 1.0,
    "FPGA-NVR": 2.6,
}
