"""Device performance model.

A device is a table of calibrated FPS values at the paper's reference
resolutions plus a rendering power. FPS scales inversely with pixel
count and softens with scene complexity; unsupported pipelines raise
:class:`~repro.errors.UnsupportedPipelineError` (the "x" bars of
Figs. 7 and 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnsupportedPipelineError
from repro.scenes import get_scene

#: Reference resolutions the calibration FPS were specified at.
REFERENCE_PIXELS = {
    "synthetic": 800 * 800,      # NeRF-Synthetic convention [67]
    "unbounded": 1280 * 720,     # Unbounded-360 setting [51], [88]
}

#: How strongly device FPS degrades with scene complexity relative to
#: the reference scene (complexity 1.0). Sub-linear: heavier scenes are
#: also better-occluded.
COMPLEXITY_EXPONENT = 0.25


@dataclass(frozen=True)
class DeviceModel:
    """One baseline device or accelerator.

    ``fps_table`` maps ``(pipeline, kind)`` to frames per second at the
    reference resolution on a complexity-1.0 scene. ``power_w`` is the
    calibrated rendering power used for energy-efficiency ratios (see
    calibration.py for what anchors it — these are not physical TDPs).
    """

    name: str
    kind: str                      # "commercial", "dedicated", "related"
    power_w: float
    fps_table: dict[tuple[str, str], float] = field(default_factory=dict)

    def supports(self, pipeline: str) -> bool:
        return any(key[0] == pipeline for key in self.fps_table)

    def fps(self, scene_name: str, pipeline: str, width: int, height: int) -> float:
        """Rendering speed on one scene at one resolution."""
        spec = get_scene(scene_name)
        key = (pipeline, spec.kind)
        if key not in self.fps_table:
            raise UnsupportedPipelineError(self.name, pipeline)
        base = self.fps_table[key]
        pixel_scale = REFERENCE_PIXELS[spec.kind] / float(width * height)
        complexity_scale = (1.0 / max(spec.complexity, 0.1)) ** COMPLEXITY_EXPONENT
        return base * pixel_scale * complexity_scale

    def energy_per_frame_j(
        self, scene_name: str, pipeline: str, width: int, height: int
    ) -> float:
        """Energy per rendered frame at the calibrated power."""
        return self.power_w / self.fps(scene_name, pipeline, width, height)
