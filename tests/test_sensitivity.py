"""Unit tests for the robustness/sensitivity studies."""

import pytest

from repro.analysis.sensitivity import (
    bandwidth_boundness,
    bandwidth_sensitivity,
    efficiency_sensitivity,
)


class TestBandwidthSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        return bandwidth_sensitivity(bandwidths_gbs=(30.0, 59.7, 120.0))

    def test_fps_monotone_in_bandwidth(self, study):
        for pipeline, row in study["data"].items():
            values = [row[bw] for bw in sorted(row)]
            assert all(a <= b * 1.001 for a, b in zip(values, values[1:])), pipeline

    def test_design_point_matches_simulator(self, study):
        from repro.analysis import uni_result

        for pipeline, row in study["data"].items():
            assert row[59.7] == pytest.approx(uni_result("room", pipeline).fps, rel=1e-6)

    def test_hashgrid_saturates(self, study):
        """Past the design point the hash-grid pipeline becomes
        compute-bound: extra bandwidth stops helping."""
        row = study["data"]["hashgrid"]
        gain_low = row[59.7] / row[30.0]
        gain_high = row[120.0] / row[59.7]
        assert gain_low > 1.5
        assert gain_high < 1.2


class TestBoundness:
    def test_unbounded_scenes_are_memory_bound(self):
        data = bandwidth_boundness()["data"]
        # The paper's Sec. VIII theme: irregular memory access, not MAC
        # throughput, limits edge neural rendering.
        assert all(share > 0.4 for share in data.values())


class TestEfficiencyPerturbation:
    def test_conclusions_stable(self):
        study = efficiency_sensitivity(factors=(0.8, 1.2))
        for factor, row in study["data"].items():
            assert row["volume_real_time"], factor
            assert row["mesh_crossover"], factor

    def test_efficiency_restored_after_patch(self):
        """The perturbation must not leak into the global tables."""
        from repro.core.dataflow import EFFICIENCY
        from repro.core.microops import MicroOp

        before = EFFICIENCY[MicroOp.GEMM].bf16
        efficiency_sensitivity(factors=(0.5,))
        assert EFFICIENCY[MicroOp.GEMM].bf16 == before
