"""Property-based tests on the performance-model invariants.

These pin down the *algebra* of the cost model: linearity, monotonicity,
and conservation properties that must hold for any workload — the
guarantees the calibrated constants sit on top of.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MicroOp, MicroOpProgram, UniRenderAccelerator
from repro.core.config import AcceleratorConfig
from repro.core.dataflow import no_reuse_ceiling_bytes, phase_cost, spill_factor
from repro.core.microops import Workload
from repro.core.scheduler import schedule
from repro.devices import get_device

positive = st.floats(min_value=1.0, max_value=1e12)


def _workload(int_ops, bf16_ops, sram, unique, ws, stream):
    return Workload(
        int_ops=int_ops,
        bf16_ops=bf16_ops,
        sram_accesses=sram,
        dram_unique_bytes=unique,
        working_set_bytes=ws,
        streaming_bytes=stream,
        items=max(int_ops, 1.0),
    )


class TestCostModelProperties:
    @given(positive, positive, positive, positive, positive, positive)
    @settings(max_examples=60, deadline=None)
    def test_traffic_never_exceeds_ceiling(self, a, b, sram, unique, ws, stream):
        """DRAM traffic is bounded by the no-reuse worst case."""
        cfg = AcceleratorConfig()
        for op in (MicroOp.GEMM, MicroOp.COMBINED_GRID, MicroOp.GEOMETRIC):
            w = _workload(a, b, sram, unique, ws, stream)
            cost = phase_cost(op, w, cfg)
            ceiling = max(no_reuse_ceiling_bytes(w, op), w.dram_unique_bytes)
            bound = (ceiling + w.streaming_bytes) * (1.0 + 1e-9) + 1e-6
            assert cost.dram_bytes <= bound

    @given(positive, positive)
    @settings(max_examples=60, deadline=None)
    def test_compute_scales_linearly_in_ops(self, bf16_ops, factor_raw):
        """Twice the MACs = twice the compute cycles (above the launch
        floor)."""
        factor = 1.0 + factor_raw % 7.0
        cfg = AcceleratorConfig()
        base_ops = max(bf16_ops, 1e6)  # keep above the latency floor
        w1 = Workload(bf16_ops=base_ops, items=1)
        w2 = Workload(bf16_ops=base_ops * factor, items=1)
        c1 = phase_cost(MicroOp.GEMM, w1, cfg).compute_cycles
        c2 = phase_cost(MicroOp.GEMM, w2, cfg).compute_cycles
        assert c2 == pytest.approx(c1 * factor, rel=1e-9)

    @given(positive)
    @settings(max_examples=40, deadline=None)
    def test_spill_at_least_one(self, ws):
        w = _workload(10, 10, 1e9, 1e6, ws, 0)
        assert spill_factor(w, MicroOp.COMBINED_GRID, AcceleratorConfig()) >= 1.0

    @given(st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_bigger_design_never_slower(self, pe_exp, sram_exp):
        """Monotonicity: more hardware can only help."""
        program = MicroOpProgram(pipeline="x")
        program.append(
            MicroOp.COMBINED_GRID,
            "grid",
            _workload(1e9, 1e9, 1e9, 1e7, 1e8, 1e6),
        )
        base = UniRenderAccelerator().simulate(program).fps
        scaled_cfg = AcceleratorConfig().scaled(2**pe_exp, 2 ** max(pe_exp, sram_exp))
        scaled = UniRenderAccelerator(scaled_cfg).simulate(program).fps
        assert scaled >= base * 0.999

    def test_energy_additive_over_phases(self):
        """Frame energy equals the sum over scheduled phases."""
        program = MicroOpProgram(pipeline="x")
        for i, op in enumerate((MicroOp.GEMM, MicroOp.SORTING, MicroOp.GEOMETRIC)):
            program.append(op, f"s{i}", _workload(1e7, 1e7, 1e7, 1e5, 1e6, 1e4))
        frame = schedule(program, AcceleratorConfig())
        total = frame.energy()
        assert total.chip_total == pytest.approx(
            sum(p.energy.chip_total for p in frame.phases)
        )

    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_program_workload_scaling_linear(self, factor):
        program = MicroOpProgram(pipeline="x")
        program.append(MicroOp.GEMM, "a", Workload(bf16_ops=1e8, items=10))
        scaled = MicroOpProgram(pipeline="x")
        for inv in program.invocations:
            scaled.append(inv.op, inv.name, inv.workload.scaled(factor))
        assert scaled.total("bf16_ops") == pytest.approx(1e8 * factor)


class TestDeviceModelProperties:
    @given(st.integers(64, 2048), st.integers(64, 2048))
    @settings(max_examples=40, deadline=None)
    def test_fps_times_pixels_constant(self, width, height):
        device = get_device("Orin NX")
        fps = device.fps("room", "mesh", width, height)
        product = fps * width * height
        reference = device.fps("room", "mesh", 1280, 720) * 1280 * 720
        assert product == pytest.approx(reference, rel=1e-9)

    def test_energy_inverse_of_fps(self):
        device = get_device("8Gen2")
        half = device.energy_per_frame_j("room", "mesh", 640, 360)
        full = device.energy_per_frame_j("room", "mesh", 1280, 720)
        assert full == pytest.approx(4 * half, rel=1e-9)


class TestSceneDeterminism:
    def test_camera_rays_deterministic(self):
        from repro.scenes import Camera, look_at

        cam = Camera(16, 16, pose=look_at(np.array([1.0, 2.0, 3.0]), np.zeros(3)))
        o1, d1 = cam.rays()
        o2, d2 = cam.rays()
        assert np.array_equal(o1, o2) and np.array_equal(d1, d2)

    def test_compiled_program_deterministic(self):
        from repro.compile import compile_program

        a = compile_program("room", "hashgrid", 320, 180)
        b = compile_program("room", "hashgrid", 320, 180)
        for inv_a, inv_b in zip(a.invocations, b.invocations):
            assert inv_a.workload.bf16_ops == inv_b.workload.bf16_ops
            assert inv_a.workload.dram_unique_bytes == inv_b.workload.dram_unique_bytes
