"""Behavioural tests for the reconfigurable hardware components."""

import numpy as np
import pytest

from repro.core.alu import ALUMode, ReconfigurableALU
from repro.core.network import ArrayMode, DataNetwork, ReductionLinks
from repro.core.pe import ControllerMode, PSUse, ReconfigurablePE
from repro.core.scratchpad import Scratchpad
from repro.errors import ConfigError, SimulationError


class TestALU:
    def test_cross2d_matches_numpy(self):
        alu = ReconfigurableALU()
        alu.configure(ALUMode.VECTOR)
        a = np.array([[1.0, 0.0], [0.5, 2.0]])
        b = np.array([[0.0, 1.0], [1.0, -1.0]])
        out = alu.cross2d(a, b)
        assert np.allclose(out, [1.0, -2.5])

    def test_index_address_linearizes(self):
        alu = ReconfigurableALU()
        alu.configure(ALUMode.INDEX_FUNCTION)
        coords = np.array([[1, 2, 3]])
        strides = np.array([100, 10, 1])
        assert alu.index_address(coords, strides, base=5)[0] == 128

    def test_compare_exchange_orders(self):
        alu = ReconfigurableALU()
        alu.configure(ALUMode.COMPARATOR)
        assert alu.compare_exchange(5, 3) == (3, 5)
        assert alu.compare_exchange(1, 9) == (1, 9)

    def test_adder_tree_weighted(self):
        alu = ReconfigurableALU()
        alu.configure(ALUMode.ADDER_TREE)
        assert alu.adder_tree([1.0, 2.0, 3.0], [0.5, 0.5, 1.0]) == pytest.approx(4.5)

    def test_mode_enforced(self):
        alu = ReconfigurableALU()
        alu.configure(ALUMode.MAC)
        with pytest.raises(ConfigError):
            alu.cross2d(np.zeros((1, 2)), np.zeros((1, 2)))
        assert alu.mac(1.0, 2.0, 3.0) == 7.0

    def test_comparator_mode_consumes_bf16_lanes(self):
        alu = ReconfigurableALU()
        alu.configure(ALUMode.COMPARATOR)
        assert alu.bf16_throughput() == 0
        assert alu.compare_throughput() == 4
        alu.configure(ALUMode.ADDER_TREE)
        assert alu.bf16_throughput() == 4
        assert alu.compare_throughput() == 0


class TestScratchpad:
    def test_capacity_matches_paper(self):
        ff = Scratchpad(words_per_cell=512, n_cells=4)
        assert ff.capacity_bytes == 4096  # 4x 512x16 bits
        assert ff.ports_per_cycle == 4

    def test_read_write_roundtrip(self):
        pad = Scratchpad(8, 2)
        pad.write(9, 1234)
        assert pad.read(9) == 1234
        assert pad.reads == 1 and pad.writes == 1

    def test_out_of_range(self):
        pad = Scratchpad(8, 2)
        with pytest.raises(SimulationError):
            pad.read(16)
        with pytest.raises(SimulationError):
            pad.write(-1, 0)

    def test_load_block_and_reset(self):
        pad = Scratchpad(8, 2)
        pad.load_block(4, [1, 2, 3])
        assert [pad.read(4 + i) for i in range(3)] == [1, 2, 3]
        pad.reset_counters()
        assert pad.reads == 0 and pad.writes == 0

    def test_load_block_overflow(self):
        pad = Scratchpad(4, 1)
        with pytest.raises(SimulationError):
            pad.load_block(2, [1, 2, 3])


class TestPE:
    def test_automatic_counter(self):
        pe = ReconfigurablePE()
        assert [pe.next_index() for _ in range(3)] == [0, 1, 2]
        pe.reset_counter()
        assert pe.next_index() == 0

    def test_min_depth_hold(self):
        pe = ReconfigurablePE()
        pe.configure(ControllerMode.RASTERIZATION, ALUMode.VECTOR, PSUse.Z_BUFFER)
        depth, index = pe.min_depth_hold([5.0, 2.0, 7.0, 2.5], [10, 20, 30, 40])
        assert depth == 2.0 and index == 20
        assert pe.ps.read(1) == 20

    def test_min_depth_hold_requires_zbuffer(self):
        pe = ReconfigurablePE()
        pe.configure(ControllerMode.GEMM, ALUMode.ADDER_TREE, PSUse.OUTPUT_FEATURES)
        with pytest.raises(ConfigError):
            pe.min_depth_hold([1.0], [0])

    def test_merge_sort_in_ff(self):
        pe = ReconfigurablePE()
        pe.configure(ControllerMode.SORTING, ALUMode.COMPARATOR, PSUse.OFF)
        keys = [9, 3, 7, 1, 8, 2, 5]
        out, comps = pe.merge_sort_in_ff(keys)
        assert out == sorted(keys)
        assert comps > 0
        assert pe.ff.writes >= len(keys)

    def test_merge_sort_patch_must_fit(self):
        pe = ReconfigurablePE()
        pe.configure(ControllerMode.SORTING, ALUMode.COMPARATOR, PSUse.OFF)
        with pytest.raises(SimulationError):
            pe.merge_sort_in_ff(list(range(5000)))

    def test_weight_stationary_gemm(self):
        pe = ReconfigurablePE()
        pe.configure(ControllerMode.GEMM, ALUMode.ADDER_TREE, PSUse.OUTPUT_FEATURES)
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(8, 4))
        inputs = rng.normal(size=(16, 8))
        out = pe.weight_stationary_gemm(weights, inputs)
        assert np.allclose(out, inputs @ weights)
        assert pe.ps.writes == out.size

    def test_gemm_weight_tile_capacity(self):
        pe = ReconfigurablePE()
        pe.configure(ControllerMode.GEMM, ALUMode.ADDER_TREE, PSUse.OUTPUT_FEATURES)
        with pytest.raises(SimulationError):
            pe.weight_stationary_gemm(np.zeros((100, 100)), np.zeros((1, 100)))


class TestDataNetwork:
    def test_configure_reports_changes(self):
        net = DataNetwork(4, 4)
        changed = net.configure(ArrayMode.PIPELINE, ReductionLinks.HORIZONTAL, True)
        assert changed and net.reconfigurations == 1
        unchanged = net.configure(ArrayMode.PIPELINE, ReductionLinks.HORIZONTAL, True)
        assert not unchanged and net.reconfigurations == 1

    def test_horizontal_reduce_weighted(self):
        net = DataNetwork(2, 3)
        net.configure(ArrayMode.PIPELINE, ReductionLinks.HORIZONTAL, True)
        values = np.arange(6, dtype=float).reshape(2, 3)
        weights = np.full((2, 3), 0.5)
        out = net.horizontal_reduce(values, weights)
        assert np.allclose(out, [1.5, 6.0])

    def test_reduce_requires_links(self):
        net = DataNetwork(2, 2)
        net.configure(ArrayMode.SYSTOLIC, ReductionLinks.OFF, True)
        with pytest.raises(ConfigError):
            net.horizontal_reduce(np.zeros((2, 2)))

    def test_full_reduce_multiplies_lines(self):
        net = DataNetwork(3, 2)
        net.configure(ArrayMode.PIPELINE, ReductionLinks.FULL, True)
        values = np.array([[1.0, 1.0], [2.0, 1.0], [0.5, 0.5]])
        assert net.full_reduce(values) == pytest.approx(2.0 * 3.0 * 1.0)
        assert net.full_reduce(values, combine="add") == pytest.approx(6.0)
        with pytest.raises(ConfigError):
            net.full_reduce(values, combine="xor")

    def test_full_reduce_requires_full_links(self):
        net = DataNetwork(2, 2)
        net.configure(ArrayMode.PIPELINE, ReductionLinks.HORIZONTAL, True)
        with pytest.raises(ConfigError):
            net.full_reduce(np.ones((2, 2)))

    def test_shape_validation(self):
        net = DataNetwork(2, 2)
        net.configure(ArrayMode.PIPELINE, ReductionLinks.HORIZONTAL, True)
        with pytest.raises(ConfigError):
            net.horizontal_reduce(np.zeros((3, 2)))
