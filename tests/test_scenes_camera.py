"""Unit tests for cameras, poses, rays, and tiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SceneError
from repro.scenes import Camera, look_at, orbit_poses, tiles


class TestLookAt:
    def test_rotation_is_orthonormal(self):
        pose = look_at(np.array([3.0, 2.0, 1.0]), np.zeros(3))
        rot = pose[:3, :3]
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)

    def test_camera_minus_z_points_at_target(self):
        eye = np.array([0.0, -5.0, 0.0])
        pose = look_at(eye, np.zeros(3))
        forward = -pose[:3, 2]
        expected = -eye / np.linalg.norm(eye)
        assert np.allclose(forward, expected)

    def test_coincident_eye_target_raises(self):
        with pytest.raises(SceneError):
            look_at(np.ones(3), np.ones(3))

    def test_degenerate_up_recovers(self):
        # Looking straight along the default up vector.
        pose = look_at(np.array([0.0, 0.0, 5.0]), np.zeros(3))
        assert np.all(np.isfinite(pose))


class TestOrbitPoses:
    def test_count_and_radius(self):
        poses = orbit_poses(2.5, 6)
        assert len(poses) == 6
        for pose in poses:
            assert np.isclose(np.linalg.norm(pose[:3, 3]), 2.5)

    def test_zero_views_rejected(self):
        with pytest.raises(SceneError):
            orbit_poses(1.0, 0)

    def test_views_are_distinct(self):
        poses = orbit_poses(2.0, 4)
        assert not np.allclose(poses[0], poses[1])


class TestTiles:
    def test_cover_image_exactly(self):
        mask = np.zeros((30, 50), dtype=int)
        for y0, y1, x0, x1 in tiles(30, 50, 16):
            mask[y0:y1, x0:x1] += 1
        assert np.all(mask == 1)

    def test_bad_patch_rejected(self):
        with pytest.raises(SceneError):
            list(tiles(10, 10, 0))

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(1, 17))
    @settings(max_examples=50, deadline=None)
    def test_tiles_partition_any_size(self, h, w, patch):
        mask = np.zeros((h, w), dtype=int)
        for y0, y1, x0, x1 in tiles(h, w, patch):
            assert y1 > y0 and x1 > x0
            mask[y0:y1, x0:x1] += 1
        assert np.all(mask == 1)


class TestCamera:
    def test_validation(self):
        with pytest.raises(SceneError):
            Camera(0, 10)
        with pytest.raises(SceneError):
            Camera(10, 10, fov_y_deg=200)
        with pytest.raises(SceneError):
            Camera(10, 10, near=2.0, far=1.0)

    def test_rays_are_unit_and_counted(self):
        cam = Camera(8, 6)
        origins, dirs = cam.rays()
        assert origins.shape == dirs.shape == (48, 3)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_center_ray_matches_view_direction(self):
        pose = look_at(np.array([0, -4.0, 0]), np.zeros(3))
        cam = Camera(33, 33, pose=pose)
        _, dirs = cam.rays()
        center = dirs[(33 * 33) // 2]
        assert np.allclose(center, [0, 1, 0], atol=1e-2)

    def test_world_to_screen_center(self):
        pose = look_at(np.array([0, -4.0, 0]), np.zeros(3))
        cam = Camera(64, 48, pose=pose)
        screen, depth = cam.world_to_screen(np.zeros((1, 3)))
        assert np.allclose(screen[0], [32, 24], atol=1e-9)
        assert np.isclose(depth[0], 4.0)

    def test_projection_depth_increases_with_distance(self):
        cam = Camera(32, 32, pose=look_at(np.array([0, -4.0, 0]), np.zeros(3)))
        _, depth = cam.world_to_screen(np.array([[0, 0, 0], [0, 1, 0]]))
        # The camera sits at y=-4 looking toward +y, so y=1 is farther.
        assert depth[1] > depth[0]
        assert np.allclose(depth, [4.0, 5.0])

    def test_points_along_ray_project_to_same_pixel(self):
        cam = Camera(40, 40, pose=look_at(np.array([2.0, -3.0, 1.0]), np.zeros(3)))
        origins, dirs = cam.rays()
        idx = 137
        pts = origins[idx] + dirs[idx] * np.array([[1.0], [2.0], [5.0]])
        screen, _ = cam.world_to_screen(pts)
        expected_x, expected_y = idx % 40 + 0.5, idx // 40 + 0.5
        assert np.allclose(screen[:, 0], expected_x, atol=1e-6)
        assert np.allclose(screen[:, 1], expected_y, atol=1e-6)

    def test_resized_keeps_fov_and_pose(self):
        cam = Camera(64, 48, fov_y_deg=55.0)
        small = cam.resized(16, 12)
        assert small.fov_y_deg == 55.0
        assert np.array_equal(small.pose, cam.pose)
        assert small.num_pixels == 192

    def test_view_matrix_inverts_pose(self):
        cam = Camera(8, 8, pose=look_at(np.array([1.0, 2.0, 3.0]), np.zeros(3)))
        assert np.allclose(cam.view_matrix() @ cam.pose, np.eye(4), atol=1e-12)
