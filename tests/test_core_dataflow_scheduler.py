"""Tests for the dataflow cost model, scheduler, and simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MicroOp, MicroOpProgram, UniRenderAccelerator
from repro.core.alu import ALUMode
from repro.core.config import AcceleratorConfig
from repro.core.dataflow import (
    EFFICIENCY,
    LAUNCH_LATENCY,
    MODULE_STATUS,
    no_reuse_ceiling_bytes,
    phase_cost,
    spill_factor,
)
from repro.core.microops import Workload
from repro.core.network import ArrayMode, ReductionLinks
from repro.core.pe import ControllerMode, PSUse
from repro.core.scheduler import schedule
from repro.errors import SimulationError


class TestModuleStatus:
    """MODULE_STATUS must reproduce Table III row by row."""

    def test_all_ops_covered(self):
        assert set(MODULE_STATUS) == set(MicroOp)

    def test_geometric(self):
        s = MODULE_STATUS[MicroOp.GEOMETRIC]
        assert not s.input_network
        assert s.reduction_links is ReductionLinks.OFF
        assert s.controller is ControllerMode.RASTERIZATION
        assert s.alu_mode is ALUMode.VECTOR
        assert s.ps_use is PSUse.Z_BUFFER

    def test_combined_grid_horizontal(self):
        s = MODULE_STATUS[MicroOp.COMBINED_GRID]
        assert s.input_network
        assert s.reduction_links is ReductionLinks.HORIZONTAL
        assert s.ps_use is PSUse.OFF

    def test_decomposed_grid_full(self):
        s = MODULE_STATUS[MicroOp.DECOMPOSED_GRID]
        assert s.reduction_links is ReductionLinks.FULL

    def test_sorting_isolated(self):
        s = MODULE_STATUS[MicroOp.SORTING]
        assert not s.input_network
        assert s.reduction_links is ReductionLinks.OFF
        assert s.alu_mode is ALUMode.COMPARATOR

    def test_gemm_systolic(self):
        s = MODULE_STATUS[MicroOp.GEMM]
        assert s.array_mode is ArrayMode.SYSTOLIC
        assert s.ff_contents == "model_weights"
        assert s.ps_use is PSUse.OUTPUT_FEATURES


class TestPhaseCost:
    def test_compute_floor_is_launch_latency(self):
        cost = phase_cost(MicroOp.GEMM, Workload(items=1), AcceleratorConfig())
        assert cost.compute_cycles == LAUNCH_LATENCY

    def test_gemm_buffer_stage_slows_bf16(self):
        w = Workload(bf16_ops=1e9, items=1)
        base = AcceleratorConfig()
        free = AcceleratorConfig(gemm_buffer_stage_overhead=0.0)
        slow = phase_cost(MicroOp.GEMM, w, base).compute_cycles
        fast = phase_cost(MicroOp.GEMM, w, free).compute_cycles
        assert slow == pytest.approx(fast * 1.15, rel=1e-6)

    def test_spill_factor_one_when_fitting(self):
        w = Workload(dram_unique_bytes=1000, working_set_bytes=1000,
                     sram_accesses=1e6, items=100)
        assert spill_factor(w, MicroOp.GEMM, AcceleratorConfig()) == 1.0

    def test_spill_linear_in_oversubscription(self):
        """Doubling the working set doubles re-fetch traffic — the
        mechanism behind Table V's SRAM column."""
        cfg = AcceleratorConfig()
        cap = cfg.global_buffer_bytes + cfg.n_pes * cfg.ff_scratchpad_bytes
        w2 = Workload(dram_unique_bytes=cap, working_set_bytes=2 * cap,
                      sram_accesses=1e13, items=1e9)
        w8 = Workload(dram_unique_bytes=cap, working_set_bytes=8 * cap,
                      sram_accesses=1e13, items=1e9)
        assert spill_factor(w2, MicroOp.GEMM, cfg) == pytest.approx(2.0)
        assert spill_factor(w8, MicroOp.GEMM, cfg) == pytest.approx(8.0)

    def test_ceiling_uses_line_granularity_for_discrete(self):
        w = Workload(items=1000, sram_accesses=1000, dram_unique_bytes=1)
        discrete = no_reuse_ceiling_bytes(w, MicroOp.COMBINED_GRID)
        continuous = no_reuse_ceiling_bytes(w, MicroOp.GEMM)
        assert discrete == 1000 * 64.0
        assert continuous == 2000.0

    @given(st.floats(1e3, 1e12))
    @settings(max_examples=40, deadline=None)
    def test_spill_monotone_in_working_set(self, ws):
        cfg = AcceleratorConfig()
        w1 = Workload(dram_unique_bytes=1e6, working_set_bytes=ws,
                      sram_accesses=1e12, items=1e10)
        w2 = Workload(dram_unique_bytes=1e6, working_set_bytes=ws * 2,
                      sram_accesses=1e12, items=1e10)
        assert spill_factor(w2, MicroOp.GEMM, cfg) >= spill_factor(
            w1, MicroOp.GEMM, cfg
        )

    def test_efficiencies_valid(self):
        for op, eff in EFFICIENCY.items():
            assert 0 < eff.int16 <= 1
            assert 0 < eff.bf16 <= 1


def _program(ops):
    prog = MicroOpProgram(pipeline="test", pixels=100)
    for i, op in enumerate(ops):
        prog.append(op, f"stage{i}", Workload(bf16_ops=1e6, int_ops=1e6,
                                              sram_accesses=1e6, items=1e4))
    return prog


class TestScheduler:
    def test_empty_program_rejected(self):
        with pytest.raises(SimulationError):
            schedule(MicroOpProgram(pipeline="x"), AcceleratorConfig())

    def test_reconfig_charged_on_mode_change_only(self):
        cfg = AcceleratorConfig()
        same = schedule(_program([MicroOp.GEMM, MicroOp.GEMM]), cfg)
        mixed = schedule(_program([MicroOp.GEMM, MicroOp.SORTING]), cfg)
        assert same.reconfig_cycles == cfg.reconfigure_cycles        # first only
        assert mixed.reconfig_cycles == 2 * cfg.reconfigure_cycles

    def test_phase_time_is_max_of_compute_memory(self):
        cfg = AcceleratorConfig()
        frame = schedule(_program([MicroOp.GEMM]), cfg)
        phase = frame.phases[0]
        assert phase.phase_cycles == pytest.approx(
            max(phase.cost.compute_cycles, phase.memory_cycles)
        )

    def test_cycles_by_op_sums_to_total(self):
        frame = schedule(_program([MicroOp.GEMM, MicroOp.SORTING]), AcceleratorConfig())
        assert sum(frame.cycles_by_op().values()) == pytest.approx(frame.total_cycles)

    def test_bound_labels(self):
        compute_heavy = MicroOpProgram(pipeline="x")
        compute_heavy.append(MicroOp.GEMM, "big", Workload(bf16_ops=1e10, items=1))
        frame = schedule(compute_heavy, AcceleratorConfig())
        assert frame.phases[0].bound == "compute"


class TestSimulator:
    def test_fps_inverse_of_cycles(self):
        accel = UniRenderAccelerator()
        result = accel.simulate(_program([MicroOp.GEMM]))
        assert result.fps == pytest.approx(
            accel.config.clock_hz / result.cycles
        )

    def test_energy_positive_and_power_consistent(self):
        result = UniRenderAccelerator().simulate(_program([MicroOp.GEMM]))
        assert result.energy_per_frame_j > 0
        seconds = result.cycles / 1e9
        assert result.power_w == pytest.approx(result.energy_per_frame_j / seconds)

    def test_real_time_flag(self):
        result = UniRenderAccelerator().simulate(_program([MicroOp.GEMM]))
        assert result.real_time == (result.fps > 30.0)

    def test_gating_saves_energy(self):
        accel = UniRenderAccelerator()
        prog = _program([MicroOp.SORTING])  # SFUs and more idle here
        gated = accel.simulate(prog, gated=True)
        ungated = accel.simulate(prog, gated=False)
        assert gated.energy_per_frame_j < ungated.energy_per_frame_j

    def test_scale_study_base_is_one(self):
        matrix = UniRenderAccelerator().scale_study(_program([MicroOp.GEMM]))
        assert matrix[(1, 1)] == pytest.approx(1.0)
        assert all(v > 0 for v in matrix.values())

    def test_more_pes_never_slower_for_compute_bound(self):
        prog = MicroOpProgram(pipeline="x")
        prog.append(MicroOp.GEMM, "big", Workload(bf16_ops=1e10, items=1))
        matrix = UniRenderAccelerator().scale_study(prog)
        assert matrix[(4, 1)] >= matrix[(2, 1)] >= matrix[(1, 1)] - 1e-9
