"""Tests for the analysis harness (structure and bookkeeping)."""

import pytest

from repro.analysis import (
    figure7_motivating,
    format_table,
    gating_ablation,
    reconfiguration_overhead,
    related_work_comparisons,
    table1_overview,
    table2_microops,
    table3_module_status,
    table6_support,
    uni_fps,
    uni_result,
)

SUBSET = ("room", "garden")


class TestStructuralTables:
    def test_table2_lists_five_microops(self):
        result = table2_microops()
        assert len(result["data"]) == 5
        assert "random_hash" in result["text"]

    def test_table3_lists_five_rows(self):
        result = table3_module_status()
        assert len(result["data"]) == 5
        assert "z_buffer" in result["text"]

    def test_table6_ours_row(self):
        result = table6_support()
        assert "Uni-Render (ours)" in result["text"]

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines if l.strip())) <= 2


class TestTable1:
    def test_columns_present(self):
        result = table1_overview(scenes=SUBSET)
        for pipeline, row in result["data"].items():
            assert row["orin_fps"] > 0
            assert "PSNR" in row["paper_quality"]

    def test_mesh_fastest_mlp_slowest_on_orin(self):
        data = table1_overview(scenes=SUBSET)["data"]
        fps = {p: row["orin_fps"] for p, row in data.items()}
        assert fps["mesh"] == max(fps.values())
        assert fps["mlp"] == min(fps.values())


class TestFig7:
    def test_grid_shape_and_x_marks(self):
        fig = figure7_motivating(scenes=SUBSET)
        assert len(fig["data"]) == 7
        assert fig["data"]["Instant-3D"]["mesh"] is None
        assert fig["data"]["Orin NX"]["mesh"] is not None

    def test_no_commercial_device_is_real_time_anywhere_near_everywhere(self):
        fig = figure7_motivating(scenes=SUBSET)
        for device in ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M"):
            row = fig["data"][device]
            real_time = sum(1 for v in row.values() if v is not None and v > 30)
            assert real_time <= 2, device

    def test_exactly_three_real_time_on_full_set(self):
        fig = figure7_motivating()
        assert len(fig["real_time"]) == 3
        assert ("MetaVRain", "mlp") in fig["real_time"]


class TestRunnerCache:
    def test_result_cached(self):
        a = uni_result("room", "hashgrid")
        b = uni_result("room", "hashgrid")
        assert a is b

    def test_uni_fps_positive(self):
        assert uni_fps("room", "hashgrid") > 0


class TestAblations:
    def test_reconfig_overhead_small_but_real(self):
        result = reconfiguration_overhead(scene="room")
        for pipeline, row in result["data"].items():
            if pipeline == "metavrain_energy_per_pixel_ratio":
                continue
            assert row["no_reconfig_gain"] >= 1.0
            assert row["no_buffer_stage_gain"] >= 1.0

    def test_metavrain_energy_per_pixel(self):
        result = reconfiguration_overhead(scene="room")
        ratio = result["data"]["metavrain_energy_per_pixel_ratio"]["ratio"]
        assert ratio == pytest.approx(2.8, rel=0.6)  # paper: 2.8x

    def test_gating_saves_energy_everywhere(self):
        result = gating_ablation(scene="room")
        for pipeline, row in result["data"].items():
            assert 0.0 < row["saving"] < 0.6, pipeline

    def test_related_work_anchors(self):
        result = related_work_comparisons(scene="room")
        data = result["data"]
        assert data["GSCore"]["gscore_vs_xavier"] == pytest.approx(15.0, rel=0.2)
        assert data["GSCore"]["ours_vs_xavier"] == pytest.approx(12.0, rel=0.35)
        assert data["CICERO"]["ours_over_cicero"] == pytest.approx(0.86, rel=0.2)
        assert data["TRAM"]["uni_speedup"] == pytest.approx(25.0, rel=0.35)
        assert data["FPGA-NVR"]["uni_speedup"] == pytest.approx(15.0, rel=0.35)
        assert data["FPGA-NVR"]["energy_ratio"] == pytest.approx(10.0, rel=0.4)


class TestScenarioPoints:
    """Sweep point construction — names key the name-sorted merge, so
    duplicate names (from values that parse equal) must never mint two
    points."""

    def test_float_formatted_duplicates_collapse(self):
        from repro.analysis.runner import scenario_points

        # "0.50" and "0.5" both coerce to 0.5: the CLI (and any caller
        # passing parsed values) must end up with one point per value.
        points = scenario_points(vary={"rate": [200.0, 200.0, 400.0]})
        names = [p["name"] for p in points]
        assert names == ["rate=200.0", "rate=400.0"]
        assert len(names) == len(set(names))

    def test_cross_product_dedupes_per_axis(self):
        from repro.analysis.runner import scenario_points

        points = scenario_points(vary={"chips": [2, 2, 3],
                                       "rate": [100.0, 100.0]})
        names = sorted(p["name"] for p in points)
        assert names == ["chips=2,rate=100.0", "chips=3,rate=100.0"]

    def test_cli_vary_parsing_dedupes(self, capsys):
        # End to end through the sweep command: a float-formatted
        # duplicate ("0.50"-style) yields one arm, not two colliding
        # merge keys.
        from repro.cli import main

        code = main(["sweep", "--vary", "rate=4000.0,4000,8000",
                     "--set", "requests=12", "--set", "width=32",
                     "--set", "height=32", "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 point(s)" in out
        assert out.count("rate=4000.0") == 1
