"""Tests for the deployment-parameter sweep study."""

import pytest

from repro.analysis.profile_sweeps import hashgrid_deployment_sweep
from repro.compile import compile_program, profile_for
from repro.errors import ConfigError


class TestHashgridSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return hashgrid_deployment_sweep(
            log2_table_sizes=(17, 21, 23), level_counts=(8, 16)
        )

    def test_grid_covers_all_points(self, sweep):
        assert len(sweep["data"]) == 6
        assert all(row["fps"] > 0 for row in sweep["data"].values())

    def test_bigger_tables_never_faster(self, sweep):
        for levels in (8, 16):
            fps = [sweep["data"][(levels, t)]["fps"] for t in (17, 21, 23)]
            assert fps[0] >= fps[1] >= fps[2]

    def test_more_levels_cost_more(self, sweep):
        for log2_t in (17, 21, 23):
            assert (
                sweep["data"][(8, log2_t)]["fps"]
                > sweep["data"][(16, log2_t)]["fps"]
            )

    def test_large_tables_become_memory_bound(self, sweep):
        small = sweep["data"][(16, 17)]["memory_share"]
        large = sweep["data"][(16, 23)]["memory_share"]
        assert large >= small

    def test_profile_restored_after_sweep(self, sweep):
        # The sweep temporarily patches the global profile table; the
        # paper deployment must be back in place afterwards.
        profile = profile_for("hashgrid", "unbounded")
        assert profile.lookups_per_sample == 128
        assert profile.table_bytes == 16 * (1 << 21) * 4
        program = compile_program("room", "hashgrid", 320, 180)
        assert program.invocations

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigError):
            hashgrid_deployment_sweep(log2_table_sizes=(), level_counts=(8,))
